//! Fixture-driven linter tests: each rule is proven against a known-bad
//! snippet under `tests/fixtures/` (a directory the workspace walker
//! deliberately skips), asserting exact rule names and file:line
//! positions, allow-annotation suppression, and the CLI's exit codes.

use std::path::PathBuf;
use std::process::Command;

use quaestor_analyze::rules::{lint_source, FileInfo};
use quaestor_analyze::{config, Config};

/// A config shaped like the workspace's, scoped to the fixture idents.
fn cfg() -> Config {
    config::parse(
        r#"
        [rules]
        io_crates = ["net"]
        depth_cap_files = ["crates/net/src/codec.rs"]
        [[lock]]
        name = "store.shard"
        rank = 20
        idents = ["shard", "shards"]
        [[lock]]
        name = "store.index"
        rank = 30
        idents = ["indexes"]
        "#,
    )
    .expect("fixture config")
}

/// Lint a fixture as if it sat at `rel_path`; return (line, rule) pairs.
fn lint(rel_path: &str, crate_name: &str, src: &str) -> Vec<(u32, &'static str)> {
    let info = FileInfo {
        rel_path,
        crate_name,
        in_test_tree: false,
    };
    lint_source(&info, src, &cfg())
        .into_iter()
        .map(|d| (d.line, d.rule))
        .collect()
}

#[test]
fn std_sync_fixture_flags_every_form() {
    let src = include_str!("fixtures/std_sync.rs");
    assert_eq!(
        lint("crates/net/src/x.rs", "net", src),
        vec![
            (3, "std-sync-lock"),
            (4, "std-sync-lock"),
            (8, "std-sync-lock"),
            (9, "std-sync-lock"),
        ]
    );
}

#[test]
fn unwrap_fixture_flags_shipped_code_only() {
    let src = include_str!("fixtures/unwraps.rs");
    assert_eq!(
        lint("crates/net/src/x.rs", "net", src),
        vec![(4, "unwrap-in-io-crate"), (8, "unwrap-in-io-crate")]
    );
    // Same file in a non-I/O crate: the rule does not apply.
    assert_eq!(lint("crates/webcache/src/x.rs", "webcache", src), vec![]);
    // Same file in a test tree: exempt even in an I/O crate.
    let info = FileInfo {
        rel_path: "crates/net/tests/x.rs",
        crate_name: "net",
        in_test_tree: true,
    };
    assert!(lint_source(&info, src, &cfg()).is_empty());
}

#[test]
fn lock_inversion_fixture_mirrors_the_seeded_runtime_test() {
    let src = include_str!("fixtures/lock_inversion.rs");
    let diags = lint_source(
        &FileInfo {
            rel_path: "crates/store/src/table.rs",
            crate_name: "store",
            in_test_tree: false,
        },
        src,
        &cfg(),
    );
    assert_eq!(diags.len(), 1, "unexpected: {diags:?}");
    assert_eq!(diags[0].rule, "lock-order");
    assert_eq!(diags[0].line, 9);
    assert!(diags[0].message.contains("`store.shard` (rank 20)"));
    assert!(diags[0].message.contains("`store.index` (rank 30, line 8)"));
}

#[test]
fn depth_cap_fixture_requires_evidence_in_codec_files() {
    let src = include_str!("fixtures/depth_cap.rs");
    assert_eq!(
        lint("crates/net/src/codec.rs", "net", src),
        vec![(12, "depth-cap")]
    );
    // The rule only applies to the configured codec files.
    assert_eq!(lint("crates/net/src/other.rs", "net", src), vec![]);
}

#[test]
fn allowed_fixture_is_fully_suppressed() {
    let src = include_str!("fixtures/allowed.rs");
    assert_eq!(lint("crates/net/src/x.rs", "net", src), vec![]);
}

#[test]
fn bad_allow_fixture_reports_and_suppresses_nothing() {
    let src = include_str!("fixtures/bad_allow.rs");
    assert_eq!(
        lint("crates/net/src/x.rs", "net", src),
        vec![
            (5, "bad-allow"),
            (6, "unwrap-in-io-crate"),
            (10, "bad-allow"),
            (11, "unwrap-in-io-crate"),
        ]
    );
}

#[test]
fn workspace_config_parses_and_orders_the_real_hierarchy() {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../analyze/lock-order.toml");
    let cfg = Config::load(&path).expect("workspace lock-order.toml");
    for c in ["net", "durability", "client", "core"] {
        assert!(cfg.io_crates.iter().any(|x| x == c), "missing io crate {c}");
    }
    let rank = |name: &str| {
        cfg.locks
            .iter()
            .find(|l| l.name == name)
            .unwrap_or_else(|| panic!("missing lock {name}"))
            .rank
    };
    assert!(rank("store.shard") < rank("store.index"));
    assert!(rank("store.db.tables") < rank("store.shard"));
    assert!(rank("durability.snapshot_gate") < rank("store.db.tables"));
    // Sorted by rank, ranks unique (parse() enforces both).
    assert!(cfg.locks.windows(2).all(|w| w[0].rank < w[1].rank));
}

// --- CLI exit codes, against throwaway mini-workspaces -----------------

const MINI_TOML: &str = r#"
[rules]
io_crates = ["demo"]
depth_cap_files = []
[[lock]]
name = "demo.shard"
rank = 20
idents = ["shards"]
[[lock]]
name = "demo.index"
rank = 30
idents = ["indexes"]
"#;

fn mini_workspace(tag: &str, lib_rs: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("quaestor-analyze-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.join("analyze")).expect("mkdir analyze");
    std::fs::create_dir_all(dir.join("crates/demo/src")).expect("mkdir crate");
    std::fs::write(dir.join("analyze/lock-order.toml"), MINI_TOML).expect("toml");
    std::fs::write(dir.join("crates/demo/src/lib.rs"), lib_rs).expect("lib.rs");
    dir
}

fn run_lint(root: &std::path::Path) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_quaestor-analyze"))
        .args(["lint", "--root"])
        .arg(root)
        .output()
        .expect("spawn quaestor-analyze")
}

#[test]
fn cli_exits_nonzero_with_named_positions_on_a_dirty_workspace() {
    let root = mini_workspace(
        "dirty",
        "use std::sync::Mutex;\npub fn f(x: Option<u32>) -> u32 {\n    x.unwrap()\n}\n",
    );
    let out = run_lint(&root);
    assert_eq!(out.status.code(), Some(1), "expected exit 1");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(
        stdout.contains("crates/demo/src/lib.rs:1: [std-sync-lock]"),
        "stdout: {stdout}"
    );
    assert!(
        stdout.contains("crates/demo/src/lib.rs:3: [unwrap-in-io-crate]"),
        "stdout: {stdout}"
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("2 diagnostic(s)"), "stderr: {stderr}");
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cli_exits_zero_on_a_clean_workspace() {
    let root = mini_workspace(
        "clean",
        "pub fn f(x: Option<u32>) -> u32 {\n    x.unwrap_or(0)\n}\n",
    );
    let out = run_lint(&root);
    assert_eq!(out.status.code(), Some(0), "expected exit 0");
    assert!(String::from_utf8_lossy(&out.stderr).contains("analyze: clean"));
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn cli_usage_and_config_errors_exit_two() {
    let out = Command::new(env!("CARGO_BIN_EXE_quaestor-analyze"))
        .output()
        .expect("spawn");
    assert_eq!(out.status.code(), Some(2), "no-args usage");
    let missing =
        std::env::temp_dir().join(format!("quaestor-analyze-missing-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&missing);
    let out = run_lint(&missing);
    assert_eq!(out.status.code(), Some(2), "missing workspace root");
}

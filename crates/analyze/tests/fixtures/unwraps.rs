//! Fixture: `unwrap-in-io-crate` — flagged in shipped code, exempt in tests.

pub fn shipped(x: Option<u32>) -> u32 {
    x.unwrap()
}

pub fn also_shipped(x: Option<u32>) -> u32 {
    x.expect("present")
}

pub fn fine(x: Option<u32>) -> u32 {
    x.unwrap_or(0)
}

#[cfg(test)]
mod tests {
    #[test]
    fn exempt() {
        Some(1).unwrap();
    }
}

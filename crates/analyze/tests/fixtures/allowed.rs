//! Fixture: allow-suppression — every finding carries a reasoned allow,
//! so the file must lint clean.

// analyze: allow(std-sync-lock) fixture proves reasoned allows suppress
use std::sync::Mutex;

pub fn shipped(x: Option<u32>) -> u32 {
    // analyze: allow(unwrap-in-io-crate) fixture value is always Some
    x.unwrap()
}

impl Table {
    pub fn index_then_shard(&self) {
        let _idxs = self.indexes.read();
        // analyze: allow(lock-order) fixture demonstrates suppression
        let _shard = self.shards[0].read();
    }
}

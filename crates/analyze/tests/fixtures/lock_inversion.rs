//! Fixture: `lock-order` — mirrors the seeded runtime inversion in
//! `quaestor_store::Table::seeded_index_then_shard_inversion` (see
//! `crates/store/tests/lockcheck_inversion.rs`): the index registry
//! (rank 30) is taken before a shard (rank 20).

impl Table {
    pub fn index_then_shard(&self) {
        let _idxs = self.indexes.read();
        let _shard = self.shards[0].read();
    }

    pub fn documented_order(&self) {
        let _shard = self.shards[0].write();
        let _idxs = self.indexes.read();
    }
}

//! Fixture: `bad-allow` — reason-less and unknown-rule allows are
//! findings themselves, and suppress nothing.

pub fn shipped(x: Option<u32>) -> u32 {
    // analyze: allow(unwrap-in-io-crate)
    x.unwrap()
}

pub fn also(x: Option<u32>) -> u32 {
    // analyze: allow(no-such-rule) reason present but rule unknown
    x.expect("present")
}

//! Fixture: `depth-cap` — decoders over untrusted bytes must evidence
//! a recursion-depth cap.

pub fn get_value(r: &mut Reader) -> Value {
    get_value_at(r, 0)
}

pub fn decode_frame(r: &mut Reader, depth: usize) -> Frame {
    walk(r, depth)
}

pub fn get_naked(r: &mut Reader) -> Value {
    r.next()
}

pub fn helper(r: &mut Reader) {}

//! Fixture: `std-sync-lock` — direct paths and use-group imports.

use std::sync::Mutex;
use std::sync::{Arc, RwLock};
use std::sync::atomic::AtomicUsize;

pub struct Holder {
    slot: std::sync::Mutex<u32>,
    gate: std::sync::RwLock<Vec<u8>>,
    hits: AtomicUsize,
    arc: Arc<u32>,
}

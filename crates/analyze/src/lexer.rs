//! A lightweight, comment- and string-aware Rust token scanner.
//!
//! This is deliberately *not* a real Rust lexer (no `syn` — the build
//! environment has no crates.io access, and the rules only need token
//! shapes, not syntax trees). It produces identifier and punctuation
//! tokens with line numbers, skips string/char/numeric literal *content*
//! (so `"std::sync::Mutex"` in a string can never trip a rule), and
//! collects comment text separately so the `// analyze: allow(...)`
//! annotation mechanism can read it.
//!
//! Handled literal forms: line comments, nesting block comments, plain
//! and raw strings (`r"…"`, `r#"…"#`, any `#` depth), byte strings,
//! char literals, and the char-vs-lifetime ambiguity (`'a'` vs `'a`).

/// One scanned token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`fn`, `shard`, `unwrap`, …).
    Ident(String),
    /// A single punctuation character (`.`, `(`, `[`, `:`, …).
    Punct(char),
    /// A literal (string/char/number); content is intentionally dropped.
    Lit,
}

/// A token plus the 1-based line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// 1-based source line.
    pub line: u32,
    /// The token itself.
    pub tok: Tok,
}

/// Scan output: the token stream plus comment text by line.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All non-comment, non-whitespace tokens in source order.
    pub tokens: Vec<Token>,
    /// `(line, text)` for every comment, in source order. Block comments
    /// are recorded on their *starting* line with inner newlines kept.
    pub comments: Vec<(u32, String)>,
}

impl Token {
    fn ident(&self) -> Option<&str> {
        match &self.tok {
            Tok::Ident(s) => Some(s),
            _ => None,
        }
    }

    /// True if this token is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        self.ident() == Some(name)
    }

    /// True if this token is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.tok == Tok::Punct(c)
    }
}

/// Scan `src` into tokens and comments.
pub fn lex(src: &str) -> Lexed {
    let mut out = Lexed::default();
    let b = src.as_bytes();
    let mut i = 0usize;
    let mut line: u32 = 1;

    // Byte-oriented scan: every multi-byte UTF-8 sequence starts with a
    // byte >= 0x80, which falls through to the Punct arm and is skipped
    // whole below; ASCII structure is all the rules care about.
    while i < b.len() {
        let c = b[i];
        match c {
            b'\n' => {
                line += 1;
                i += 1;
            }
            b' ' | b'\t' | b'\r' => i += 1,
            b'/' if i + 1 < b.len() && b[i + 1] == b'/' => {
                let start = i + 2;
                let mut j = start;
                while j < b.len() && b[j] != b'\n' {
                    j += 1;
                }
                out.comments
                    .push((line, String::from_utf8_lossy(&b[start..j]).into_owned()));
                i = j;
            }
            b'/' if i + 1 < b.len() && b[i + 1] == b'*' => {
                let start_line = line;
                let start = i + 2;
                let mut depth = 1usize;
                let mut j = start;
                while j < b.len() && depth > 0 {
                    if b[j] == b'\n' {
                        line += 1;
                        j += 1;
                    } else if b[j] == b'/' && j + 1 < b.len() && b[j + 1] == b'*' {
                        depth += 1;
                        j += 2;
                    } else if b[j] == b'*' && j + 1 < b.len() && b[j + 1] == b'/' {
                        depth -= 1;
                        j += 2;
                    } else {
                        j += 1;
                    }
                }
                let end = j.saturating_sub(2).max(start);
                out.comments.push((
                    start_line,
                    String::from_utf8_lossy(&b[start..end]).into_owned(),
                ));
                i = j;
            }
            b'"' => {
                let l = line;
                i = skip_string(b, i, &mut line);
                out.tokens.push(Token {
                    line: l,
                    tok: Tok::Lit,
                });
            }
            b'r' | b'b' if starts_raw_or_byte_string(b, i) => {
                let l = line;
                i = skip_prefixed_string(b, i, &mut line);
                out.tokens.push(Token {
                    line: l,
                    tok: Tok::Lit,
                });
            }
            b'\'' => {
                // Lifetime (`'a`, `'static`) vs char literal (`'a'`,
                // `'\n'`): a lifetime is `'` + ident NOT followed by a
                // closing quote.
                let is_lifetime =
                    i + 1 < b.len() && (b[i + 1].is_ascii_alphabetic() || b[i + 1] == b'_') && {
                        let mut j = i + 2;
                        while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                            j += 1;
                        }
                        j >= b.len() || b[j] != b'\''
                    };
                if is_lifetime {
                    let mut j = i + 1;
                    while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                        j += 1;
                    }
                    // Lifetimes are invisible to the rules; skip whole.
                    i = j;
                } else {
                    let l = line;
                    i = skip_char_literal(b, i);
                    out.tokens.push(Token {
                        line: l,
                        tok: Tok::Lit,
                    });
                }
            }
            _ if c.is_ascii_alphabetic() || c == b'_' => {
                let start = i;
                let mut j = i;
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                let word = std::str::from_utf8(&b[start..j]).unwrap_or("").to_owned();
                out.tokens.push(Token {
                    line,
                    tok: Tok::Ident(word),
                });
                i = j;
            }
            _ if c.is_ascii_digit() => {
                let mut j = i;
                // Loose number scan (covers hex/underscores/suffixes);
                // exact numeric value is irrelevant to every rule.
                while j < b.len() && (b[j].is_ascii_alphanumeric() || b[j] == b'_') {
                    j += 1;
                }
                out.tokens.push(Token {
                    line,
                    tok: Tok::Lit,
                });
                i = j;
            }
            _ => {
                if c < 0x80 {
                    out.tokens.push(Token {
                        line,
                        tok: Tok::Punct(c as char),
                    });
                }
                i += 1;
            }
        }
    }
    out
}

fn starts_raw_or_byte_string(b: &[u8], i: usize) -> bool {
    // r"…", r#"…"#, b"…", br"…", br#"…"#
    let rest = &b[i..];
    let after_b = if rest.first() == Some(&b'b') { 1 } else { 0 };
    let after_r = if rest.get(after_b) == Some(&b'r') {
        after_b + 1
    } else {
        // b"…" (no r): only valid when we started on `b`.
        if after_b == 1 && rest.get(1) == Some(&b'"') {
            return true;
        }
        return false;
    };
    let mut j = after_r;
    while rest.get(j) == Some(&b'#') {
        j += 1;
    }
    rest.get(j) == Some(&b'"')
}

fn skip_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    // start points at the opening quote.
    let mut i = start + 1;
    while i < b.len() {
        match b[i] {
            b'\\' => i += 2,
            b'\n' => {
                *line += 1;
                i += 1;
            }
            b'"' => return i + 1,
            _ => i += 1,
        }
    }
    i
}

fn skip_prefixed_string(b: &[u8], start: usize, line: &mut u32) -> usize {
    let mut i = start;
    if b.get(i) == Some(&b'b') {
        i += 1;
    }
    let raw = b.get(i) == Some(&b'r');
    if raw {
        i += 1;
    }
    let mut hashes = 0usize;
    while b.get(i) == Some(&b'#') {
        hashes += 1;
        i += 1;
    }
    debug_assert_eq!(b.get(i), Some(&b'"'));
    i += 1;
    if !raw {
        // b"…": escapes apply.
        while i < b.len() {
            match b[i] {
                b'\\' => i += 2,
                b'\n' => {
                    *line += 1;
                    i += 1;
                }
                b'"' => return i + 1,
                _ => i += 1,
            }
        }
        return i;
    }
    // Raw: ends at `"` followed by the same number of `#`.
    while i < b.len() {
        if b[i] == b'\n' {
            *line += 1;
            i += 1;
        } else if b[i] == b'"'
            && b[i + 1..]
                .iter()
                .take(hashes)
                .filter(|c| **c == b'#')
                .count()
                == hashes
        {
            return i + 1 + hashes;
        } else {
            i += 1;
        }
    }
    i
}

fn skip_char_literal(b: &[u8], start: usize) -> usize {
    // start points at the opening quote of a char literal.
    let mut i = start + 1;
    if i < b.len() && b[i] == b'\\' {
        i += 2;
        // \u{…} escapes.
        while i < b.len() && b[i] != b'\'' {
            i += 1;
        }
        return (i + 1).min(b.len());
    }
    while i < b.len() && b[i] != b'\'' {
        i += 1;
    }
    (i + 1).min(b.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn strings_and_comments_are_opaque() {
        let src = r##"
            // std::sync::Mutex in a comment
            /* block std::sync::RwLock */
            let s = "std::sync::Mutex";
            let r = r#"std::sync::RwLock"#;
            let real = foo;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"Mutex".to_owned()));
        assert!(ids.contains(&"foo".to_owned()));
        let lx = lex(src);
        assert_eq!(lx.comments.len(), 2);
        assert!(lx.comments[0].1.contains("Mutex"));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let src = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let ids = idents(src);
        // `a` from the lifetime is skipped entirely; `x` the parameter
        // remains; the char literal 'x' is a Lit.
        assert_eq!(
            ids,
            vec!["fn", "f", "x", "str", "char"]
                .into_iter()
                .map(String::from)
                .collect::<Vec<_>>()
        );
    }

    #[test]
    fn line_numbers_track_multiline_constructs() {
        let src = "let a = \"two\nlines\";\nlet b = 1;";
        let lx = lex(src);
        let b_tok = lx.tokens.iter().find(|t| t.is_ident("b")).expect("b token");
        assert_eq!(b_tok.line, 3);
    }

    #[test]
    fn nested_block_comments() {
        let src = "/* outer /* inner */ still comment */ let x = 1;";
        let ids = idents(src);
        assert_eq!(ids, vec!["let".to_owned(), "x".to_owned()]);
    }

    #[test]
    fn unwrap_variants_tokenize_distinctly() {
        let ids = idents("a.unwrap(); b.unwrap_or(c); d.expect(\"m\");");
        assert!(ids.contains(&"unwrap".to_owned()));
        assert!(ids.contains(&"unwrap_or".to_owned()));
        assert!(ids.contains(&"expect".to_owned()));
    }
}

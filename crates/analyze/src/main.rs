//! CLI: `cargo run -p quaestor-analyze -- lint [--root <path>]`.
//!
//! Prints one diagnostic per line (`file:line: [rule] message`) and
//! exits nonzero if any un-allowed diagnostic is found, so CI can gate
//! on it directly.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut cmd = None;
    let mut root = PathBuf::from(".");
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "lint" if cmd.is_none() => cmd = Some("lint"),
            "--root" => {
                i += 1;
                match args.get(i) {
                    Some(p) => root = PathBuf::from(p),
                    None => {
                        eprintln!("--root requires a path");
                        return ExitCode::from(2);
                    }
                }
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: quaestor-analyze lint [--root <workspace>]");
                return ExitCode::from(2);
            }
        }
        i += 1;
    }
    if cmd != Some("lint") {
        eprintln!("usage: quaestor-analyze lint [--root <workspace>]");
        return ExitCode::from(2);
    }

    match quaestor_analyze::lint_workspace(&root) {
        Ok(diags) if diags.is_empty() => {
            eprintln!("analyze: clean");
            ExitCode::SUCCESS
        }
        Ok(diags) => {
            for d in &diags {
                println!("{d}");
            }
            eprintln!("analyze: {} diagnostic(s)", diags.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("analyze: error: {e}");
            ExitCode::from(2)
        }
    }
}

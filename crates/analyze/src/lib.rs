//! quaestor-analyze: the workspace invariant linter.
//!
//! Machine-checks the concurrency and robustness invariants that earlier
//! PRs enforced by comment and one-off audit:
//!
//! * `std-sync-lock` — no `std::sync::Mutex`/`RwLock` outside `vendor/`
//!   (they would be invisible to the `lockcheck` runtime detector).
//! * `unwrap-in-io-crate` — no naked `.unwrap()`/`.expect(` in non-test
//!   code of the I/O-facing crates.
//! * `lock-order` — within a function body, no acquisition of a
//!   higher-ranked lock before a lower-ranked one, per the declared
//!   hierarchy in `analyze/lock-order.toml`.
//! * `depth-cap` — `get_*`/`decode_*` pub fns in the codec files must
//!   evidence a recursion-depth cap.
//! * `bad-allow` — every suppression needs a reason.
//!
//! Suppression: `// analyze: allow(<rule>) <reason>` on the offending
//! line or the line above. See `crates/analyze/DESIGN.md` for the full
//! rule rationale and the lock-rank table.

pub mod config;
pub mod lexer;
pub mod rules;

use std::path::{Path, PathBuf};

pub use config::Config;
pub use rules::{Diagnostic, FileInfo};

/// Lint every non-vendored crate under `root` using the config at
/// `root/analyze/lock-order.toml`. Returns diagnostics sorted by path
/// and line.
pub fn lint_workspace(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let cfg = Config::load(&root.join("analyze").join("lock-order.toml"))?;
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let entries = std::fs::read_dir(&crates_dir)
        .map_err(|e| format!("cannot read {}: {e}", crates_dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        if path.is_dir() {
            collect_rs_files(&path, &mut files)?;
        }
    }
    files.sort();

    let mut diags = Vec::new();
    for file in files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(&file)
            .to_string_lossy()
            .replace('\\', "/");
        let crate_name = rel
            .strip_prefix("crates/")
            .and_then(|r| r.split('/').next())
            .unwrap_or("")
            .to_owned();
        let in_test_tree = ["/tests/", "/benches/", "/examples/"]
            .iter()
            .any(|d| rel.contains(d));
        let src = std::fs::read_to_string(&file)
            .map_err(|e| format!("cannot read {}: {e}", file.display()))?;
        let info = FileInfo {
            rel_path: &rel,
            crate_name: &crate_name,
            in_test_tree,
        };
        diags.extend(rules::lint_source(&info, &src, &cfg));
    }
    diags.sort_by(|a, b| (a.file.as_str(), a.line, a.rule).cmp(&(b.file.as_str(), b.line, b.rule)));
    Ok(diags)
}

fn collect_rs_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures/` holds deliberately-bad linter test inputs;
            // `target/` is build output.
            if name == "fixtures" || name == "target" {
                continue;
            }
            collect_rs_files(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

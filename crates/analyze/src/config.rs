//! Parser for `analyze/lock-order.toml`.
//!
//! A hand-rolled reader for the small TOML subset the config uses
//! (no crates.io access, so no `toml` crate): `[section]` tables,
//! `[[lock]]` array-of-tables entries, and `key = value` pairs where a
//! value is an integer, a `"string"`, or an array of strings. Unknown
//! keys are rejected so typos fail loudly instead of silently relaxing
//! a rule.

use std::path::Path;

/// One declared lock class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockSpec {
    /// Hierarchy name, e.g. `store.shard` — must match the name passed
    /// to `Mutex::with_rank` at the construction site.
    pub name: String,
    /// Rank; acquisitions must be strictly increasing per thread.
    pub rank: u32,
    /// Identifiers whose `.read(` / `.write(` / `.lock(` token sequences
    /// count as acquiring this lock in the static check.
    pub idents: Vec<String>,
}

/// The full linter configuration.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Config {
    /// Declared lock hierarchy, sorted by rank.
    pub locks: Vec<LockSpec>,
    /// Crate directory names (under `crates/`) whose non-test code may
    /// not use naked `.unwrap()` / `.expect(`.
    pub io_crates: Vec<String>,
    /// Workspace-relative paths of codec files whose `get_*`/`decode_*`
    /// pub fns must evidence a recursion-depth cap.
    pub depth_cap_files: Vec<String>,
    /// Workspace-relative paths of event-loop files whose non-test code
    /// may not block: no `thread::sleep`, no blocking channel/socket
    /// calls, no lock ranked below [`Config::loop_lock_rank_floor`].
    pub loop_files: Vec<String>,
    /// Minimum rank a lock acquired inside a loop file may have. Locks
    /// below the floor belong to wider subsystems that may hold them
    /// across blocking work; the loop's own leaf locks sit at or above.
    pub loop_lock_rank_floor: u32,
}

impl Config {
    /// Look up a lock spec by matcher identifier.
    pub fn lock_for_ident(&self, ident: &str) -> Option<&LockSpec> {
        self.locks
            .iter()
            .find(|l| l.idents.iter().any(|i| i == ident))
    }

    /// Load from a file.
    pub fn load(path: &Path) -> Result<Config, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        parse(&text)
    }
}

/// Parse the configuration text.
pub fn parse(text: &str) -> Result<Config, String> {
    #[derive(PartialEq)]
    enum Section {
        None,
        Rules,
        Lock,
    }
    let mut cfg = Config::default();
    let mut section = Section::None;

    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if line == "[[lock]]" {
            cfg.locks.push(LockSpec {
                name: String::new(),
                rank: 0,
                idents: Vec::new(),
            });
            section = Section::Lock;
            continue;
        }
        if line == "[rules]" {
            section = Section::Rules;
            continue;
        }
        if line.starts_with('[') {
            return Err(format!("line {lineno}: unknown section {line}"));
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected key = value, got {line:?}"))?;
        let (key, value) = (key.trim(), value.trim());
        match section {
            Section::None => return Err(format!("line {lineno}: key {key:?} outside any section")),
            Section::Rules => match key {
                "io_crates" => cfg.io_crates = parse_string_array(value, lineno)?,
                "depth_cap_files" => cfg.depth_cap_files = parse_string_array(value, lineno)?,
                "loop_files" => cfg.loop_files = parse_string_array(value, lineno)?,
                "loop_lock_rank_floor" => {
                    cfg.loop_lock_rank_floor = value
                        .parse()
                        .map_err(|_| format!("line {lineno}: bad rank floor {value:?}"))?
                }
                _ => return Err(format!("line {lineno}: unknown [rules] key {key:?}")),
            },
            Section::Lock => {
                let lock = cfg.locks.last_mut().expect("entered via [[lock]]");
                match key {
                    "name" => lock.name = parse_string(value, lineno)?,
                    "rank" => {
                        lock.rank = value
                            .parse()
                            .map_err(|_| format!("line {lineno}: bad rank {value:?}"))?
                    }
                    "idents" => lock.idents = parse_string_array(value, lineno)?,
                    _ => return Err(format!("line {lineno}: unknown [[lock]] key {key:?}")),
                }
            }
        }
    }

    for lock in &cfg.locks {
        if lock.name.is_empty() {
            return Err("a [[lock]] entry is missing `name`".into());
        }
    }
    let mut seen = std::collections::BTreeMap::new();
    for lock in &cfg.locks {
        if let Some(prev) = seen.insert(lock.rank, &lock.name) {
            return Err(format!(
                "locks {:?} and {:?} share rank {} — ranks must be unique",
                prev, lock.name, lock.rank
            ));
        }
    }
    cfg.locks.sort_by_key(|l| l.rank);
    Ok(cfg)
}

fn strip_comment(line: &str) -> &str {
    // Good enough for this config: `#` never appears inside the quoted
    // strings we use (names and paths).
    match line.find('#') {
        Some(i) => &line[..i],
        None => line,
    }
}

fn parse_string(value: &str, lineno: usize) -> Result<String, String> {
    let v = value.trim();
    if v.len() >= 2 && v.starts_with('"') && v.ends_with('"') {
        Ok(v[1..v.len() - 1].to_owned())
    } else {
        Err(format!("line {lineno}: expected \"string\", got {v:?}"))
    }
}

fn parse_string_array(value: &str, lineno: usize) -> Result<Vec<String>, String> {
    let v = value.trim();
    let inner = v
        .strip_prefix('[')
        .and_then(|r| r.strip_suffix(']'))
        .ok_or_else(|| format!("line {lineno}: expected [\"a\", \"b\"], got {v:?}"))?;
    let mut out = Vec::new();
    for part in inner.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        out.push(parse_string(part, lineno)?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_config() {
        let cfg = parse(
            r#"
            # comment
            [rules]
            io_crates = ["net", "client"]
            depth_cap_files = ["crates/net/src/codec.rs"]
            loop_files = ["crates/net/src/evloop.rs"]
            loop_lock_rank_floor = 67

            [[lock]]
            name = "store.shard" # trailing comment
            rank = 20
            idents = ["shard", "shards"]

            [[lock]]
            name = "store.index"
            rank = 30
            idents = ["indexes"]
            "#,
        )
        .expect("parse");
        assert_eq!(cfg.io_crates, vec!["net", "client"]);
        assert_eq!(cfg.loop_files, vec!["crates/net/src/evloop.rs"]);
        assert_eq!(cfg.loop_lock_rank_floor, 67);
        assert_eq!(cfg.locks.len(), 2);
        assert_eq!(cfg.lock_for_ident("shards").map(|l| l.rank), Some(20));
        assert_eq!(
            cfg.lock_for_ident("indexes").map(|l| l.name.as_str()),
            Some("store.index")
        );
        assert!(cfg.lock_for_ident("nope").is_none());
    }

    #[test]
    fn rejects_unknown_keys_and_duplicate_ranks() {
        assert!(parse("[rules]\nbogus = [\"x\"]").is_err());
        assert!(parse("[bogus]\n").is_err());
        assert!(parse("x = 1\n").is_err());
        let dup = r#"
            [[lock]]
            name = "a"
            rank = 5
            idents = ["a"]
            [[lock]]
            name = "b"
            rank = 5
            idents = ["b"]
        "#;
        assert!(parse(dup).unwrap_err().contains("share rank"));
    }
}

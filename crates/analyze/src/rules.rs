//! The lint rules, over the token stream from [`crate::lexer`].
//!
//! Every rule emits [`Diagnostic`]s with a stable rule name; any
//! diagnostic (except `bad-allow` itself) can be suppressed with a
//! comment on the same line or the line directly above:
//!
//! ```text
//! // analyze: allow(<rule>) <one-line reason>
//! ```
//!
//! A reason is mandatory — an allow without one is itself a diagnostic
//! (`bad-allow`), so suppressions stay auditable.

use crate::config::Config;
use crate::lexer::{lex, Lexed, Tok, Token};

/// Stable names of all rules, for docs and allow validation.
pub const RULE_NAMES: &[&str] = &[
    "std-sync-lock",
    "unwrap-in-io-crate",
    "lock-order",
    "depth-cap",
    "blocking-in-loop",
    "bad-allow",
];

/// One linter finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: u32,
    /// Stable rule name (one of [`RULE_NAMES`]).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl std::fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

/// Where a source file sits in the workspace (drives rule applicability).
#[derive(Debug, Clone)]
pub struct FileInfo<'a> {
    /// Path relative to the workspace root, `/`-separated.
    pub rel_path: &'a str,
    /// Crate directory name under `crates/` (e.g. `net`).
    pub crate_name: &'a str,
    /// True for integration tests / benches / examples — code that never
    /// ships, so the unwrap audit does not apply.
    pub in_test_tree: bool,
}

struct Allow {
    line: u32,
    rule: String,
    has_reason: bool,
}

/// Lint one source file.
pub fn lint_source(info: &FileInfo<'_>, src: &str, cfg: &Config) -> Vec<Diagnostic> {
    let lexed = lex(src);
    let allows = collect_allows(&lexed);
    let test_regions = test_regions(&lexed.tokens);
    let mut diags = Vec::new();

    // bad-allow: reason-less or unknown-rule allows are findings
    // themselves and can never be suppressed.
    for a in &allows {
        if !RULE_NAMES.contains(&a.rule.as_str()) {
            diags.push(Diagnostic {
                file: info.rel_path.to_owned(),
                line: a.line,
                rule: "bad-allow",
                message: format!("allow names unknown rule `{}`", a.rule),
            });
        } else if !a.has_reason {
            diags.push(Diagnostic {
                file: info.rel_path.to_owned(),
                line: a.line,
                rule: "bad-allow",
                message: format!(
                    "allow({}) without a reason — add a one-line justification",
                    a.rule
                ),
            });
        }
    }

    std_sync_lock(info, &lexed, &mut diags);
    if cfg.io_crates.iter().any(|c| c == info.crate_name) && !info.in_test_tree {
        unwrap_in_io_crate(info, &lexed, &test_regions, &mut diags);
    }
    lock_order(info, &lexed, cfg, &mut diags);
    if cfg.depth_cap_files.iter().any(|f| f == info.rel_path) {
        depth_cap(info, &lexed, &mut diags);
    }
    if cfg.loop_files.iter().any(|f| f == info.rel_path) {
        blocking_in_loop(info, &lexed, &test_regions, cfg, &mut diags);
    }

    diags.retain(|d| d.rule == "bad-allow" || !is_allowed(&allows, d));
    diags.sort_by(|a, b| (a.line, a.rule).cmp(&(b.line, b.rule)));
    diags
}

fn is_allowed(allows: &[Allow], d: &Diagnostic) -> bool {
    allows
        .iter()
        .any(|a| a.rule == d.rule && a.has_reason && (a.line == d.line || a.line + 1 == d.line))
}

fn collect_allows(lexed: &Lexed) -> Vec<Allow> {
    let mut out = Vec::new();
    for (line, text) in &lexed.comments {
        let Some(rest) = text.trim().strip_prefix("analyze: allow(") else {
            continue;
        };
        let Some(close) = rest.find(')') else {
            out.push(Allow {
                line: *line,
                rule: rest.trim().to_owned(),
                has_reason: false,
            });
            continue;
        };
        let rule = rest[..close].trim().to_owned();
        let reason = rest[close + 1..].trim();
        out.push(Allow {
            line: *line,
            rule,
            has_reason: !reason.is_empty(),
        });
    }
    out
}

/// Line ranges covered by `#[cfg(test)]`-gated items.
fn test_regions(toks: &[Token]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        // `#` `[` cfg `(` … test … `)` `]`
        if toks[i].is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
            && toks.get(i + 2).is_some_and(|t| t.is_ident("cfg"))
            && toks.get(i + 3).is_some_and(|t| t.is_punct('('))
        {
            let attr_end = match match_balanced(toks, i + 3, '(', ')') {
                Some(e) => e,
                None => break,
            };
            let mentions_test = toks[i + 3..=attr_end].iter().any(|t| t.is_ident("test"));
            if mentions_test {
                // Find the gated item's body: the next `{` before any `;`
                // at this nesting (a `;` first means a braceless item).
                let mut j = attr_end + 1;
                // Skip the closing `]` of the attribute.
                while j < toks.len() && toks[j].is_punct(']') {
                    j += 1;
                }
                let mut body_start = None;
                while j < toks.len() {
                    if toks[j].is_punct('{') {
                        body_start = Some(j);
                        break;
                    }
                    if toks[j].is_punct(';') {
                        break;
                    }
                    j += 1;
                }
                if let Some(open) = body_start {
                    if let Some(close) = match_balanced(toks, open, '{', '}') {
                        regions.push((toks[open].line, toks[close].line));
                        i = close + 1;
                        continue;
                    }
                }
            }
            i = attr_end + 1;
            continue;
        }
        i += 1;
    }
    regions
}

fn in_regions(regions: &[(u32, u32)], line: u32) -> bool {
    regions.iter().any(|(a, b)| (*a..=*b).contains(&line))
}

/// Index of the token closing the group opened at `open_idx`.
fn match_balanced(toks: &[Token], open_idx: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open_idx) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(j);
            }
        }
    }
    None
}

/// Rule `std-sync-lock`: no `std::sync::Mutex` / `RwLock` outside
/// `vendor/` — everything must go through the instrumented `parking_lot`
/// so the `lockcheck` detector sees it.
fn std_sync_lock(info: &FileInfo<'_>, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    let mut flag = |line: u32, which: &str| {
        diags.push(Diagnostic {
            file: info.rel_path.to_owned(),
            line,
            rule: "std-sync-lock",
            message: format!(
                "std::sync::{which} bypasses the lockcheck detector — use the \
                 workspace `parking_lot` (vendored, instrumented) instead"
            ),
        });
    };
    for i in 0..toks.len() {
        if !(toks[i].is_ident("std")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("sync"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(':')))
        {
            continue;
        }
        match toks.get(i + 6) {
            Some(t) if t.is_ident("Mutex") || t.is_ident("RwLock") => {
                let which = match &t.tok {
                    Tok::Ident(s) => s.clone(),
                    _ => unreachable!(),
                };
                flag(t.line, &which);
            }
            // `use std::sync::{…, Mutex, …}`
            Some(t) if t.is_punct('{') => {
                if let Some(end) = match_balanced(toks, i + 6, '{', '}') {
                    for inner in &toks[i + 6..=end] {
                        if inner.is_ident("Mutex") || inner.is_ident("RwLock") {
                            let which = match &inner.tok {
                                Tok::Ident(s) => s.clone(),
                                _ => unreachable!(),
                            };
                            flag(inner.line, &which);
                        }
                    }
                }
            }
            _ => {}
        }
    }
}

/// Rule `unwrap-in-io-crate`: no naked `.unwrap()` / `.expect(` in
/// non-test code of I/O-facing crates — convert to a typed error or
/// annotate why the panic is impossible/intended.
fn unwrap_in_io_crate(
    info: &FileInfo<'_>,
    lexed: &Lexed,
    test_regions: &[(u32, u32)],
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    for i in 0..toks.len() {
        if !toks[i].is_punct('.') {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1) else {
            continue;
        };
        let is_target = name_tok.is_ident("unwrap") || name_tok.is_ident("expect");
        if !is_target || !toks.get(i + 2).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        if in_regions(test_regions, name_tok.line) {
            continue;
        }
        let which = match &name_tok.tok {
            Tok::Ident(s) => s.clone(),
            _ => unreachable!(),
        };
        diags.push(Diagnostic {
            file: info.rel_path.to_owned(),
            line: name_tok.line,
            rule: "unwrap-in-io-crate",
            message: format!(
                ".{which}() in I/O-facing crate `{}` — return a typed error, or \
                 annotate why this cannot panic",
                info.crate_name
            ),
        });
    }
}

/// One matched lock acquisition inside a function body.
struct Acq {
    lock_name: String,
    rank: u32,
    line: u32,
}

/// Rule `lock-order`: within a function body, a token-level acquisition
/// of a higher-ranked lock must not precede one of a lower-ranked lock
/// (per `analyze/lock-order.toml`).
fn lock_order(info: &FileInfo<'_>, lexed: &Lexed, cfg: &Config, diags: &mut Vec<Diagnostic>) {
    if cfg.locks.is_empty() {
        return;
    }
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("fn") {
            i += 1;
            continue;
        }
        // Find the body `{`, giving up at `;` (trait method signature).
        let mut j = i + 1;
        let mut open = None;
        while j < toks.len() {
            if toks[j].is_punct('{') {
                open = Some(j);
                break;
            }
            if toks[j].is_punct(';') {
                break;
            }
            j += 1;
        }
        let Some(open) = open else {
            i = j + 1;
            continue;
        };
        let Some(close) = match_balanced(toks, open, '{', '}') else {
            break;
        };
        check_body(info, &toks[open..=close], cfg, diags);
        // Nested fns/closures inside the body are covered by this same
        // scan (acquisition order is per *thread*, and a closure runs on
        // whatever thread calls it — the conservative flat view is fine).
        i = close + 1;
    }
}

fn check_body(info: &FileInfo<'_>, body: &[Token], cfg: &Config, diags: &mut Vec<Diagnostic>) {
    let mut acquisitions: Vec<Acq> = Vec::new();
    let mut i = 0;
    while i < body.len() {
        let Tok::Ident(word) = &body[i].tok else {
            i += 1;
            continue;
        };
        let Some(spec) = cfg.lock_for_ident(word) else {
            i += 1;
            continue;
        };
        // Matcher: ident, optionally ONE balanced `[…]` or `(…)` group
        // (`shards[k]`, `self.shard(id)`), then `.read(`/`.write(`/`.lock(`.
        let mut j = i + 1;
        if body.get(j).is_some_and(|t| t.is_punct('[')) {
            match match_balanced(body, j, '[', ']') {
                Some(e) => j = e + 1,
                None => break,
            }
        } else if body.get(j).is_some_and(|t| t.is_punct('(')) {
            match match_balanced(body, j, '(', ')') {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        let is_acquire = body.get(j).is_some_and(|t| t.is_punct('.'))
            && body
                .get(j + 1)
                .is_some_and(|t| t.is_ident("read") || t.is_ident("write") || t.is_ident("lock"))
            && body.get(j + 2).is_some_and(|t| t.is_punct('('));
        if is_acquire {
            acquisitions.push(Acq {
                lock_name: spec.name.clone(),
                rank: spec.rank,
                line: body[i].line,
            });
            i = j + 3;
        } else {
            i += 1;
        }
    }

    let mut reported: Vec<(String, String)> = Vec::new();
    for (a_idx, later) in acquisitions.iter().enumerate() {
        for earlier in &acquisitions[..a_idx] {
            if earlier.rank > later.rank && earlier.lock_name != later.lock_name {
                let key = (earlier.lock_name.clone(), later.lock_name.clone());
                if reported.contains(&key) {
                    continue;
                }
                reported.push(key);
                diags.push(Diagnostic {
                    file: info.rel_path.to_owned(),
                    line: later.line,
                    rule: "lock-order",
                    message: format!(
                        "`{}` (rank {}) acquired after `{}` (rank {}, line {}) — \
                         declared hierarchy requires strictly increasing ranks",
                        later.lock_name, later.rank, earlier.lock_name, earlier.rank, earlier.line
                    ),
                });
            }
        }
    }
}

/// Rule `depth-cap`: in the configured codec files, every `get_*` /
/// `decode_*` pub fn must evidence a recursion-depth cap: a
/// depth-named identifier, a `deeper` call, or delegation to a `*_at`
/// depth-threading helper.
fn depth_cap(info: &FileInfo<'_>, lexed: &Lexed, diags: &mut Vec<Diagnostic>) {
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if !toks[i].is_ident("pub") {
            i += 1;
            continue;
        }
        let mut j = i + 1;
        // `pub(crate)` / `pub(super)`.
        if toks.get(j).is_some_and(|t| t.is_punct('(')) {
            match match_balanced(toks, j, '(', ')') {
                Some(e) => j = e + 1,
                None => break,
            }
        }
        if !toks.get(j).is_some_and(|t| t.is_ident("fn")) {
            i += 1;
            continue;
        }
        let Some(name_tok) = toks.get(j + 1) else {
            break;
        };
        let Tok::Ident(name) = &name_tok.tok else {
            i = j + 1;
            continue;
        };
        if !(name.starts_with("get_") || name.starts_with("decode_")) {
            i = j + 1;
            continue;
        }
        // Body.
        let mut k = j + 2;
        let mut open = None;
        while k < toks.len() {
            if toks[k].is_punct('{') {
                open = Some(k);
                break;
            }
            if toks[k].is_punct(';') {
                break;
            }
            k += 1;
        }
        let Some(open) = open else {
            i = k + 1;
            continue;
        };
        let Some(close) = match_balanced(toks, open, '{', '}') else {
            break;
        };
        let body = &toks[open..=close];
        let capped = body.iter().any(|t| match &t.tok {
            Tok::Ident(w) => {
                w == "deeper" || w.to_ascii_lowercase().contains("depth") || w.ends_with("_at")
            }
            _ => false,
        });
        if !capped {
            diags.push(Diagnostic {
                file: info.rel_path.to_owned(),
                line: name_tok.line,
                rule: "depth-cap",
                message: format!(
                    "pub fn `{name}` decodes untrusted bytes with no visible \
                     recursion-depth cap (no depth ident, `deeper` call, or \
                     `*_at` delegation)"
                ),
            });
        }
        i = close + 1;
    }
}

/// Method calls that park the calling thread until a peer acts — fatal
/// on an event-loop thread, where one parked handler stalls every
/// connection on the shard. The nonblocking forms (`try_recv`, plain
/// `read`/`write` on a nonblocking fd) are the sanctioned spellings.
const LOOP_BLOCKING_CALLS: &[&str] = &[
    "recv",
    "recv_timeout",
    "write_all",
    "read_exact",
    "read_to_end",
    "read_to_string",
    "join",
];

/// Rule `blocking-in-loop`: non-test code in the configured event-loop
/// files may not park its thread — no `thread::sleep`, no blocking
/// channel/socket calls, and no acquisition of a lock ranked below the
/// configured floor (a lower-ranked lock may be held across blocking
/// work by wider subsystems; the loop's own leaf locks sit at or above
/// it).
fn blocking_in_loop(
    info: &FileInfo<'_>,
    lexed: &Lexed,
    test_regions: &[(u32, u32)],
    cfg: &Config,
    diags: &mut Vec<Diagnostic>,
) {
    let toks = &lexed.tokens;
    let mut i = 0;
    while i < toks.len() {
        if in_regions(test_regions, toks[i].line) {
            i += 1;
            continue;
        }
        // `thread :: sleep` (matches `std::thread::sleep` too).
        if toks[i].is_ident("thread")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("sleep"))
        {
            diags.push(Diagnostic {
                file: info.rel_path.to_owned(),
                line: toks[i].line,
                rule: "blocking-in-loop",
                message: "`thread::sleep` on an event-loop thread stalls every \
                          connection on the shard — use a poller wait timeout instead"
                    .into(),
            });
            i += 4;
            continue;
        }
        // `.recv(` / `.write_all(` / … blocking method calls.
        if toks[i].is_punct('.') {
            if let Some(name_tok) = toks.get(i + 1) {
                if let Tok::Ident(name) = &name_tok.tok {
                    if LOOP_BLOCKING_CALLS.iter().any(|c| c == name)
                        && toks.get(i + 2).is_some_and(|t| t.is_punct('('))
                    {
                        diags.push(Diagnostic {
                            file: info.rel_path.to_owned(),
                            line: name_tok.line,
                            rule: "blocking-in-loop",
                            message: format!(
                                ".{name}() blocks the event-loop thread — use the \
                                 nonblocking form (`try_recv`, plain `read`/`write` on \
                                 the nonblocking fd) and rely on readiness re-reporting"
                            ),
                        });
                        i += 3;
                        continue;
                    }
                }
            }
        }
        // Lock acquisitions below the rank floor, using the same
        // ident-based matcher as `lock-order`.
        if let Tok::Ident(word) = &toks[i].tok {
            if let Some(spec) = cfg.lock_for_ident(word) {
                let mut j = i + 1;
                if toks.get(j).is_some_and(|t| t.is_punct('[')) {
                    match match_balanced(toks, j, '[', ']') {
                        Some(e) => j = e + 1,
                        None => break,
                    }
                } else if toks.get(j).is_some_and(|t| t.is_punct('(')) {
                    match match_balanced(toks, j, '(', ')') {
                        Some(e) => j = e + 1,
                        None => break,
                    }
                }
                let is_acquire = toks.get(j).is_some_and(|t| t.is_punct('.'))
                    && toks.get(j + 1).is_some_and(|t| {
                        t.is_ident("read") || t.is_ident("write") || t.is_ident("lock")
                    })
                    && toks.get(j + 2).is_some_and(|t| t.is_punct('('));
                if is_acquire {
                    if spec.rank < cfg.loop_lock_rank_floor {
                        diags.push(Diagnostic {
                            file: info.rel_path.to_owned(),
                            line: toks[i].line,
                            rule: "blocking-in-loop",
                            message: format!(
                                "lock `{}` (rank {}) acquired on an event-loop thread — \
                                 loop files may only take their own leaf locks \
                                 (rank ≥ {}); lower-ranked locks can be held across \
                                 blocking work by other subsystems",
                                spec.name, spec.rank, cfg.loop_lock_rank_floor
                            ),
                        });
                    }
                    i = j + 3;
                    continue;
                }
            }
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn info() -> FileInfo<'static> {
        FileInfo {
            rel_path: "crates/net/src/x.rs",
            crate_name: "net",
            in_test_tree: false,
        }
    }

    fn cfg() -> Config {
        crate::config::parse(
            r#"
            [rules]
            io_crates = ["net"]
            depth_cap_files = ["crates/net/src/x.rs"]
            [[lock]]
            name = "store.shard"
            rank = 20
            idents = ["shard", "shards"]
            [[lock]]
            name = "store.index"
            rank = 30
            idents = ["indexes"]
            "#,
        )
        .expect("test config")
    }

    #[test]
    fn flags_std_sync_and_use_groups() {
        let src = "use std::sync::Mutex;\nuse std::sync::{Arc, RwLock};\nuse std::sync::atomic::AtomicU64;";
        let d = lint_source(&info(), src, &cfg());
        let rules: Vec<_> = d.iter().map(|d| (d.rule, d.line)).collect();
        assert_eq!(rules, vec![("std-sync-lock", 1), ("std-sync-lock", 2)]);
    }

    #[test]
    fn unwrap_flagged_outside_tests_only() {
        let src = "fn f() { x.unwrap(); y.unwrap_or(z); }\n#[cfg(test)]\nmod tests { fn g() { x.unwrap(); } }";
        let d = lint_source(&info(), src, &cfg());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "unwrap-in-io-crate");
        assert_eq!(d[0].line, 1);
    }

    #[test]
    fn allow_with_reason_suppresses_and_without_reports() {
        let src = "fn f() {\n    // analyze: allow(unwrap-in-io-crate) length checked above\n    x.unwrap();\n    // analyze: allow(unwrap-in-io-crate)\n    y.unwrap();\n}";
        let d = lint_source(&info(), src, &cfg());
        let rules: Vec<_> = d.iter().map(|d| (d.rule, d.line)).collect();
        // Line 3 suppressed; line 4's allow has no reason (bad-allow) and
        // does not suppress line 5.
        assert!(rules.contains(&("bad-allow", 4)));
        assert!(rules.contains(&("unwrap-in-io-crate", 5)));
        assert!(!rules.iter().any(|(_, l)| *l == 3));
    }

    #[test]
    fn lock_order_flags_descending_pair() {
        let src = "fn bad(&self) {\n    let i = self.indexes.write();\n    let s = self.shard(id).write();\n}";
        let d = lint_source(&info(), src, &cfg());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "lock-order");
        assert_eq!(d[0].line, 3);
        assert!(d[0].message.contains("store.shard"));
        assert!(d[0].message.contains("store.index"));
        assert!(d[0].message.contains("line 2"));
    }

    #[test]
    fn lock_order_accepts_documented_order_and_same_class() {
        // shard → index is the declared order; shards.iter() is not an
        // acquisition token; two same-class acquisitions are exempt.
        let src = "fn good(&self) {\n    let s = self.shard(id).write();\n    let i = self.indexes.write();\n}\nfn sweeps(&self) {\n    let all: Vec<_> = self.shards.iter().map(|s| s.write()).collect();\n    let a = self.shards[0].read();\n    let b = self.shards[1].read();\n}";
        let d = lint_source(&info(), src, &cfg());
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    fn loop_info() -> FileInfo<'static> {
        FileInfo {
            rel_path: "crates/net/src/evloop.rs",
            crate_name: "net",
            in_test_tree: false,
        }
    }

    fn loop_cfg() -> Config {
        crate::config::parse(
            r#"
            [rules]
            loop_files = ["crates/net/src/evloop.rs"]
            loop_lock_rank_floor = 67
            [[lock]]
            name = "kv.pubsub.channels"
            rank = 60
            idents = ["channels"]
            [[lock]]
            name = "net.server.shard.inbox"
            rank = 68
            idents = ["inbox"]
            "#,
        )
        .expect("loop test config")
    }

    #[test]
    fn blocking_in_loop_flags_sleep_blocking_calls_and_low_locks() {
        let src = "fn run(&self) {\n    std::thread::sleep(d);\n    let m = rx.recv();\n    s.write_all(&buf);\n    let c = self.channels.read();\n    let t = self.inbox.lock();\n}";
        let d = lint_source(&loop_info(), src, &loop_cfg());
        let hits: Vec<_> = d
            .iter()
            .filter(|d| d.rule == "blocking-in-loop")
            .map(|d| d.line)
            .collect();
        // sleep (2), recv (3), write_all (4), channels rank 60 < 67 (5) —
        // but never the loop's own inbox at rank 68 (6).
        assert_eq!(hits, vec![2, 3, 4, 5], "got: {d:?}");
        assert!(d.iter().any(|d| d.message.contains("kv.pubsub.channels")));
    }

    #[test]
    fn blocking_in_loop_accepts_nonblocking_forms_and_test_code() {
        let src = "fn ok(&self) {\n    let t = self.inbox.lock();\n    while let Some(m) = sub.try_recv() { push(m); }\n    let n = stream.read(&mut buf);\n    let w = stream.write(&buf);\n}\n#[cfg(test)]\nmod tests {\n    fn t() { std::thread::sleep(d); let _ = rx.recv(); }\n}";
        let d = lint_source(&loop_info(), src, &loop_cfg());
        assert!(
            !d.iter().any(|d| d.rule == "blocking-in-loop"),
            "unexpected: {d:?}"
        );
    }

    #[test]
    fn blocking_in_loop_only_applies_to_configured_files() {
        // Same source, but the file is not in loop_files.
        let other = FileInfo {
            rel_path: "crates/net/src/server.rs",
            crate_name: "net",
            in_test_tree: false,
        };
        let src = "fn run(&self) { std::thread::sleep(d); }";
        let d = lint_source(&other, src, &loop_cfg());
        assert!(d.is_empty(), "unexpected: {d:?}");
    }

    #[test]
    fn depth_cap_requires_evidence() {
        let src = "pub fn get_value(r: &mut Reader) -> V { get_value_at(r, 0) }\npub fn decode_naked(r: &mut Reader) -> V { r.next() }\npub fn helper() {}\nfn get_private() {}";
        let d = lint_source(&info(), src, &cfg());
        assert_eq!(d.len(), 1);
        assert_eq!(d[0].rule, "depth-cap");
        assert_eq!(d[0].line, 2);
        assert!(d[0].message.contains("decode_naked"));
    }
}

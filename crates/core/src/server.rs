//! The Quaestor origin server.

use std::sync::Arc;

use parking_lot::RwLock;
use quaestor_bloom::{BloomFilter, PartitionedEbf};
use quaestor_common::{ClockRef, Error, Result, SystemClock, Timestamp};
use quaestor_document::{Document, Update, Value};
use quaestor_durability::{DurabilityConfig, DurabilityEngine, WalRecord};
use quaestor_invalidb::{InvaliDbCluster, Notification};
use quaestor_query::{Query, QueryKey};
use quaestor_store::{Database, IndexKind, WriteEvent};
use quaestor_ttl::{
    ActiveList, AdmissionDecision, CapacityManager, CostModel, QueryState, Representation,
    TtlEstimator, WriteRateSampler,
};
use quaestor_webcache::InvalidationCache;

use crate::config::ServerConfig;
use crate::metrics::{bump, ServerMetrics};
use crate::response::{id_list_body, object_list_body, result_etag, QueryResponse, RecordResponse};

/// The origin server of Figure 3: database service + cache coherence
/// machinery.
///
/// Thread-safe; in a multi-node deployment several `QuaestorServer`s would
/// share the KV-backed EBF and the database — here one instance stands for
/// the server tier and concurrency is exercised by threads.
pub struct QuaestorServer {
    config: ServerConfig,
    db: Arc<Database>,
    ebf: PartitionedEbf,
    estimator: TtlEstimator,
    sampler: WriteRateSampler,
    active: ActiveList,
    capacity: CapacityManager,
    cost: CostModel,
    invalidb: InvaliDbCluster,
    /// Invalidation-based caches (CDN edges / reverse proxies) the server
    /// purges asynchronously.
    cdns: RwLock<Vec<Arc<InvalidationCache>>>,
    /// Per-query change streams clients can subscribe to (§3.2).
    streams: Arc<quaestor_kv::PubSub>,
    /// The write-ahead log + snapshot engine, when this server was opened
    /// from (or bound to) a durability directory. `None` = in-memory.
    durability: Option<Arc<DurabilityEngine>>,
    /// Replica mode: the WAL is fed exclusively by replicated frames from
    /// the primary ([`apply_replicated`](Self::apply_replicated)), so the
    /// server must never append frames of its own — a locally assigned
    /// LSN would collide with the primary's stream and silently shadow a
    /// shipped frame. Flipped off by [`promote`](Self::promote).
    replica: std::sync::atomic::AtomicBool,
    clock: ClockRef,
    metrics: ServerMetrics,
}

impl std::fmt::Debug for QuaestorServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuaestorServer")
            .field("active_queries", &self.active.len())
            .finish_non_exhaustive()
    }
}

impl QuaestorServer {
    /// Build a server over an existing database.
    pub fn new(db: Arc<Database>, config: ServerConfig, clock: ClockRef) -> Arc<QuaestorServer> {
        Arc::new(Self::build(db, config, clock, None))
    }

    fn build(
        db: Arc<Database>,
        config: ServerConfig,
        clock: ClockRef,
        durability: Option<Arc<DurabilityEngine>>,
    ) -> QuaestorServer {
        QuaestorServer {
            ebf: PartitionedEbf::new(config.bloom, clock.clone()),
            estimator: TtlEstimator::new(config.estimator),
            sampler: WriteRateSampler::new(config.sampler_window_ms, config.sampler_max_samples),
            active: ActiveList::new(16),
            capacity: CapacityManager::new(config.max_cached_queries),
            cost: config.cost,
            invalidb: InvaliDbCluster::new(config.invalidb),
            cdns: RwLock::new(Vec::new()),
            streams: quaestor_kv::PubSub::new(),
            durability,
            replica: std::sync::atomic::AtomicBool::new(false),
            clock,
            metrics: ServerMetrics::default(),
            config,
            db,
        }
    }

    /// A server with default config over a fresh database (tests/examples).
    pub fn with_defaults(clock: ClockRef) -> Arc<QuaestorServer> {
        let db = Database::with_clock(clock.clone());
        Self::new(db, ServerConfig::default(), clock)
    }

    /// Open a **durable** server with default configuration: recover
    /// state from `path` (creating the directory on first open), then
    /// write-ahead-log every subsequent write there.
    pub fn open(path: impl AsRef<std::path::Path>) -> Result<Arc<QuaestorServer>> {
        Self::open_with(
            path,
            ServerConfig::default(),
            DurabilityConfig::default(),
            SystemClock::shared(),
        )
    }

    /// [`open`](Self::open) with explicit configuration. Recovery fully
    /// completes *before* the server can serve: tables are restored from
    /// the newest snapshot plus WAL replay, recovered queries are
    /// re-registered with InvaliDB (so invalidation detection resumes),
    /// and replayed delete tombstones warm-start the EBF sketch (caches
    /// out there may still hold those records — mark them stale rather
    /// than hope their TTLs were short).
    pub fn open_with(
        path: impl AsRef<std::path::Path>,
        config: ServerConfig,
        durability: DurabilityConfig,
        clock: ClockRef,
    ) -> Result<Arc<QuaestorServer>> {
        let (engine, recovery) = DurabilityEngine::open(path, durability)?;
        let db = Database::with_clock(clock.clone());
        let meta = recovery.restore(&db)?;
        let server = Arc::new(Self::build(db, config, clock, Some(engine.clone())));
        // The EBF's read ledger died with the old process, so a plain
        // invalidate would no-op ("no cached copy can exist"). After a
        // crash that reasoning is wrong for deleted records: some cache
        // may hold them from before. Re-seed residency with the worst
        // case — any pre-crash copy was served with at most the
        // estimator's TTL ceiling — then invalidate, so the sketch
        // carries each tombstone until every possible copy has expired.
        let warm_ttl = server.config.estimator.max_ttl_ms;
        for (table, id) in &meta.tombstones {
            let key = QueryKey::record(table, id);
            server.ebf.report_read(table, key.as_str(), warm_ttl);
            server.ebf.invalidate(table, key.as_str());
        }
        for query in meta.queries {
            server.reregister_recovered(query)?;
        }
        // Attach the sink only now: replayed writes and recovery-time
        // bookkeeping must never be re-logged.
        server.db.attach_sink(engine);
        Ok(server)
    }

    /// Open a durable server in **replica mode**: recover exactly like
    /// [`open_with`](Self::open_with), but leave the durability sink
    /// detached and suppress every self-appended frame. The WAL is fed
    /// exclusively through [`apply_replicated`](Self::apply_replicated)
    /// by a replication session, so every LSN on disk is the primary's
    /// LSN — which is what makes duplicate frame delivery and
    /// reconnection re-sends no-ops by construction. Reads (including
    /// cacheable queries, EBF reporting and InvaliDB registration for
    /// *local* readers) work normally; writes must be rejected upstream
    /// by the replication layer. [`promote`](Self::promote) turns the
    /// server into a logging primary in place.
    pub fn open_replica_with(
        path: impl AsRef<std::path::Path>,
        config: ServerConfig,
        durability: DurabilityConfig,
        clock: ClockRef,
    ) -> Result<Arc<QuaestorServer>> {
        let (engine, recovery) = DurabilityEngine::open(path, durability)?;
        let db = Database::with_clock(clock.clone());
        let meta = recovery.restore(&db)?;
        let server = Arc::new(Self::build(db, config, clock, Some(engine)));
        server
            .replica
            .store(true, std::sync::atomic::Ordering::Release);
        let warm_ttl = server.config.estimator.max_ttl_ms;
        for (table, id) in &meta.tombstones {
            let key = QueryKey::record(table, id);
            server.ebf.report_read(table, key.as_str(), warm_ttl);
            server.ebf.invalidate(table, key.as_str());
        }
        for query in meta.queries {
            server.reregister_recovered(query)?;
        }
        // No attach_sink: the replica's log is written by append_replicated.
        Ok(server)
    }

    /// True while this server is a replica (self-logging suppressed).
    pub fn is_replica(&self) -> bool {
        self.replica.load(std::sync::atomic::Ordering::Acquire)
    }

    /// Promote a replica to primary: attach the durability sink so local
    /// writes are logged (continuing the LSN sequence the replica applied
    /// up to) and re-enable query-set logging. Idempotent; a no-op on a
    /// server that is already a primary.
    pub fn promote(&self) {
        if !self
            .replica
            .swap(false, std::sync::atomic::Ordering::AcqRel)
        {
            return;
        }
        if let Some(engine) = &self.durability {
            self.db.attach_sink(engine.clone());
        }
    }

    /// Demote a primary back to replica mode (the fenced-rejoin path):
    /// detach the sink and suppress self-logging again. The caller is
    /// responsible for truncating the unreplicated WAL suffix *before*
    /// re-opening the server; this hook exists for in-place role flips in
    /// tests and the simulator.
    pub fn demote(&self) {
        if self.replica.swap(true, std::sync::atomic::Ordering::AcqRel) {
            return;
        }
        self.db.detach_sink();
    }

    /// Apply one replicated WAL record to the served state, driving the
    /// same invalidation pipeline a local write would (EBF, InvaliDB,
    /// purges, change streams) — replica lag is cache age, so the EBF
    /// bound applies to replica reads verbatim. Returns `true` if the
    /// record changed state, `false` for stale duplicates (version-keyed
    /// replay makes re-delivery a no-op). Frame persistence is separate:
    /// the replication session appends to the WAL via
    /// [`DurabilityEngine::append_replicated`] *before* applying here.
    pub fn apply_replicated(&self, record: &WalRecord) -> Result<bool> {
        match record {
            WalRecord::Write {
                table,
                id,
                kind,
                image,
                version,
                seq,
                at,
            } => {
                let t = self.db.create_table(table);
                let applied = t.apply_recovered_write(
                    *kind,
                    id,
                    Arc::new(image.clone()),
                    *version,
                    *seq,
                    Timestamp::from_millis(*at),
                );
                if applied {
                    if let Some(event) = record.to_event() {
                        self.after_write(&event);
                    }
                }
                Ok(applied)
            }
            WalRecord::CreateTable { table } => {
                self.db.create_table(table);
                Ok(true)
            }
            // The primary's query registrations are bookkeeping for *its*
            // recovery; a replica serves its own readers and registers
            // their queries itself.
            WalRecord::RegisterQuery { .. } | WalRecord::DeregisterQuery { .. } => Ok(false),
        }
    }

    /// Re-activate one recovered query. Admission is re-run (capacity may
    /// have shrunk across the restart); a query that no longer fits is
    /// dropped from the durable set instead of failing the open.
    fn reregister_recovered(&self, query: Query) -> Result<()> {
        let key = QueryKey::of(&query);
        let admitted = match self.capacity.request_admission(&key) {
            AdmissionDecision::Admitted => true,
            AdmissionDecision::AdmittedEvicting(victim) => {
                self.evict_query(&victim)?;
                true
            }
            AdmissionDecision::Rejected => false,
        };
        if admitted {
            self.db.create_table(&query.table);
            let mark = self.invalidb.ingest_mark();
            let initial = if query.is_stateful() {
                let mut unwindowed = query.clone();
                unwindowed.limit = None;
                unwindowed.offset = 0;
                self.db.query(&unwindowed)?
            } else {
                self.db.query(&query)?
            };
            let table = query.table.clone();
            match self.invalidb.register_query(query, initial, mark) {
                Ok(_) => {
                    self.active.set_registered(&key, true);
                    // Warm EBF residency: caches may hold this query's
                    // pre-crash result, and the read ledger died with the
                    // old process. Assume the worst-case TTL so future
                    // invalidations of those copies reach the sketch.
                    self.ebf
                        .report_read(&table, key.as_str(), self.config.estimator.max_ttl_ms);
                    return Ok(());
                }
                Err(Error::Capacity(_)) => {}
                Err(e) => return Err(e),
            }
        }
        // Not re-registered: drop it from the durable set so the next
        // recovery does not retry a query this deployment cannot hold.
        // (Replicas never self-append: their LSNs must stay the primary's.)
        if !self.is_replica() {
            if let Some(d) = &self.durability {
                d.log_deregister_query(&key)?;
            }
        }
        Ok(())
    }

    /// The underlying database (for loading data and direct inspection).
    pub fn database(&self) -> &Arc<Database> {
        &self.db
    }

    /// Declare a secondary index for `table`'s `path` (idempotent),
    /// creating the table if it does not exist yet. On a durable server
    /// this is the post-[`open`](Self::open) registration hook: recovery
    /// rebuilds tables *before* the application runs, so declaring here
    /// indexes the recovered data immediately — and the declaration
    /// sticks to any table of that name created later (schemaless
    /// auto-creation included).
    pub fn declare_index(
        &self,
        table: &str,
        path: impl Into<quaestor_document::Path>,
        kind: IndexKind,
    ) {
        self.db.create_table(table);
        self.db.declare_index(table, path, kind);
    }

    /// Server metrics. The InvaliDB matching counters are refreshed here,
    /// on the read path: summing them takes every matching-node lock in
    /// the grid, which must stay off the per-write hot path. The query
    /// planner's access-path counters are copied from the store the same
    /// way.
    pub fn metrics(&self) -> &ServerMetrics {
        use std::sync::atomic::Ordering::Relaxed;
        self.metrics
            .match_evaluations
            .store(self.invalidb.total_evaluations(), Relaxed);
        self.metrics
            .match_evaluations_pruned
            .store(self.invalidb.total_evaluations_skipped(), Relaxed);
        let (probes, ranges, fulls, topk) = self.db.query_stats().snapshot();
        self.metrics.query_index_probes.store(probes, Relaxed);
        self.metrics.query_range_scans.store(ranges, Relaxed);
        self.metrics.query_full_scans.store(fulls, Relaxed);
        self.metrics.query_topk_short_circuits.store(topk, Relaxed);
        let (card_est, card_actual) = self.db.query_stats().cardinality();
        self.metrics.query_card_estimated.store(card_est, Relaxed);
        self.metrics.query_card_actual.store(card_actual, Relaxed);
        &self.metrics
    }

    /// The node's unified registry snapshot — the [`Request::Metrics`]
    /// payload. Goes through [`Self::metrics`] first so the copied
    /// planner/matcher counters are fresh.
    ///
    /// [`Request::Metrics`]: crate::Request::Metrics
    pub fn metrics_snapshot(&self) -> quaestor_obs::MetricsSnapshot {
        self.metrics().registry().snapshot()
    }

    /// Internal counter access without the grid sweep — for bump sites on
    /// hot paths (e.g. transaction commit under the commit lock).
    pub(crate) fn metrics_raw(&self) -> &ServerMetrics {
        &self.metrics
    }

    /// Configuration in effect.
    pub fn config(&self) -> &ServerConfig {
        &self.config
    }

    /// Register an invalidation-based cache for asynchronous purges.
    pub fn register_cdn(&self, cache: Arc<InvalidationCache>) {
        self.cdns.write().push(cache);
    }

    fn now(&self) -> Timestamp {
        self.clock.now()
    }

    fn record_sample_key(table: &str, id: &str) -> String {
        format!("{table}/{id}")
    }

    fn purge(&self, key: &QueryKey) {
        let cdns = self.cdns.read();
        for cdn in cdns.iter() {
            if cdn.purge(key.as_str()) {
                bump(&self.metrics.purges);
            }
        }
    }

    /// Evict one actively matched query: deregister it and treat every
    /// cached copy as stale (conservative; it can no longer be
    /// invalidated).
    fn evict_query(&self, victim: &QueryKey) -> Result<()> {
        self.invalidb.deregister_query(victim);
        self.ebf.invalidate(victim.table(), victim.as_str());
        self.active.remove(victim);
        self.purge(victim);
        if !self.is_replica() {
            if let Some(d) = &self.durability {
                d.log_deregister_query(victim)?;
            }
        }
        Ok(())
    }

    // ---- durability ------------------------------------------------------

    /// The attached durability engine, if this server is durable.
    pub fn durability(&self) -> Option<&Arc<DurabilityEngine>> {
        self.durability.as_ref()
    }

    /// Force the write-ahead log's group-commit buffer to stable storage.
    /// Returns the durable LSN; 0 for an in-memory server (everything
    /// "durable" trivially — there is nothing to lose that a flush would
    /// save).
    pub fn flush(&self) -> Result<u64> {
        match &self.durability {
            Some(d) => d.flush(),
            None => Ok(0),
        }
    }

    /// Write a snapshot of the current state and compact the log below
    /// it. Errors on an in-memory server.
    pub fn checkpoint(&self) -> Result<u64> {
        match &self.durability {
            Some(d) => d.snapshot(&self.db),
            None => Err(Error::BadRequest(
                "checkpoint requires a durable server (QuaestorServer::open)".into(),
            )),
        }
    }

    // ---- the EBF endpoint ----------------------------------------------

    /// Serve the flat EBF (union over table partitions) with its
    /// generation timestamp — step 1 of the §3.1 request flow.
    pub fn ebf_snapshot(&self) -> (BloomFilter, Timestamp) {
        bump(&self.metrics.ebf_snapshots);
        self.ebf.union_snapshot()
    }

    /// Serve a single table's EBF partition (the lower-FPR client option).
    pub fn ebf_partition_snapshot(&self, table: &str) -> (BloomFilter, Timestamp) {
        bump(&self.metrics.ebf_snapshots);
        self.ebf.partition_snapshot(table)
    }

    // ---- reads -----------------------------------------------------------

    /// Origin read of one record (cache miss or revalidation).
    pub fn get_record(&self, table: &str, id: &str) -> Result<RecordResponse> {
        bump(&self.metrics.record_reads);
        let t = self.db.table(table)?;
        let rec = t.get(id).ok_or_else(|| quaestor_common::Error::NotFound {
            table: table.to_owned(),
            id: id.to_owned(),
        })?;
        let rate = self
            .sampler
            .rate(&Self::record_sample_key(table, id), self.now());
        let ttl_ms = self.estimator.record_ttl(rate);
        let key = QueryKey::record(table, id);
        // Report to the EBF *before* replying, so any invalidation racing
        // this response finds the ledger entry (Figure 7 step 2).
        self.ebf.report_read(table, key.as_str(), ttl_ms);
        let body = doc_body(&rec.doc);
        Ok(RecordResponse {
            key,
            body,
            etag: rec.version,
            ttl_ms,
            invalidation_ttl_ms: self.invalidation_ttl(ttl_ms),
            doc: rec.doc,
        })
    }

    fn invalidation_ttl(&self, ttl_ms: u64) -> u64 {
        (ttl_ms as f64 * self.config.invalidation_cache_ttl_factor) as u64
    }

    /// Origin evaluation of a query (cache miss or revalidation) — step 4
    /// of the §3.1 request flow: evaluate, decide representation, estimate
    /// TTL, register with InvaliDB, report to the EBF, reply cacheably.
    pub fn query(&self, query: &Query) -> Result<QueryResponse> {
        bump(&self.metrics.query_reads);
        let now = self.now();
        let key = QueryKey::of(query);
        // Watermark BEFORE evaluation: anything ingested after this point
        // raced the evaluation and must be replayed on registration.
        let mark = self.invalidb.ingest_mark();
        // Schemaless DBaaS semantics: querying a table that does not exist
        // yet creates it and returns the empty result.
        self.db.create_table(&query.table);
        let docs = self.db.query(query)?;
        let ids: Vec<String> = docs
            .iter()
            .filter_map(|d| d.get("_id").and_then(Value::as_str).map(str::to_owned))
            .collect();

        // Admission: is this query worth one of the InvaliDB slots?
        let admitted = match self.capacity.request_admission(&key) {
            AdmissionDecision::Admitted => true,
            AdmissionDecision::AdmittedEvicting(victim) => {
                self.evict_query(&victim)?;
                true
            }
            AdmissionDecision::Rejected => {
                bump(&self.metrics.capacity_rejections);
                false
            }
        };

        if !admitted {
            // Served uncacheable: ttl 0, not registered anywhere.
            let body = object_list_body(&docs);
            let etag = self.result_etag_of(query, &ids)?;
            let versions = self.versions_of(query, &ids)?;
            return Ok(QueryResponse {
                key,
                body,
                etag,
                ttl_ms: 0,
                invalidation_ttl_ms: 0,
                representation: Representation::ObjectList,
                ids,
                versions,
                docs,
                cacheable: false,
            });
        }

        // Representation decision from observed per-query workload.
        let representation = match self.active.get(&key) {
            Some(state) => self.decide_representation(&state, ids.len(), now),
            None => Representation::ObjectList,
        };

        // TTL: EWMA-refined estimate if we have history, otherwise the
        // Poisson initial estimate from the result set's write rates.
        let ttl_ms = match self.active.get(&key) {
            Some(state) if state.invalidations > 0 => state.ttl_ms,
            _ => {
                let combined = self.sampler.combined_rate(
                    ids.iter()
                        .map(|id| Self::record_sample_key(&query.table, id))
                        .collect::<Vec<_>>()
                        .iter()
                        .map(String::as_str),
                    now,
                );
                self.estimator.initial_query_ttl(combined)
            }
        };

        // Register with InvaliDB (idempotent re-registration is fine).
        // Stateful queries need the full unwindowed matching set.
        let initial = if query.is_stateful() {
            let mut unwindowed = query.clone();
            unwindowed.limit = None;
            unwindowed.offset = 0;
            self.db.query(&unwindowed)?
        } else {
            docs.clone()
        };
        let raced = self.invalidb.register_query(query.clone(), initial, mark)?;
        self.active.set_registered(&key, true);
        // Durable registration: recovery re-registers the query so its
        // cached copies keep being invalidated after a restart. (No-op
        // frame-wise when the query is already in the durable set.
        // Replicas skip it — their WAL carries only the primary's LSNs.)
        if !self.is_replica() {
            if let Some(d) = &self.durability {
                d.log_register_query(query)?;
            }
        }

        // Report the cacheable read, then handle any raced notifications
        // as regular invalidations (they arrived between evaluation and
        // activation).
        self.ebf.report_read(&query.table, key.as_str(), ttl_ms);
        self.active
            .on_origin_read(&key, ttl_ms, representation, now);
        for n in raced {
            self.apply_notification(&n);
        }

        // Per-record side effect: "all records in a result are inserted
        // into the cache as individual entries" (§6.2) — the server
        // reports each member read so the EBF can cover them, and the
        // response carries the members so caches can store them.
        for id in &ids {
            let rate = self
                .sampler
                .rate(&Self::record_sample_key(&query.table, id), now);
            let rttl = self.estimator.record_ttl(rate);
            self.ebf.report_read(
                &query.table,
                QueryKey::record(&query.table, id).as_str(),
                rttl,
            );
        }

        let body = match representation {
            Representation::ObjectList => object_list_body(&docs),
            Representation::IdList => id_list_body(&ids),
        };
        let etag = self.result_etag_of(query, &ids)?;
        let versions = self.versions_of(query, &ids)?;
        Ok(QueryResponse {
            key,
            body,
            etag,
            ttl_ms,
            invalidation_ttl_ms: self.invalidation_ttl(ttl_ms),
            representation,
            ids,
            versions,
            docs,
            cacheable: true,
        })
    }

    fn versions_of(&self, query: &Query, ids: &[String]) -> Result<Vec<u64>> {
        let t = self.db.table(&query.table)?;
        Ok(ids
            .iter()
            .map(|id| t.get(id).map(|r| r.version).unwrap_or(0))
            .collect())
    }

    fn result_etag_of(&self, query: &Query, ids: &[String]) -> Result<u64> {
        let t = self.db.table(&query.table)?;
        Ok(result_etag(ids.iter().map(|id| {
            let v = t.get(id).map(|r| r.version).unwrap_or(0);
            (id.clone(), v)
        })))
    }

    fn decide_representation(
        &self,
        state: &QueryState,
        result_size: usize,
        now: Timestamp,
    ) -> Representation {
        let w = quaestor_ttl::cost::QueryWorkload {
            // Rates are per-ms in the state; the cost model only compares
            // relative magnitudes, so a consistent unit suffices.
            read_rate: state.read_rate(now),
            membership_change_rate: state.membership_change_rate(now),
            change_rate: state.value_change_rate(now),
            result_size,
            record_hit_rate: self.config.assumed_record_hit_rate,
        };
        self.cost.choose(&w)
    }

    // ---- writes ----------------------------------------------------------

    /// Insert a record, driving the full invalidation pipeline. Returns
    /// the stored version and after-image (the client SDK caches them for
    /// read-your-writes).
    pub fn insert(&self, table: &str, id: &str, doc: Document) -> Result<(u64, Arc<Document>)> {
        let t = self.db.create_table(table);
        let event = t.insert(id, doc)?;
        self.after_write(&event);
        Ok((event.version, event.image))
    }

    /// Partially update a record; returns version and after-image.
    pub fn update(&self, table: &str, id: &str, update: &Update) -> Result<(u64, Arc<Document>)> {
        let t = self.db.table(table)?;
        let event = t.update(id, update, None)?;
        self.after_write(&event);
        Ok((event.version, event.image))
    }

    /// Replace a record; returns version and after-image.
    pub fn replace(&self, table: &str, id: &str, doc: Document) -> Result<(u64, Arc<Document>)> {
        let t = self.db.table(table)?;
        let event = t.replace(id, doc, None)?;
        self.after_write(&event);
        Ok((event.version, event.image))
    }

    /// Delete a record; returns the deleted version.
    pub fn delete(&self, table: &str, id: &str) -> Result<u64> {
        let t = self.db.table(table)?;
        let event = t.delete(id, None)?;
        self.after_write(&event);
        Ok(event.version)
    }

    // ---- change streams ---------------------------------------------------

    /// Subscribe to real-time change notifications for one cached query —
    /// the "websocket-based query result change streams" of §3.2. Each
    /// message is the serialized notification event kind and record id.
    pub fn subscribe_query_stream(&self, key: &QueryKey) -> quaestor_kv::Subscription {
        self.streams.subscribe(key.as_str())
    }

    /// The write → invalidation pipeline of Figure 7 (step 4): sample the
    /// write rate, invalidate the record key, feed InvaliDB, and apply
    /// every resulting query invalidation.
    pub(crate) fn after_write(&self, event: &WriteEvent) {
        bump(&self.metrics.writes);
        let now = self.now();
        self.sampler
            .record_write(&Self::record_sample_key(&event.table, &event.id), now);
        // Record-level invalidation.
        let rkey = QueryKey::record(&event.table, &event.id);
        if self.ebf.invalidate(&event.table, rkey.as_str()) {
            bump(&self.metrics.record_invalidations);
        }
        self.purge(&rkey);
        // Query-level invalidations via InvaliDB.
        for n in self.invalidb.on_write(event) {
            self.apply_notification(&n);
        }
        // Auto-checkpoint: the write itself is already logged, so a
        // snapshot failure here must not fail the write — it only delays
        // compaction until the next attempt.
        if let Some(d) = &self.durability {
            if d.wants_snapshot() {
                let _ = d.snapshot(&self.db);
            }
        }
    }

    fn apply_notification(&self, n: &Notification) {
        // Push to subscribed change streams regardless of representation:
        // subscribers want every event.
        self.streams.publish(
            n.query.as_str(),
            bytes::Bytes::from(format!("{:?}:{}", n.event, n.record_id)),
        );
        let is_membership = n.event.invalidates_id_list();
        self.active.on_notification(&n.query, is_membership);
        // Does this event invalidate the representation actually cached?
        let state = self.active.get(&n.query);
        let invalidates = match state.as_ref().map(|s| s.representation) {
            Some(Representation::IdList) => is_membership,
            // Unknown state: be conservative, invalidate.
            Some(Representation::ObjectList) | None => true,
        };
        if !invalidates {
            return;
        }
        bump(&self.metrics.query_invalidations);
        // Table is encoded in the query key's table; use the notification
        // query key against that table's EBF partition.
        self.ebf.invalidate(n.query.table(), n.query.as_str());
        self.capacity.on_invalidation(&n.query);
        self.purge(&n.query);
        // EWMA refinement from the observed actual TTL (Eq. 2).
        if let Some(actual) = self.active.on_invalidation(&n.query, n.at) {
            if let Some(state) = self.active.get(&n.query) {
                let refined = self.estimator.refine_query_ttl(state.ttl_ms, actual);
                self.active.set_ttl(&n.query, refined);
            }
        }
    }

    /// Ground-truth ETag of a query's *current* result — used by the
    /// simulator's staleness detector to compare what a client observed
    /// against what a linearizable system would have returned.
    pub fn current_query_etag(&self, query: &Query) -> Result<u64> {
        let docs = self.db.query(query)?;
        let ids: Vec<String> = docs
            .iter()
            .filter_map(|d| d.get("_id").and_then(Value::as_str).map(str::to_owned))
            .collect();
        self.result_etag_of(query, &ids)
    }

    /// Number of actively matched (cached) queries.
    pub fn active_query_count(&self) -> usize {
        self.invalidb.query_count()
    }

    /// Direct access to the active list (diagnostics, benches).
    pub fn active_list(&self) -> &ActiveList {
        &self.active
    }

    /// Direct access to the EBF family (diagnostics, benches).
    pub fn ebf(&self) -> &PartitionedEbf {
        &self.ebf
    }
}

fn doc_body(doc: &Document) -> bytes::Bytes {
    bytes::Bytes::from(Value::Object(doc.clone()).canonical())
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::ManualClock;
    use quaestor_document::doc;
    use quaestor_query::Filter;

    fn server() -> (Arc<QuaestorServer>, Arc<ManualClock>) {
        let clock = ManualClock::new();
        let server = QuaestorServer::with_defaults(clock.clone());
        (server, clock)
    }

    fn tagged(id: &str, tags: &[&str]) -> Document {
        let mut d = doc! { "kind" => "post" };
        d.insert(
            "tags".into(),
            Value::Array(tags.iter().map(|t| Value::str(*t)).collect()),
        );
        let _ = id;
        d
    }

    #[test]
    fn record_read_reports_to_ebf() {
        let (s, _) = server();
        s.insert("posts", "p1", tagged("p1", &["x"])).unwrap();
        let resp = s.get_record("posts", "p1").unwrap();
        assert!(resp.ttl_ms > 0);
        assert_eq!(resp.etag, 1);
        // A subsequent write must mark the record stale.
        s.update("posts", "p1", &Update::new().set("kind", "draft"))
            .unwrap();
        let (flat, _) = s.ebf_snapshot();
        assert!(flat.contains(resp.key.as_str().as_bytes()));
    }

    #[test]
    fn unread_record_write_is_not_inserted() {
        let (s, _) = server();
        s.insert("posts", "p1", tagged("p1", &["x"])).unwrap();
        s.update("posts", "p1", &Update::new().set("kind", "draft"))
            .unwrap();
        // p1 was never served cacheably before the write... but the insert
        // itself wasn't either. No EBF entry.
        let (flat, _) = s.ebf_snapshot();
        assert!(!flat.contains(QueryKey::record("posts", "p1").as_str().as_bytes()));
    }

    #[test]
    fn query_lifecycle_with_invalidation() {
        let (s, clock) = server();
        s.insert("posts", "p1", tagged("p1", &["example"])).unwrap();
        s.insert("posts", "p2", tagged("p2", &["music"])).unwrap();
        let q = Query::table("posts").filter(Filter::contains("tags", "example"));
        let resp = s.query(&q).unwrap();
        assert!(resp.cacheable);
        assert_eq!(resp.ids, vec!["p1"]);
        assert_eq!(s.active_query_count(), 1);

        clock.advance(1_000);
        // p2 gains the tag -> enters the result -> add notification ->
        // query invalidated.
        s.update("posts", "p2", &Update::new().push("tags", "example"))
            .unwrap();
        let (flat, _) = s.ebf_snapshot();
        assert!(
            flat.contains(resp.key.as_str().as_bytes()),
            "query key must be stale in the EBF"
        );
        assert_eq!(
            s.metrics()
                .query_invalidations
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn irrelevant_writes_do_not_invalidate_queries() {
        let (s, _) = server();
        s.insert("posts", "p1", tagged("p1", &["example"])).unwrap();
        let q = Query::table("posts").filter(Filter::contains("tags", "example"));
        let resp = s.query(&q).unwrap();
        s.insert("posts", "p9", tagged("p9", &["unrelated"]))
            .unwrap();
        let (flat, _) = s.ebf_snapshot();
        assert!(!flat.contains(resp.key.as_str().as_bytes()));
    }

    #[test]
    fn cdn_purge_on_invalidation() {
        let (s, _) = server();
        let cdn = Arc::new(InvalidationCache::new("cdn", 64));
        s.register_cdn(cdn.clone());
        s.insert("posts", "p1", tagged("p1", &["example"])).unwrap();
        let q = Query::table("posts").filter(Filter::contains("tags", "example"));
        let resp = s.query(&q).unwrap();
        // Simulate the CDN having cached it.
        cdn.put(
            resp.key.as_str(),
            quaestor_webcache::CacheEntry::new(
                resp.body.clone(),
                resp.etag,
                Timestamp::ZERO,
                60_000,
            ),
        );
        s.update("posts", "p1", &Update::new().pull("tags", "example"))
            .unwrap();
        assert_eq!(cdn.len(), 0, "stale result purged from the CDN");
        assert!(
            s.metrics()
                .purges
                .load(std::sync::atomic::Ordering::Relaxed)
                >= 1
        );
    }

    #[test]
    fn ewma_refines_query_ttl_after_invalidation() {
        let (s, clock) = server();
        s.insert("posts", "p1", tagged("p1", &["t"])).unwrap();
        let q = Query::table("posts").filter(Filter::contains("tags", "t"));
        let r1 = s.query(&q).unwrap();
        let initial_ttl = r1.ttl_ms;
        clock.advance(2_000); // actual TTL will be 2000 ms
        s.update("posts", "p1", &Update::new().pull("tags", "t"))
            .unwrap();
        let state = s.active_list().get(&r1.key).unwrap();
        assert!(
            state.ttl_ms < initial_ttl,
            "EWMA must pull the estimate down towards 2000 (was {initial_ttl}, now {})",
            state.ttl_ms
        );
    }

    #[test]
    fn capacity_rejection_serves_uncacheable() {
        let clock = ManualClock::new();
        let db = Database::with_clock(clock.clone());
        let mut cfg = ServerConfig {
            max_cached_queries: 1,
            ..ServerConfig::default()
        };
        cfg.invalidb.max_queries = 1;
        let s = QuaestorServer::new(db, cfg, clock.clone());
        s.insert("t", "a", doc! { "n" => 1 }).unwrap();
        let q1 = Query::table("t").filter(Filter::eq("n", 1));
        let r1 = s.query(&q1).unwrap();
        assert!(r1.cacheable);
        // Raise q1's score so q2 cannot evict it.
        s.query(&q1).unwrap();
        let q2 = Query::table("t").filter(Filter::eq("n", 2));
        let r2 = s.query(&q2).unwrap();
        assert!(!r2.cacheable);
        assert_eq!(r2.ttl_ms, 0);
    }

    #[test]
    fn delete_invalidates_containing_queries() {
        let (s, _) = server();
        s.insert("posts", "p1", tagged("p1", &["x"])).unwrap();
        let q = Query::table("posts").filter(Filter::contains("tags", "x"));
        let resp = s.query(&q).unwrap();
        s.delete("posts", "p1").unwrap();
        let (flat, _) = s.ebf_snapshot();
        assert!(flat.contains(resp.key.as_str().as_bytes()));
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        quaestor_common::scratch_dir(&format!("server-{tag}"))
    }

    fn open_durable(dir: &std::path::Path) -> Arc<QuaestorServer> {
        QuaestorServer::open_with(
            dir,
            ServerConfig::default(),
            quaestor_durability::DurabilityConfig::default(),
            ManualClock::new(),
        )
        .unwrap()
    }

    #[test]
    fn durable_server_recovers_state_queries_and_tombstones() {
        let dir = temp_dir("recover");
        let q = Query::table("posts").filter(Filter::contains("tags", "x"));
        let qkey = QueryKey::of(&q);
        {
            let s = open_durable(&dir);
            s.insert("posts", "p1", tagged("p1", &["x"])).unwrap();
            s.insert("posts", "p2", tagged("p2", &["y"])).unwrap();
            let resp = s.query(&q).unwrap();
            assert!(resp.cacheable);
            s.delete("posts", "p2").unwrap();
            // Crash: drop without flush (fsync=Always already persisted).
        }
        let s = open_durable(&dir);
        // Data back.
        let rec = s.get_record("posts", "p1").unwrap();
        assert_eq!(rec.etag, 1);
        assert!(s.get_record("posts", "p2").is_err());
        // EBF warm-started from the recovered delete tombstone: caches
        // holding p2 must revalidate.
        let (flat, _) = s.ebf_snapshot();
        assert!(
            flat.contains(QueryKey::record("posts", "p2").as_str().as_bytes()),
            "recovered tombstone must mark the record stale"
        );
        // The query was re-registered: a write entering its result must
        // invalidate the recovered registration.
        assert_eq!(s.active_query_count(), 1);
        s.update("posts", "p1", &Update::new().push("tags", "fresh"))
            .unwrap(); // value change on a member -> invalidation
        let (flat, _) = s.ebf_snapshot();
        assert!(
            flat.contains(qkey.as_str().as_bytes()),
            "re-registered query must keep invalidating after recovery"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reopen_twice_yields_identical_state() {
        let dir = temp_dir("idem");
        {
            let s = open_durable(&dir);
            for i in 0..10 {
                s.insert("t", &format!("r{i}"), doc! { "n" => i }).unwrap();
            }
            s.update("t", "r3", &Update::new().set("n", 99)).unwrap();
            s.delete("t", "r4").unwrap();
        }
        let snapshot_of = |s: &Arc<QuaestorServer>| {
            let t = s.database().table("t").unwrap();
            let mut recs: Vec<(String, u64, String)> = t
                .snapshot()
                .into_iter()
                .map(|(id, r)| (id, r.version, Value::Object((*r.doc).clone()).canonical()))
                .collect();
            recs.sort();
            (recs, t.seq())
        };
        let s1 = open_durable(&dir);
        let state1 = snapshot_of(&s1);
        drop(s1);
        let s2 = open_durable(&dir);
        assert_eq!(state1, snapshot_of(&s2), "recovery must be idempotent");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flush_and_checkpoint_roundtrip() {
        let dir = temp_dir("checkpoint");
        {
            let s = open_durable(&dir);
            for i in 0..20 {
                s.insert("t", &format!("r{i}"), doc! { "n" => i }).unwrap();
            }
            let lsn = s.flush().unwrap();
            assert!(lsn >= 20);
            let snap_lsn = s.checkpoint().unwrap();
            assert_eq!(snap_lsn, s.durability().unwrap().last_lsn());
            s.insert("t", "post-snap", doc! { "n" => 100 }).unwrap();
        }
        let s = open_durable(&dir);
        assert_eq!(s.database().table("t").unwrap().len(), 21);
        assert!(s.get_record("t", "post-snap").is_ok());
        // In-memory servers: flush is a no-op, checkpoint is an error.
        let (mem, _) = server();
        assert_eq!(mem.flush().unwrap(), 0);
        assert!(mem.checkpoint().is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn declared_indexes_cover_recovered_tables_and_planner_metrics() {
        use quaestor_query::Order;
        use quaestor_store::AccessPath;
        let dir = temp_dir("declare-idx");
        {
            let s = open_durable(&dir);
            for i in 0..40i64 {
                s.insert("posts", &format!("p{i:02}"), doc! { "likes" => i })
                    .unwrap();
            }
        }
        // Reopen: recovery rebuilds the table *before* the app declares
        // its indexes; the declaration must index the recovered data.
        let s = open_durable(&dir);
        s.declare_index("posts", "likes", IndexKind::Ordered);
        let table = s.database().table("posts").unwrap();
        let range = Query::table("posts").filter(Filter::and([
            quaestor_query::Filter::gte("likes", 10),
            quaestor_query::Filter::lt("likes", 13),
        ]));
        assert!(matches!(
            table.explain(&range).access,
            AccessPath::RangeScan { estimated: 3, .. }
        ));
        let resp = s.query(&range).unwrap();
        assert_eq!(resp.ids.len(), 3);
        // A sorted LIMIT over an unindexed path takes the top-k path.
        let topk = Query::table("posts")
            .sort_by("missing", Order::Asc)
            .limit(2);
        s.query(&topk).unwrap();
        let m = s.metrics();
        let get = |name: &str| {
            m.snapshot()
                .iter()
                .find(|(n, _)| *n == name)
                .map(|(_, v)| *v)
                .unwrap()
        };
        assert_eq!(get("query_range_scans"), 1);
        assert!(get("query_topk_short_circuits") >= 1);
        assert!(get("query_full_scans") >= 1);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replica_applies_shipped_frames_without_self_logging() {
        let primary_dir = temp_dir("repl-primary");
        let replica_dir = temp_dir("repl-replica");
        let primary = open_durable(&primary_dir);
        let replica = QuaestorServer::open_replica_with(
            &replica_dir,
            ServerConfig::default(),
            quaestor_durability::DurabilityConfig::default(),
            ManualClock::new(),
        )
        .unwrap();
        assert!(replica.is_replica());

        // Writes on the primary; ship its frames to the replica the way a
        // replication session would: append to the replica WAL, then apply.
        primary.insert("posts", "p1", tagged("p1", &["x"])).unwrap();
        primary.insert("posts", "p2", tagged("p2", &["y"])).unwrap();
        primary.delete("posts", "p2").unwrap();
        let src = primary.durability().unwrap();
        let dst = replica.durability().unwrap();
        let frames = src.read_frames_after(0, 1024).unwrap();
        for (lsn, record) in &frames {
            assert!(dst.append_replicated(*lsn, record).unwrap());
            replica.apply_replicated(record).unwrap();
        }
        assert_eq!(dst.last_lsn(), src.last_lsn());
        assert_eq!(replica.get_record("posts", "p1").unwrap().etag, 1);
        assert!(replica.get_record("posts", "p2").is_err());

        // A replica-side cacheable query must NOT append to the replica's
        // WAL (its LSNs are the primary's), but must still register for
        // invalidation so replicated writes mark local caches stale.
        let q = Query::table("posts").filter(Filter::contains("tags", "x"));
        let resp = replica.query(&q).unwrap();
        assert!(resp.cacheable);
        assert_eq!(dst.last_lsn(), src.last_lsn(), "query must not self-log");

        // A replicated write entering the result invalidates the query.
        primary
            .update("posts", "p1", &Update::new().push("tags", "fresh"))
            .unwrap();
        let after = src.last_lsn();
        for (lsn, record) in src.read_frames_after(dst.last_lsn(), 1024).unwrap() {
            dst.append_replicated(lsn, &record).unwrap();
            replica.apply_replicated(&record).unwrap();
        }
        assert_eq!(dst.last_lsn(), after);
        let (flat, _) = replica.ebf_snapshot();
        assert!(
            flat.contains(resp.key.as_str().as_bytes()),
            "replicated write must invalidate the replica-registered query"
        );

        // Duplicate re-delivery is a no-op end to end: the WAL's LSN gate
        // rejects every already-applied frame, and a session only applies
        // what the gate accepted — so state is untouched. (Version-keyed
        // replay alone is not enough: replaying an insert whose delete
        // came later would resurrect the record.)
        let before = replica.database().total_records();
        for (lsn, record) in src.read_frames_after(0, 1024).unwrap() {
            let fresh = dst.append_replicated(lsn, &record).unwrap();
            assert!(!fresh, "lsn {lsn} must be a duplicate");
            if fresh {
                replica.apply_replicated(&record).unwrap();
            }
        }
        assert_eq!(replica.database().total_records(), before);

        // Promotion attaches the sink: local writes log with continuing
        // LSNs.
        replica.promote();
        assert!(!replica.is_replica());
        replica.insert("posts", "p3", tagged("p3", &["z"])).unwrap();
        assert_eq!(dst.last_lsn(), after + 1, "post-promotion write must log");
        std::fs::remove_dir_all(&primary_dir).unwrap();
        std::fs::remove_dir_all(&replica_dir).unwrap();
    }

    #[test]
    fn member_records_reported_for_ebf_coverage() {
        let (s, _) = server();
        s.insert("posts", "p1", tagged("p1", &["x"])).unwrap();
        let q = Query::table("posts").filter(Filter::contains("tags", "x"));
        s.query(&q).unwrap();
        // p1 was reported as a side effect of the query; a write to p1
        // must now mark the *record* stale too.
        s.update("posts", "p1", &Update::new().set("kind", "draft"))
            .unwrap();
        let (flat, _) = s.ebf_snapshot();
        assert!(flat.contains(QueryKey::record("posts", "p1").as_str().as_bytes()));
    }
}

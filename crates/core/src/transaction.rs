//! Optimistic ACID transactions (§3.2).
//!
//! "These optimistic transactions exploit the fact that caching reduces
//! transaction durations and can thereby achieve low abort rates with a
//! variant of backwards-oriented optimistic concurrency control ... the
//! key idea is to collect read sets of transactions in the client and
//! validate them at commit time to detect both violations \[of\]
//! serializability and stale reads."
//!
//! The client accumulates `(table, id, version)` entries for every read
//! (cached reads included — that is the point: reads are fast because they
//! hit caches) and a buffered write set. At commit,
//! [`QuaestorServer::commit`] validates the read set against current
//! versions under a global commit lock and applies the writes atomically.

use parking_lot::Mutex;
use quaestor_common::{lock_rank, Error, Result, Version};
use quaestor_document::{Document, Update};

use crate::metrics::bump;
use crate::server::QuaestorServer;

/// A buffered transactional write.
#[derive(Debug, Clone)]
pub enum WriteOp {
    /// Insert a new record.
    Insert {
        /// Target table.
        table: String,
        /// Primary key.
        id: String,
        /// Document to insert.
        doc: Document,
    },
    /// Apply a partial update.
    Update {
        /// Target table.
        table: String,
        /// Primary key.
        id: String,
        /// Update operators.
        update: Update,
    },
    /// Delete a record.
    Delete {
        /// Target table.
        table: String,
        /// Primary key.
        id: String,
    },
}

/// A client-side transaction: read set + buffered writes.
#[derive(Debug, Default)]
pub struct Transaction {
    reads: Vec<(String, String, Version)>,
    writes: Vec<WriteOp>,
}

impl Transaction {
    /// Begin an empty transaction.
    pub fn new() -> Transaction {
        Transaction::default()
    }

    /// Record a read observation (typically from a cached response's
    /// ETag).
    pub fn observe(&mut self, table: &str, id: &str, version: Version) {
        self.reads.push((table.to_owned(), id.to_owned(), version));
    }

    /// Buffer an insert.
    pub fn insert(&mut self, table: &str, id: &str, doc: Document) {
        self.writes.push(WriteOp::Insert {
            table: table.to_owned(),
            id: id.to_owned(),
            doc,
        });
    }

    /// Buffer an update.
    pub fn update(&mut self, table: &str, id: &str, update: Update) {
        self.writes.push(WriteOp::Update {
            table: table.to_owned(),
            id: id.to_owned(),
            update,
        });
    }

    /// Buffer a delete.
    pub fn delete(&mut self, table: &str, id: &str) {
        self.writes.push(WriteOp::Delete {
            table: table.to_owned(),
            id: id.to_owned(),
        });
    }

    /// Read set size.
    pub fn read_set_len(&self) -> usize {
        self.reads.len()
    }

    /// Write set size.
    pub fn write_set_len(&self) -> usize {
        self.writes.len()
    }
}

/// The server-side commit lock: BOCC validates against a stable snapshot,
/// which a single global mutex provides (the paper's scheme validates in
/// the server tier; contention is low because transactions are short).
static COMMIT_LOCK: Mutex<()> =
    Mutex::with_rank((), lock_rank::CORE_COMMIT.0, lock_rank::CORE_COMMIT.1);

impl QuaestorServer {
    /// Validate and atomically apply a transaction.
    ///
    /// Validation: every record in the read set must still be at the
    /// observed version (stale cached reads or concurrent commits abort).
    /// Application: writes run through the normal invalidation pipeline.
    pub fn commit(&self, tx: Transaction) -> Result<()> {
        let _guard = COMMIT_LOCK.lock();
        // Validate.
        for (table, id, version) in &tx.reads {
            let t = self.database().table(table)?;
            let current = t.get(id).map(|r| r.version).unwrap_or(0);
            if current != *version {
                bump(&self.metrics_raw().tx_aborts);
                return Err(Error::TransactionAborted(format!(
                    "read of '{table}/{id}' observed v{version}, now v{current}"
                )));
            }
        }
        // Apply. Each write flows through after_write → EBF/InvaliDB/purge.
        for op in tx.writes {
            match op {
                WriteOp::Insert { table, id, doc } => {
                    self.insert(&table, &id, doc)?;
                }
                WriteOp::Update { table, id, update } => {
                    self.update(&table, &id, &update)?;
                }
                WriteOp::Delete { table, id } => {
                    self.delete(&table, &id)?;
                }
            }
        }
        bump(&self.metrics_raw().tx_commits);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::ManualClock;
    use quaestor_document::doc;

    #[test]
    fn clean_commit_applies_writes() {
        let s = QuaestorServer::with_defaults(ManualClock::new());
        s.insert("t", "a", doc! { "n" => 1 }).unwrap();
        let r = s.get_record("t", "a").unwrap();
        let mut tx = Transaction::new();
        tx.observe("t", "a", r.etag);
        tx.update("t", "a", Update::new().inc("n", 1.0));
        tx.insert("t", "b", doc! { "n" => 5 });
        s.commit(tx).unwrap();
        assert_eq!(
            s.get_record("t", "a").unwrap().doc["n"],
            quaestor_document::Value::Int(2)
        );
        assert!(s.get_record("t", "b").is_ok());
    }

    #[test]
    fn stale_read_aborts() {
        let s = QuaestorServer::with_defaults(ManualClock::new());
        s.insert("t", "a", doc! { "n" => 1 }).unwrap();
        let r = s.get_record("t", "a").unwrap();
        // A concurrent writer bumps the version.
        s.update("t", "a", &Update::new().inc("n", 1.0)).unwrap();
        let mut tx = Transaction::new();
        tx.observe("t", "a", r.etag);
        tx.update("t", "a", Update::new().inc("n", 10.0));
        let err = s.commit(tx).unwrap_err();
        assert!(matches!(err, Error::TransactionAborted(_)));
        // The buffered write was not applied.
        assert_eq!(
            s.get_record("t", "a").unwrap().doc["n"],
            quaestor_document::Value::Int(2)
        );
    }

    #[test]
    fn read_of_deleted_record_aborts() {
        let s = QuaestorServer::with_defaults(ManualClock::new());
        s.insert("t", "a", doc! { "n" => 1 }).unwrap();
        let r = s.get_record("t", "a").unwrap();
        s.delete("t", "a").unwrap();
        let mut tx = Transaction::new();
        tx.observe("t", "a", r.etag);
        assert!(s.commit(tx).is_err());
    }

    #[test]
    fn write_only_transactions_always_commit() {
        let s = QuaestorServer::with_defaults(ManualClock::new());
        let mut tx = Transaction::new();
        tx.insert("t", "x", doc! { "n" => 1 });
        s.commit(tx).unwrap();
        assert_eq!(
            s.metrics()
                .tx_commits
                .load(std::sync::atomic::Ordering::Relaxed),
            1
        );
    }

    #[test]
    fn committed_writes_invalidate_caches() {
        use quaestor_query::{Filter, Query};
        let s = QuaestorServer::with_defaults(ManualClock::new());
        s.insert("t", "a", doc! { "tag" => "hot" }).unwrap();
        let q = Query::table("t").filter(Filter::eq("tag", "hot"));
        let resp = s.query(&q).unwrap();
        let mut tx = Transaction::new();
        tx.update("t", "a", Update::new().set("tag", "cold"));
        s.commit(tx).unwrap();
        let (flat, _) = s.ebf_snapshot();
        assert!(
            flat.contains(resp.key.as_str().as_bytes()),
            "transactional writes flow through the invalidation pipeline"
        );
    }
}

//! Server-side metrics.

use std::sync::atomic::Ordering;

use quaestor_obs::{Counter, Registry};

/// Counters for everything the evaluation section reports about server
/// behaviour.
///
/// Every field is a [`Counter`] handle registered on a per-server
/// [`Registry`] under a `server.*` name, so one `Request::Metrics` call
/// snapshots them alongside the service-layer series. [`Counter`]
/// carries the `AtomicU64` accessor shims (`load`/`store`/`fetch_add`),
/// so the pre-registry field API keeps working unchanged.
#[derive(Debug)]
pub struct ServerMetrics {
    /// Record reads answered by the origin (cache misses + revalidations).
    pub record_reads: Counter,
    /// Query evaluations answered by the origin.
    pub query_reads: Counter,
    /// Write operations processed.
    pub writes: Counter,
    /// Record invalidations added to the EBF.
    pub record_invalidations: Counter,
    /// Query invalidations (from InvaliDB notifications) added to the EBF.
    pub query_invalidations: Counter,
    /// Purges dispatched to invalidation-based caches.
    pub purges: Counter,
    /// EBF snapshots served to clients.
    pub ebf_snapshots: Counter,
    /// Queries rejected by the capacity manager (served uncacheable).
    pub capacity_rejections: Counter,
    /// Transactions committed.
    pub tx_commits: Counter,
    /// Transactions aborted at validation.
    pub tx_aborts: Counter,
    /// InvaliDB match evaluations actually performed (grid total).
    pub match_evaluations: Counter,
    /// InvaliDB candidate evaluations pruned by the predicate index; the
    /// pruning ratio is `pruned / (pruned + evaluations)`.
    pub match_evaluations_pruned: Counter,
    /// Queries the store's planner served via a hash-index probe.
    pub query_index_probes: Counter,
    /// Queries served via an ordered-index range scan.
    pub query_range_scans: Counter,
    /// Queries that fell back to the reference shard scan.
    pub query_full_scans: Counter,
    /// Queries whose sort was cut short (bounded top-k heap, or in-order
    /// index emission stopping at `offset + limit`).
    pub query_topk_short_circuits: Counter,
    /// Sum of planner-estimated result cardinalities over executed
    /// query plans (compare with `query_card_actual` to judge the cost
    /// model; the ratio seeds adaptive-TTL work).
    pub query_card_estimated: Counter,
    /// Sum of actual result cardinalities over the same executed plans.
    pub query_card_actual: Counter,
    registry: Registry,
}

impl Default for ServerMetrics {
    fn default() -> Self {
        let registry = Registry::new();
        ServerMetrics {
            record_reads: registry.counter("server.record_reads"),
            query_reads: registry.counter("server.query_reads"),
            writes: registry.counter("server.writes"),
            record_invalidations: registry.counter("server.record_invalidations"),
            query_invalidations: registry.counter("server.query_invalidations"),
            purges: registry.counter("server.purges"),
            ebf_snapshots: registry.counter("server.ebf_snapshots"),
            capacity_rejections: registry.counter("server.capacity_rejections"),
            tx_commits: registry.counter("server.tx_commits"),
            tx_aborts: registry.counter("server.tx_aborts"),
            match_evaluations: registry.counter("server.match_evaluations"),
            match_evaluations_pruned: registry.counter("server.match_evaluations_pruned"),
            query_index_probes: registry.counter("server.query_index_probes"),
            query_range_scans: registry.counter("server.query_range_scans"),
            query_full_scans: registry.counter("server.query_full_scans"),
            query_topk_short_circuits: registry.counter("server.query_topk_short_circuits"),
            query_card_estimated: registry.counter("server.query_card_estimated"),
            query_card_actual: registry.counter("server.query_card_actual"),
            registry,
        }
    }
}

/// Bump a counter by one (relaxed: metrics tolerate reordering).
pub(crate) fn bump(counter: &Counter) {
    counter.inc();
}

impl ServerMetrics {
    /// Snapshot all counters as (name, value) pairs for reporting.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("record_reads", self.record_reads.get()),
            ("query_reads", self.query_reads.get()),
            ("writes", self.writes.get()),
            ("record_invalidations", self.record_invalidations.get()),
            ("query_invalidations", self.query_invalidations.get()),
            ("purges", self.purges.get()),
            ("ebf_snapshots", self.ebf_snapshots.get()),
            ("capacity_rejections", self.capacity_rejections.get()),
            ("tx_commits", self.tx_commits.get()),
            ("tx_aborts", self.tx_aborts.get()),
            ("match_evaluations", self.match_evaluations.get()),
            (
                "match_evaluations_pruned",
                self.match_evaluations_pruned.get(),
            ),
            ("query_index_probes", self.query_index_probes.get()),
            ("query_range_scans", self.query_range_scans.get()),
            ("query_full_scans", self.query_full_scans.get()),
            (
                "query_topk_short_circuits",
                self.query_topk_short_circuits.get(),
            ),
            ("query_card_estimated", self.query_card_estimated.get()),
            ("query_card_actual", self.query_card_actual.get()),
        ]
    }

    /// The registry holding every `server.*` series of this instance.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// Share of candidate matches the predicate index pruned, in `[0, 1]`.
    /// `0.0` when nothing was matched yet.
    pub fn match_pruning_ratio(&self) -> f64 {
        let done = self.match_evaluations.load(Ordering::Relaxed) as f64;
        let pruned = self.match_evaluations_pruned.load(Ordering::Relaxed) as f64;
        if done + pruned == 0.0 {
            0.0
        } else {
            pruned / (done + pruned)
        }
    }

    /// Total origin reads (records + queries) — the backend load a cache
    /// layer is supposed to absorb.
    pub fn origin_reads(&self) -> u64 {
        self.record_reads.load(Ordering::Relaxed) + self.query_reads.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lists_all_counters() {
        let m = ServerMetrics::default();
        m.writes.fetch_add(3, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 18);
        assert!(snap.contains(&("writes", 3)));
        assert!(snap.contains(&("query_full_scans", 0)));
        assert!(snap.contains(&("query_card_estimated", 0)));
        assert_eq!(m.origin_reads(), 0);
    }

    #[test]
    fn pruning_ratio_is_safe_and_correct() {
        let m = ServerMetrics::default();
        assert_eq!(m.match_pruning_ratio(), 0.0, "no division by zero");
        m.match_evaluations.store(10, Ordering::Relaxed);
        m.match_evaluations_pruned.store(90, Ordering::Relaxed);
        assert!((m.match_pruning_ratio() - 0.9).abs() < 1e-12);
    }

    #[test]
    fn registry_snapshot_reflects_the_fields() {
        let m = ServerMetrics::default();
        m.writes.fetch_add(2, Ordering::Relaxed);
        m.query_card_estimated.add(10);
        m.query_card_actual.add(8);
        let snap = m.registry().snapshot();
        assert_eq!(snap.counter("server.writes"), Some(2));
        assert_eq!(snap.counter("server.query_card_estimated"), Some(10));
        assert_eq!(snap.counter("server.query_card_actual"), Some(8));
    }
}

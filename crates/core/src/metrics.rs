//! Server-side metrics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters for everything the evaluation section reports about
/// server behaviour.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Record reads answered by the origin (cache misses + revalidations).
    pub record_reads: AtomicU64,
    /// Query evaluations answered by the origin.
    pub query_reads: AtomicU64,
    /// Write operations processed.
    pub writes: AtomicU64,
    /// Record invalidations added to the EBF.
    pub record_invalidations: AtomicU64,
    /// Query invalidations (from InvaliDB notifications) added to the EBF.
    pub query_invalidations: AtomicU64,
    /// Purges dispatched to invalidation-based caches.
    pub purges: AtomicU64,
    /// EBF snapshots served to clients.
    pub ebf_snapshots: AtomicU64,
    /// Queries rejected by the capacity manager (served uncacheable).
    pub capacity_rejections: AtomicU64,
    /// Transactions committed.
    pub tx_commits: AtomicU64,
    /// Transactions aborted at validation.
    pub tx_aborts: AtomicU64,
}

/// Bump a counter by one (relaxed: metrics tolerate reordering).
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

impl ServerMetrics {
    /// Snapshot all counters as (name, value) pairs for reporting.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("record_reads", self.record_reads.load(Ordering::Relaxed)),
            ("query_reads", self.query_reads.load(Ordering::Relaxed)),
            ("writes", self.writes.load(Ordering::Relaxed)),
            (
                "record_invalidations",
                self.record_invalidations.load(Ordering::Relaxed),
            ),
            (
                "query_invalidations",
                self.query_invalidations.load(Ordering::Relaxed),
            ),
            ("purges", self.purges.load(Ordering::Relaxed)),
            ("ebf_snapshots", self.ebf_snapshots.load(Ordering::Relaxed)),
            (
                "capacity_rejections",
                self.capacity_rejections.load(Ordering::Relaxed),
            ),
            ("tx_commits", self.tx_commits.load(Ordering::Relaxed)),
            ("tx_aborts", self.tx_aborts.load(Ordering::Relaxed)),
        ]
    }

    /// Total origin reads (records + queries) — the backend load a cache
    /// layer is supposed to absorb.
    pub fn origin_reads(&self) -> u64 {
        self.record_reads.load(Ordering::Relaxed) + self.query_reads.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lists_all_counters() {
        let m = ServerMetrics::default();
        m.writes.fetch_add(3, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 10);
        assert!(snap.contains(&("writes", 3)));
        assert_eq!(m.origin_reads(), 0);
    }
}

//! Server-side metrics.

use std::sync::atomic::{AtomicU64, Ordering};

/// Atomic counters for everything the evaluation section reports about
/// server behaviour.
#[derive(Debug, Default)]
pub struct ServerMetrics {
    /// Record reads answered by the origin (cache misses + revalidations).
    pub record_reads: AtomicU64,
    /// Query evaluations answered by the origin.
    pub query_reads: AtomicU64,
    /// Write operations processed.
    pub writes: AtomicU64,
    /// Record invalidations added to the EBF.
    pub record_invalidations: AtomicU64,
    /// Query invalidations (from InvaliDB notifications) added to the EBF.
    pub query_invalidations: AtomicU64,
    /// Purges dispatched to invalidation-based caches.
    pub purges: AtomicU64,
    /// EBF snapshots served to clients.
    pub ebf_snapshots: AtomicU64,
    /// Queries rejected by the capacity manager (served uncacheable).
    pub capacity_rejections: AtomicU64,
    /// Transactions committed.
    pub tx_commits: AtomicU64,
    /// Transactions aborted at validation.
    pub tx_aborts: AtomicU64,
    /// InvaliDB match evaluations actually performed (grid total).
    pub match_evaluations: AtomicU64,
    /// InvaliDB candidate evaluations pruned by the predicate index; the
    /// pruning ratio is `pruned / (pruned + evaluations)`.
    pub match_evaluations_pruned: AtomicU64,
    /// Queries the store's planner served via a hash-index probe.
    pub query_index_probes: AtomicU64,
    /// Queries served via an ordered-index range scan.
    pub query_range_scans: AtomicU64,
    /// Queries that fell back to the reference shard scan.
    pub query_full_scans: AtomicU64,
    /// Queries whose sort was cut short (bounded top-k heap, or in-order
    /// index emission stopping at `offset + limit`).
    pub query_topk_short_circuits: AtomicU64,
}

/// Bump a counter by one (relaxed: metrics tolerate reordering).
pub(crate) fn bump(counter: &AtomicU64) {
    counter.fetch_add(1, Ordering::Relaxed);
}

impl ServerMetrics {
    /// Snapshot all counters as (name, value) pairs for reporting.
    pub fn snapshot(&self) -> Vec<(&'static str, u64)> {
        vec![
            ("record_reads", self.record_reads.load(Ordering::Relaxed)),
            ("query_reads", self.query_reads.load(Ordering::Relaxed)),
            ("writes", self.writes.load(Ordering::Relaxed)),
            (
                "record_invalidations",
                self.record_invalidations.load(Ordering::Relaxed),
            ),
            (
                "query_invalidations",
                self.query_invalidations.load(Ordering::Relaxed),
            ),
            ("purges", self.purges.load(Ordering::Relaxed)),
            ("ebf_snapshots", self.ebf_snapshots.load(Ordering::Relaxed)),
            (
                "capacity_rejections",
                self.capacity_rejections.load(Ordering::Relaxed),
            ),
            ("tx_commits", self.tx_commits.load(Ordering::Relaxed)),
            ("tx_aborts", self.tx_aborts.load(Ordering::Relaxed)),
            (
                "match_evaluations",
                self.match_evaluations.load(Ordering::Relaxed),
            ),
            (
                "match_evaluations_pruned",
                self.match_evaluations_pruned.load(Ordering::Relaxed),
            ),
            (
                "query_index_probes",
                self.query_index_probes.load(Ordering::Relaxed),
            ),
            (
                "query_range_scans",
                self.query_range_scans.load(Ordering::Relaxed),
            ),
            (
                "query_full_scans",
                self.query_full_scans.load(Ordering::Relaxed),
            ),
            (
                "query_topk_short_circuits",
                self.query_topk_short_circuits.load(Ordering::Relaxed),
            ),
        ]
    }

    /// Share of candidate matches the predicate index pruned, in `[0, 1]`.
    /// `0.0` when nothing was matched yet.
    pub fn match_pruning_ratio(&self) -> f64 {
        let done = self.match_evaluations.load(Ordering::Relaxed) as f64;
        let pruned = self.match_evaluations_pruned.load(Ordering::Relaxed) as f64;
        if done + pruned == 0.0 {
            0.0
        } else {
            pruned / (done + pruned)
        }
    }

    /// Total origin reads (records + queries) — the backend load a cache
    /// layer is supposed to absorb.
    pub fn origin_reads(&self) -> u64 {
        self.record_reads.load(Ordering::Relaxed) + self.query_reads.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn snapshot_lists_all_counters() {
        let m = ServerMetrics::default();
        m.writes.fetch_add(3, Ordering::Relaxed);
        let snap = m.snapshot();
        assert_eq!(snap.len(), 16);
        assert!(snap.contains(&("writes", 3)));
        assert!(snap.contains(&("query_full_scans", 0)));
        assert_eq!(m.origin_reads(), 0);
    }

    #[test]
    fn pruning_ratio_is_safe_and_correct() {
        let m = ServerMetrics::default();
        assert_eq!(m.match_pruning_ratio(), 0.0, "no division by zero");
        m.match_evaluations.store(10, Ordering::Relaxed);
        m.match_evaluations_pruned.store(90, Ordering::Relaxed);
        assert!((m.match_pruning_ratio() - 0.9).abs() < 1e-12);
    }
}

//! Server configuration.

use quaestor_bloom::BloomParams;
use quaestor_invalidb::ClusterConfig;
use quaestor_ttl::{CostModel, EstimatorConfig};

/// All tunables of a Quaestor deployment.
#[derive(Debug, Clone, Copy)]
pub struct ServerConfig {
    /// EBF geometry (per-table partitions all share it so the union
    /// works). Default: the 14.6 KB / one-TCP-congestion-window filter.
    pub bloom: BloomParams,
    /// TTL estimation tunables (quantile, EWMA α, clamps).
    pub estimator: EstimatorConfig,
    /// id-list vs object-list pricing.
    pub cost: CostModel,
    /// InvaliDB grid geometry and capacity.
    pub invalidb: ClusterConfig,
    /// Admission slots for actively matched queries (the capacity
    /// management model of §4.1).
    pub max_cached_queries: usize,
    /// Write-rate sampling window (ms).
    pub sampler_window_ms: u64,
    /// Max write timestamps kept per record by the sampler.
    pub sampler_max_samples: usize,
    /// Assumed per-record cache hit rate fed to the representation cost
    /// model (the paper measured "up to 60% for records" client-side).
    pub assumed_record_hit_rate: f64,
    /// Factor applied to a query's TTL for invalidation-based caches
    /// ("invalidation-based caches support dedicated TTLs", §2): purges
    /// make long CDN TTLs safe, so the default is 10x.
    pub invalidation_cache_ttl_factor: f64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            bloom: BloomParams::PAPER_DEFAULT,
            estimator: EstimatorConfig::default(),
            cost: CostModel::default(),
            invalidb: ClusterConfig::default(),
            max_cached_queries: 50_000,
            sampler_window_ms: 60_000,
            sampler_max_samples: 32,
            assumed_record_hit_rate: 0.6,
            invalidation_cache_ttl_factor: 10.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_coherent() {
        let c = ServerConfig::default();
        assert_eq!(c.bloom.byte_size(), 14_600);
        assert!(c.estimator.min_ttl_ms <= c.estimator.max_ttl_ms);
        assert!(c.invalidation_cache_ttl_factor >= 1.0);
        assert!((0.0..=1.0).contains(&c.assumed_record_hit_rate));
    }
}

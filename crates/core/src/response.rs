//! Cacheable origin responses.

use std::sync::Arc;

use bytes::Bytes;
use quaestor_common::{fx_hash_bytes, Version};
use quaestor_document::{Document, Value};
use quaestor_query::QueryKey;
use quaestor_ttl::Representation;

/// An origin response for one record read: everything a web cache needs
/// (body, ETag, TTL) plus the parsed document for in-process consumers.
#[derive(Debug, Clone)]
pub struct RecordResponse {
    /// Cache key (`r:<table>/<id>`).
    pub key: QueryKey,
    /// Serialized body (canonical JSON).
    pub body: Bytes,
    /// Version validator (the record version).
    pub etag: Version,
    /// Estimated freshness lifetime for expiration-based caches, ms.
    pub ttl_ms: u64,
    /// Dedicated TTL for invalidation-based caches, ms (longer: purges
    /// protect them).
    pub invalidation_ttl_ms: u64,
    /// The record itself.
    pub doc: Arc<Document>,
}

/// An origin response for one query.
#[derive(Debug, Clone)]
pub struct QueryResponse {
    /// Cache key (the normalized query string).
    pub key: QueryKey,
    /// Serialized body: the object-list (full documents) or id-list.
    pub body: Bytes,
    /// Version validator (hash over member ids+versions).
    pub etag: Version,
    /// Estimated freshness lifetime for expiration-based caches, ms.
    pub ttl_ms: u64,
    /// Dedicated TTL for invalidation-based caches, ms.
    pub invalidation_ttl_ms: u64,
    /// Chosen representation.
    pub representation: Representation,
    /// Member record ids, in result order.
    pub ids: Vec<String>,
    /// Member record versions, aligned with `ids`. Lets the SDK insert
    /// each member into its own cache as an individual entry ("all
    /// records in a result are inserted into the cache as individual
    /// entries, thus causing read cache hits by side effect", §6.2).
    pub versions: Vec<Version>,
    /// Member documents (present for both representations so in-process
    /// callers need no second round-trip; the *body* differs).
    pub docs: Vec<Arc<Document>>,
    /// Whether the query was admitted for caching (capacity manager). A
    /// non-cacheable response carries `ttl_ms == 0` and must not be
    /// stored by caches.
    pub cacheable: bool,
}

/// Serialize documents to the canonical JSON array body.
pub fn object_list_body(docs: &[Arc<Document>]) -> Bytes {
    let mut s = String::with_capacity(docs.len() * 64 + 2);
    s.push('[');
    for (i, d) in docs.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&Value::Object((**d).clone()).canonical());
    }
    s.push(']');
    Bytes::from(s)
}

/// Serialize an id-list body.
pub fn id_list_body(ids: &[String]) -> Bytes {
    let mut s = String::with_capacity(ids.len() * 12 + 2);
    s.push('[');
    for (i, id) in ids.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push('"');
        s.push_str(id);
        s.push('"');
    }
    s.push(']');
    Bytes::from(s)
}

/// ETag for a query result: a stable hash over `(id, version)` pairs.
pub fn result_etag(pairs: impl Iterator<Item = (String, Version)>) -> Version {
    let mut acc = String::new();
    for (id, v) in pairs {
        acc.push_str(&id);
        acc.push(':');
        acc.push_str(&v.to_string());
        acc.push(';');
    }
    fx_hash_bytes(acc.as_bytes())
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_document::doc;

    #[test]
    fn object_list_body_is_json_array() {
        let docs = vec![
            Arc::new(doc! { "_id" => "a", "n" => 1 }),
            Arc::new(doc! { "_id" => "b", "n" => 2 }),
        ];
        let body = object_list_body(&docs);
        let text = std::str::from_utf8(&body).unwrap();
        assert!(text.starts_with('[') && text.ends_with(']'));
        assert!(text.contains(r#""_id":"a""#) && text.contains(r#""n":2"#));
        // Valid JSON:
        let parsed: serde_json::Value = serde_json::from_str(text).unwrap();
        assert_eq!(parsed.as_array().unwrap().len(), 2);
    }

    #[test]
    fn id_list_body_is_json_array_of_strings() {
        let body = id_list_body(&["a".into(), "b".into()]);
        let parsed: serde_json::Value = serde_json::from_slice(&body).unwrap();
        assert_eq!(parsed, serde_json::json!(["a", "b"]));
    }

    #[test]
    fn empty_bodies() {
        assert_eq!(&object_list_body(&[])[..], b"[]");
        assert_eq!(&id_list_body(&[])[..], b"[]");
    }

    #[test]
    fn etag_changes_with_versions() {
        let a = result_etag([("x".to_string(), 1u64)].into_iter());
        let b = result_etag([("x".to_string(), 2u64)].into_iter());
        let c = result_etag([("y".to_string(), 1u64)].into_iter());
        assert_ne!(a, b);
        assert_ne!(a, c);
        let a2 = result_etag([("x".to_string(), 1u64)].into_iter());
        assert_eq!(a, a2, "deterministic");
    }
}

//! The typed request/response protocol between clients and the server
//! tier.
//!
//! The paper's architecture (Figure 3) is a *tiered request path*: client
//! SDK → expiration caches → invalidation caches/CDN → origin server.
//! Everything the SDK asks of the server tier is expressed as a
//! [`Request`] and answered with a [`Response`], carried by the
//! [`Service`] trait. That seam is where deployment topology lives:
//!
//! * [`QuaestorServer`] implements `Service` directly (one origin node);
//! * [`ShardRouter`] hash-partitions tables across N shared-nothing
//!   origin nodes behind the same trait;
//! * [`MetricsLayer`] (here) and `LatencyInjector` (in `quaestor-sim`)
//!   wrap any `Service` to observe or perturb the request stream;
//! * [`Request::Batch`] amortizes per-request overhead on the write path
//!   (one table resolution per run of writes instead of one per write).
//!
//! The client SDK (`quaestor-client`) speaks *only* `dyn Service`, so the
//! same client code runs unmodified against a single node, a sharded
//! cluster, or any middleware composition.

use std::sync::Arc;
use std::time::Instant;

use quaestor_bloom::BloomFilter;
use quaestor_common::{stable_bucket, Error, Histogram, Result, Timestamp, Version};
use quaestor_document::{Document, Update};
use quaestor_obs::{Counter, HistogramHandle, MetricsSnapshot, Registry};
use quaestor_query::{Query, QueryKey};
use quaestor_store::Table;

use crate::response::{QueryResponse, RecordResponse};
use crate::server::QuaestorServer;

/// One request against the Quaestor server tier.
#[derive(Debug, Clone)]
pub enum Request {
    /// Origin read of one record (cache miss or revalidation).
    GetRecord {
        /// Table name.
        table: String,
        /// Primary key.
        id: String,
    },
    /// Origin evaluation of a query.
    Query(Query),
    /// Insert a new record.
    Insert {
        /// Table name.
        table: String,
        /// Primary key.
        id: String,
        /// Document to store.
        doc: Document,
    },
    /// Partially update a record.
    Update {
        /// Table name.
        table: String,
        /// Primary key.
        id: String,
        /// Update operators.
        update: Update,
    },
    /// Replace a record wholesale.
    Replace {
        /// Table name.
        table: String,
        /// Primary key.
        id: String,
        /// Replacement document.
        doc: Document,
    },
    /// Delete a record.
    Delete {
        /// Table name.
        table: String,
        /// Primary key.
        id: String,
    },
    /// Fetch the Expiring Bloom Filter — the flat union when `table` is
    /// `None`, or one table's partition (the lower-FPR client option).
    EbfSnapshot {
        /// Restrict to one table's partition.
        table: Option<String>,
    },
    /// Execute several requests in one round trip. Sub-request results are
    /// reported individually and in order; writes take a fast path that
    /// amortizes table resolution across consecutive ops on one table.
    Batch(Vec<Request>),
    /// Subscribe to the real-time change stream of one cached query
    /// (§3.2's websocket alternative to EBF polling).
    Subscribe {
        /// The query (or record) key to watch.
        key: QueryKey,
    },
    /// Force the origin's write-ahead log to stable storage (group-commit
    /// drain + fsync). A no-op answered with LSN 0 on in-memory servers.
    Flush,
    /// Where does this node stand in its replication group? Answered by
    /// every node (a plain server reports [`ReplRole::Standalone`]); the
    /// failover router uses it both as a health probe and to elect the
    /// live node with the highest durable LSN.
    ReplicationStatus,
    /// Promote this node to primary for `epoch`. Only replication-aware
    /// nodes accept it (a plain server answers `BadRequest`); sent by the
    /// failover router to the election winner.
    Promote {
        /// The new epoch — must exceed every epoch the group has seen.
        epoch: u64,
    },
    /// Snapshot the node's unified metrics registry (server counters,
    /// per-kind service latencies, planner statistics). Answered by
    /// every node; a [`ShardRouter`] fans it out and merges per-shard
    /// snapshots under `shard<i>.` prefixes.
    Metrics,
}

impl Request {
    /// The table this request addresses — the shard-routing key. `None`
    /// for requests without a single home (flat EBF snapshots, batches).
    pub fn table(&self) -> Option<&str> {
        match self {
            Request::GetRecord { table, .. }
            | Request::Insert { table, .. }
            | Request::Update { table, .. }
            | Request::Replace { table, .. }
            | Request::Delete { table, .. } => Some(table),
            Request::Query(q) => Some(&q.table),
            Request::EbfSnapshot { table } => table.as_deref(),
            Request::Subscribe { key } => Some(key.table()),
            Request::Batch(_)
            | Request::Flush
            | Request::ReplicationStatus
            | Request::Promote { .. }
            | Request::Metrics => None,
        }
    }

    /// True for mutating requests.
    pub fn is_write(&self) -> bool {
        matches!(
            self,
            Request::Insert { .. }
                | Request::Update { .. }
                | Request::Replace { .. }
                | Request::Delete { .. }
        )
    }

    /// Short label for metrics and diagnostics.
    pub fn kind(&self) -> &'static str {
        match self {
            Request::GetRecord { .. } => "get_record",
            Request::Query(_) => "query",
            Request::Insert { .. } => "insert",
            Request::Update { .. } => "update",
            Request::Replace { .. } => "replace",
            Request::Delete { .. } => "delete",
            Request::EbfSnapshot { .. } => "ebf_snapshot",
            Request::Batch(_) => "batch",
            Request::Subscribe { .. } => "subscribe",
            Request::Flush => "flush",
            Request::ReplicationStatus => "replication_status",
            Request::Promote { .. } => "promote",
            Request::Metrics => "metrics",
        }
    }
}

/// A node's role in a replication group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplRole {
    /// Not participating in replication (a plain single node).
    Standalone,
    /// Accepts writes and ships WAL frames to its replicas.
    Primary,
    /// Applies shipped frames; writes are rejected (fencing).
    Replica,
}

/// Answer to [`Request::ReplicationStatus`]: where this node stands in
/// the replicated log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplicationStatus {
    /// The node's current role.
    pub role: ReplRole,
    /// The replication epoch the node believes is current (0 for a
    /// standalone node). Bumped by every promotion.
    pub epoch: u64,
    /// Highest LSN in the node's log (staged; not necessarily synced).
    pub last_lsn: u64,
    /// Highest LSN fsynced to the node's own stable storage — the
    /// election criterion.
    pub durable_lsn: u64,
}

/// The answer to one [`Request`]; variants pair with request variants.
#[derive(Debug)]
pub enum Response {
    /// Answer to [`Request::GetRecord`].
    Record(RecordResponse),
    /// Answer to [`Request::Query`].
    Query(QueryResponse),
    /// Answer to a successful insert/update/replace: the stored version
    /// and after-image (the SDK caches them for read-your-writes).
    Written {
        /// The record's new version (its ETag).
        version: Version,
        /// The after-image as stored.
        image: Arc<Document>,
    },
    /// Answer to a successful delete.
    Deleted {
        /// The version the deleted record had.
        version: Version,
    },
    /// Answer to [`Request::EbfSnapshot`].
    Ebf {
        /// The (possibly unioned) staleness filter.
        filter: BloomFilter,
        /// Filter generation time — the client's Δ reference point.
        at: Timestamp,
    },
    /// Answer to [`Request::Batch`]: one result per sub-request, in
    /// submission order. Sub-requests fail individually; the batch call
    /// itself only fails on transport-level problems.
    Batch(Vec<Result<Response>>),
    /// Answer to [`Request::Subscribe`].
    Stream(quaestor_kv::Subscription),
    /// Answer to [`Request::Flush`].
    Flushed {
        /// Highest log sequence number durable on disk (0 when the
        /// target server has no durability engine).
        lsn: u64,
    },
    /// Answer to [`Request::ReplicationStatus`] and [`Request::Promote`]
    /// (a successful promotion reports the node's new status).
    Replication(ReplicationStatus),
    /// Answer to [`Request::Metrics`]: the node's registry snapshot
    /// (plus, through middleware and routers, their merged series).
    Metrics(MetricsSnapshot),
}

fn unexpected(wanted: &str, got: &Response) -> Error {
    Error::Internal(format!(
        "protocol violation: expected {wanted} response, got {}",
        match got {
            Response::Record(_) => "Record",
            Response::Query(_) => "Query",
            Response::Written { .. } => "Written",
            Response::Deleted { .. } => "Deleted",
            Response::Ebf { .. } => "Ebf",
            Response::Batch(_) => "Batch",
            Response::Stream(_) => "Stream",
            Response::Flushed { .. } => "Flushed",
            Response::Replication(_) => "Replication",
            Response::Metrics(_) => "Metrics",
        }
    ))
}

/// A node in the request path: the origin server, a shard router, or any
/// middleware wrapping one of them.
pub trait Service: Send + Sync {
    /// Handle one request.
    fn call(&self, req: Request) -> Result<Response>;
}

impl<S: Service + ?Sized> Service for Arc<S> {
    fn call(&self, req: Request) -> Result<Response> {
        (**self).call(req)
    }
}

/// Typed convenience wrappers over [`Service::call`]. Blanket-implemented,
/// so they are available on `dyn Service` as well.
pub trait ServiceExt: Service {
    /// Read one record.
    fn get_record(&self, table: &str, id: &str) -> Result<RecordResponse> {
        match self.call(Request::GetRecord {
            table: table.to_owned(),
            id: id.to_owned(),
        })? {
            Response::Record(r) => Ok(r),
            other => Err(unexpected("Record", &other)),
        }
    }

    /// Evaluate a query.
    fn query(&self, query: &Query) -> Result<QueryResponse> {
        match self.call(Request::Query(query.clone()))? {
            Response::Query(r) => Ok(r),
            other => Err(unexpected("Query", &other)),
        }
    }

    /// Insert a record; returns version and after-image.
    fn insert(&self, table: &str, id: &str, doc: Document) -> Result<(Version, Arc<Document>)> {
        match self.call(Request::Insert {
            table: table.to_owned(),
            id: id.to_owned(),
            doc,
        })? {
            Response::Written { version, image } => Ok((version, image)),
            other => Err(unexpected("Written", &other)),
        }
    }

    /// Partially update a record; returns version and after-image.
    fn update(&self, table: &str, id: &str, update: &Update) -> Result<(Version, Arc<Document>)> {
        match self.call(Request::Update {
            table: table.to_owned(),
            id: id.to_owned(),
            update: update.clone(),
        })? {
            Response::Written { version, image } => Ok((version, image)),
            other => Err(unexpected("Written", &other)),
        }
    }

    /// Replace a record; returns version and after-image.
    fn replace(&self, table: &str, id: &str, doc: Document) -> Result<(Version, Arc<Document>)> {
        match self.call(Request::Replace {
            table: table.to_owned(),
            id: id.to_owned(),
            doc,
        })? {
            Response::Written { version, image } => Ok((version, image)),
            other => Err(unexpected("Written", &other)),
        }
    }

    /// Delete a record; returns the deleted version.
    fn delete(&self, table: &str, id: &str) -> Result<Version> {
        match self.call(Request::Delete {
            table: table.to_owned(),
            id: id.to_owned(),
        })? {
            Response::Deleted { version } => Ok(version),
            other => Err(unexpected("Deleted", &other)),
        }
    }

    /// Fetch the flat (all-tables) EBF with its generation time.
    ///
    /// (Named distinctly from `QuaestorServer::ebf_snapshot`, whose
    /// infallible signature predates the protocol layer: on an
    /// `Arc<QuaestorServer>` receiver trait methods would otherwise
    /// shadow the inherent ones.)
    fn fetch_ebf(&self) -> Result<(BloomFilter, Timestamp)> {
        match self.call(Request::EbfSnapshot { table: None })? {
            Response::Ebf { filter, at } => Ok((filter, at)),
            other => Err(unexpected("Ebf", &other)),
        }
    }

    /// Fetch one table's EBF partition.
    fn fetch_ebf_partition(&self, table: &str) -> Result<(BloomFilter, Timestamp)> {
        match self.call(Request::EbfSnapshot {
            table: Some(table.to_owned()),
        })? {
            Response::Ebf { filter, at } => Ok((filter, at)),
            other => Err(unexpected("Ebf", &other)),
        }
    }

    /// Execute a batch; returns per-request results in order.
    fn batch(&self, requests: Vec<Request>) -> Result<Vec<Result<Response>>> {
        match self.call(Request::Batch(requests))? {
            Response::Batch(results) => Ok(results),
            other => Err(unexpected("Batch", &other)),
        }
    }

    /// Flush the origin's WAL; returns the durable LSN (0 = in-memory).
    fn flush(&self) -> Result<u64> {
        match self.call(Request::Flush)? {
            Response::Flushed { lsn } => Ok(lsn),
            other => Err(unexpected("Flushed", &other)),
        }
    }

    /// The node's replication status — also the failover router's health
    /// probe (any node answers, whatever its role).
    fn replication_status(&self) -> Result<ReplicationStatus> {
        match self.call(Request::ReplicationStatus)? {
            Response::Replication(status) => Ok(status),
            other => Err(unexpected("Replication", &other)),
        }
    }

    /// Promote the node to primary for `epoch`; returns its new status.
    /// Refused (`BadRequest`) by nodes that are not replication-aware.
    fn promote(&self, epoch: u64) -> Result<ReplicationStatus> {
        match self.call(Request::Promote { epoch })? {
            Response::Replication(status) => Ok(status),
            other => Err(unexpected("Replication", &other)),
        }
    }

    /// Subscribe to a query's change stream.
    fn subscribe(&self, key: &QueryKey) -> Result<quaestor_kv::Subscription> {
        match self.call(Request::Subscribe { key: key.clone() })? {
            Response::Stream(sub) => Ok(sub),
            other => Err(unexpected("Stream", &other)),
        }
    }

    /// Snapshot the serving node's unified metrics registry (through a
    /// router: every shard, merged under `shard<i>.` prefixes).
    fn node_metrics(&self) -> Result<MetricsSnapshot> {
        match self.call(Request::Metrics)? {
            Response::Metrics(snap) => Ok(snap),
            other => Err(unexpected("Metrics", &other)),
        }
    }
}

impl<S: Service + ?Sized> ServiceExt for S {}

impl Service for QuaestorServer {
    fn call(&self, req: Request) -> Result<Response> {
        match req {
            Request::GetRecord { table, id } => self.get_record(&table, &id).map(Response::Record),
            Request::Query(query) => self.query(&query).map(Response::Query),
            Request::Insert { table, id, doc } => self
                .insert(&table, &id, doc)
                .map(|(version, image)| Response::Written { version, image }),
            Request::Update { table, id, update } => self
                .update(&table, &id, &update)
                .map(|(version, image)| Response::Written { version, image }),
            Request::Replace { table, id, doc } => self
                .replace(&table, &id, doc)
                .map(|(version, image)| Response::Written { version, image }),
            Request::Delete { table, id } => self
                .delete(&table, &id)
                .map(|version| Response::Deleted { version }),
            Request::EbfSnapshot { table } => {
                let (filter, at) = match table {
                    Some(t) => self.ebf_partition_snapshot(&t),
                    None => self.ebf_snapshot(),
                };
                Ok(Response::Ebf { filter, at })
            }
            Request::Batch(requests) => Ok(Response::Batch(self.call_batch(requests))),
            Request::Subscribe { key } => Ok(Response::Stream(self.subscribe_query_stream(&key))),
            Request::Flush => self.flush().map(|lsn| Response::Flushed { lsn }),
            Request::ReplicationStatus => {
                // A plain server is its own one-node "group": standalone,
                // epoch 0, log positions from its engine (0 = in-memory).
                let (last_lsn, durable_lsn) = match self.durability() {
                    Some(engine) => (engine.last_lsn(), engine.durable_lsn()),
                    None => (0, 0),
                };
                Ok(Response::Replication(ReplicationStatus {
                    role: if self.is_replica() {
                        ReplRole::Replica
                    } else {
                        ReplRole::Standalone
                    },
                    epoch: 0,
                    last_lsn,
                    durable_lsn,
                }))
            }
            Request::Promote { .. } => Err(Error::BadRequest(
                "promote: this node is not replication-aware".to_owned(),
            )),
            Request::Metrics => Ok(Response::Metrics(self.metrics_snapshot())),
        }
    }
}

impl QuaestorServer {
    /// The batch fast path. Reads and nested batches dispatch through the
    /// normal path; consecutive writes to one table resolve the table
    /// handle (a lock on the database's table map) once per run instead
    /// of once per write. Each write still flows through the full
    /// invalidation pipeline, and results are reported per-op in
    /// submission order.
    fn call_batch(&self, requests: Vec<Request>) -> Vec<Result<Response>> {
        let mut out = Vec::with_capacity(requests.len());
        let mut cached: Option<(String, Arc<Table>)> = None;
        for req in requests {
            if !req.is_write() {
                cached = None;
                out.push(self.call(req));
                continue;
            }
            // analyze: allow(unwrap-in-io-crate) is_write() variants all structurally carry a table name
            let table_name = req.table().expect("writes always carry a table").to_owned();
            let handle = match &cached {
                Some((name, t)) if *name == table_name => t.clone(),
                _ => {
                    // Inserts may create the table; other writes require it.
                    let resolved = if matches!(req, Request::Insert { .. }) {
                        Ok(self.database().create_table(&table_name))
                    } else {
                        self.database().table(&table_name)
                    };
                    match resolved {
                        Ok(t) => {
                            cached = Some((table_name.clone(), t.clone()));
                            t
                        }
                        Err(e) => {
                            cached = None;
                            out.push(Err(e));
                            continue;
                        }
                    }
                }
            };
            let result = match req {
                Request::Insert { id, doc, .. } => handle.insert(&id, doc),
                Request::Update { id, update, .. } => handle.update(&id, &update, None),
                Request::Replace { id, doc, .. } => handle.replace(&id, doc, None),
                Request::Delete { id, .. } => handle.delete(&id, None),
                _ => unreachable!("is_write() covers exactly the four write variants"),
            };
            out.push(result.map(|event| {
                self.after_write(&event);
                if matches!(event.kind, quaestor_store::WriteKind::Delete) {
                    Response::Deleted {
                        version: event.version,
                    }
                } else {
                    Response::Written {
                        version: event.version,
                        image: event.image,
                    }
                }
            }));
        }
        out
    }
}

/// The request kinds tracked by per-kind latency histograms, in slot
/// order ([`Request::kind`] strings).
const LATENCY_KINDS: [&str; 13] = [
    "get_record",
    "query",
    "insert",
    "update",
    "replace",
    "delete",
    "ebf_snapshot",
    "batch",
    "subscribe",
    "flush",
    "replication_status",
    "promote",
    "metrics",
];

fn latency_slot(kind: &str) -> Option<usize> {
    LATENCY_KINDS.iter().position(|k| *k == kind)
}

/// The static `service.*` span name for a request kind (span names are
/// `&'static str`; formatting one per call would allocate on the hot
/// path even with tracing off).
fn service_span_name(kind: &str) -> &'static str {
    match kind {
        "get_record" => "service.get_record",
        "query" => "service.query",
        "insert" => "service.insert",
        "update" => "service.update",
        "replace" => "service.replace",
        "delete" => "service.delete",
        "ebf_snapshot" => "service.ebf_snapshot",
        "batch" => "service.batch",
        "subscribe" => "service.subscribe",
        "flush" => "service.flush",
        "replication_status" => "service.replication_status",
        "promote" => "service.promote",
        "metrics" => "service.metrics",
        _ => "service.other",
    }
}

/// Per-kind call counters for a [`MetricsLayer`].
///
/// Every field is a registry handle: counters live on the layer's own
/// [`Registry`] under `service.*` names, latency histograms under
/// `service.latency.<kind>`. The fields keep their historical atomic
/// API ([`Counter`] carries `load`/`store`/`fetch_add` shims), so call
/// sites written against the pre-registry struct compile unchanged.
#[derive(Debug)]
pub struct ServiceMetrics {
    /// `GetRecord` calls.
    pub record_reads: Counter,
    /// `Query` calls.
    pub queries: Counter,
    /// Write calls (insert/update/replace/delete), top-level only.
    pub writes: Counter,
    /// `EbfSnapshot` calls.
    pub ebf_snapshots: Counter,
    /// `Batch` calls.
    pub batches: Counter,
    /// Total sub-requests carried by batches, counted recursively
    /// through nested batches (a nested batch contributes itself plus
    /// its contents).
    pub batched_ops: Counter,
    /// `Subscribe` calls.
    pub subscribes: Counter,
    /// `Flush` calls.
    pub flushes: Counter,
    /// Replication control-plane calls (`ReplicationStatus` + `Promote`).
    pub repl_controls: Counter,
    /// `Metrics` (registry snapshot) calls.
    pub metrics_requests: Counter,
    /// Calls that returned an error.
    pub errors: Counter,
    /// Per-request-kind call latency in **microseconds**, one slot per
    /// [`Request::kind`] (`LATENCY_KINDS` order). A fixed array of
    /// per-kind handles rather than one shared map: the hot path takes
    /// only the lock of the kind it records, so callers of different
    /// kinds never contend.
    latencies: [HistogramHandle; LATENCY_KINDS.len()],
    registry: Registry,
}

impl Default for ServiceMetrics {
    fn default() -> Self {
        let registry = Registry::new();
        ServiceMetrics {
            record_reads: registry.counter("service.record_reads"),
            queries: registry.counter("service.queries"),
            writes: registry.counter("service.writes"),
            ebf_snapshots: registry.counter("service.ebf_snapshots"),
            batches: registry.counter("service.batches"),
            batched_ops: registry.counter("service.batched_ops"),
            subscribes: registry.counter("service.subscribes"),
            flushes: registry.counter("service.flushes"),
            repl_controls: registry.counter("service.repl_controls"),
            metrics_requests: registry.counter("service.metrics_requests"),
            errors: registry.counter("service.errors"),
            latencies: std::array::from_fn(|i| {
                registry.histogram(&format!("service.latency.{}", LATENCY_KINDS[i]))
            }),
            registry,
        }
    }
}

impl ServiceMetrics {
    /// Total top-level calls observed.
    pub fn total_calls(&self) -> u64 {
        self.record_reads.get()
            + self.queries.get()
            + self.writes.get()
            + self.ebf_snapshots.get()
            + self.batches.get()
            + self.subscribes.get()
            + self.flushes.get()
            + self.repl_controls.get()
            + self.metrics_requests.get()
    }

    /// Record one call's latency under its request kind.
    pub fn record_latency(&self, kind: &str, micros: u64) {
        if let Some(slot) = latency_slot(kind) {
            self.latencies[slot].record(micros);
        }
    }

    /// Snapshot of one request kind's latency histogram (µs), if any
    /// call of that kind has been observed.
    pub fn latency(&self, kind: &str) -> Option<Histogram> {
        let h = self.latencies[latency_slot(kind)?].snapshot();
        if h.count() == 0 {
            return None;
        }
        Some(h)
    }

    /// The registry holding every `service.*` series of this instance.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// `(p50, p95, p99)` latency in microseconds for one request kind.
    pub fn latency_percentiles(&self, kind: &str) -> Option<(u64, u64, u64)> {
        // `latency` returns `None` for an empty histogram, so every
        // quantile below is `Some`; `unwrap_or` keeps this panic-free.
        self.latency(kind).map(|h| {
            (
                h.percentile(0.50).unwrap_or(0),
                h.percentile(0.95).unwrap_or(0),
                h.percentile(0.99).unwrap_or(0),
            )
        })
    }

    /// All-kinds latency histogram (µs), merged via
    /// [`Histogram::merge`] — the same mechanism `RemoteService` uses to
    /// aggregate per-connection histograms.
    pub fn merged_latency(&self) -> Histogram {
        let mut merged = Histogram::new();
        for slot in &self.latencies {
            merged.merge(&slot.snapshot());
        }
        merged
    }

    /// Merge another metrics object's latency observations into this
    /// one (aggregation across layers, shards, or processes).
    pub fn merge_latency_from(&self, other: &ServiceMetrics) {
        for (ours, theirs) in self.latencies.iter().zip(&other.latencies) {
            let theirs = theirs.snapshot();
            if theirs.count() > 0 {
                ours.merge_from(&theirs);
            }
        }
    }
}

/// Middleware that counts requests flowing to an inner [`Service`].
pub struct MetricsLayer {
    inner: Arc<dyn Service>,
    metrics: ServiceMetrics,
}

impl std::fmt::Debug for MetricsLayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MetricsLayer")
            .field("calls", &self.metrics.total_calls())
            .finish()
    }
}

impl MetricsLayer {
    /// Wrap `inner`.
    pub fn new(inner: Arc<dyn Service>) -> Arc<MetricsLayer> {
        Arc::new(MetricsLayer {
            inner,
            metrics: ServiceMetrics::default(),
        })
    }

    /// Observed counters.
    pub fn metrics(&self) -> &ServiceMetrics {
        &self.metrics
    }
}

impl Service for MetricsLayer {
    fn call(&self, req: Request) -> Result<Response> {
        let kind = req.kind();
        let _span = quaestor_obs::span(service_span_name(kind));
        let counter = match &req {
            Request::GetRecord { .. } => &self.metrics.record_reads,
            Request::Query(_) => &self.metrics.queries,
            Request::Insert { .. }
            | Request::Update { .. }
            | Request::Replace { .. }
            | Request::Delete { .. } => &self.metrics.writes,
            Request::EbfSnapshot { .. } => &self.metrics.ebf_snapshots,
            Request::Batch(ops) => {
                fn count_ops(ops: &[Request]) -> u64 {
                    ops.iter()
                        .map(|op| match op {
                            Request::Batch(inner) => 1 + count_ops(inner),
                            _ => 1,
                        })
                        .sum()
                }
                self.metrics.batched_ops.add(count_ops(ops));
                &self.metrics.batches
            }
            Request::Subscribe { .. } => &self.metrics.subscribes,
            Request::Flush => &self.metrics.flushes,
            Request::ReplicationStatus | Request::Promote { .. } => &self.metrics.repl_controls,
            Request::Metrics => &self.metrics.metrics_requests,
        };
        counter.inc();
        let started = Instant::now();
        let result = self.inner.call(req);
        self.metrics
            .record_latency(kind, started.elapsed().as_micros() as u64);
        if result.is_err() {
            self.metrics.errors.inc();
        }
        // A metrics snapshot flowing through this layer picks up the
        // layer's own `service.*` series — one request reports the whole
        // stack, however it is composed.
        match result {
            Ok(Response::Metrics(mut snap)) => {
                snap.merge_prefixed("", self.metrics.registry.snapshot());
                Ok(Response::Metrics(snap))
            }
            other => other,
        }
    }
}

/// A shared-nothing cluster front: hash-partitions *tables* across N
/// origin nodes. Every request with a table routes to the owning shard;
/// flat EBF snapshots fan out to all shards and union the filters;
/// batches split per shard (preserving per-shard order, so each shard
/// still gets the batch write fast path) and reassemble results in
/// submission order.
pub struct ShardRouter {
    shards: Vec<Arc<dyn Service>>,
}

impl std::fmt::Debug for ShardRouter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ShardRouter")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl ShardRouter {
    /// Build a router over `shards` (at least one).
    pub fn new(shards: Vec<Arc<dyn Service>>) -> Arc<ShardRouter> {
        assert!(!shards.is_empty(), "ShardRouter needs at least one shard");
        Arc::new(ShardRouter { shards })
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// The shard index owning `table` (stable across calls and processes:
    /// keyed by the workspace's stable hash with avalanche finalization).
    pub fn shard_for(&self, table: &str) -> usize {
        stable_bucket(table.as_bytes(), self.shards.len() as u64) as usize
    }

    fn fan_out_ebf(&self) -> Result<Response> {
        let mut union: Option<(BloomFilter, Timestamp)> = None;
        for shard in &self.shards {
            let (filter, at) = shard.fetch_ebf()?;
            union = Some(match union {
                None => (filter, at),
                Some((mut acc, acc_at)) => {
                    // Union is only defined across identical geometries
                    // (`union_with` asserts); a misconfigured cluster must
                    // surface as a protocol error, not a panic.
                    if acc.params() != filter.params() {
                        return Err(Error::Internal(format!(
                            "EBF geometry mismatch across shards: {:?} vs {:?} — \
                             all shards must share BloomParams",
                            acc.params(),
                            filter.params()
                        )));
                    }
                    acc.union_with(&filter);
                    // The *oldest* generation bounds the client's Δ, so it
                    // is the honest timestamp for the union.
                    (acc, acc_at.min(at))
                }
            });
        }
        // analyze: allow(unwrap-in-io-crate) shard count is asserted nonzero at construction
        let (filter, at) = union.expect("at least one shard");
        Ok(Response::Ebf { filter, at })
    }

    /// Merge every shard's registry snapshot under a `shard<i>.` prefix
    /// — one `Metrics` request observes the whole cluster.
    fn fan_out_metrics(&self) -> Result<Response> {
        let mut merged = MetricsSnapshot::default();
        for (i, shard) in self.shards.iter().enumerate() {
            match shard.call(Request::Metrics)? {
                Response::Metrics(snap) => merged.merge_prefixed(&format!("shard{i}."), snap),
                other => return Err(unexpected("Metrics", &other)),
            }
        }
        Ok(Response::Metrics(merged))
    }

    /// A flush must drain **every** shard's log before the cluster can
    /// claim durability; report the minimum durable LSN — the honest
    /// cluster-wide bound (LSNs are per-shard sequences, so any scalar is
    /// a convention; the minimum never overstates).
    fn fan_out_flush(&self) -> Result<Response> {
        let mut lsn = u64::MAX;
        for shard in &self.shards {
            lsn = lsn.min(shard.flush()?);
        }
        Ok(Response::Flushed { lsn })
    }

    fn split_batch(&self, requests: Vec<Request>) -> Result<Response> {
        let mut slots: Vec<Option<Result<Response>>> = Vec::new();
        slots.resize_with(requests.len(), || None);
        let mut pending: Vec<Vec<(usize, Request)>> = vec![Vec::new(); self.shards.len()];
        for (pos, req) in requests.into_iter().enumerate() {
            match req.table() {
                // Routable sub-requests accumulate into per-shard runs
                // (preserving per-shard order, so each shard still gets
                // the batch write fast path). Requests on different
                // shards touch disjoint tables, so only their relative
                // order to *global* requests below can be observed.
                Some(table) => pending[self.shard_for(table)].push((pos, req)),
                // Table-less sub-requests (nested batches, flat EBF
                // snapshots) observe every shard, so they are a barrier:
                // flush all accumulated runs first, exactly matching the
                // strict submission order a single node would execute.
                None => {
                    self.flush_pending(&mut pending, &mut slots)?;
                    slots[pos] = Some(self.call(req));
                }
            }
        }
        self.flush_pending(&mut pending, &mut slots)?;
        Ok(Response::Batch(
            slots
                .into_iter()
                // analyze: allow(unwrap-in-io-crate) flush_pending fills every slot exactly once by construction
                .map(|s| s.expect("every position filled exactly once"))
                .collect(),
        ))
    }

    /// Dispatch every accumulated per-shard run and file the results into
    /// their submission-order slots.
    fn flush_pending(
        &self,
        pending: &mut [Vec<(usize, Request)>],
        slots: &mut [Option<Result<Response>>],
    ) -> Result<()> {
        for (shard, work) in self.shards.iter().zip(pending.iter_mut()) {
            if work.is_empty() {
                continue;
            }
            let (positions, reqs): (Vec<usize>, Vec<Request>) =
                std::mem::take(work).into_iter().unzip();
            let results = shard.batch(reqs)?;
            if results.len() != positions.len() {
                return Err(Error::Internal(format!(
                    "shard returned {} batch results for {} requests",
                    results.len(),
                    positions.len()
                )));
            }
            for (pos, result) in positions.into_iter().zip(results) {
                slots[pos] = Some(result);
            }
        }
        Ok(())
    }
}

impl Service for ShardRouter {
    fn call(&self, req: Request) -> Result<Response> {
        let _span = quaestor_obs::span("router.route");
        match req {
            Request::Batch(requests) => self.split_batch(requests),
            Request::EbfSnapshot { table: None } => self.fan_out_ebf(),
            Request::Flush => self.fan_out_flush(),
            Request::Metrics => self.fan_out_metrics(),
            req => match req.table() {
                Some(table) => self.shards[self.shard_for(table)].call(req),
                None => Err(Error::BadRequest(format!(
                    "cannot route table-less request '{}'",
                    req.kind()
                ))),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::ManualClock;
    use quaestor_document::{doc, Value};
    use quaestor_query::Filter;
    use std::sync::atomic::Ordering;

    fn server() -> Arc<QuaestorServer> {
        QuaestorServer::with_defaults(ManualClock::new())
    }

    #[test]
    fn request_table_routing_keys() {
        let q = Request::Query(Query::table("posts"));
        assert_eq!(q.table(), Some("posts"));
        let w = Request::Insert {
            table: "users".into(),
            id: "u1".into(),
            doc: doc! {},
        };
        assert_eq!(w.table(), Some("users"));
        assert!(w.is_write());
        let s = Request::Subscribe {
            key: QueryKey::record("orders", "o1"),
        };
        assert_eq!(s.table(), Some("orders"));
        assert_eq!(Request::EbfSnapshot { table: None }.table(), None);
        assert_eq!(Request::Batch(Vec::new()).table(), None);
    }

    #[test]
    fn server_roundtrips_each_variant() {
        let s = server();
        let svc: &dyn Service = &*s;
        let (v, image) = svc.insert("t", "a", doc! { "n" => 1 }).unwrap();
        assert_eq!(v, 1);
        assert_eq!(image["n"], Value::Int(1));
        let r = svc.get_record("t", "a").unwrap();
        assert_eq!(r.etag, 1);
        let (v2, _) = svc.update("t", "a", &Update::new().inc("n", 1.0)).unwrap();
        assert_eq!(v2, 2);
        let (v3, image) = svc.replace("t", "a", doc! { "n" => 9 }).unwrap();
        assert_eq!(v3, 3);
        assert_eq!(image["n"], Value::Int(9));
        let q = Query::table("t").filter(Filter::eq("n", 9));
        let qr = svc.query(&q).unwrap();
        assert_eq!(qr.ids, vec!["a"]);
        let (ebf, _) = svc.fetch_ebf().unwrap();
        assert!(!ebf.contains(b"nothing-stale-here"));
        let sub = svc.subscribe(&QueryKey::of(&q)).unwrap();
        assert_eq!(svc.delete("t", "a").unwrap(), 3);
        assert!(sub.try_recv().is_some(), "delete notified the stream");
        assert!(svc.get_record("t", "a").is_err());
    }

    #[test]
    fn batch_applies_in_order_with_per_op_results() {
        let s = server();
        let svc: &dyn Service = &*s;
        let results = svc
            .batch(vec![
                Request::Insert {
                    table: "t".into(),
                    id: "a".into(),
                    doc: doc! { "n" => 1 },
                },
                Request::Update {
                    table: "t".into(),
                    id: "a".into(),
                    update: Update::new().inc("n", 1.0),
                },
                Request::Delete {
                    table: "t".into(),
                    id: "missing".into(),
                },
                Request::GetRecord {
                    table: "t".into(),
                    id: "a".into(),
                },
            ])
            .unwrap();
        assert_eq!(results.len(), 4);
        assert!(matches!(
            results[0],
            Ok(Response::Written { version: 1, .. })
        ));
        assert!(matches!(
            results[1],
            Ok(Response::Written { version: 2, .. })
        ));
        assert!(matches!(results[2], Err(Error::NotFound { .. })));
        match &results[3] {
            Ok(Response::Record(r)) => {
                // Ordering: the read observes the earlier update.
                assert_eq!(r.doc["n"], Value::Int(2));
            }
            other => panic!("expected record, got {other:?}"),
        }
    }

    #[test]
    fn batch_writes_drive_the_invalidation_pipeline() {
        let s = server();
        let svc: &dyn Service = &*s;
        svc.insert("t", "a", doc! { "tag" => "hot" }).unwrap();
        let q = Query::table("t").filter(Filter::eq("tag", "hot"));
        let resp = svc.query(&q).unwrap();
        svc.batch(vec![Request::Update {
            table: "t".into(),
            id: "a".into(),
            update: Update::new().set("tag", "cold"),
        }])
        .unwrap();
        let (flat, _) = svc.fetch_ebf().unwrap();
        assert!(
            flat.contains(resp.key.as_str().as_bytes()),
            "batched write must invalidate like a singleton write"
        );
    }

    #[test]
    fn flush_routes_through_service_and_router() {
        // In-memory single node: flush is the LSN-0 no-op.
        let s = server();
        let svc: &dyn Service = &*s;
        assert_eq!(svc.flush().unwrap(), 0);
        assert_eq!(Request::Flush.table(), None, "flush is table-less");
        assert!(!Request::Flush.is_write());
        // Routed: fans out to every shard (all in-memory here -> min 0),
        // and inside a batch it acts as a barrier like other table-less
        // requests.
        let (router, _servers) = cluster(2);
        let svc: &dyn Service = &*router;
        assert_eq!(svc.flush().unwrap(), 0);
        let results = svc
            .batch(vec![
                Request::Insert {
                    table: "t".into(),
                    id: "a".into(),
                    doc: doc! { "n" => 1 },
                },
                Request::Flush,
            ])
            .unwrap();
        assert!(matches!(results[0], Ok(Response::Written { .. })));
        assert!(matches!(results[1], Ok(Response::Flushed { .. })));
    }

    #[test]
    fn plain_server_answers_replication_status_and_refuses_promote() {
        let s = server();
        let svc: &dyn Service = &*s;
        let status = svc.replication_status().unwrap();
        assert_eq!(status.role, ReplRole::Standalone);
        assert_eq!(status.epoch, 0);
        assert_eq!((status.last_lsn, status.durable_lsn), (0, 0), "in-memory");
        let err = svc.promote(1).unwrap_err();
        assert!(matches!(err, Error::BadRequest(_)), "got: {err}");
        assert_eq!(Request::ReplicationStatus.table(), None);
        assert_eq!(Request::Promote { epoch: 1 }.table(), None);
        assert!(!Request::ReplicationStatus.is_write());
        assert!(!Request::Promote { epoch: 1 }.is_write());
    }

    #[test]
    fn metrics_layer_counts_by_kind() {
        let s = server();
        let layer = MetricsLayer::new(s);
        let svc: &dyn Service = &*layer;
        svc.insert("t", "a", doc! { "n" => 1 }).unwrap();
        svc.get_record("t", "a").unwrap();
        let _ = svc.get_record("t", "missing");
        svc.query(&Query::table("t")).unwrap();
        svc.batch(vec![
            Request::GetRecord {
                table: "t".into(),
                id: "a".into(),
            },
            Request::GetRecord {
                table: "t".into(),
                id: "a".into(),
            },
        ])
        .unwrap();
        let m = layer.metrics();
        assert_eq!(m.writes.load(Ordering::Relaxed), 1);
        assert_eq!(m.record_reads.load(Ordering::Relaxed), 2);
        assert_eq!(m.queries.load(Ordering::Relaxed), 1);
        assert_eq!(m.batches.load(Ordering::Relaxed), 1);
        assert_eq!(m.batched_ops.load(Ordering::Relaxed), 2);
        assert_eq!(m.errors.load(Ordering::Relaxed), 1);
        assert_eq!(m.total_calls(), 5);
    }

    #[test]
    fn metrics_layer_records_per_kind_latency_histograms() {
        let s = server();
        let layer = MetricsLayer::new(s);
        let svc: &dyn Service = &*layer;
        for i in 0..10 {
            svc.insert("t", &format!("r{i}"), doc! { "n" => i })
                .unwrap();
        }
        svc.get_record("t", "r0").unwrap();
        let m = layer.metrics();
        let writes = m.latency("insert").expect("inserts were observed");
        assert_eq!(writes.count(), 10);
        let (p50, p95, p99) = m.latency_percentiles("insert").unwrap();
        assert!(p50 <= p95 && p95 <= p99);
        assert!(m.latency("get_record").unwrap().count() == 1);
        assert!(m.latency("query").is_none(), "no queries ran");
        assert_eq!(m.merged_latency().count(), 11);
        // Aggregation across metrics objects (shards / connections).
        let other = ServiceMetrics::default();
        other.record_latency("insert", 5);
        m.merge_latency_from(&other);
        assert_eq!(m.latency("insert").unwrap().count(), 11);
    }

    #[test]
    fn metrics_request_snapshots_the_unified_registry() {
        let s = server();
        let layer = MetricsLayer::new(s);
        let svc: &dyn Service = &*layer;
        svc.insert("t", "a", doc! { "n" => 1 }).unwrap();
        svc.get_record("t", "a").unwrap();
        let snap = svc.node_metrics().unwrap();
        // The snapshot unifies the origin's counters and the layer's own
        // series in one response.
        assert_eq!(snap.counter("server.writes"), Some(1));
        assert_eq!(snap.counter("service.writes"), Some(1));
        assert_eq!(snap.counter("service.record_reads"), Some(1));
        assert!(snap.histogram("service.latency.insert").unwrap().count >= 1);
        assert!(snap.render_text().starts_with("# quaestor metrics v1\n"));
        // `Metrics` requests count like any other call kind.
        svc.node_metrics().unwrap();
        assert_eq!(layer.metrics().metrics_requests.get(), 2);
        assert_eq!(layer.metrics().total_calls(), 4);
    }

    #[test]
    fn metrics_fan_out_prefixes_per_shard_series() {
        let (router, _servers) = cluster(2);
        let svc: &dyn Service = &*router;
        svc.insert("t", "a", doc! { "n" => 1 }).unwrap();
        let shard = router.shard_for("t");
        let snap = svc.node_metrics().unwrap();
        assert_eq!(
            snap.counter(&format!("shard{shard}.server.writes")),
            Some(1)
        );
        assert_eq!(
            snap.counter(&format!("shard{}.server.writes", 1 - shard)),
            Some(0)
        );
    }

    fn cluster(n: usize) -> (Arc<ShardRouter>, Vec<Arc<QuaestorServer>>) {
        let clock = ManualClock::new();
        let servers: Vec<Arc<QuaestorServer>> = (0..n)
            .map(|_| QuaestorServer::with_defaults(clock.clone()))
            .collect();
        let router = ShardRouter::new(
            servers
                .iter()
                .map(|s| s.clone() as Arc<dyn Service>)
                .collect(),
        );
        (router, servers)
    }

    #[test]
    fn table_less_requests_are_ordering_barriers_in_routed_batches() {
        let (router, _servers) = cluster(2);
        let svc: &dyn Service = &*router;
        // Warm the EBF residency for the record, then batch an
        // invalidating update followed by a flat EBF snapshot: the
        // snapshot must observe the update, exactly as on a single node.
        svc.insert("t", "x", doc! { "n" => 1 }).unwrap();
        svc.get_record("t", "x").unwrap();
        let results = svc
            .batch(vec![
                Request::Update {
                    table: "t".into(),
                    id: "x".into(),
                    update: Update::new().inc("n", 1.0),
                },
                Request::EbfSnapshot { table: None },
            ])
            .unwrap();
        match &results[1] {
            Ok(Response::Ebf { filter, .. }) => assert!(
                filter.contains(QueryKey::record("t", "x").as_str().as_bytes()),
                "the in-batch snapshot must see the earlier in-batch write"
            ),
            other => panic!("expected Ebf, got {other:?}"),
        }
        // Nested batches barrier too: the inner read sees the outer
        // insert that precedes it.
        let results = svc
            .batch(vec![
                Request::Insert {
                    table: "t".into(),
                    id: "y".into(),
                    doc: doc! { "n" => 7 },
                },
                Request::Batch(vec![Request::GetRecord {
                    table: "t".into(),
                    id: "y".into(),
                }]),
            ])
            .unwrap();
        match &results[1] {
            Ok(Response::Batch(inner)) => match &inner[0] {
                Ok(Response::Record(r)) => assert_eq!(r.doc["n"], Value::Int(7)),
                other => panic!("nested read must see the insert, got {other:?}"),
            },
            other => panic!("expected nested batch, got {other:?}"),
        }
    }

    #[test]
    fn heterogeneous_ebf_geometry_is_an_error_not_a_panic() {
        let clock = ManualClock::new();
        let odd_cfg = crate::config::ServerConfig {
            bloom: quaestor_bloom::BloomParams { m_bits: 512, k: 3 },
            ..Default::default()
        };
        let odd = QuaestorServer::new(
            quaestor_store::Database::with_clock(clock.clone()),
            odd_cfg,
            clock.clone(),
        );
        let normal = QuaestorServer::with_defaults(clock.clone());
        let router = ShardRouter::new(vec![odd as Arc<dyn Service>, normal as Arc<dyn Service>]);
        let err = router.fetch_ebf().unwrap_err();
        assert!(err.to_string().contains("geometry mismatch"), "got: {err}");
    }

    #[test]
    fn shard_routing_is_stable_and_spreads_tables() {
        let (router, _servers) = cluster(4);
        for table in ["posts", "users", "orders", "events"] {
            let first = router.shard_for(table);
            for _ in 0..10 {
                assert_eq!(router.shard_for(table), first, "routing must be stable");
            }
        }
        let distinct: std::collections::HashSet<usize> = (0..64)
            .map(|i| router.shard_for(&format!("table{i}")))
            .collect();
        assert!(
            distinct.len() > 1,
            "64 tables must not all hash to one shard"
        );
    }

    #[test]
    fn sharded_data_lands_only_on_the_owner() {
        let (router, servers) = cluster(2);
        let svc: &dyn Service = &*router;
        for i in 0..20 {
            let table = format!("t{i}");
            svc.insert(&table, "x", doc! { "i" => i as i64 }).unwrap();
            let owner = router.shard_for(&table);
            assert_eq!(servers[owner].database().total_records(), {
                // Count tables owned by this shard so far.
                (0..=i)
                    .filter(|j| router.shard_for(&format!("t{j}")) == owner)
                    .count()
            });
            assert!(
                servers[1 - owner].database().table(&table).is_err(),
                "non-owner shard must never see the table"
            );
            // And reads route back to the same place.
            assert_eq!(
                svc.get_record(&table, "x").unwrap().doc["i"],
                Value::Int(i as i64)
            );
        }
    }

    #[test]
    fn cross_shard_batch_fans_out_and_reassembles_in_order() {
        let (router, servers) = cluster(2);
        let svc: &dyn Service = &*router;
        // Find two tables living on different shards.
        let t0 = (0..32)
            .map(|i| format!("a{i}"))
            .find(|t| router.shard_for(t) == 0)
            .unwrap();
        let t1 = (0..32)
            .map(|i| format!("b{i}"))
            .find(|t| router.shard_for(t) == 1)
            .unwrap();
        let mut reqs = Vec::new();
        for i in 0..10i64 {
            let table = if i % 2 == 0 { &t0 } else { &t1 };
            reqs.push(Request::Insert {
                table: table.clone(),
                id: format!("r{i}"),
                doc: doc! { "i" => i },
            });
        }
        let results = svc.batch(reqs).unwrap();
        assert_eq!(results.len(), 10);
        for r in &results {
            assert!(matches!(r, Ok(Response::Written { version: 1, .. })));
        }
        assert_eq!(servers[0].database().total_records(), 5);
        assert_eq!(servers[1].database().total_records(), 5);
        // Flat EBF fan-out: make a key stale on shard 1, observe it
        // through the router's union.
        svc.get_record(&t1, "r1").unwrap();
        svc.update(&t1, "r1", &Update::new().inc("i", 10.0))
            .unwrap();
        let (flat, _) = svc.fetch_ebf().unwrap();
        assert!(flat.contains(QueryKey::record(&t1, "r1").as_str().as_bytes()));
    }
}

//! Quaestor — the query-web-caching DBaaS middleware (the paper's primary
//! contribution), assembled from the substrate crates.
//!
//! > "Quaestor (Query Store) is a comprehensive DBaaS system for automatic
//! > query result caching ... \[it\] completely relies on standard web
//! > caching to provide low-latency data access with rich consistency
//! > guarantees." (§1)
//!
//! [`QuaestorServer`] is the origin server of Figure 3: it answers cache
//! misses and revalidations for records and queries, assigns estimated
//! TTLs, maintains the Expiring Bloom Filter, registers cached queries
//! with InvaliDB, and purges invalidation-based caches when results
//! change. The client-side half (EBF usage, session guarantees) lives in
//! `quaestor-client`.
//!
//! The request flow of §3.1:
//!
//! 1. on connect, clients fetch the piggybacked EBF
//!    ([`QuaestorServer::ebf_snapshot`]);
//! 2. the SDK consults the EBF per query (client crate);
//! 3. caches serve fresh copies or forward upstream (webcache crate);
//! 4. misses/revalidations land on [`QuaestorServer::query`] /
//!    [`QuaestorServer::get_record`], which estimate a TTL, register the
//!    query in InvaliDB, report the read to the EBF and reply with a
//!    cacheable response.

pub mod api;
pub mod config;
pub mod metrics;
pub mod response;
pub mod server;
pub mod transaction;

pub use api::{
    MetricsLayer, ReplRole, ReplicationStatus, Request, Response, Service, ServiceExt,
    ServiceMetrics, ShardRouter,
};
pub use config::ServerConfig;
pub use metrics::ServerMetrics;
pub use quaestor_store::IndexKind;
pub use response::{QueryResponse, RecordResponse};
pub use server::QuaestorServer;
pub use transaction::{Transaction, WriteOp};

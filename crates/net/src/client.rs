//! The remote [`Service`] client: a pooled, pipelined connection set
//! that makes a [`NetServer`](crate::NetServer) indistinguishable from a
//! local `Arc<dyn Service>`.
//!
//! * **Pooling** — `pool_size` connections, picked round-robin per call.
//!   Concurrent callers naturally pipeline: many requests can be in
//!   flight on one connection, correlated by request id.
//! * **Demultiplexing** — each connection owns a reader thread that
//!   routes `ResponseOk`/`ResponseErr` frames to the waiting caller and
//!   `StreamPush` frames into a process-local [`PubSub`], from which
//!   [`Response::Stream`] subscriptions are materialized.
//! * **Failure** — connect/read/write errors, timeouts, and servers that
//!   die mid-request all surface as [`Error::Net`]; a dead connection is
//!   re-established lazily with exponential backoff on the next call
//!   that lands on its pool slot. A caller whose request may have
//!   reached the wire is *never* silently retried — writes are not
//!   idempotent, so the ambiguity is the caller's to resolve (the
//!   `Error::Net` docs say exactly that).
//! * **Latency** — every completed call is recorded in a per-connection
//!   microsecond histogram; [`RemoteService::latency_histogram`] merges
//!   them (live and retired connections) for p50/p95/p99 queries.

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::{Bytes, BytesMut};
use crossbeam::channel::{bounded, Sender};
use parking_lot::Mutex;
use quaestor_common::{lock_rank, Error, FxHashMap, Histogram, Result};
use quaestor_core::{Request, Response, Service};
use quaestor_kv::PubSub;

use crate::codec::{self, WireResponse};
use crate::wire::{self, FrameDecode, FrameKind};

/// Tunables for a [`RemoteService`].
#[derive(Debug, Clone)]
pub struct RemoteServiceConfig {
    /// Number of pooled connections. Calls are spread round-robin; any
    /// number of calls can be in flight per connection (pipelining), so
    /// this bounds sockets, not concurrency.
    pub pool_size: usize,
    /// TCP connect timeout per attempt.
    pub connect_timeout: Duration,
    /// End-to-end deadline for one call, including any reconnect
    /// attempts. Expiry surfaces as [`Error::Net`].
    pub request_timeout: Duration,
    /// Initial delay between reconnect attempts; doubles per failure.
    pub reconnect_backoff: Duration,
    /// Ceiling for the reconnect backoff.
    pub max_backoff: Duration,
    /// Disable Nagle's algorithm (keep `true` for pipelined latency).
    pub nodelay: bool,
    /// Per-connection read chunk size.
    pub read_chunk: usize,
    /// Seed for the reconnect backoff jitter. Every sleep is scaled by a
    /// factor uniform in `[0.5, 1.5)` so N clients failing over together
    /// don't hammer a recovering server in lockstep. `None` (the
    /// default) draws a random per-pool seed; tests pin it for
    /// reproducible schedules.
    pub reconnect_jitter_seed: Option<u64>,
}

impl Default for RemoteServiceConfig {
    fn default() -> Self {
        RemoteServiceConfig {
            pool_size: 2,
            connect_timeout: Duration::from_secs(2),
            request_timeout: Duration::from_secs(10),
            reconnect_backoff: Duration::from_millis(20),
            max_backoff: Duration::from_secs(1),
            nodelay: true,
            read_chunk: 64 * 1024,
            reconnect_jitter_seed: None,
        }
    }
}

fn net_err(context: &str, e: impl std::fmt::Display) -> Error {
    Error::Net(format!("{context}: {e}"))
}

/// A `Service` whose implementation lives across a TCP connection pool.
pub struct RemoteService {
    addr: SocketAddr,
    config: RemoteServiceConfig,
    slots: Vec<Mutex<Option<Arc<Conn>>>>,
    next_slot: AtomicUsize,
    next_id: AtomicU64,
    /// Local bus that remote change streams are materialized from:
    /// `StreamPush` frames publish into `stream-<request id>` channels.
    bus: Arc<PubSub>,
    /// Latency of calls on connections that have since been torn down.
    retired_latency: Arc<Mutex<Histogram>>,
    /// Resolved jitter seed (config's, or a random per-pool draw).
    jitter_seed: u64,
    /// Monotone draw counter: each backoff sleep mixes it with the seed,
    /// so the jitter sequence is deterministic per pool yet never repeats.
    jitter_seq: AtomicU64,
}

impl std::fmt::Debug for RemoteService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RemoteService")
            .field("addr", &self.addr)
            .field("pool_size", &self.config.pool_size)
            .finish()
    }
}

/// One pooled connection.
struct Conn {
    writer: Mutex<TcpStream>,
    /// For teardown: `shutdown` here unblocks the reader thread.
    stream: TcpStream,
    pending: Mutex<FxHashMap<u64, Sender<Result<WireResponse>>>>,
    alive: AtomicBool,
    latency_us: Mutex<Histogram>,
}

impl Conn {
    fn teardown(&self) {
        if self.alive.swap(false, Ordering::SeqCst) {
            let _ = self.stream.shutdown(Shutdown::Both);
        }
        // Whoever gets here first drains the pending map; senders to
        // callers that already timed out fail harmlessly.
        let pending = std::mem::take(&mut *self.pending.lock());
        for (_, tx) in pending {
            let _ = tx.send(Err(Error::Net(
                "connection closed with the request in flight; \
                 it may or may not have executed"
                    .into(),
            )));
        }
    }
}

impl RemoteService {
    /// Connect a pool to `addr`. The first connection is established
    /// eagerly so misconfiguration fails here rather than on first use;
    /// the rest are opened lazily.
    pub fn connect(
        addr: impl ToSocketAddrs,
        config: RemoteServiceConfig,
    ) -> Result<Arc<RemoteService>> {
        let svc = RemoteService::connect_lazy(addr, config)?;
        let conn = svc.open_conn()?;
        *svc.slots[0].lock() = Some(conn);
        Ok(svc)
    }

    /// Like [`connect`](Self::connect), but without touching the network:
    /// every connection is established on first use (with backoff). For
    /// targets that are expected to come up later.
    pub fn connect_lazy(
        addr: impl ToSocketAddrs,
        config: RemoteServiceConfig,
    ) -> Result<Arc<RemoteService>> {
        let addr = addr
            .to_socket_addrs()
            .map_err(|e| net_err("resolve", e))?
            .next()
            .ok_or_else(|| Error::Net("address resolved to nothing".into()))?;
        assert!(config.pool_size > 0, "pool_size must be at least 1");
        Ok(Arc::new(RemoteService {
            addr,
            slots: (0..config.pool_size)
                .map(|_| {
                    Mutex::with_rank(
                        None,
                        lock_rank::NET_CLIENT_SLOT.0,
                        lock_rank::NET_CLIENT_SLOT.1,
                    )
                })
                .collect(),
            next_slot: AtomicUsize::new(0),
            next_id: AtomicU64::new(1),
            bus: PubSub::new(),
            retired_latency: Arc::new(Mutex::with_rank(
                Histogram::new(),
                lock_rank::NET_CLIENT_RETIRED_LATENCY.0,
                lock_rank::NET_CLIENT_RETIRED_LATENCY.1,
            )),
            jitter_seed: config.reconnect_jitter_seed.unwrap_or_else(|| {
                use std::hash::{BuildHasher, Hasher};
                std::collections::hash_map::RandomState::new()
                    .build_hasher()
                    .finish()
            }),
            jitter_seq: AtomicU64::new(0),
            config,
        }))
    }

    /// The server address this pool targets.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Close every pooled connection now. Pending calls fail with
    /// [`Error::Net`]; subsequent calls reconnect with backoff. (Useful
    /// for failover drills and tests; normal use never needs it.)
    pub fn disconnect_all(&self) {
        for slot in &self.slots {
            if let Some(conn) = slot.lock().take() {
                conn.teardown();
                self.retire_latency(&conn);
            }
        }
    }

    /// Merged call-latency histogram (microseconds) across all pooled
    /// connections, past and present.
    pub fn latency_histogram(&self) -> Histogram {
        let mut merged = self.retired_latency.lock().clone();
        for slot in &self.slots {
            // analyze: allow(lock-order) retired_latency guard above is a statement temporary, dropped before any slot is taken
            if let Some(conn) = &*slot.lock() {
                merged.merge(&conn.latency_us.lock());
            }
        }
        merged
    }

    fn retire_latency(&self, conn: &Conn) {
        self.retired_latency.lock().merge(&conn.latency_us.lock());
    }

    /// Open one connection and start its reader thread.
    fn open_conn(&self) -> Result<Arc<Conn>> {
        let stream = TcpStream::connect_timeout(&self.addr, self.config.connect_timeout)
            .map_err(|e| net_err("connect", e))?;
        if self.config.nodelay {
            let _ = stream.set_nodelay(true);
        }
        let writer = stream.try_clone().map_err(|e| net_err("clone socket", e))?;
        let reader = stream.try_clone().map_err(|e| net_err("clone socket", e))?;
        let conn = Arc::new(Conn {
            writer: Mutex::with_rank(
                writer,
                lock_rank::NET_CLIENT_WRITER.0,
                lock_rank::NET_CLIENT_WRITER.1,
            ),
            stream,
            pending: Mutex::with_rank(
                FxHashMap::default(),
                lock_rank::NET_CLIENT_PENDING.0,
                lock_rank::NET_CLIENT_PENDING.1,
            ),
            alive: AtomicBool::new(true),
            latency_us: Mutex::with_rank(
                Histogram::new(),
                lock_rank::NET_CLIENT_LATENCY.0,
                lock_rank::NET_CLIENT_LATENCY.1,
            ),
        });
        let conn2 = conn.clone();
        let bus = self.bus.clone();
        let chunk_size = self.config.read_chunk;
        std::thread::Builder::new()
            .name("qnet-client-reader".to_owned())
            .spawn(move || run_reader(conn2, reader, bus, chunk_size))
            .map_err(|e| net_err("spawn reader thread", e))?;
        Ok(conn)
    }

    /// Round-robin to a live connection, reconnecting its slot with
    /// exponential backoff while the deadline allows.
    ///
    /// The slot mutex is held only for the check-and-install moments,
    /// never across a connect attempt or a backoff sleep — callers that
    /// share a dead slot reconnect concurrently (and `disconnect_all` /
    /// `latency_histogram` never stall behind a retry loop). If two
    /// callers race to repopulate a slot, the loser's connection is torn
    /// down and the winner's is shared.
    fn get_conn(&self, deadline: Instant) -> Result<Arc<Conn>> {
        let idx = self.next_slot.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        let slot = &self.slots[idx];
        let mut backoff = self.config.reconnect_backoff;
        loop {
            {
                let mut guard = slot.lock();
                if let Some(conn) = &*guard {
                    if conn.alive.load(Ordering::Acquire) {
                        return Ok(conn.clone());
                    }
                    conn.teardown();
                    self.retire_latency(conn);
                    *guard = None;
                }
            }
            match self.open_conn() {
                Ok(conn) => {
                    let mut guard = slot.lock();
                    if let Some(existing) = &*guard {
                        if existing.alive.load(Ordering::Acquire) {
                            // Someone repopulated the slot while we were
                            // connecting; share theirs, discard ours.
                            conn.teardown();
                            return Ok(existing.clone());
                        }
                        existing.teardown();
                        self.retire_latency(existing);
                    }
                    *guard = Some(conn.clone());
                    return Ok(conn);
                }
                Err(e) => {
                    let delay = self.jittered(backoff);
                    if Instant::now() + delay >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(delay);
                    backoff = (backoff * 2).min(self.config.max_backoff);
                }
            }
        }
    }

    /// Scale one backoff by a seeded factor uniform in `[0.5, 1.5)`.
    /// Exponential backoff alone synchronizes: every client that lost the
    /// same primary at the same moment retries on the same schedule,
    /// stampeding the node that is trying to come back. Jitter spreads
    /// the herd while keeping the expected delay unchanged.
    fn jittered(&self, backoff: Duration) -> Duration {
        let n = self.jitter_seq.fetch_add(1, Ordering::Relaxed);
        // splitmix64 over (seed, draw index): cheap, seedable, and good
        // enough to decorrelate sleep schedules — not used for secrets.
        let mut z = self
            .jitter_seed
            .wrapping_add(n.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        let frac = (z >> 11) as f64 / (1u64 << 53) as f64;
        backoff.mul_f64(0.5 + frac)
    }

    fn stream_channel(request_id: u64) -> String {
        format!("stream-{request_id}")
    }
}

impl Drop for RemoteService {
    fn drop(&mut self) {
        self.disconnect_all();
    }
}

impl Service for RemoteService {
    fn call(&self, req: Request) -> Result<Response> {
        let started = Instant::now();
        let deadline = started + self.config.request_timeout;
        let request_id = self.next_id.fetch_add(1, Ordering::Relaxed);

        // Child span when a trace is active (or a sampled root when
        // client-side sampling is on); its context rides the frame as a
        // body-prefix tag so the server stitches into the same trace.
        let span = quaestor_obs::client_span("client.call");

        // For subscriptions: open the local endpoint *before* the request
        // leaves, so no push can slip past between response and subscribe.
        let mut local_sub = if matches!(req, Request::Subscribe { .. }) {
            Some(self.bus.subscribe(&Self::stream_channel(request_id)))
        } else {
            None
        };

        let body = codec::encode_request_traced(&req, span.context());
        if !wire::frame_fits(body.len()) {
            return Err(Error::Net(format!(
                "request too large for one frame ({} bytes > {} cap); split the batch",
                body.len(),
                wire::MAX_FRAME_PAYLOAD
            )));
        }
        let mut frame = Vec::new();
        wire::encode_frame(FrameKind::Request, request_id, &body, &mut frame);

        let (tx, rx) = bounded::<Result<WireResponse>>(1);
        // Send loop: a *write* that fails before the frame reaches the
        // wire is safe to retry on a fresh connection — the server never
        // saw it. Once write_all succeeds, retries stop being safe.
        let conn = loop {
            let conn = self.get_conn(deadline)?;
            conn.pending.lock().insert(request_id, tx.clone());
            let write_result = {
                // analyze: allow(lock-order) pending guard above is a statement temporary, released before the writer lock
                let mut w = conn.writer.lock();
                w.write_all(&frame)
            };
            match write_result {
                Ok(()) => break conn,
                Err(e) => {
                    conn.pending.lock().remove(&request_id);
                    // Tear down but leave the slot to retire the
                    // connection (and its latency record) exactly once.
                    conn.teardown();
                    if Instant::now() >= deadline {
                        return Err(net_err("send", e));
                    }
                }
            }
        };

        let remaining = deadline.saturating_duration_since(Instant::now());
        let outcome = match rx.recv_timeout(remaining) {
            Ok(result) => result,
            Err(_) => {
                conn.pending.lock().remove(&request_id);
                return Err(Error::Net(format!(
                    "request timed out after {:?}; it may or may not have executed",
                    self.config.request_timeout
                )));
            }
        };
        conn.latency_us
            .lock()
            .record(started.elapsed().as_micros() as u64);
        match outcome? {
            WireResponse::Plain(resp) => Ok(resp),
            WireResponse::Stream => match local_sub.take() {
                Some(sub) => Ok(Response::Stream(sub)),
                None => Err(Error::Net(
                    "protocol violation: stream response to a non-subscribe request".into(),
                )),
            },
        }
    }
}

/// The per-connection demultiplexer: routes response frames to waiting
/// callers and push frames onto the local bus.
fn run_reader(conn: Arc<Conn>, mut stream: TcpStream, bus: Arc<PubSub>, chunk_size: usize) {
    let mut buf = BytesMut::with_capacity(chunk_size);
    let mut chunk = vec![0u8; chunk_size];
    'conn: loop {
        loop {
            let advance = match wire::decode_frame(&buf) {
                FrameDecode::Incomplete => break,
                FrameDecode::Corrupt(_) => break 'conn,
                FrameDecode::Frame(frame) => {
                    match frame.kind {
                        FrameKind::ResponseOk => {
                            let result = codec::decode_response(frame.body)
                                .map_err(|e| Error::Net(format!("undecodable response: {e}")));
                            deliver(&conn, frame.request_id, result);
                        }
                        FrameKind::ResponseErr => {
                            let result = match codec::decode_error(frame.body) {
                                Ok(e) => Err(e),
                                Err(e) => {
                                    Err(Error::Net(format!("undecodable error response: {e}")))
                                }
                            };
                            deliver(&conn, frame.request_id, result);
                        }
                        FrameKind::StreamPush => {
                            let delivered = bus.publish(
                                &RemoteService::stream_channel(frame.request_id),
                                Bytes::from(frame.body.to_vec()),
                            );
                            if delivered == 0 {
                                // The local subscription is gone (the
                                // caller dropped it, or the subscribe
                                // call failed): tell the server to
                                // release its forwarder, bounding the
                                // per-subscribe cost to one orphan push.
                                let mut cancel = Vec::new();
                                wire::encode_frame(
                                    FrameKind::StreamCancel,
                                    frame.request_id,
                                    &[],
                                    &mut cancel,
                                );
                                let _ = conn.writer.lock().write_all(&cancel);
                            }
                        }
                        // Servers don't ask, and replication frames only
                        // travel on dedicated replication connections.
                        FrameKind::Request
                        | FrameKind::StreamCancel
                        | FrameKind::ReplHello
                        | FrameKind::ReplHelloAck
                        | FrameKind::ReplFrames
                        | FrameKind::ReplAck => break 'conn,
                    }
                    frame.size
                }
            };
            buf.advance(advance);
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break,
        }
    }
    conn.teardown();
}

fn deliver(conn: &Conn, request_id: u64, result: Result<WireResponse>) {
    if let Some(tx) = conn.pending.lock().remove(&request_id) {
        let _ = tx.send(result);
    }
    // No waiter: the caller timed out and cleaned up — drop the result.
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(seed: Option<u64>) -> Arc<RemoteService> {
        RemoteService::connect_lazy(
            "127.0.0.1:1", // never dialed by these tests
            RemoteServiceConfig {
                reconnect_jitter_seed: seed,
                ..RemoteServiceConfig::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn jitter_stays_within_half_to_one_and_a_half() {
        let svc = pool(Some(7));
        let base = Duration::from_millis(100);
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..256 {
            let d = svc.jittered(base);
            assert!(d >= base / 2, "{d:?} below 0.5x");
            assert!(d < base + base / 2, "{d:?} at or above 1.5x");
            distinct.insert(d.as_nanos());
        }
        assert!(
            distinct.len() > 200,
            "draws must vary, got {}",
            distinct.len()
        );
    }

    #[test]
    fn pinned_seeds_replay_and_differ_across_pools() {
        let base = Duration::from_millis(20);
        let a1: Vec<_> = {
            let svc = pool(Some(42));
            (0..16).map(|_| svc.jittered(base)).collect()
        };
        let a2: Vec<_> = {
            let svc = pool(Some(42));
            (0..16).map(|_| svc.jittered(base)).collect()
        };
        assert_eq!(a1, a2, "same seed must replay the same schedule");
        let b: Vec<_> = {
            let svc = pool(Some(43));
            (0..16).map(|_| svc.jittered(base)).collect()
        };
        assert_ne!(a1, b, "different seeds must not reconnect in lockstep");
    }
}

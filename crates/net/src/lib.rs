//! `quaestor-net` — the network subsystem: a binary wire protocol, a
//! multithreaded TCP server, and a remote [`Service`] client.
//!
//! The paper's deployment is inherently distributed: "clients access
//! their database through a REST API exposed by the DBaaS" (§2) — the
//! SDK, the web-cache tiers and the Quaestor middleware talk over the
//! network. This crate makes the workspace's [`Service`] seam remote
//! with zero external dependencies (std::net + threads), so every
//! composition that works in-process — [`ShardRouter`] over N nodes,
//! [`MetricsLayer`] middleware, the client SDK — works unchanged across
//! processes:
//!
//! * [`wire`] — length-prefixed, CRC32-checksummed, versioned frames
//!   carrying a request id for pipelining (the WAL frame format of the
//!   durability crate, extended for duplex sockets);
//! * [`codec`] — binary encoding of every `Request`/`Response`/`Error`
//!   variant, sharing the durability crate's document codec;
//! * [`poll`] — a vendored mio-style readiness poller (direct epoll
//!   syscalls on Linux, `poll(2)` elsewhere on unix);
//! * [`NetServer`] — an accept thread feeding per-core event-loop
//!   shards over any `Arc<dyn Service>`, with graceful shutdown;
//! * [`RemoteService`] — a pooled, pipelined client that *is* a
//!   `Service`: request-id correlation, reconnect with backoff, timeouts
//!   surfaced as [`Error::Net`](quaestor_common::Error::Net), and
//!   change streams materialized from server pushes.
//!
//! ```no_run
//! use std::sync::Arc;
//! use quaestor_common::SystemClock;
//! use quaestor_core::{QuaestorServer, Service, ServiceExt};
//! use quaestor_net::{NetServer, RemoteService, RemoteServiceConfig};
//!
//! let origin = QuaestorServer::with_defaults(SystemClock::shared());
//! let server = NetServer::bind("127.0.0.1:0", origin).unwrap();
//! let svc = RemoteService::connect(server.local_addr(), RemoteServiceConfig::default()).unwrap();
//! svc.insert("posts", "p1", quaestor_document::doc! { "n" => 1 }).unwrap();
//! assert_eq!(svc.get_record("posts", "p1").unwrap().etag, 1);
//! server.shutdown();
//! ```
//!
//! [`Service`]: quaestor_core::Service
//! [`ShardRouter`]: quaestor_core::ShardRouter
//! [`MetricsLayer`]: quaestor_core::MetricsLayer

pub mod client;
pub mod codec;
mod evloop;
pub mod poll;
pub mod server;
pub mod wire;

pub use client::{RemoteService, RemoteServiceConfig};
pub use server::{AcceptBackoff, NetServer, NetServerConfig};

//! The event-loop shards behind [`crate::server::NetServer`].
//!
//! Each shard is one thread owning a [`Poller`](crate::poll::Poller)
//! and a shared-nothing slab of connection states — no connection is
//! ever touched by two shards, so the hot path takes no locks at all.
//! The only cross-thread seams are:
//!
//! * the **inbox** (`net.server.shard.inbox`, rank 68): a task queue
//!   the accept thread (new sockets) and pubsub notify hooks (stream
//!   readiness) push into, paired with a poller wake;
//! * the **force-close registry** (`net.server.shard.conns`, rank 69):
//!   token → raw fd, so [`ShardHandle::force_close_all`] can sever
//!   connections from the shutdown path even while a wedged
//!   `Service::call` still holds the loop thread. Raw fds, not dup'd
//!   socket clones: at C10k a dup per connection would double the
//!   server's descriptor footprint.
//!
//! Scheduling is level-triggered: handlers may leave bytes unread or
//! unflushed and the next `wait` re-reports. Reads are bounded per
//! event (`MAX_READS_PER_EVENT`) so one firehose connection cannot
//! starve its shard siblings. Writes stage into a per-connection
//! `BytesMut` queue flushed with one `write` syscall per burst —
//! responses parsed from one read burst and push fan-out alike — which
//! preserves PR 4's pipelining economics without a thread per stream.
//!
//! Backpressure is explicit where the old thread-per-connection server
//! used the socket: a connection whose staged write queue exceeds
//! `max_write_buffer` after a flush attempt is dropped (slow consumer),
//! because blocking the loop on one peer's TCP window would stall every
//! connection on the shard.

use std::io::{Read, Write};
use std::net::{Shutdown, TcpStream};
use std::os::unix::io::{AsRawFd, RawFd};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use bytes::BytesMut;
use parking_lot::Mutex;
use quaestor_common::{lock_rank, Error, FxHashMap};
use quaestor_core::{Request, Response, Service};

use crate::codec;
use crate::poll::{Event, Interest, Poller};
use crate::wire::{self, FrameDecode, FrameKind};

/// Per-event read bound: one connection may pull at most this many
/// `read_chunk`s before yielding to its shard siblings (level
/// triggering re-reports the remainder).
const MAX_READS_PER_EVENT: usize = 16;

/// Work handed to a shard from another thread.
pub(crate) enum Task {
    /// A freshly accepted socket (nodelay already applied).
    Accept(TcpStream),
    /// A subscription on connection `token` (stream id `request_id`)
    /// has pending messages to forward as `StreamPush` frames.
    Notify { token: u64, request_id: u64 },
}

/// What a shard needs from the server that owns it.
pub(crate) struct ShardCtx {
    pub service: Arc<dyn Service>,
    pub read_chunk: usize,
    pub max_write_buffer: usize,
    pub requests_served: Arc<AtomicU64>,
}

/// The cross-thread face of one shard.
#[derive(Clone)]
pub(crate) struct ShardHandle {
    inbox: Arc<Mutex<Vec<Task>>>,
    poller: Arc<Poller>,
    conn_registry: Arc<Mutex<FxHashMap<u64, RawFd>>>,
    stop: Arc<AtomicBool>,
}

impl ShardHandle {
    /// Enqueue a task and wake the loop. Callable from any thread; the
    /// pubsub notify path runs this under `kv.pubsub.channels` (60), so
    /// the inbox rank (68) must stay above it.
    pub(crate) fn send(&self, task: Task) {
        self.inbox.lock().push(task);
        let _ = self.poller.wake();
    }

    /// Ask the loop to exit at its next iteration.
    pub(crate) fn begin_shutdown(&self) {
        self.stop.store(true, Ordering::SeqCst);
        let _ = self.poller.wake();
    }

    /// Sever every live connection from outside the loop. This is the
    /// shutdown path's guarantee to blocked clients: even if a handler
    /// is wedged inside `Service::call` on the loop thread, their
    /// sockets die now.
    pub(crate) fn force_close_all(&self) {
        for fd in self.conn_registry.lock().values() {
            shutdown_fd(*fd);
        }
    }
}

/// `shutdown(2)` both directions of a borrowed fd. The registry holds
/// raw fds rather than dup'd clones (descriptor economy at C10k); this
/// is safe against fd recycling because every entry is removed — under
/// the registry lock — strictly before its fd is closed, so a
/// registered fd always still names the connection that registered it.
fn shutdown_fd(fd: RawFd) {
    extern "C" {
        fn shutdown(fd: i32, how: i32) -> i32;
    }
    const SHUT_RDWR: i32 = 2;
    let _ = unsafe { shutdown(fd, SHUT_RDWR) };
}

/// Spawn one event-loop shard thread.
pub(crate) fn spawn_shard(
    index: usize,
    ctx: ShardCtx,
) -> std::io::Result<(ShardHandle, JoinHandle<()>)> {
    let handle = ShardHandle {
        inbox: Arc::new(Mutex::with_rank(
            Vec::new(),
            lock_rank::NET_SHARD_INBOX.0,
            lock_rank::NET_SHARD_INBOX.1,
        )),
        poller: Arc::new(Poller::new()?),
        conn_registry: Arc::new(Mutex::with_rank(
            FxHashMap::default(),
            lock_rank::NET_SHARD_CONNS.0,
            lock_rank::NET_SHARD_CONNS.1,
        )),
        stop: Arc::new(AtomicBool::new(false)),
    };
    let loop_handle = handle.clone();
    let join = std::thread::Builder::new()
        .name(format!("qnet-loop-{index}"))
        .spawn(move || Shard::new(loop_handle, ctx).run())?;
    Ok((handle, join))
}

/// One registered connection's state, owned by exactly one shard.
struct Conn {
    stream: TcpStream,
    /// Accumulated unparsed inbound bytes.
    rbuf: BytesMut,
    /// Staged outbound frames (responses and stream pushes), flushed on
    /// writability with one syscall per burst.
    wbuf: BytesMut,
    /// Whether `WRITABLE` interest is currently registered — flipped
    /// only on transitions to avoid an `epoll_ctl` per flush.
    wants_write: bool,
    /// Live server-side subscriptions by subscribing request id; the
    /// entry's drop (on `StreamCancel` or connection close) releases
    /// the origin stream.
    streams: FxHashMap<u64, quaestor_kv::Subscription>,
}

/// Slot/generation token packing: low 32 bits index the slab, high 32
/// bits carry a generation bumped on every release, so a stale event or
/// notify for a recycled slot resolves to nothing.
fn pack_token(slot: usize, gen: u32) -> u64 {
    slot as u64 | (u64::from(gen) << 32)
}

struct Shard {
    handle: ShardHandle,
    ctx: ShardCtx,
    slots: Vec<Option<Conn>>,
    gens: Vec<u32>,
    free: Vec<usize>,
    /// Shard-level scratch read buffer — deliberately not per-connection
    /// (10k connections × 64 KiB chunks would pin 640 MB).
    chunk: Vec<u8>,
    /// Scratch frame-encode buffer.
    out: Vec<u8>,
}

impl Shard {
    fn new(handle: ShardHandle, ctx: ShardCtx) -> Shard {
        let chunk = vec![0u8; ctx.read_chunk.max(1)];
        Shard {
            handle,
            ctx,
            slots: Vec::new(),
            gens: Vec::new(),
            free: Vec::new(),
            chunk,
            out: Vec::new(),
        }
    }

    fn run(mut self) {
        let mut events: Vec<Event> = Vec::new();
        loop {
            let tasks = std::mem::take(&mut *self.handle.inbox.lock());
            for task in tasks {
                match task {
                    Task::Accept(stream) => self.install(stream),
                    Task::Notify { token, request_id } => self.on_notify(token, request_id),
                }
            }
            if self.handle.stop.load(Ordering::SeqCst) {
                break;
            }
            if self.handle.poller.wait(&mut events, None).is_err() {
                break;
            }
            for &ev in &events {
                self.on_event(ev);
            }
        }
        // Teardown: drop every connection (closing sockets, releasing
        // subscriptions), pulling each from the force-close registry
        // *before* its fd closes so a concurrent `force_close_all`
        // never touches a recycled descriptor.
        for slot in 0..self.slots.len() {
            if let Some(conn) = self.slots[slot].take() {
                let token = pack_token(slot, self.gens[slot]);
                self.handle.conn_registry.lock().remove(&token);
                let _ = conn.stream.shutdown(Shutdown::Both);
            }
        }
    }

    /// Adopt a freshly accepted socket into the slab.
    fn install(&mut self, stream: TcpStream) {
        if stream.set_nonblocking(true).is_err() {
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            self.slots.push(None);
            self.gens.push(0);
            self.slots.len() - 1
        });
        let token = pack_token(slot, self.gens[slot]);
        if self
            .handle
            .poller
            .register(stream.as_raw_fd(), token, Interest::READABLE, false)
            .is_err()
        {
            let _ = stream.shutdown(Shutdown::Both);
            self.free.push(slot);
            return;
        }
        self.handle
            .conn_registry
            .lock()
            .insert(token, stream.as_raw_fd());
        self.slots[slot] = Some(Conn {
            stream,
            rbuf: BytesMut::new(),
            wbuf: BytesMut::new(),
            wants_write: false,
            streams: FxHashMap::default(),
        });
    }

    /// Map an event/notify token back to a live slot, rejecting stale
    /// generations.
    fn resolve(&self, token: u64) -> Option<usize> {
        let slot = (token & u64::from(u32::MAX)) as usize;
        let gen = (token >> 32) as u32;
        if slot < self.slots.len() && self.gens[slot] == gen && self.slots[slot].is_some() {
            Some(slot)
        } else {
            None
        }
    }

    /// Release a connection: deregister, close, bump the generation.
    /// Dropping `conn` drops its subscriptions, which releases the
    /// server-side streams.
    fn teardown(&mut self, slot: usize, conn: Conn) {
        let token = pack_token(slot, self.gens[slot]);
        let _ = self.handle.poller.deregister(conn.stream.as_raw_fd());
        let _ = conn.stream.shutdown(Shutdown::Both);
        self.handle.conn_registry.lock().remove(&token);
        self.gens[slot] = self.gens[slot].wrapping_add(1);
        self.free.push(slot);
    }

    fn on_event(&mut self, ev: Event) {
        let Some(slot) = self.resolve(ev.token) else {
            return;
        };
        let Some(mut conn) = self.slots[slot].take() else {
            return;
        };
        let mut keep = true;
        if ev.readable {
            keep = self.drive_read(&mut conn, ev.token);
        }
        if keep && ev.writable {
            keep = self.flush(&mut conn, ev.token);
        }
        if keep && ev.error && !ev.readable && !ev.writable {
            keep = false;
        }
        if keep && conn.wbuf.len() > self.ctx.max_write_buffer {
            keep = false; // slow consumer: never block the loop on one peer
        }
        if keep {
            self.slots[slot] = Some(conn);
        } else {
            self.teardown(slot, conn);
        }
    }

    /// Pull bytes (bounded per event), dispatch complete frames, flush
    /// the staged responses. Returns whether the connection survives.
    fn drive_read(&mut self, conn: &mut Conn, token: u64) -> bool {
        let mut eof = false;
        for _ in 0..MAX_READS_PER_EVENT {
            match conn.stream.read(&mut self.chunk) {
                Ok(0) => {
                    eof = true;
                    break;
                }
                Ok(n) => {
                    conn.rbuf.extend_from_slice(&self.chunk[..n]);
                    if n < self.chunk.len() {
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return false,
            }
        }
        if !self.process_frames(conn, token) {
            return false;
        }
        // Flush even on EOF: frames that arrived with the FIN were
        // dispatched and their responses deserve a best-effort write
        // (mirrors the old worker, which wrote before noticing EOF).
        let flushed = self.flush(conn, token);
        flushed && !eof
    }

    /// Dispatch every complete frame in `rbuf`. Returns `false` on
    /// framing loss or protocol violation (connection must close).
    fn process_frames(&mut self, conn: &mut Conn, token: u64) -> bool {
        let Conn {
            ref mut rbuf,
            ref mut wbuf,
            ref mut streams,
            ..
        } = *conn;
        loop {
            let advance = match wire::decode_frame(rbuf) {
                FrameDecode::Incomplete => break,
                FrameDecode::Corrupt(_) => return false, // framing lost
                FrameDecode::Frame(frame) => {
                    match frame.kind {
                        FrameKind::Request => {
                            self.handle_request(token, frame.request_id, frame.body, wbuf, streams);
                        }
                        FrameKind::StreamCancel => {
                            // The client dropped its end: releasing the
                            // subscription here lets the publisher prune
                            // the server-side stream.
                            streams.remove(&frame.request_id);
                        }
                        _ => return false, // protocol violation: only clients send
                    }
                    frame.size
                }
            };
            rbuf.advance(advance);
        }
        true
    }

    /// Decode and dispatch one request frame, staging the response (and
    /// any immediate stream backlog) onto `wbuf`.
    fn handle_request(
        &mut self,
        token: u64,
        request_id: u64,
        body: &[u8],
        wbuf: &mut BytesMut,
        streams: &mut FxHashMap<u64, quaestor_kv::Subscription>,
    ) {
        self.ctx.requests_served.fetch_add(1, Ordering::Relaxed);
        let (ctx, req) = match codec::decode_request_traced(body) {
            Ok(decoded) => decoded,
            Err(e) => {
                // The frame was CRC-valid, so framing is intact — answer
                // the bad request and keep the connection.
                let err = Error::BadRequest(format!("undecodable request: {e}"));
                self.stage(
                    FrameKind::ResponseErr,
                    request_id,
                    &codec::encode_error(&err),
                    wbuf,
                );
                return;
            }
        };
        // Continue the caller's trace across the wire: the span adopts
        // the remote parent and every span below (service, planner, WAL)
        // nests under it in the stitched trace.
        let _span = quaestor_obs::adopt_span(ctx, "net.server");
        let is_subscribe = matches!(req, Request::Subscribe { .. });
        match self.ctx.service.call(req) {
            Ok(Response::Stream(subscription)) => {
                // Accept the stream, then forward messages as push frames
                // tagged with this request's id. The notify hook replaces
                // PR 4's forwarder thread: publishes poke this shard's
                // inbox, the loop drains with `try_recv`.
                self.stage(
                    FrameKind::ResponseOk,
                    request_id,
                    &codec::encode_stream_marker(),
                    wbuf,
                );
                let hook = self.handle.clone();
                // Install the hook *before* draining the backlog: a
                // message published in between is then at worst notified
                // twice (hooks coalesce), never lost.
                subscription.set_notify(move || hook.send(Task::Notify { token, request_id }));
                while let Some(message) = subscription.try_recv() {
                    self.stage_push(request_id, &message, wbuf);
                }
                streams.insert(request_id, subscription);
            }
            Ok(resp) => {
                debug_assert!(!is_subscribe || matches!(resp, Response::Stream(_)));
                let body = codec::encode_response(&resp);
                if wire::frame_fits(body.len()) {
                    self.stage(FrameKind::ResponseOk, request_id, &body, wbuf);
                } else {
                    // An unframeable frame would be rejected as Corrupt
                    // and kill the connection for every pipelined caller;
                    // answer with a typed error instead.
                    let err = Error::Net(format!(
                        "response too large for one frame ({} bytes > {} cap); \
                         narrow the query or split the batch",
                        body.len(),
                        wire::MAX_FRAME_PAYLOAD
                    ));
                    self.stage(
                        FrameKind::ResponseErr,
                        request_id,
                        &codec::encode_error(&err),
                        wbuf,
                    );
                }
            }
            Err(e) => {
                self.stage(
                    FrameKind::ResponseErr,
                    request_id,
                    &codec::encode_error(&e),
                    wbuf,
                );
            }
        }
    }

    /// Encode one frame into the scratch buffer and stage it on `wbuf`.
    fn stage(&mut self, kind: FrameKind, request_id: u64, body: &[u8], wbuf: &mut BytesMut) {
        self.out.clear();
        wire::encode_frame(kind, request_id, body, &mut self.out);
        wbuf.extend_from_slice(&self.out);
    }

    /// Stage one `StreamPush`, skipping unframeable messages (drop
    /// rather than corrupt, as the forwarder threads did).
    fn stage_push(&mut self, request_id: u64, message: &[u8], wbuf: &mut BytesMut) {
        if !wire::frame_fits(message.len()) {
            return;
        }
        self.stage(FrameKind::StreamPush, request_id, message, wbuf);
    }

    /// A subscription has pending messages: stage and flush them.
    fn on_notify(&mut self, token: u64, request_id: u64) {
        let Some(slot) = self.resolve(token) else {
            return; // connection already gone; the hook outlived it briefly
        };
        let Some(mut conn) = self.slots[slot].take() else {
            return;
        };
        {
            let Conn {
                ref mut wbuf,
                ref streams,
                ..
            } = conn;
            if let Some(subscription) = streams.get(&request_id) {
                while let Some(message) = subscription.try_recv() {
                    self.stage_push(request_id, &message, wbuf);
                }
            }
        }
        let keep = self.flush(&mut conn, token) && conn.wbuf.len() <= self.ctx.max_write_buffer;
        if keep {
            self.slots[slot] = Some(conn);
        } else {
            self.teardown(slot, conn);
        }
    }

    /// Write as much of the staged queue as the socket accepts — one
    /// syscall per burst in the common case — and keep `WRITABLE`
    /// interest registered exactly while a remainder exists.
    fn flush(&mut self, conn: &mut Conn, token: u64) -> bool {
        while !conn.wbuf.is_empty() {
            match conn.stream.write(&conn.wbuf) {
                Ok(0) => return false,
                Ok(n) => conn.wbuf.advance(n),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(_) => return false,
            }
        }
        let want_write = !conn.wbuf.is_empty();
        if want_write != conn.wants_write {
            let interest = if want_write {
                Interest::BOTH
            } else {
                Interest::READABLE
            };
            if self
                .handle
                .poller
                .reregister(conn.stream.as_raw_fd(), token, interest, false)
                .is_err()
            {
                return false;
            }
            conn.wants_write = want_write;
        }
        true
    }
}

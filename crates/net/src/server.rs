//! The event-loop TCP server: a blocking accept thread feeding N
//! readiness event-loop shards, serving any [`Service`] over the wire
//! protocol.
//!
//! Threading model (still zero external dependencies — the poller is a
//! vendored epoll shim, see [`crate::poll`]):
//!
//! * one **accept thread** owns the listener and round-robins accepted
//!   sockets across the shards (EMFILE and other accept errors back off
//!   with doubling delays instead of spinning a starved core);
//! * N **event-loop shards** (default: one per core), each owning a
//!   shared-nothing slab of connection states. A shard reads frames as
//!   readiness arrives, dispatches them to the wrapped service *in
//!   arrival order* (the pipelining contract: responses to one
//!   connection preserve request order, so a client may correlate by
//!   order or by id), and stages responses onto a per-connection write
//!   queue flushed with a single `write` syscall per burst;
//! * `Subscribe` streams ride the same loop: publishes poke the owning
//!   shard through a pubsub notify hook and the loop enqueues
//!   `StreamPush` frames — no forwarder threads, which is what lifts
//!   the connection ceiling from "a few thousand threads" to C10k.
//!
//! Backpressure is a bounded per-connection write queue
//! ([`NetServerConfig::max_write_buffer`]): a peer that stops reading
//! while traffic (pushes, pipelined responses) keeps accumulating is
//! dropped rather than allowed to wedge its shard. Nothing buffers
//! unboundedly, and the loop never blocks on one connection's window.
//!
//! Shutdown is graceful and idempotent: stop accepting, signal every
//! shard, force-close every connection socket *from outside the loops*
//! (so clients blocked on a wedged handler are released immediately),
//! then join the shard threads. In-flight requests finish; their
//! responses may or may not reach the client, whose pending calls
//! surface [`Error::Net`](quaestor_common::Error::Net).

use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use quaestor_common::{lock_rank, Error, Result};
use quaestor_core::Service;

use crate::evloop::{self, ShardCtx, ShardHandle, Task};
use crate::wire;

/// Tunables for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Size of the shard-level read chunk (bytes pulled per `read`
    /// syscall into a connection's read buffer).
    pub read_chunk: usize,
    /// Disable Nagle's algorithm on accepted sockets. Pipelined
    /// request/response traffic is latency-bound on small writes, so the
    /// default is `true`.
    pub nodelay: bool,
    /// Event-loop shard count; `0` means one per available core.
    pub shards: usize,
    /// Slow-consumer bound: a connection whose staged write queue still
    /// exceeds this many bytes after a flush attempt is dropped. The
    /// default leaves room for one maximum-size frame plus headroom, so
    /// any single legal response is always deliverable.
    pub max_write_buffer: usize,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            read_chunk: 64 * 1024,
            nodelay: true,
            shards: 0,
            max_write_buffer: wire::MAX_FRAME_PAYLOAD as usize + 64 * 1024,
        }
    }
}

fn net_err(context: &str, e: impl std::fmt::Display) -> Error {
    Error::Net(format!("{context}: {e}"))
}

/// Escalating accept-error backoff: EMFILE and friends start at 20ms
/// and double up to 500ms, resetting on the next successful accept.
/// Without a pause the accept loop would spin a core exactly when the
/// system is starved of fds; without escalation a sustained exhaustion
/// still burns 50 wakeups a second.
#[derive(Debug, Clone, Copy)]
pub struct AcceptBackoff {
    next: Duration,
}

impl AcceptBackoff {
    const FLOOR: Duration = Duration::from_millis(20);
    const CEIL: Duration = Duration::from_millis(500);

    /// A backoff at its floor delay.
    pub fn new() -> AcceptBackoff {
        AcceptBackoff { next: Self::FLOOR }
    }

    /// The delay to sleep for this failure; doubles for the next one.
    pub fn next_delay(&mut self) -> Duration {
        let delay = self.next;
        self.next = (self.next * 2).min(Self::CEIL);
        delay
    }

    /// An accept succeeded: fall back to the floor.
    pub fn reset(&mut self) {
        self.next = Self::FLOOR;
    }
}

impl Default for AcceptBackoff {
    fn default() -> Self {
        AcceptBackoff::new()
    }
}

/// A running TCP server. Dropping it shuts it down.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    /// Resolved once at bind time (a wildcard bind address is not
    /// connectable, so the loopback of the same family stands in);
    /// shutdown aims its accept-thread wake-up connection here instead
    /// of re-deriving the address on every call.
    wake_addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

struct Shared {
    shutdown: AtomicBool,
    shards: Vec<ShardHandle>,
    /// Shard loop threads, joined by shutdown.
    workers: Mutex<Vec<JoinHandle<()>>>,
    requests_served: Arc<AtomicU64>,
    connections_accepted: AtomicU64,
    next_shard: AtomicUsize,
    nodelay: bool,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field("shards", &self.shared.shards.len())
            .field(
                "requests_served",
                &self.shared.requests_served.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// start serving `service`.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<dyn Service>) -> Result<NetServer> {
        NetServer::bind_with(addr, service, NetServerConfig::default())
    }

    /// [`bind`](Self::bind) with explicit tunables.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<dyn Service>,
        config: NetServerConfig,
    ) -> Result<NetServer> {
        let listener = TcpListener::bind(addr).map_err(|e| net_err("bind", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| net_err("local_addr", e))?;
        let wake_addr = wake_addr_for(local_addr);
        let shard_count = if config.shards == 0 {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        } else {
            config.shards
        };
        let requests_served = Arc::new(AtomicU64::new(0));
        let mut shards = Vec::with_capacity(shard_count);
        let mut workers = Vec::with_capacity(shard_count);
        for index in 0..shard_count {
            let ctx = ShardCtx {
                service: service.clone(),
                read_chunk: config.read_chunk.max(1),
                max_write_buffer: config.max_write_buffer,
                requests_served: requests_served.clone(),
            };
            match evloop::spawn_shard(index, ctx) {
                Ok((handle, join)) => {
                    shards.push(handle);
                    workers.push(join);
                }
                Err(e) => {
                    // Unwind the shards already running before failing
                    // the bind, or they would block in `wait` forever.
                    for shard in &shards {
                        shard.begin_shutdown();
                    }
                    for join in workers {
                        let _ = join.join();
                    }
                    return Err(net_err("spawn event-loop shard", e));
                }
            }
        }
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            shards,
            workers: Mutex::with_rank(
                workers,
                lock_rank::NET_SERVER_WORKERS.0,
                lock_rank::NET_SERVER_WORKERS.1,
            ),
            requests_served,
            connections_accepted: AtomicU64::new(0),
            next_shard: AtomicUsize::new(0),
            nodelay: config.nodelay,
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name(format!("qnet-accept-{local_addr}"))
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| net_err("spawn accept thread", e))?;
        Ok(NetServer {
            shared,
            local_addr,
            wake_addr,
            accept: Mutex::with_rank(
                Some(accept),
                lock_rank::NET_SERVER_ACCEPT.0,
                lock_rank::NET_SERVER_ACCEPT.1,
            ),
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Total requests dispatched to the wrapped service (top-level
    /// frames; batch sub-requests count as one).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests_served.load(Ordering::Relaxed)
    }

    /// Total connections ever accepted.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.connections_accepted.load(Ordering::Relaxed)
    }

    /// Gracefully stop: close the listener, tear down every connection,
    /// and join the shard threads. Safe to call more than once, from
    /// more than one thread.
    pub fn shutdown(&self) {
        let mut woke = true;
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept() with a throwaway connection
            // aimed at the address cached at bind time.
            woke = TcpStream::connect_timeout(&self.wake_addr, Duration::from_millis(250)).is_ok();
        }
        if let Some(handle) = self.accept.lock().take() {
            if woke {
                let _ = handle.join();
            }
            // If the wake-up failed (firewalled loopback, fd exhaustion),
            // dropping the handle leaks the accept thread until process
            // exit — strictly better than deadlocking the caller (Drop
            // runs this path too). The shutdown flag makes the thread
            // exit on its next accepted connection.
        }
        for shard in &self.shared.shards {
            shard.begin_shutdown();
        }
        // Sever every connection from outside the loops: a client whose
        // request is wedged inside `Service::call` must see its socket
        // die now, not when the handler deigns to return.
        for shard in &self.shared.shards {
            shard.force_close_all();
        }
        let workers = std::mem::take(&mut *self.shared.workers.lock());
        for join in workers {
            let _ = join.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// The wake-up target for `shutdown`: the bound address itself, unless
/// it is a wildcard — those are not connectable, so the loopback of the
/// same family stands in.
fn wake_addr_for(local_addr: SocketAddr) -> SocketAddr {
    let mut wake_addr = local_addr;
    if wake_addr.ip().is_unspecified() {
        wake_addr.set_ip(match wake_addr {
            SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
            SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
        });
    }
    wake_addr
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    let mut backoff = AcceptBackoff::new();
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => {
                // Persistent accept errors (EMFILE under fd exhaustion)
                // return immediately; pause with escalation instead of
                // spinning a core exactly when the system is starved.
                std::thread::sleep(backoff.next_delay());
                continue;
            }
        };
        backoff.reset();
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late arrival) during shutdown.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
        if shared.nodelay {
            let _ = stream.set_nodelay(true);
        }
        let index = shared.next_shard.fetch_add(1, Ordering::Relaxed) % shared.shards.len();
        shared.shards[index].send(Task::Accept(stream));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accept_backoff_doubles_to_the_ceiling_and_resets() {
        let mut b = AcceptBackoff::new();
        assert_eq!(b.next_delay(), Duration::from_millis(20));
        assert_eq!(b.next_delay(), Duration::from_millis(40));
        assert_eq!(b.next_delay(), Duration::from_millis(80));
        assert_eq!(b.next_delay(), Duration::from_millis(160));
        assert_eq!(b.next_delay(), Duration::from_millis(320));
        assert_eq!(b.next_delay(), Duration::from_millis(500), "capped");
        assert_eq!(b.next_delay(), Duration::from_millis(500), "stays capped");
        b.reset();
        assert_eq!(b.next_delay(), Duration::from_millis(20), "reset to floor");
    }

    #[test]
    fn wake_addr_passes_through_concrete_and_fixes_wildcards() {
        let concrete: SocketAddr = "127.0.0.1:4100".parse().unwrap();
        assert_eq!(wake_addr_for(concrete), concrete);
        let v4_any: SocketAddr = "0.0.0.0:4100".parse().unwrap();
        assert_eq!(wake_addr_for(v4_any), "127.0.0.1:4100".parse().unwrap());
        let v6_any: SocketAddr = "[::]:4100".parse().unwrap();
        assert_eq!(wake_addr_for(v6_any), "[::1]:4100".parse().unwrap());
    }
}

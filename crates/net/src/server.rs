//! The multithreaded TCP server: an accept loop plus one worker thread
//! per connection, serving any [`Service`] over the wire protocol.
//!
//! Threading model (threads are the workspace's concurrency substrate —
//! no async runtime, per the zero-dependency constraint):
//!
//! * one **accept thread** owns the listener;
//! * one **connection worker** per accepted socket reads frames,
//!   dispatches them to the wrapped service *in arrival order* (that is
//!   the pipelining contract: responses to one connection preserve
//!   request order, so a client may correlate by order or by id), and
//!   writes responses back in batches — all responses parsed from one
//!   read burst are flushed with a single `write` syscall, which is what
//!   makes deep pipelines cheap;
//! * `Subscribe` requests additionally spawn a **push forwarder** thread
//!   that drains the server-side subscription and forwards every message
//!   as a `StreamPush` frame tagged with the subscribing request's id.
//!
//! Backpressure is the socket itself: a client that stops reading
//! eventually blocks the worker's `write`, which stops the worker's
//! `read`, which fills the client's TCP window. Nothing buffers
//! unboundedly.
//!
//! Shutdown is graceful and idempotent: stop accepting, shut down every
//! connection socket (which unblocks blocked reads/writes), join every
//! worker (workers join their forwarders). In-flight requests finish;
//! their responses may or may not reach the client, whose pending calls
//! surface [`Error::Net`](quaestor_common::Error::Net).

use std::io::{Read, Write};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use bytes::BytesMut;
use parking_lot::Mutex;
use quaestor_common::{lock_rank, Error, FxHashMap, Result};
use quaestor_core::{Request, Response, Service};

use crate::codec;
use crate::wire::{self, FrameDecode, FrameKind};

/// Tunables for a [`NetServer`].
#[derive(Debug, Clone)]
pub struct NetServerConfig {
    /// Size of the per-connection read chunk (bytes pulled per `read`
    /// syscall into the connection's [`BytesMut`] buffer).
    pub read_chunk: usize,
    /// Disable Nagle's algorithm on accepted sockets. Pipelined
    /// request/response traffic is latency-bound on small writes, so the
    /// default is `true`.
    pub nodelay: bool,
    /// Poll interval at which push forwarders check connection liveness
    /// while their stream is idle.
    pub stream_poll: Duration,
}

impl Default for NetServerConfig {
    fn default() -> Self {
        NetServerConfig {
            read_chunk: 64 * 1024,
            nodelay: true,
            stream_poll: Duration::from_millis(100),
        }
    }
}

fn net_err(context: &str, e: impl std::fmt::Display) -> Error {
    Error::Net(format!("{context}: {e}"))
}

/// A running TCP server. Dropping it shuts it down.
pub struct NetServer {
    shared: Arc<Shared>,
    local_addr: SocketAddr,
    accept: Mutex<Option<JoinHandle<()>>>,
}

struct Shared {
    service: Arc<dyn Service>,
    config: NetServerConfig,
    shutdown: AtomicBool,
    workers: Mutex<Vec<Worker>>,
    requests_served: AtomicU64,
    connections_accepted: AtomicU64,
}

struct Worker {
    stream: TcpStream,
    handle: JoinHandle<()>,
    done: Arc<AtomicBool>,
}

impl std::fmt::Debug for NetServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("NetServer")
            .field("local_addr", &self.local_addr)
            .field(
                "requests_served",
                &self.shared.requests_served.load(Ordering::Relaxed),
            )
            .finish()
    }
}

impl NetServer {
    /// Bind `addr` (e.g. `"127.0.0.1:0"` for an OS-assigned port) and
    /// start serving `service`.
    pub fn bind(addr: impl ToSocketAddrs, service: Arc<dyn Service>) -> Result<NetServer> {
        NetServer::bind_with(addr, service, NetServerConfig::default())
    }

    /// [`bind`](Self::bind) with explicit tunables.
    pub fn bind_with(
        addr: impl ToSocketAddrs,
        service: Arc<dyn Service>,
        config: NetServerConfig,
    ) -> Result<NetServer> {
        let listener = TcpListener::bind(addr).map_err(|e| net_err("bind", e))?;
        let local_addr = listener
            .local_addr()
            .map_err(|e| net_err("local_addr", e))?;
        let shared = Arc::new(Shared {
            service,
            config,
            shutdown: AtomicBool::new(false),
            workers: Mutex::with_rank(
                Vec::new(),
                lock_rank::NET_SERVER_WORKERS.0,
                lock_rank::NET_SERVER_WORKERS.1,
            ),
            requests_served: AtomicU64::new(0),
            connections_accepted: AtomicU64::new(0),
        });
        let accept_shared = shared.clone();
        let accept = std::thread::Builder::new()
            .name(format!("qnet-accept-{local_addr}"))
            .spawn(move || accept_loop(listener, accept_shared))
            .map_err(|e| net_err("spawn accept thread", e))?;
        Ok(NetServer {
            shared,
            local_addr,
            accept: Mutex::with_rank(
                Some(accept),
                lock_rank::NET_SERVER_ACCEPT.0,
                lock_rank::NET_SERVER_ACCEPT.1,
            ),
        })
    }

    /// The bound address (with the OS-assigned port resolved).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Total requests dispatched to the wrapped service (top-level
    /// frames; batch sub-requests count as one).
    pub fn requests_served(&self) -> u64 {
        self.shared.requests_served.load(Ordering::Relaxed)
    }

    /// Total connections ever accepted.
    pub fn connections_accepted(&self) -> u64 {
        self.shared.connections_accepted.load(Ordering::Relaxed)
    }

    /// Gracefully stop: close the listener, tear down every connection,
    /// and join all worker threads. Safe to call more than once.
    pub fn shutdown(&self) {
        let mut woke = true;
        if !self.shared.shutdown.swap(true, Ordering::SeqCst) {
            // Wake the blocking accept() with a throwaway connection. A
            // wildcard bind address is not connectable — aim at the
            // loopback of the same family instead.
            let mut wake_addr = self.local_addr;
            if wake_addr.ip().is_unspecified() {
                wake_addr.set_ip(match wake_addr {
                    SocketAddr::V4(_) => std::net::IpAddr::V4(std::net::Ipv4Addr::LOCALHOST),
                    SocketAddr::V6(_) => std::net::IpAddr::V6(std::net::Ipv6Addr::LOCALHOST),
                });
            }
            woke = TcpStream::connect_timeout(&wake_addr, Duration::from_millis(250)).is_ok();
        }
        if let Some(handle) = self.accept.lock().take() {
            if woke {
                let _ = handle.join();
            }
            // If the wake-up failed (firewalled loopback, fd exhaustion),
            // dropping the handle leaks the accept thread until process
            // exit — strictly better than deadlocking the caller (Drop
            // runs this path too). The shutdown flag makes the thread
            // exit on its next accepted connection.
        }
        // Tear down connections: shutting the socket down unblocks the
        // worker's read/write, after which it exits and joins its
        // forwarders.
        let workers = std::mem::take(&mut *self.shared.workers.lock());
        for w in &workers {
            let _ = w.stream.shutdown(Shutdown::Both);
        }
        for w in workers {
            let _ = w.handle.join();
        }
    }
}

impl Drop for NetServer {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, shared: Arc<Shared>) {
    loop {
        let (stream, _peer) = match listener.accept() {
            Ok(pair) => pair,
            Err(_) if shared.shutdown.load(Ordering::SeqCst) => return,
            Err(_) => {
                // Persistent accept errors (EMFILE under fd exhaustion)
                // return immediately; without a pause this loop would
                // spin a core exactly when the system is starved.
                std::thread::sleep(Duration::from_millis(20));
                continue;
            }
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            // The wake-up connection (or a late arrival) during shutdown.
            let _ = stream.shutdown(Shutdown::Both);
            return;
        }
        shared.connections_accepted.fetch_add(1, Ordering::Relaxed);
        if shared.config.nodelay {
            let _ = stream.set_nodelay(true);
        }
        let Ok(worker_stream) = stream.try_clone() else {
            continue;
        };
        let conn_shared = shared.clone();
        let done = Arc::new(AtomicBool::new(false));
        let done2 = done.clone();
        let spawned = std::thread::Builder::new()
            .name("qnet-conn".to_owned())
            .spawn(move || {
                run_connection(conn_shared, worker_stream);
                done2.store(true, Ordering::Release);
            });
        match spawned {
            Ok(handle) => {
                let mut workers = shared.workers.lock();
                // Reap finished workers so a long-lived server with
                // churning connections does not accumulate handles.
                workers.retain(|w| !w.done.load(Ordering::Acquire));
                workers.push(Worker {
                    stream,
                    handle,
                    done,
                });
            }
            Err(_) => {
                let _ = stream.shutdown(Shutdown::Both);
            }
        }
    }
}

/// A push forwarder's cancel flag (set by `StreamCancel`) and the
/// handle the worker joins on connection exit.
type Forwarder = (Arc<AtomicBool>, JoinHandle<()>);

/// Per-connection state shared with push-forwarder threads.
struct ConnState {
    /// Writer half; every frame (response or push) is written whole
    /// under this lock.
    writer: Mutex<TcpStream>,
    /// Cleared when the read loop exits; forwarders poll it.
    alive: AtomicBool,
    /// Push forwarders by subscribing request id: the cancel flag (set
    /// by a `StreamCancel` frame) and the handle the worker joins on
    /// exit. A cancelled entry's thread exits and releases the origin
    /// subscription; the spent handle stays until the connection ends.
    forwarders: Mutex<FxHashMap<u64, Forwarder>>,
}

fn run_connection(shared: Arc<Shared>, stream: TcpStream) {
    let Ok(writer_stream) = stream.try_clone() else {
        let _ = stream.shutdown(Shutdown::Both);
        return;
    };
    let conn = Arc::new(ConnState {
        writer: Mutex::with_rank(
            writer_stream,
            lock_rank::NET_SERVER_WRITER.0,
            lock_rank::NET_SERVER_WRITER.1,
        ),
        alive: AtomicBool::new(true),
        forwarders: Mutex::with_rank(
            FxHashMap::default(),
            lock_rank::NET_SERVER_FORWARDERS.0,
            lock_rank::NET_SERVER_FORWARDERS.1,
        ),
    });
    let mut reader = stream;
    let mut buf = BytesMut::with_capacity(shared.config.read_chunk);
    let mut chunk = vec![0u8; shared.config.read_chunk];
    let mut out: Vec<u8> = Vec::new();

    'conn: loop {
        // Drain every complete frame in the buffer, answering into one
        // write burst.
        loop {
            let advance = match wire::decode_frame(&buf) {
                FrameDecode::Incomplete => break,
                FrameDecode::Corrupt(_) => break 'conn, // framing lost
                FrameDecode::Frame(frame) => {
                    match frame.kind {
                        FrameKind::Request => {
                            handle_request(&shared, &conn, frame.request_id, frame.body, &mut out);
                        }
                        FrameKind::StreamCancel => {
                            // The client dropped its end of this stream;
                            // release the forwarder (and with it the
                            // origin subscription).
                            if let Some((cancel, _)) = conn.forwarders.lock().get(&frame.request_id)
                            {
                                cancel.store(true, Ordering::Release);
                            }
                        }
                        _ => break 'conn, // protocol violation: only clients send
                    }
                    frame.size
                }
            };
            buf.advance(advance);
        }
        if !out.is_empty() {
            let mut w = conn.writer.lock();
            if w.write_all(&out).is_err() {
                break 'conn;
            }
            out.clear();
        }
        match reader.read(&mut chunk) {
            Ok(0) => break 'conn,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => break 'conn,
        }
    }

    conn.alive.store(false, Ordering::Release);
    let _ = conn.writer.lock().shutdown(Shutdown::Both);
    // analyze: allow(lock-order) writer guard above is a statement temporary, released before forwarders
    let forwarders = std::mem::take(&mut *conn.forwarders.lock());
    for (_, (_, handle)) in forwarders {
        let _ = handle.join();
    }
}

/// Decode and dispatch one request frame, appending the response frame
/// to `out`.
fn handle_request(
    shared: &Arc<Shared>,
    conn: &Arc<ConnState>,
    request_id: u64,
    body: &[u8],
    out: &mut Vec<u8>,
) {
    shared.requests_served.fetch_add(1, Ordering::Relaxed);
    let (ctx, req) = match codec::decode_request_traced(body) {
        Ok(decoded) => decoded,
        Err(e) => {
            // The frame was CRC-valid, so framing is intact — answer the
            // bad request and keep the connection.
            let err = Error::BadRequest(format!("undecodable request: {e}"));
            wire::encode_frame(
                FrameKind::ResponseErr,
                request_id,
                &codec::encode_error(&err),
                out,
            );
            return;
        }
    };
    // Continue the caller's trace across the wire: the span adopts the
    // remote parent and every span below (service, planner, WAL) nests
    // under it in the stitched trace.
    let _span = quaestor_obs::adopt_span(ctx, "net.server");
    let is_subscribe = matches!(req, Request::Subscribe { .. });
    match shared.service.call(req) {
        Ok(Response::Stream(subscription)) => {
            // Accept the stream, then forward every message as a push
            // frame tagged with this request's id.
            wire::encode_frame(
                FrameKind::ResponseOk,
                request_id,
                &codec::encode_stream_marker(),
                out,
            );
            spawn_forwarder(shared, conn, request_id, subscription);
        }
        Ok(resp) => {
            debug_assert!(!is_subscribe || matches!(resp, Response::Stream(_)));
            let body = codec::encode_response(&resp);
            if wire::frame_fits(body.len()) {
                wire::encode_frame(FrameKind::ResponseOk, request_id, &body, out);
            } else {
                // An unframeable frame would be rejected as Corrupt and
                // kill the connection for every pipelined caller; answer
                // with a typed error instead.
                let err = Error::Net(format!(
                    "response too large for one frame ({} bytes > {} cap); \
                     narrow the query or split the batch",
                    body.len(),
                    wire::MAX_FRAME_PAYLOAD
                ));
                wire::encode_frame(
                    FrameKind::ResponseErr,
                    request_id,
                    &codec::encode_error(&err),
                    out,
                );
            }
        }
        Err(e) => {
            wire::encode_frame(
                FrameKind::ResponseErr,
                request_id,
                &codec::encode_error(&e),
                out,
            );
        }
    }
}

fn spawn_forwarder(
    shared: &Arc<Shared>,
    conn: &Arc<ConnState>,
    request_id: u64,
    subscription: quaestor_kv::Subscription,
) {
    let conn2 = conn.clone();
    let poll = shared.config.stream_poll;
    let cancel = Arc::new(AtomicBool::new(false));
    let cancelled = cancel.clone();
    let spawned = std::thread::Builder::new()
        .name("qnet-stream".to_owned())
        .spawn(move || {
            let mut frame = Vec::new();
            while conn2.alive.load(Ordering::Acquire) && !cancelled.load(Ordering::Acquire) {
                let Some(message) = subscription.recv_timeout(poll) else {
                    continue;
                };
                if !wire::frame_fits(message.len()) {
                    continue; // cannot frame it; drop rather than corrupt
                }
                frame.clear();
                wire::encode_frame(FrameKind::StreamPush, request_id, &message, &mut frame);
                if conn2.writer.lock().write_all(&frame).is_err() {
                    return;
                }
            }
        });
    match spawned {
        Ok(handle) => {
            // analyze: allow(lock-order) the writer acquisition above runs on the spawned forwarder thread, never held here
            conn.forwarders.lock().insert(request_id, (cancel, handle));
        }
        Err(_) => { /* out of threads: the stream silently ends */ }
    }
}

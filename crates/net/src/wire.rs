//! The frame layer: length-prefixed, CRC-checksummed, versioned frames
//! with a request id for pipelining.
//!
//! Wire layout of one frame (everything little-endian):
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u8 version][u8 kind][u64 request_id][body]
//! ```
//!
//! This extends the durability WAL's frame format (same outer
//! `len + crc32` envelope, same CRC-32/IEEE implementation, shared via
//! [`quaestor_durability::frame::crc32`]) with the two things a duplex
//! socket needs that a log does not: a **protocol version** so that a
//! server can refuse a client from the future with a clean error instead
//! of garbage decodes, and a **request id** so that responses can return
//! out of band of other traffic on the connection (pipelining, stream
//! pushes) and still find their caller.
//!
//! A reader distinguishes three outcomes at every frame position, exactly
//! like the WAL: a complete valid frame, *not enough bytes yet* (wait for
//! more from the socket), and a corrupt frame (CRC mismatch, absurd
//! length, unknown version) — which on a socket is unrecoverable, because
//! framing is lost: the connection must be torn down.

use quaestor_durability::frame::crc32;

/// Current protocol version. Bump on any incompatible change to the
/// payload layout; see `DESIGN.md` for the versioning rules.
pub const PROTOCOL_VERSION: u8 = 1;

/// Hard ceiling on a single frame's payload. Bounds the allocation a
/// corrupt or hostile length prefix can trigger. Large batches and EBF
/// snapshots fit comfortably; anything bigger is a protocol violation.
pub const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

/// Frame header size on the wire: `len` + `crc`.
pub const FRAME_HEADER: usize = 8;

/// Payload prologue size: `version` + `kind` + `request_id`.
pub const PAYLOAD_PROLOGUE: usize = 10;

/// What a frame carries; the first byte after the version.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FrameKind {
    /// Client → server: one encoded `Request`.
    Request,
    /// Server → client: the `Ok(Response)` for the request id.
    ResponseOk,
    /// Server → client: the `Err(Error)` for the request id.
    ResponseErr,
    /// Server → client: one pushed message on the change stream opened by
    /// the `Subscribe` request with this request id. Zero or more of
    /// these follow a `ResponseOk` carrying the `Stream` marker.
    StreamPush,
    /// Client → server: stop the change stream opened by the request
    /// with this id (empty body). Sent when the client-side subscription
    /// has been dropped, so the server can release its forwarder.
    StreamCancel,
    /// Replica → primary: replication handshake — the replica's current
    /// epoch and last WAL LSN. Opens a dedicated replication connection;
    /// both ends are repl-aware, so regular request/response traffic
    /// never shares it.
    ReplHello,
    /// Primary → replica: handshake answer — the primary's epoch, its
    /// fence LSN, and the LSN the replica must resume from (truncating
    /// anything above it first, if its epoch was stale).
    ReplHelloAck,
    /// Primary → replica: a batch of WAL frames, body = concatenated
    /// durability frames (`[len][crc][lsn][record]` each), in LSN order.
    ReplFrames,
    /// Replica → primary: the highest LSN now applied *and durable* on
    /// the replica's own log.
    ReplAck,
}

impl FrameKind {
    fn tag(self) -> u8 {
        match self {
            FrameKind::Request => 0,
            FrameKind::ResponseOk => 1,
            FrameKind::ResponseErr => 2,
            FrameKind::StreamPush => 3,
            FrameKind::StreamCancel => 4,
            FrameKind::ReplHello => 5,
            FrameKind::ReplHelloAck => 6,
            FrameKind::ReplFrames => 7,
            FrameKind::ReplAck => 8,
        }
    }

    fn from_tag(tag: u8) -> Option<FrameKind> {
        Some(match tag {
            0 => FrameKind::Request,
            1 => FrameKind::ResponseOk,
            2 => FrameKind::ResponseErr,
            3 => FrameKind::StreamPush,
            4 => FrameKind::StreamCancel,
            5 => FrameKind::ReplHello,
            6 => FrameKind::ReplHelloAck,
            7 => FrameKind::ReplFrames,
            8 => FrameKind::ReplAck,
            _ => return None,
        })
    }
}

/// True if a body of this size fits in one frame. Callers must check
/// before [`encode_frame`] — an oversized frame would be rejected as
/// `Corrupt` by the peer, tearing down the connection for everyone
/// pipelined on it.
pub fn frame_fits(body_len: usize) -> bool {
    body_len <= MAX_FRAME_PAYLOAD as usize - PAYLOAD_PROLOGUE
}

/// Append one complete frame (`kind`, `request_id`, `body`) to `out`.
pub fn encode_frame(kind: FrameKind, request_id: u64, body: &[u8], out: &mut Vec<u8>) {
    let payload_len = PAYLOAD_PROLOGUE + body.len();
    debug_assert!(payload_len <= MAX_FRAME_PAYLOAD as usize);
    out.reserve(FRAME_HEADER + payload_len);
    out.extend_from_slice(&(payload_len as u32).to_le_bytes());
    // CRC over the payload, computed incrementally below would need a
    // streaming CRC; the prologue is tiny, so stage it and checksum once.
    let crc_pos = out.len();
    out.extend_from_slice(&[0; 4]); // crc placeholder
    let payload_pos = out.len();
    out.push(PROTOCOL_VERSION);
    out.push(kind.tag());
    out.extend_from_slice(&request_id.to_le_bytes());
    out.extend_from_slice(body);
    let crc = crc32(&out[payload_pos..]);
    out[crc_pos..crc_pos + 4].copy_from_slice(&crc.to_le_bytes());
}

/// One decoded frame, borrowing its body from the read buffer.
#[derive(Debug)]
pub struct Frame<'a> {
    /// What the body is.
    pub kind: FrameKind,
    /// Correlation id chosen by the requester.
    pub request_id: u64,
    /// The encoded `Request` / `Response` / `Error` / push message.
    pub body: &'a [u8],
    /// Total on-wire size — advance the buffer by this much.
    pub size: usize,
}

/// Outcome of trying to read a frame from the front of `buf`.
#[derive(Debug)]
pub enum FrameDecode<'a> {
    /// A complete, CRC-valid frame.
    Frame(Frame<'a>),
    /// The buffer holds a valid prefix of a frame; read more bytes.
    Incomplete,
    /// Framing is broken (bad CRC, absurd length, unknown version or
    /// kind). The connection cannot be resynchronized and must close.
    Corrupt(String),
}

/// Little-endian u32 at `at`; caller guarantees `b.len() >= at + 4`.
fn le_u32(b: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[at..at + 4]);
    u32::from_le_bytes(a)
}

/// Little-endian u64 at `at`; caller guarantees `b.len() >= at + 8`.
fn le_u64(b: &[u8], at: usize) -> u64 {
    let mut a = [0u8; 8];
    a.copy_from_slice(&b[at..at + 8]);
    u64::from_le_bytes(a)
}

/// Try to decode the frame at the front of `buf`.
pub fn decode_frame(buf: &[u8]) -> FrameDecode<'_> {
    if buf.len() < FRAME_HEADER {
        return FrameDecode::Incomplete;
    }
    let len = le_u32(buf, 0);
    if len > MAX_FRAME_PAYLOAD {
        return FrameDecode::Corrupt(format!("frame payload {len} exceeds cap"));
    }
    let len = len as usize;
    if len < PAYLOAD_PROLOGUE {
        return FrameDecode::Corrupt(format!("frame payload {len} shorter than prologue"));
    }
    if buf.len() < FRAME_HEADER + len {
        return FrameDecode::Incomplete;
    }
    let want = le_u32(buf, 4);
    let payload = &buf[FRAME_HEADER..FRAME_HEADER + len];
    let got = crc32(payload);
    if got != want {
        return FrameDecode::Corrupt(format!(
            "frame crc mismatch: stored {want:#010x}, computed {got:#010x}"
        ));
    }
    let version = payload[0];
    if version != PROTOCOL_VERSION {
        return FrameDecode::Corrupt(format!(
            "unsupported protocol version {version} (speaking {PROTOCOL_VERSION})"
        ));
    }
    let Some(kind) = FrameKind::from_tag(payload[1]) else {
        return FrameDecode::Corrupt(format!("unknown frame kind {}", payload[1]));
    };
    let request_id = le_u64(payload, 2);
    FrameDecode::Frame(Frame {
        kind,
        request_id,
        body: &payload[PAYLOAD_PROLOGUE..],
        size: FRAME_HEADER + len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frame_roundtrip_with_request_id() {
        let mut buf = Vec::new();
        encode_frame(FrameKind::Request, 42, b"hello", &mut buf);
        encode_frame(FrameKind::ResponseErr, u64::MAX, b"", &mut buf);
        match decode_frame(&buf) {
            FrameDecode::Frame(f) => {
                assert_eq!(f.kind, FrameKind::Request);
                assert_eq!(f.request_id, 42);
                assert_eq!(f.body, b"hello");
                match decode_frame(&buf[f.size..]) {
                    FrameDecode::Frame(g) => {
                        assert_eq!(g.kind, FrameKind::ResponseErr);
                        assert_eq!(g.request_id, u64::MAX);
                        assert!(g.body.is_empty());
                        assert_eq!(f.size + g.size, buf.len());
                    }
                    other => panic!("second frame: {other:?}"),
                }
            }
            other => panic!("first frame: {other:?}"),
        }
    }

    #[test]
    fn replication_frame_kinds_roundtrip() {
        for kind in [
            FrameKind::ReplHello,
            FrameKind::ReplHelloAck,
            FrameKind::ReplFrames,
            FrameKind::ReplAck,
        ] {
            let mut buf = Vec::new();
            encode_frame(kind, 3, b"repl", &mut buf);
            match decode_frame(&buf) {
                FrameDecode::Frame(f) => {
                    assert_eq!(f.kind, kind);
                    assert_eq!(f.body, b"repl");
                }
                other => panic!("{kind:?}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_truncation_is_incomplete_not_corrupt() {
        let mut buf = Vec::new();
        encode_frame(FrameKind::StreamPush, 7, b"payload-bytes", &mut buf);
        for cut in 0..buf.len() {
            match decode_frame(&buf[..cut]) {
                FrameDecode::Incomplete => {}
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flips_are_corrupt() {
        let mut buf = Vec::new();
        encode_frame(FrameKind::Request, 9, b"abc", &mut buf);
        // Flipping any payload byte (after the header) breaks the CRC.
        for pos in FRAME_HEADER..buf.len() {
            let mut bad = buf.clone();
            bad[pos] ^= 0x10;
            assert!(
                matches!(decode_frame(&bad), FrameDecode::Corrupt(_)),
                "flip at {pos} undetected"
            );
        }
    }

    #[test]
    fn future_version_is_refused_cleanly() {
        let mut buf = Vec::new();
        encode_frame(FrameKind::Request, 1, b"", &mut buf);
        buf[FRAME_HEADER] = PROTOCOL_VERSION + 1; // bump version byte
        let crc = crc32(&buf[FRAME_HEADER..]); // re-seal so only version differs
        buf[4..8].copy_from_slice(&crc.to_le_bytes());
        match decode_frame(&buf) {
            FrameDecode::Corrupt(msg) => assert!(msg.contains("version"), "{msg}"),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn absurd_length_is_corrupt_without_allocating() {
        let mut buf = vec![0xFF; 16];
        assert!(matches!(decode_frame(&buf), FrameDecode::Corrupt(_)));
        // A length below the prologue is equally unframeable.
        buf[0..4].copy_from_slice(&3u32.to_le_bytes());
        assert!(matches!(decode_frame(&buf), FrameDecode::Corrupt(_)));
    }
}

//! Binary encoding of the `Service` protocol: every [`Request`],
//! [`Response`] and [`Error`] variant.
//!
//! Builds on the durability crate's hand-rolled little-endian codec
//! ([`quaestor_durability::codec`]) — same `Reader`/`Writer`, same
//! tagged-value document encoding, so a document written to the WAL and
//! a document sent over a socket are byte-identical. This module adds
//! the protocol-layer shapes: requests, typed responses, errors, and
//! the containers (`Batch`) that nest them.
//!
//! Everything is self-delimiting and bounds-checked; decoding untrusted
//! bytes returns a clean [`DecodeError`], never panics, and never
//! allocates more than the input could justify.
//!
//! One variant is special: [`Response::Stream`] carries a live
//! [`quaestor_kv::Subscription`] — a process-local channel endpoint that
//! cannot cross a socket. On the wire it is a **marker**; the stream's
//! messages travel as separate `StreamPush` frames correlated by request
//! id, and the client-side [`RemoteService`](crate::RemoteService)
//! materializes a fresh local subscription fed by those pushes. The
//! decoder therefore returns a [`WireResponse`], which is `Plain` for
//! every self-contained response and `Stream` for the marker.

use std::sync::Arc;

use bytes::Bytes;
use quaestor_bloom::BloomFilter;
use quaestor_common::{Error, Result, Timestamp};
use quaestor_core::{
    QueryResponse, RecordResponse, ReplRole, ReplicationStatus, Request, Response,
};
use quaestor_document::{Path, Update, UpdateOp};
use quaestor_durability::codec::{
    get_document, get_query, get_value, put_document, put_query, put_value, DecodeError, Reader,
    Writer,
};
use quaestor_obs::{HistogramSummary, MetricsSnapshot, TraceContext};
use quaestor_query::QueryKey;
use quaestor_ttl::Representation;

type DResult<T> = std::result::Result<T, DecodeError>;

fn err<T>(msg: impl Into<String>) -> DResult<T> {
    Err(DecodeError(msg.into()))
}

// ---- Update ---------------------------------------------------------------

const U_SET: u8 = 0;
const U_UNSET: u8 = 1;
const U_INC: u8 = 2;
const U_PUSH: u8 = 3;
const U_PULL: u8 = 4;
const U_RENAME: u8 = 5;

/// Encode an [`Update`] (operator list).
pub fn put_update(w: &mut Writer, update: &Update) {
    let ops = update.ops();
    w.put_u32(ops.len() as u32);
    for op in ops {
        match op {
            UpdateOp::Set(path, value) => {
                w.put_u8(U_SET);
                w.put_str(path.as_str());
                put_value(w, value);
            }
            UpdateOp::Unset(path) => {
                w.put_u8(U_UNSET);
                w.put_str(path.as_str());
            }
            UpdateOp::Inc(path, delta) => {
                w.put_u8(U_INC);
                w.put_str(path.as_str());
                w.put_f64(*delta);
            }
            UpdateOp::Push(path, value) => {
                w.put_u8(U_PUSH);
                w.put_str(path.as_str());
                put_value(w, value);
            }
            UpdateOp::Pull(path, value) => {
                w.put_u8(U_PULL);
                w.put_str(path.as_str());
                put_value(w, value);
            }
            UpdateOp::Rename(from, to) => {
                w.put_u8(U_RENAME);
                w.put_str(from.as_str());
                w.put_str(to.as_str());
            }
        }
    }
}

/// Decode an [`Update`].
// analyze: allow(depth-cap) op count bounded by remaining(); values recurse via depth-capped get_value
pub fn get_update(r: &mut Reader<'_>) -> DResult<Update> {
    let n = {
        let n = r.u32()? as usize;
        if n > r.remaining() {
            return err(format!("update op count {n} exceeds remaining bytes"));
        }
        n
    };
    let mut update = Update::new();
    for _ in 0..n {
        update = match r.u8()? {
            U_SET => {
                let path = Path::new(r.str()?);
                update.set(path, get_value(r)?)
            }
            U_UNSET => update.unset(Path::new(r.str()?)),
            U_INC => {
                let path = Path::new(r.str()?);
                let delta = r.f64()?;
                update.inc(path, delta)
            }
            U_PUSH => {
                let path = Path::new(r.str()?);
                update.push(path, get_value(r)?)
            }
            U_PULL => {
                let path = Path::new(r.str()?);
                update.pull(path, get_value(r)?)
            }
            U_RENAME => {
                let from = Path::new(r.str()?);
                let to = Path::new(r.str()?);
                update.rename(from, to)
            }
            t => return err(format!("unknown update op tag {t}")),
        };
    }
    Ok(update)
}

// ---- Request --------------------------------------------------------------

const RQ_GET_RECORD: u8 = 0;
const RQ_QUERY: u8 = 1;
const RQ_INSERT: u8 = 2;
const RQ_UPDATE: u8 = 3;
const RQ_REPLACE: u8 = 4;
const RQ_DELETE: u8 = 5;
const RQ_EBF: u8 = 6;
const RQ_BATCH: u8 = 7;
const RQ_SUBSCRIBE: u8 = 8;
const RQ_FLUSH: u8 = 9;
const RQ_REPL_STATUS: u8 = 10;
const RQ_PROMOTE: u8 = 11;
const RQ_METRICS: u8 = 12;

// ---- body-prefix tags -----------------------------------------------------
//
// Optional, additive metadata riding in front of an encoded request:
// `[tag u8][len u8][payload; len]`, repeated. Tags occupy `0xF0..=0xFF`
// — disjoint from every request kind tag — so a tagged body is
// unambiguous, and a decoder that does not understand a tag skips
// exactly `len` bytes. This is how the trace context crosses the wire
// without a frame version bump.

/// Lowest byte value reserved for body-prefix tags.
const BODY_TAG_MIN: u8 = 0xF0;
/// The trace-context tag: 17-byte payload
/// `[trace_id u64][span_id u64][sampled u8]`.
pub const BODY_TAG_TRACE: u8 = 0xF0;
const TRACE_PAYLOAD_LEN: usize = 17;

/// Split any body-prefix tags off `body`, parsing the ones we know.
/// Unknown tags (and known tags with unexpected lengths) are skipped —
/// additive evolution: older peers never sent tags, newer peers may
/// send tags this build has never heard of.
fn split_body_tags(body: &[u8]) -> DResult<(Option<TraceContext>, &[u8])> {
    let mut ctx = None;
    let mut rest = body;
    while let [tag, len, payload @ ..] = rest {
        if *tag < BODY_TAG_MIN {
            break;
        }
        let len = *len as usize;
        if payload.len() < len {
            return err(format!(
                "body tag {tag:#04x} claims {len} payload bytes, {} remain",
                payload.len()
            ));
        }
        let (p, after) = payload.split_at(len);
        if *tag == BODY_TAG_TRACE && len == TRACE_PAYLOAD_LEN {
            let mut r = Reader::new(p);
            ctx = Some(TraceContext {
                trace_id: r.u64()?,
                span_id: r.u64()?,
                sampled: r.u8()? != 0,
            });
        }
        rest = after;
    }
    Ok((ctx, rest))
}

fn put_trace_tag(w: &mut Writer, ctx: &TraceContext) {
    w.put_u8(BODY_TAG_TRACE);
    w.put_u8(TRACE_PAYLOAD_LEN as u8);
    w.put_u64(ctx.trace_id);
    w.put_u64(ctx.span_id);
    w.put_u8(ctx.sampled as u8);
}

/// Encode a [`Request`].
pub fn put_request(w: &mut Writer, req: &Request) {
    match req {
        Request::GetRecord { table, id } => {
            w.put_u8(RQ_GET_RECORD);
            w.put_str(table);
            w.put_str(id);
        }
        Request::Query(q) => {
            w.put_u8(RQ_QUERY);
            put_query(w, q);
        }
        Request::Insert { table, id, doc } => {
            w.put_u8(RQ_INSERT);
            w.put_str(table);
            w.put_str(id);
            put_document(w, doc);
        }
        Request::Update { table, id, update } => {
            w.put_u8(RQ_UPDATE);
            w.put_str(table);
            w.put_str(id);
            put_update(w, update);
        }
        Request::Replace { table, id, doc } => {
            w.put_u8(RQ_REPLACE);
            w.put_str(table);
            w.put_str(id);
            put_document(w, doc);
        }
        Request::Delete { table, id } => {
            w.put_u8(RQ_DELETE);
            w.put_str(table);
            w.put_str(id);
        }
        Request::EbfSnapshot { table } => {
            w.put_u8(RQ_EBF);
            match table {
                Some(t) => {
                    w.put_u8(1);
                    w.put_str(t);
                }
                None => w.put_u8(0),
            }
        }
        Request::Batch(reqs) => {
            w.put_u8(RQ_BATCH);
            w.put_u32(reqs.len() as u32);
            for r in reqs {
                put_request(w, r);
            }
        }
        Request::Subscribe { key } => {
            w.put_u8(RQ_SUBSCRIBE);
            w.put_str(key.as_str());
        }
        Request::Flush => w.put_u8(RQ_FLUSH),
        Request::ReplicationStatus => w.put_u8(RQ_REPL_STATUS),
        Request::Promote { epoch } => {
            w.put_u8(RQ_PROMOTE);
            w.put_u64(*epoch);
        }
        Request::Metrics => w.put_u8(RQ_METRICS),
    }
}

/// Hard ceiling on `Batch`-in-`Batch` nesting when decoding untrusted
/// bytes. Real nesting is one or two levels; without a cap, a few KB of
/// crafted batch tags would drive the decoder's recursion to a stack
/// overflow (an abort, not a clean error).
pub const MAX_BATCH_DEPTH: usize = 8;

fn deeper(depth: usize, what: &str) -> DResult<usize> {
    if depth >= MAX_BATCH_DEPTH {
        return err(format!(
            "{what} nesting exceeds depth cap {MAX_BATCH_DEPTH}"
        ));
    }
    Ok(depth + 1)
}

/// Decode a [`Request`].
pub fn get_request(r: &mut Reader<'_>) -> DResult<Request> {
    get_request_at(r, 0)
}

fn get_request_at(r: &mut Reader<'_>, depth: usize) -> DResult<Request> {
    Ok(match r.u8()? {
        RQ_GET_RECORD => Request::GetRecord {
            table: r.str()?,
            id: r.str()?,
        },
        RQ_QUERY => Request::Query(get_query(r)?),
        RQ_INSERT => Request::Insert {
            table: r.str()?,
            id: r.str()?,
            doc: get_document(r)?,
        },
        RQ_UPDATE => {
            let table = r.str()?;
            let id = r.str()?;
            let update = get_update(r)?;
            Request::Update { table, id, update }
        }
        RQ_REPLACE => Request::Replace {
            table: r.str()?,
            id: r.str()?,
            doc: get_document(r)?,
        },
        RQ_DELETE => Request::Delete {
            table: r.str()?,
            id: r.str()?,
        },
        RQ_EBF => Request::EbfSnapshot {
            table: if r.u8()? != 0 { Some(r.str()?) } else { None },
        },
        RQ_BATCH => {
            let depth = deeper(depth, "batch")?;
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return err(format!("batch count {n} exceeds remaining bytes"));
            }
            let mut reqs = Vec::with_capacity(n);
            for _ in 0..n {
                reqs.push(get_request_at(r, depth)?);
            }
            Request::Batch(reqs)
        }
        RQ_SUBSCRIBE => Request::Subscribe {
            key: QueryKey::from_canonical(r.str()?),
        },
        RQ_FLUSH => Request::Flush,
        RQ_REPL_STATUS => Request::ReplicationStatus,
        RQ_PROMOTE => Request::Promote { epoch: r.u64()? },
        RQ_METRICS => Request::Metrics,
        t => return err(format!("unknown request tag {t}")),
    })
}

// ---- Error ----------------------------------------------------------------

const E_UNKNOWN_TABLE: u8 = 0;
const E_NOT_FOUND: u8 = 1;
const E_VERSION_MISMATCH: u8 = 2;
const E_ALREADY_EXISTS: u8 = 3;
const E_BAD_REQUEST: u8 = 4;
const E_TX_ABORTED: u8 = 5;
const E_CAPACITY: u8 = 6;
const E_CLOSED: u8 = 7;
const E_IO: u8 = 8;
const E_NET: u8 = 9;
const E_INTERNAL: u8 = 10;

/// Encode an [`Error`] — service errors cross the process boundary as
/// first-class values, not stringified blobs, so the client sees the
/// same typed error a local call would have produced.
pub fn put_error(w: &mut Writer, e: &Error) {
    match e {
        Error::UnknownTable(t) => {
            w.put_u8(E_UNKNOWN_TABLE);
            w.put_str(t);
        }
        Error::NotFound { table, id } => {
            w.put_u8(E_NOT_FOUND);
            w.put_str(table);
            w.put_str(id);
        }
        Error::VersionMismatch {
            table,
            id,
            expected,
            actual,
        } => {
            w.put_u8(E_VERSION_MISMATCH);
            w.put_str(table);
            w.put_str(id);
            w.put_u64(*expected);
            w.put_u64(*actual);
        }
        Error::AlreadyExists { table, id } => {
            w.put_u8(E_ALREADY_EXISTS);
            w.put_str(table);
            w.put_str(id);
        }
        Error::BadRequest(m) => {
            w.put_u8(E_BAD_REQUEST);
            w.put_str(m);
        }
        Error::TransactionAborted(m) => {
            w.put_u8(E_TX_ABORTED);
            w.put_str(m);
        }
        Error::Capacity(m) => {
            w.put_u8(E_CAPACITY);
            w.put_str(m);
        }
        Error::Closed(m) => {
            w.put_u8(E_CLOSED);
            w.put_str(m);
        }
        Error::Io(m) => {
            w.put_u8(E_IO);
            w.put_str(m);
        }
        Error::Net(m) => {
            w.put_u8(E_NET);
            w.put_str(m);
        }
        Error::Internal(m) => {
            w.put_u8(E_INTERNAL);
            w.put_str(m);
        }
    }
}

/// Decode an [`Error`].
// analyze: allow(depth-cap) flat tag-plus-strings decode, no recursion
pub fn get_error(r: &mut Reader<'_>) -> DResult<Error> {
    Ok(match r.u8()? {
        E_UNKNOWN_TABLE => Error::UnknownTable(r.str()?),
        E_NOT_FOUND => Error::NotFound {
            table: r.str()?,
            id: r.str()?,
        },
        E_VERSION_MISMATCH => Error::VersionMismatch {
            table: r.str()?,
            id: r.str()?,
            expected: r.u64()?,
            actual: r.u64()?,
        },
        E_ALREADY_EXISTS => Error::AlreadyExists {
            table: r.str()?,
            id: r.str()?,
        },
        E_BAD_REQUEST => Error::BadRequest(r.str()?),
        E_TX_ABORTED => Error::TransactionAborted(r.str()?),
        E_CAPACITY => Error::Capacity(r.str()?),
        E_CLOSED => Error::Closed(r.str()?),
        E_IO => Error::Io(r.str()?),
        E_NET => Error::Net(r.str()?),
        E_INTERNAL => Error::Internal(r.str()?),
        t => return err(format!("unknown error tag {t}")),
    })
}

// ---- Response -------------------------------------------------------------

const RS_RECORD: u8 = 0;
const RS_QUERY: u8 = 1;
const RS_WRITTEN: u8 = 2;
const RS_DELETED: u8 = 3;
const RS_EBF: u8 = 4;
const RS_BATCH: u8 = 5;
const RS_STREAM: u8 = 6;
const RS_FLUSHED: u8 = 7;
const RS_REPLICATION: u8 = 8;
const RS_METRICS: u8 = 9;

/// A decoded response: either a self-contained [`Response`], or the
/// marker standing in for [`Response::Stream`] (the live subscription is
/// materialized by the client from `StreamPush` frames).
#[derive(Debug)]
pub enum WireResponse {
    /// Every response variant except `Stream`.
    Plain(Response),
    /// The `Stream` marker: the subscription was accepted.
    Stream,
}

/// Encode a [`Response`].
///
/// `Response::Stream` encodes as a bare marker. A `Stream` *nested in a
/// batch* cannot be correlated to its own push frames (pushes carry the
/// top-level request id), so it is encoded as the error a remote caller
/// will actually experience; the server rejects such requests up front.
pub fn put_response(w: &mut Writer, resp: &Response) {
    match resp {
        Response::Record(rec) => {
            w.put_u8(RS_RECORD);
            put_record_response(w, rec);
        }
        Response::Query(q) => {
            w.put_u8(RS_QUERY);
            put_query_response(w, q);
        }
        Response::Written { version, image } => {
            w.put_u8(RS_WRITTEN);
            w.put_u64(*version);
            put_document(w, image);
        }
        Response::Deleted { version } => {
            w.put_u8(RS_DELETED);
            w.put_u64(*version);
        }
        Response::Ebf { filter, at } => {
            w.put_u8(RS_EBF);
            w.put_bytes(&filter.to_bytes());
            w.put_u64(at.as_millis());
        }
        Response::Batch(results) => {
            w.put_u8(RS_BATCH);
            w.put_u32(results.len() as u32);
            for result in results {
                match result {
                    Ok(Response::Stream(_)) => {
                        w.put_u8(0);
                        put_error(w, &stream_in_batch_error());
                    }
                    Ok(resp) => {
                        w.put_u8(1);
                        put_response(w, resp);
                    }
                    Err(e) => {
                        w.put_u8(0);
                        put_error(w, e);
                    }
                }
            }
        }
        Response::Stream(_) => w.put_u8(RS_STREAM),
        Response::Flushed { lsn } => {
            w.put_u8(RS_FLUSHED);
            w.put_u64(*lsn);
        }
        Response::Replication(status) => {
            w.put_u8(RS_REPLICATION);
            w.put_u8(match status.role {
                ReplRole::Standalone => 0,
                ReplRole::Primary => 1,
                ReplRole::Replica => 2,
            });
            w.put_u64(status.epoch);
            w.put_u64(status.last_lsn);
            w.put_u64(status.durable_lsn);
        }
        Response::Metrics(snap) => {
            w.put_u8(RS_METRICS);
            put_metrics_snapshot(w, snap);
        }
    }
}

fn put_metrics_snapshot(w: &mut Writer, snap: &MetricsSnapshot) {
    w.put_u32(snap.counters.len() as u32);
    for (name, value) in &snap.counters {
        w.put_str(name);
        w.put_u64(*value);
    }
    w.put_u32(snap.gauges.len() as u32);
    for (name, value) in &snap.gauges {
        w.put_str(name);
        w.put_u64(*value);
    }
    w.put_u32(snap.histograms.len() as u32);
    for (name, h) in &snap.histograms {
        w.put_str(name);
        w.put_u64(h.count);
        w.put_u64(h.min);
        w.put_u64(h.max);
        w.put_f64(h.mean);
        w.put_u64(h.p50);
        w.put_u64(h.p95);
        w.put_u64(h.p99);
    }
}

fn get_metrics_snapshot(r: &mut Reader<'_>) -> DResult<MetricsSnapshot> {
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return err(format!("counter count {n} exceeds remaining bytes"));
    }
    let mut counters = Vec::with_capacity(n);
    for _ in 0..n {
        counters.push((r.str()?, r.u64()?));
    }
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return err(format!("gauge count {n} exceeds remaining bytes"));
    }
    let mut gauges = Vec::with_capacity(n);
    for _ in 0..n {
        gauges.push((r.str()?, r.u64()?));
    }
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return err(format!("histogram count {n} exceeds remaining bytes"));
    }
    let mut histograms = Vec::with_capacity(n);
    for _ in 0..n {
        let name = r.str()?;
        histograms.push((
            name,
            HistogramSummary {
                count: r.u64()?,
                min: r.u64()?,
                max: r.u64()?,
                mean: r.f64()?,
                p50: r.u64()?,
                p95: r.u64()?,
                p99: r.u64()?,
            },
        ));
    }
    Ok(MetricsSnapshot {
        counters,
        gauges,
        histograms,
    })
}

/// The error a remote caller sees for a `Subscribe` nested in a `Batch`.
pub fn stream_in_batch_error() -> Error {
    Error::BadRequest(
        "subscribe inside a batch is not supported over the wire \
         (stream pushes correlate to the top-level request id); \
         send the subscribe as its own request"
            .into(),
    )
}

/// Decode a [`Response`]. A nested `Stream` marker inside a batch decodes
/// to the same error the server would have substituted (defense against
/// nonconforming peers).
pub fn get_response(r: &mut Reader<'_>) -> DResult<WireResponse> {
    get_response_at(r, 0)
}

fn get_response_at(r: &mut Reader<'_>, depth: usize) -> DResult<WireResponse> {
    Ok(WireResponse::Plain(match r.u8()? {
        RS_RECORD => Response::Record(get_record_response(r)?),
        RS_QUERY => Response::Query(get_query_response(r)?),
        RS_WRITTEN => Response::Written {
            version: r.u64()?,
            image: Arc::new(get_document(r)?),
        },
        RS_DELETED => Response::Deleted { version: r.u64()? },
        RS_EBF => {
            let filter = match BloomFilter::from_bytes(r.bytes()?) {
                Some(f) => f,
                None => return err("malformed bloom filter bytes"),
            };
            let at = Timestamp::from_millis(r.u64()?);
            Response::Ebf { filter, at }
        }
        RS_BATCH => {
            let depth = deeper(depth, "batch result")?;
            let n = r.u32()? as usize;
            if n > r.remaining() {
                return err(format!("batch result count {n} exceeds remaining bytes"));
            }
            let mut results: Vec<Result<Response>> = Vec::with_capacity(n);
            for _ in 0..n {
                if r.u8()? != 0 {
                    results.push(match get_response_at(r, depth)? {
                        WireResponse::Plain(resp) => Ok(resp),
                        WireResponse::Stream => Err(stream_in_batch_error()),
                    });
                } else {
                    results.push(Err(get_error(r)?));
                }
            }
            Response::Batch(results)
        }
        RS_STREAM => return Ok(WireResponse::Stream),
        RS_FLUSHED => Response::Flushed { lsn: r.u64()? },
        RS_REPLICATION => {
            let role = match r.u8()? {
                0 => ReplRole::Standalone,
                1 => ReplRole::Primary,
                2 => ReplRole::Replica,
                t => return err(format!("unknown replication role tag {t}")),
            };
            Response::Replication(ReplicationStatus {
                role,
                epoch: r.u64()?,
                last_lsn: r.u64()?,
                durable_lsn: r.u64()?,
            })
        }
        RS_METRICS => Response::Metrics(get_metrics_snapshot(r)?),
        t => return err(format!("unknown response tag {t}")),
    }))
}

fn put_record_response(w: &mut Writer, rec: &RecordResponse) {
    w.put_str(rec.key.as_str());
    w.put_bytes(&rec.body);
    w.put_u64(rec.etag);
    w.put_u64(rec.ttl_ms);
    w.put_u64(rec.invalidation_ttl_ms);
    put_document(w, &rec.doc);
}

fn get_record_response(r: &mut Reader<'_>) -> DResult<RecordResponse> {
    Ok(RecordResponse {
        key: QueryKey::from_canonical(r.str()?),
        body: Bytes::from(r.bytes()?.to_vec()),
        etag: r.u64()?,
        ttl_ms: r.u64()?,
        invalidation_ttl_ms: r.u64()?,
        doc: Arc::new(get_document(r)?),
    })
}

fn put_query_response(w: &mut Writer, q: &QueryResponse) {
    w.put_str(q.key.as_str());
    w.put_bytes(&q.body);
    w.put_u64(q.etag);
    w.put_u64(q.ttl_ms);
    w.put_u64(q.invalidation_ttl_ms);
    w.put_u8(match q.representation {
        Representation::ObjectList => 0,
        Representation::IdList => 1,
    });
    w.put_u32(q.ids.len() as u32);
    for id in &q.ids {
        w.put_str(id);
    }
    w.put_u32(q.versions.len() as u32);
    for v in &q.versions {
        w.put_u64(*v);
    }
    w.put_u32(q.docs.len() as u32);
    for d in &q.docs {
        put_document(w, d);
    }
    w.put_u8(q.cacheable as u8);
}

fn get_query_response(r: &mut Reader<'_>) -> DResult<QueryResponse> {
    let key = QueryKey::from_canonical(r.str()?);
    let body = Bytes::from(r.bytes()?.to_vec());
    let etag = r.u64()?;
    let ttl_ms = r.u64()?;
    let invalidation_ttl_ms = r.u64()?;
    let representation = match r.u8()? {
        0 => Representation::ObjectList,
        1 => Representation::IdList,
        t => return err(format!("unknown representation tag {t}")),
    };
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return err(format!("id count {n} exceeds remaining bytes"));
    }
    let mut ids = Vec::with_capacity(n);
    for _ in 0..n {
        ids.push(r.str()?);
    }
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return err(format!("version count {n} exceeds remaining bytes"));
    }
    let mut versions = Vec::with_capacity(n);
    for _ in 0..n {
        versions.push(r.u64()?);
    }
    let n = r.u32()? as usize;
    if n > r.remaining() {
        return err(format!("doc count {n} exceeds remaining bytes"));
    }
    let mut docs = Vec::with_capacity(n);
    for _ in 0..n {
        docs.push(Arc::new(get_document(r)?));
    }
    let cacheable = r.u8()? != 0;
    Ok(QueryResponse {
        key,
        body,
        etag,
        ttl_ms,
        invalidation_ttl_ms,
        representation,
        ids,
        versions,
        docs,
        cacheable,
    })
}

// ---- Convenience: full-message encode helpers -----------------------------

/// Encode a request into a fresh byte vector (the frame body).
pub fn encode_request(req: &Request) -> Vec<u8> {
    let mut w = Writer::new();
    put_request(&mut w, req);
    w.into_bytes()
}

/// Encode a request with an optional trace context riding in front as a
/// body-prefix tag. With `None` the output is byte-identical to
/// [`encode_request`].
pub fn encode_request_traced(req: &Request, ctx: Option<TraceContext>) -> Vec<u8> {
    let mut w = Writer::new();
    if let Some(ctx) = &ctx {
        put_trace_tag(&mut w, ctx);
    }
    put_request(&mut w, req);
    w.into_bytes()
}

/// Decode a frame body as a request, consuming it exactly. Body-prefix
/// tags (trace context, future metadata) are skipped.
// analyze: allow(depth-cap) thin wrapper over depth-capped get_request
pub fn decode_request(body: &[u8]) -> DResult<Request> {
    Ok(decode_request_traced(body)?.1)
}

/// Decode a frame body as a request, recovering the trace context if
/// the sender attached one.
// analyze: allow(depth-cap) thin wrapper over depth-capped get_request
pub fn decode_request_traced(body: &[u8]) -> DResult<(Option<TraceContext>, Request)> {
    let (ctx, body) = split_body_tags(body)?;
    let mut r = Reader::new(body);
    let req = get_request(&mut r)?;
    if r.remaining() != 0 {
        return err(format!("{} trailing bytes after request", r.remaining()));
    }
    Ok((ctx, req))
}

/// Encode a response into a fresh byte vector (the frame body).
pub fn encode_response(resp: &Response) -> Vec<u8> {
    let mut w = Writer::new();
    put_response(&mut w, resp);
    w.into_bytes()
}

/// Decode a frame body as a response, consuming it exactly.
// analyze: allow(depth-cap) thin wrapper over depth-capped get_response
pub fn decode_response(body: &[u8]) -> DResult<WireResponse> {
    let mut r = Reader::new(body);
    let resp = get_response(&mut r)?;
    if r.remaining() != 0 {
        return err(format!("{} trailing bytes after response", r.remaining()));
    }
    Ok(resp)
}

/// The encoded `Stream` marker (what [`Response::Stream`] becomes on the
/// wire) without needing a live subscription to encode.
pub fn encode_stream_marker() -> Vec<u8> {
    vec![RS_STREAM]
}

/// Encode an error into a fresh byte vector (the frame body).
pub fn encode_error(e: &Error) -> Vec<u8> {
    let mut w = Writer::new();
    put_error(&mut w, e);
    w.into_bytes()
}

/// Decode a frame body as an error, consuming it exactly.
// analyze: allow(depth-cap) thin wrapper over flat get_error
pub fn decode_error(body: &[u8]) -> DResult<Error> {
    let mut r = Reader::new(body);
    let e = get_error(&mut r)?;
    if r.remaining() != 0 {
        return err(format!("{} trailing bytes after error", r.remaining()));
    }
    Ok(e)
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use quaestor_document::{doc, Document, Value};
    use quaestor_query::{Filter, Op, Order, Query, SortKey};

    // ---- strategies -------------------------------------------------------

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1e12f64..1e12).prop_map(Value::Float),
            "[a-z0-9 ]{0,12}".prop_map(Value::Str),
        ];
        leaf.prop_recursive(2, 12, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
                proptest::collection::btree_map("[a-z]{1,4}", inner, 0..4).prop_map(Value::Object),
            ]
        })
    }

    fn arb_doc() -> impl Strategy<Value = Document> {
        proptest::collection::btree_map("[a-z_]{1,6}", arb_value(), 0..5)
    }

    fn arb_path() -> impl Strategy<Value = Path> {
        "[a-z]{1,6}(\\.[a-z]{1,4}){0,2}".prop_map(Path::new)
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            arb_value().prop_map(Op::Eq),
            arb_value().prop_map(Op::Ne),
            arb_value().prop_map(Op::Gt),
            arb_value().prop_map(Op::Lte),
            proptest::collection::vec(arb_value(), 0..3).prop_map(Op::In),
            proptest::collection::vec(arb_value(), 0..3).prop_map(Op::All),
            arb_value().prop_map(Op::Contains),
            any::<bool>().prop_map(Op::Exists),
            (0usize..10).prop_map(Op::Size),
            "[a-z]{0,6}".prop_map(Op::StartsWith),
        ]
    }

    fn arb_filter() -> impl Strategy<Value = Filter> {
        let leaf = prop_oneof![
            Just(Filter::True),
            (arb_path(), arb_op()).prop_map(|(p, op)| Filter::Cmp(p, op)),
        ];
        leaf.prop_recursive(2, 8, 3, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..3).prop_map(Filter::And),
                proptest::collection::vec(inner.clone(), 0..3).prop_map(Filter::Or),
                proptest::collection::vec(inner.clone(), 0..3).prop_map(Filter::Nor),
                inner.prop_map(|f| Filter::Not(Box::new(f))),
            ]
        })
    }

    fn arb_query() -> impl Strategy<Value = Query> {
        (
            "[a-z]{1,8}",
            arb_filter(),
            proptest::collection::vec(
                (arb_path(), any::<bool>()).prop_map(|(path, desc)| SortKey {
                    path,
                    order: if desc { Order::Desc } else { Order::Asc },
                }),
                0..3,
            ),
            proptest::option::of(0usize..1000),
            0usize..100,
        )
            .prop_map(|(table, filter, sort, limit, offset)| Query {
                table,
                filter,
                sort,
                limit,
                offset,
            })
    }

    fn arb_update() -> impl Strategy<Value = Update> {
        proptest::collection::vec(
            prop_oneof![
                (arb_path(), arb_value()).prop_map(|(p, v)| UpdateOp::Set(p, v)),
                arb_path().prop_map(UpdateOp::Unset),
                (arb_path(), -1e9f64..1e9).prop_map(|(p, d)| UpdateOp::Inc(p, d)),
                (arb_path(), arb_value()).prop_map(|(p, v)| UpdateOp::Push(p, v)),
                (arb_path(), arb_value()).prop_map(|(p, v)| UpdateOp::Pull(p, v)),
                (arb_path(), arb_path()).prop_map(|(a, b)| UpdateOp::Rename(a, b)),
            ],
            0..4,
        )
        .prop_map(|ops| {
            let mut u = Update::new();
            for op in ops {
                u = match op {
                    UpdateOp::Set(p, v) => u.set(p, v),
                    UpdateOp::Unset(p) => u.unset(p),
                    UpdateOp::Inc(p, d) => u.inc(p, d),
                    UpdateOp::Push(p, v) => u.push(p, v),
                    UpdateOp::Pull(p, v) => u.pull(p, v),
                    UpdateOp::Rename(a, b) => u.rename(a, b),
                };
            }
            u
        })
    }

    fn arb_key() -> impl Strategy<Value = QueryKey> {
        prop_oneof![
            ("[a-z]{1,6}", "[a-z0-9]{1,8}").prop_map(|(t, id)| QueryKey::record(&t, &id)),
            arb_query().prop_map(|q| QueryKey::of(&q)),
        ]
    }

    /// Every request variant, with one level of batch nesting.
    fn arb_request() -> impl Strategy<Value = Request> {
        let flat = arb_flat_request();
        prop_oneof![
            flat.clone(),
            proptest::collection::vec(flat, 0..4).prop_map(Request::Batch),
        ]
    }

    fn arb_flat_request() -> impl Strategy<Value = Request> {
        prop_oneof![
            ("[a-z]{1,6}", "[a-z0-9]{1,8}")
                .prop_map(|(table, id)| Request::GetRecord { table, id }),
            arb_query().prop_map(Request::Query),
            ("[a-z]{1,6}", "[a-z0-9]{1,8}", arb_doc())
                .prop_map(|(table, id, doc)| Request::Insert { table, id, doc }),
            ("[a-z]{1,6}", "[a-z0-9]{1,8}", arb_update())
                .prop_map(|(table, id, update)| Request::Update { table, id, update }),
            ("[a-z]{1,6}", "[a-z0-9]{1,8}", arb_doc())
                .prop_map(|(table, id, doc)| Request::Replace { table, id, doc }),
            ("[a-z]{1,6}", "[a-z0-9]{1,8}").prop_map(|(table, id)| Request::Delete { table, id }),
            proptest::option::of("[a-z]{1,6}").prop_map(|table| Request::EbfSnapshot { table }),
            arb_key().prop_map(|key| Request::Subscribe { key }),
            Just(Request::Flush),
            Just(Request::ReplicationStatus),
            any::<u64>().prop_map(|epoch| Request::Promote { epoch }),
            Just(Request::Metrics),
        ]
    }

    fn arb_trace_ctx() -> impl Strategy<Value = TraceContext> {
        (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(|(trace_id, span_id, sampled)| {
            TraceContext {
                trace_id,
                span_id,
                sampled,
            }
        })
    }

    fn arb_metrics_snapshot() -> impl Strategy<Value = MetricsSnapshot> {
        let name = "[a-z][a-z0-9._]{0,14}";
        (
            proptest::collection::vec((name, any::<u64>()), 0..5),
            proptest::collection::vec((name, any::<u64>()), 0..4),
            proptest::collection::vec(
                (
                    name,
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                    (0u64..1 << 52).prop_map(|x| x as f64 / 7.0),
                    any::<u64>(),
                    any::<u64>(),
                    any::<u64>(),
                ),
                0..3,
            ),
        )
            .prop_map(|(counters, gauges, hists)| MetricsSnapshot {
                counters,
                gauges,
                histograms: hists
                    .into_iter()
                    .map(|(name, count, min, max, mean, p50, p95, p99)| {
                        (
                            name,
                            HistogramSummary {
                                count,
                                min,
                                max,
                                mean,
                                p50,
                                p95,
                                p99,
                            },
                        )
                    })
                    .collect(),
            })
    }

    fn arb_error() -> impl Strategy<Value = Error> {
        prop_oneof![
            "[a-z]{1,8}".prop_map(Error::UnknownTable),
            ("[a-z]{1,6}", "[a-z0-9]{1,8}").prop_map(|(table, id)| Error::NotFound { table, id }),
            ("[a-z]{1,6}", "[a-z0-9]{1,8}", any::<u64>(), any::<u64>()).prop_map(
                |(table, id, expected, actual)| Error::VersionMismatch {
                    table,
                    id,
                    expected,
                    actual,
                }
            ),
            ("[a-z]{1,6}", "[a-z0-9]{1,8}")
                .prop_map(|(table, id)| Error::AlreadyExists { table, id }),
            "[ -~]{0,24}".prop_map(Error::BadRequest),
            "[ -~]{0,24}".prop_map(Error::TransactionAborted),
            "[ -~]{0,24}".prop_map(Error::Capacity),
            "[ -~]{0,24}".prop_map(Error::Closed),
            "[ -~]{0,24}".prop_map(Error::Io),
            "[ -~]{0,24}".prop_map(Error::Net),
            "[ -~]{0,24}".prop_map(Error::Internal),
        ]
    }

    fn arb_bloom() -> impl Strategy<Value = BloomFilter> {
        (
            prop_oneof![Just(256usize), Just(512), Just(1024)],
            1u32..4,
            proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..8), 0..8),
        )
            .prop_map(|(m_bits, k, keys)| {
                let mut f = BloomFilter::new(quaestor_bloom::BloomParams { m_bits, k });
                for key in keys {
                    f.insert(&key);
                }
                f
            })
    }

    fn arb_record_response() -> impl Strategy<Value = RecordResponse> {
        (
            arb_key(),
            proptest::collection::vec(any::<u8>(), 0..32),
            any::<u64>(),
            any::<u64>(),
            any::<u64>(),
            arb_doc(),
        )
            .prop_map(|(key, body, etag, ttl_ms, invalidation_ttl_ms, doc)| {
                RecordResponse {
                    key,
                    body: Bytes::from(body),
                    etag,
                    ttl_ms,
                    invalidation_ttl_ms,
                    doc: Arc::new(doc),
                }
            })
    }

    fn arb_query_response() -> impl Strategy<Value = QueryResponse> {
        (
            arb_key(),
            proptest::collection::vec(any::<u8>(), 0..32),
            any::<u64>(),
            (any::<u64>(), any::<u64>()),
            any::<bool>(),
            proptest::collection::vec("[a-z0-9]{1,6}", 0..4),
            proptest::collection::vec(any::<u64>(), 0..4),
            proptest::collection::vec(arb_doc(), 0..3),
            any::<bool>(),
        )
            .prop_map(
                |(key, body, etag, (ttl_ms, inv_ttl), id_list, ids, versions, docs, cacheable)| {
                    QueryResponse {
                        key,
                        body: Bytes::from(body),
                        etag,
                        ttl_ms,
                        invalidation_ttl_ms: inv_ttl,
                        representation: if id_list {
                            Representation::IdList
                        } else {
                            Representation::ObjectList
                        },
                        ids,
                        versions,
                        docs: docs.into_iter().map(Arc::new).collect(),
                        cacheable,
                    }
                },
            )
    }

    /// Every response variant except `Stream` (which is a bare marker,
    /// covered separately), with one level of batch nesting.
    fn arb_response() -> impl Strategy<Value = Response> {
        let flat = arb_flat_response();
        prop_oneof![
            flat.clone(),
            proptest::collection::vec(
                prop_oneof![flat.prop_map(Ok), arb_error().prop_map(Err)],
                0..4
            )
            .prop_map(Response::Batch),
        ]
    }

    fn arb_flat_response() -> impl Strategy<Value = Response> {
        prop_oneof![
            arb_record_response().prop_map(Response::Record),
            arb_query_response().prop_map(Response::Query),
            (any::<u64>(), arb_doc()).prop_map(|(version, doc)| Response::Written {
                version,
                image: Arc::new(doc),
            }),
            any::<u64>().prop_map(|version| Response::Deleted { version }),
            (arb_bloom(), any::<u64>()).prop_map(|(filter, at)| Response::Ebf {
                filter,
                at: Timestamp::from_millis(at),
            }),
            any::<u64>().prop_map(|lsn| Response::Flushed { lsn }),
            (0u8..3, any::<u64>(), any::<u64>(), any::<u64>()).prop_map(
                |(role, epoch, last_lsn, durable_lsn)| {
                    Response::Replication(ReplicationStatus {
                        role: match role {
                            0 => ReplRole::Standalone,
                            1 => ReplRole::Primary,
                            _ => ReplRole::Replica,
                        },
                        epoch,
                        last_lsn,
                        durable_lsn,
                    })
                }
            ),
            arb_metrics_snapshot().prop_map(Response::Metrics),
        ]
    }

    // ---- round trips ------------------------------------------------------

    proptest! {
        /// Requests survive encode→decode→re-encode *byte-for-byte*.
        /// (`Request` has no `PartialEq`; identical re-encoded bytes are
        /// a strictly stronger statement anyway.)
        #[test]
        fn request_roundtrip_byte_for_byte(req in arb_request()) {
            let bytes = encode_request(&req);
            let back = decode_request(&bytes).expect("decode");
            prop_assert_eq!(encode_request(&back), bytes);
        }

        #[test]
        fn response_roundtrip_byte_for_byte(resp in arb_response()) {
            let bytes = encode_response(&resp);
            let back = match decode_response(&bytes).expect("decode") {
                WireResponse::Plain(r) => r,
                WireResponse::Stream => panic!("no stream generated"),
            };
            prop_assert_eq!(encode_response(&back), bytes);
        }

        #[test]
        fn error_roundtrip_exact(e in arb_error()) {
            let bytes = encode_error(&e);
            let back = decode_error(&bytes).expect("decode");
            prop_assert_eq!(back, e);
        }

        /// Any strict prefix of a valid encoding is a clean error, never
        /// a panic and never a silent short decode.
        #[test]
        fn truncated_request_is_a_clean_error(req in arb_request(), frac in 0.0f64..1.0) {
            let bytes = encode_request(&req);
            if !bytes.is_empty() {
                let cut = ((bytes.len() - 1) as f64 * frac) as usize;
                prop_assert!(decode_request(&bytes[..cut]).is_err());
            }
        }

        #[test]
        fn truncated_response_is_a_clean_error(resp in arb_response(), frac in 0.0f64..1.0) {
            let bytes = encode_response(&resp);
            let cut = ((bytes.len() - 1) as f64 * frac) as usize;
            prop_assert!(decode_response(&bytes[..cut]).is_err());
        }

        /// Arbitrary garbage decodes to an error, never a panic, and
        /// never an allocation explosion.
        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = decode_request(&bytes);
            let _ = decode_request_traced(&bytes);
            let _ = decode_response(&bytes);
            let _ = decode_error(&bytes);
        }

        /// A trace context riding as a body-prefix tag survives the
        /// round trip byte-identically, and a decoder that never heard
        /// of the tag (plain `decode_request`) still recovers the same
        /// request — the tag is purely additive.
        #[test]
        fn trace_tag_roundtrip_and_is_invisible_to_plain_decoder(
            req in arb_request(),
            ctx in arb_trace_ctx(),
        ) {
            let traced = encode_request_traced(&req, Some(ctx));
            let (back_ctx, back) = decode_request_traced(&traced).expect("decode traced");
            prop_assert_eq!(back_ctx, Some(ctx));
            prop_assert_eq!(encode_request(&back), encode_request(&req));
            let plain = decode_request(&traced).expect("plain decode skips the tag");
            prop_assert_eq!(encode_request(&plain), encode_request(&req));
        }

        /// Without a context, the traced encoder emits byte-identical
        /// output to the plain encoder — old peers see no difference.
        #[test]
        fn untraced_encoding_is_byte_identical(req in arb_request()) {
            prop_assert_eq!(encode_request_traced(&req, None), encode_request(&req));
        }

        /// Unknown body tags (and a trace tag with the wrong payload
        /// length) are skipped, so future additive metadata never
        /// breaks an old request decoder.
        #[test]
        fn unknown_body_tags_are_skipped(
            req in arb_request(),
            tag in 0xF1u8..=0xFF,
            payload in proptest::collection::vec(any::<u8>(), 0..32),
        ) {
            let mut bytes = vec![tag, payload.len() as u8];
            bytes.extend_from_slice(&payload);
            // A malformed-length trace tag must be skipped, not misparsed.
            bytes.extend_from_slice(&[BODY_TAG_TRACE, 3, 1, 2, 3]);
            bytes.extend_from_slice(&encode_request(&req));
            let (ctx, back) = decode_request_traced(&bytes).expect("decode");
            prop_assert_eq!(ctx, None);
            prop_assert_eq!(encode_request(&back), encode_request(&req));
        }

        /// Any strict prefix of a traced encoding is a clean error.
        #[test]
        fn truncated_traced_request_is_a_clean_error(
            req in arb_request(),
            ctx in arb_trace_ctx(),
            frac in 0.0f64..1.0,
        ) {
            let bytes = encode_request_traced(&req, Some(ctx));
            let cut = ((bytes.len() - 1) as f64 * frac) as usize;
            prop_assert!(decode_request_traced(&bytes[..cut]).is_err());
        }
    }

    // ---- targeted cases ---------------------------------------------------

    #[test]
    fn pathological_nesting_is_a_clean_error_not_a_stack_overflow() {
        // A few KB of repeated Batch tags (each level: tag + count=1)
        // must hit the depth cap, not the thread's stack. Without the
        // cap this body drives ~100k recursive calls and aborts the
        // process — one crafted frame taking down the whole server.
        let mut bytes = Vec::new();
        for _ in 0..100_000 {
            bytes.push(7); // RQ_BATCH
            bytes.extend_from_slice(&1u32.to_le_bytes());
        }
        let err = decode_request(&bytes).unwrap_err();
        assert!(err.0.contains("depth"), "{err}");
        // Same shape on the response side (nested batch results)...
        let mut bytes = Vec::new();
        for _ in 0..100_000 {
            bytes.push(5); // RS_BATCH
            bytes.extend_from_slice(&1u32.to_le_bytes());
            bytes.push(1); // ok tag
        }
        assert!(decode_response(&bytes).is_err());
        // ...and for deeply nested values (arrays of arrays) and filters
        // (Not of Not) inside otherwise valid requests.
        let mut w = Writer::new();
        w.put_u8(2); // RQ_INSERT
        w.put_str("t");
        w.put_str("id");
        w.put_u32(1); // document: one key
        w.put_str("k");
        for _ in 0..100_000 {
            w.put_u8(5); // V_ARRAY
            w.put_u32(1);
        }
        assert!(decode_request(&w.into_bytes()).is_err());
        let mut w = Writer::new();
        w.put_u8(1); // RQ_QUERY
        w.put_str("t");
        for _ in 0..100_000 {
            w.put_u8(5); // F_NOT
        }
        assert!(decode_request(&w.into_bytes()).is_err());
    }

    #[test]
    fn realistic_nesting_still_decodes() {
        // The cap must not reject anything a real client produces: a
        // batch-in-batch with documents a dozen levels deep.
        let mut deep = Value::Int(1);
        for _ in 0..12 {
            deep = Value::Array(vec![deep]);
        }
        let req = Request::Batch(vec![Request::Batch(vec![Request::Insert {
            table: "t".into(),
            id: "a".into(),
            doc: doc! { "deep" => deep },
        }])]);
        let bytes = encode_request(&req);
        assert!(decode_request(&bytes).is_ok());
    }

    #[test]
    fn stream_marker_roundtrips() {
        let bytes = encode_stream_marker();
        assert!(matches!(
            decode_response(&bytes).unwrap(),
            WireResponse::Stream
        ));
    }

    #[test]
    fn nested_stream_in_batch_decodes_to_the_documented_error() {
        // A conforming server substitutes the error at encode time; a
        // nonconforming one that sends the marker nested still yields
        // the same error on decode.
        let mut w = Writer::new();
        w.put_u8(5); // RS_BATCH
        w.put_u32(1);
        w.put_u8(1); // ok
        w.put_u8(6); // RS_STREAM nested
        let bytes = w.into_bytes();
        match decode_response(&bytes).unwrap() {
            WireResponse::Plain(Response::Batch(results)) => {
                assert_eq!(results.len(), 1);
                match &results[0] {
                    Err(Error::BadRequest(msg)) => assert!(msg.contains("subscribe")),
                    other => panic!("expected the stream-in-batch error, got {other:?}"),
                }
            }
            other => panic!("expected a batch, got {other:?}"),
        }
    }

    #[test]
    fn subscribe_key_survives_the_wire() {
        let q = Query::table("posts").filter(Filter::eq("topic", "db"));
        let req = Request::Subscribe {
            key: QueryKey::of(&q),
        };
        let bytes = encode_request(&req);
        match decode_request(&bytes).unwrap() {
            Request::Subscribe { key } => {
                assert_eq!(key, QueryKey::of(&q));
                assert_eq!(key.table(), "posts");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn update_semantics_survive_the_wire() {
        let update = Update::new()
            .set("a.b", 1)
            .inc("n", 2.5)
            .push("tags", "x")
            .pull("tags", "y")
            .unset("tmp")
            .rename("old", "new");
        let mut w = Writer::new();
        put_update(&mut w, &update);
        let bytes = w.into_bytes();
        let back = get_update(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back, update);
        // And the decoded update *applies* identically.
        let mut d1 = doc! { "n" => 1, "tags" => vec!["y"], "tmp" => true, "old" => 7 };
        let mut d2 = d1.clone();
        update.apply(&mut d1).unwrap();
        back.apply(&mut d2).unwrap();
        assert_eq!(d1, d2);
    }

    #[test]
    fn ebf_response_preserves_membership() {
        let mut filter = BloomFilter::new(quaestor_bloom::BloomParams::PAPER_DEFAULT);
        filter.insert(b"q:posts?{}");
        filter.insert(b"r:posts/p1");
        let resp = Response::Ebf {
            filter: filter.clone(),
            at: Timestamp::from_millis(12_345),
        };
        let bytes = encode_response(&resp);
        match decode_response(&bytes).unwrap() {
            WireResponse::Plain(Response::Ebf { filter: back, at }) => {
                assert_eq!(back, filter);
                assert_eq!(at.as_millis(), 12_345);
                assert!(back.contains(b"q:posts?{}"));
                assert!(!back.contains(b"r:users/u9"));
            }
            other => panic!("{other:?}"),
        }
    }
}

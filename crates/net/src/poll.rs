//! A minimal readiness poller — the event-loop substrate for
//! [`crate::server`].
//!
//! No crates.io dependencies (PR 1's rule): the Linux backend declares
//! the four `epoll`/`eventfd` entry points as `extern "C"` symbols —
//! std already links libc, so this adds no dependency, only
//! declarations — and every other unix gets a portable `poll(2)`
//! fallback. Both backends expose the same API and are compiled and
//! unit-tested on Linux, so the fallback is not write-only code.
//!
//! ## Readiness semantics
//!
//! * **Level-triggered** (the default): `wait` reports a registered fd
//!   readable/writable as long as the condition holds. Handlers may
//!   consume as little as they like; the next `wait` re-reports.
//! * **Edge-triggered** (`edge = true`): the Linux backend passes
//!   `EPOLLET`, reporting only *transitions* — a handler that does not
//!   drain to `WouldBlock` is not re-notified until new bytes (or new
//!   window space) arrive. The `poll(2)` fallback degrades edge to
//!   level, which is a legal over-approximation: the contract is that
//!   spurious/repeated readiness is always permitted, so correct
//!   callers drain to `WouldBlock` either way and merely lose the
//!   suppression optimization.
//!
//! A poller is `Sync`: registration and `wait` belong to the owning
//! loop thread, while [`wake`](Poller::wake) may be called from any
//! thread (publishers, the accept thread, shutdown) to interrupt a
//! blocking `wait` — eventfd on Linux, a self-pipe on the fallback.
//! Wake events are drained internally and never surface to callers.

use std::time::Duration;

#[cfg(not(unix))]
compile_error!(
    "quaestor-net's readiness poller needs a POSIX backend (epoll or poll); \
     see crates/net/src/poll.rs"
);

/// The token `wait` hands back for an event: the `u64` supplied at
/// registration (the server packs a slot index and a generation in it).
pub type Token = u64;

/// Reserved token for the internal wake fd; never returned by `wait`.
const WAKE_TOKEN: Token = u64::MAX;

/// What readiness to watch for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Interest {
    bits: u8,
}

impl Interest {
    /// Watch for readability (incoming bytes, peer close).
    pub const READABLE: Interest = Interest { bits: 0b01 };
    /// Watch for writability (send-window space).
    pub const WRITABLE: Interest = Interest { bits: 0b10 };
    /// Watch both directions.
    pub const BOTH: Interest = Interest { bits: 0b11 };

    /// Does this interest include `other`?
    pub fn contains(self, other: Interest) -> bool {
        self.bits & other.bits == other.bits
    }
}

/// One readiness report from [`Poller::wait`].
#[derive(Debug, Clone, Copy)]
pub struct Event {
    /// Registration token of the ready fd.
    pub token: Token,
    /// Read direction is ready (data, EOF, or error).
    pub readable: bool,
    /// Write direction is ready.
    pub writable: bool,
    /// Error/hangup condition — callers should tear the fd down.
    pub error: bool,
}

#[cfg(target_os = "linux")]
pub use epoll::EpollPoller;
#[cfg(unix)]
pub use posix::PollPoller;

/// The platform's default poller.
#[cfg(target_os = "linux")]
pub type Poller = EpollPoller;
/// The platform's default poller.
#[cfg(all(unix, not(target_os = "linux")))]
pub type Poller = PollPoller;

fn timeout_ms(timeout: Option<Duration>) -> i32 {
    match timeout {
        // Round up so `Some(1µs)` cannot spin as a zero-timeout poll.
        Some(t) => t
            .as_millis()
            .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
            .min(i32::MAX as u128) as i32,
        None => -1,
    }
}

/// Direct-syscall epoll backend (Linux).
#[cfg(target_os = "linux")]
mod epoll {
    use super::{timeout_ms, Event, Interest, Token, WAKE_TOKEN};
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    // The shim: four entry points, declared rather than linked anew —
    // std already pulls in libc on every Linux target.
    #[repr(C)]
    #[cfg_attr(target_arch = "x86_64", repr(packed))]
    #[derive(Clone, Copy)]
    struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: i32) -> i32;
        fn epoll_ctl(epfd: i32, op: i32, fd: i32, event: *mut EpollEvent) -> i32;
        fn epoll_wait(epfd: i32, events: *mut EpollEvent, maxevents: i32, timeout: i32) -> i32;
        fn eventfd(initval: u32, flags: i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    const EPOLL_CLOEXEC: i32 = 0o2000000;
    const EPOLL_CTL_ADD: i32 = 1;
    const EPOLL_CTL_DEL: i32 = 2;
    const EPOLL_CTL_MOD: i32 = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLLET: u32 = 1 << 31;
    const EFD_CLOEXEC: i32 = 0o2000000;
    const EFD_NONBLOCK: i32 = 0o4000;

    fn mask(interest: Interest, edge: bool) -> u32 {
        let mut m = EPOLLRDHUP;
        if interest.contains(Interest::READABLE) {
            m |= EPOLLIN;
        }
        if interest.contains(Interest::WRITABLE) {
            m |= EPOLLOUT;
        }
        if edge {
            m |= EPOLLET;
        }
        m
    }

    /// An epoll instance plus an eventfd waker.
    pub struct EpollPoller {
        epfd: RawFd,
        wakefd: RawFd,
    }

    impl EpollPoller {
        /// A fresh epoll instance with its wake eventfd registered.
        pub fn new() -> io::Result<EpollPoller> {
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            let wakefd = unsafe { eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK) };
            if wakefd < 0 {
                let e = io::Error::last_os_error();
                unsafe { close(epfd) };
                return Err(e);
            }
            let poller = EpollPoller { epfd, wakefd };
            poller.ctl(EPOLL_CTL_ADD, wakefd, EPOLLIN, WAKE_TOKEN)?;
            Ok(poller)
        }

        fn ctl(&self, op: i32, fd: RawFd, events: u32, token: Token) -> io::Result<()> {
            let mut ev = EpollEvent {
                events,
                data: token,
            };
            let ev_ptr = if op == EPOLL_CTL_DEL {
                std::ptr::null_mut()
            } else {
                &mut ev
            };
            if unsafe { epoll_ctl(self.epfd, op, fd, ev_ptr) } < 0 {
                Err(io::Error::last_os_error())
            } else {
                Ok(())
            }
        }

        /// Start watching `fd` under `token`.
        pub fn register(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            edge: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_ADD, fd, mask(interest, edge), token)
        }

        /// Change an existing registration's interest/mode.
        pub fn reregister(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            edge: bool,
        ) -> io::Result<()> {
            self.ctl(EPOLL_CTL_MOD, fd, mask(interest, edge), token)
        }

        /// Stop watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            self.ctl(EPOLL_CTL_DEL, fd, 0, 0)
        }

        /// Block until readiness, a wake, or the timeout; fills `events`
        /// (cleared first). `None` blocks indefinitely.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            let mut raw = [EpollEvent { events: 0, data: 0 }; 256];
            let n = loop {
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        raw.as_mut_ptr(),
                        raw.len() as i32,
                        timeout_ms(timeout),
                    )
                };
                if n >= 0 {
                    break n as usize;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            };
            for ev in &raw[..n] {
                let (bits, token) = (ev.events, ev.data);
                if token == WAKE_TOKEN {
                    // Drain the eventfd counter so level-triggering does
                    // not re-report a consumed wake.
                    let mut buf = [0u8; 8];
                    unsafe { read(self.wakefd, buf.as_mut_ptr(), buf.len()) };
                    continue;
                }
                events.push(Event {
                    token,
                    readable: bits & (EPOLLIN | EPOLLRDHUP | EPOLLHUP) != 0,
                    writable: bits & EPOLLOUT != 0,
                    error: bits & (EPOLLERR | EPOLLHUP) != 0,
                });
            }
            Ok(())
        }

        /// Interrupt a concurrent [`wait`](Self::wait). Callable from any
        /// thread; coalesces (n wakes may surface as one).
        pub fn wake(&self) -> io::Result<()> {
            let one = 1u64.to_ne_bytes();
            // A full eventfd counter (EAGAIN) already guarantees a pending
            // wake, so a short/failed write here is success.
            unsafe { write(self.wakefd, one.as_ptr(), one.len()) };
            Ok(())
        }
    }

    impl Drop for EpollPoller {
        fn drop(&mut self) {
            unsafe {
                close(self.wakefd);
                close(self.epfd);
            }
        }
    }
}

/// Portable `poll(2)` backend for non-Linux unix — level-triggered only
/// (edge degrades to level, see the module docs). Compiled on Linux too
/// so its tests run in CI.
#[cfg(unix)]
mod posix {
    use super::{timeout_ms, Event, Interest, Token};
    use parking_lot::Mutex;
    use quaestor_common::lock_rank;
    use std::io;
    use std::os::unix::io::RawFd;
    use std::time::Duration;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: i32,
        events: i16,
        revents: i16,
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    type NFds = std::os::raw::c_ulong;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    type NFds = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NFds, timeout: i32) -> i32;
        fn pipe(fds: *mut i32) -> i32;
        fn close(fd: i32) -> i32;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
    }

    const POLLIN: i16 = 0x001;
    const POLLOUT: i16 = 0x004;
    const POLLERR: i16 = 0x008;
    const POLLHUP: i16 = 0x010;

    fn mask(interest: Interest) -> i16 {
        let mut m = 0;
        if interest.contains(Interest::READABLE) {
            m |= POLLIN;
        }
        if interest.contains(Interest::WRITABLE) {
            m |= POLLOUT;
        }
        m
    }

    /// A registration table swept by `poll(2)` each wait, plus a
    /// self-pipe waker.
    pub struct PollPoller {
        fd_table: Mutex<Vec<(RawFd, Token, i16)>>,
        pipe_rd: RawFd,
        pipe_wr: RawFd,
    }

    impl PollPoller {
        /// A fresh poller with its wake pipe created.
        pub fn new() -> io::Result<PollPoller> {
            let mut fds = [0i32; 2];
            if unsafe { pipe(fds.as_mut_ptr()) } < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(PollPoller {
                fd_table: Mutex::with_rank(
                    Vec::new(),
                    lock_rank::NET_POLL_REGISTRY.0,
                    lock_rank::NET_POLL_REGISTRY.1,
                ),
                pipe_rd: fds[0],
                pipe_wr: fds[1],
            })
        }

        /// Start watching `fd` under `token`. `edge` is accepted for API
        /// parity and degraded to level (see module docs).
        pub fn register(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            _edge: bool,
        ) -> io::Result<()> {
            let mut table = self.fd_table.lock();
            if table.iter().any(|(f, _, _)| *f == fd) {
                return Err(io::Error::new(
                    io::ErrorKind::AlreadyExists,
                    "fd already registered",
                ));
            }
            table.push((fd, token, mask(interest)));
            Ok(())
        }

        /// Change an existing registration's interest.
        pub fn reregister(
            &self,
            fd: RawFd,
            token: Token,
            interest: Interest,
            _edge: bool,
        ) -> io::Result<()> {
            let mut table = self.fd_table.lock();
            match table.iter_mut().find(|(f, _, _)| *f == fd) {
                Some(entry) => {
                    *entry = (fd, token, mask(interest));
                    Ok(())
                }
                None => Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered")),
            }
        }

        /// Stop watching `fd`.
        pub fn deregister(&self, fd: RawFd) -> io::Result<()> {
            let mut table = self.fd_table.lock();
            let before = table.len();
            table.retain(|(f, _, _)| *f != fd);
            if table.len() == before {
                return Err(io::Error::new(io::ErrorKind::NotFound, "fd not registered"));
            }
            Ok(())
        }

        /// Block until readiness, a wake, or the timeout; fills `events`
        /// (cleared first). `None` blocks indefinitely.
        pub fn wait(&self, events: &mut Vec<Event>, timeout: Option<Duration>) -> io::Result<()> {
            events.clear();
            // Copy the table out so `wake` (and diagnostics) never race a
            // lock held across a blocking syscall.
            let mut fds: Vec<PollFd> = vec![PollFd {
                fd: self.pipe_rd,
                events: POLLIN,
                revents: 0,
            }];
            let tokens: Vec<Token> = {
                let table = self.fd_table.lock();
                fds.extend(table.iter().map(|(fd, _, ev)| PollFd {
                    fd: *fd,
                    events: *ev,
                    revents: 0,
                }));
                table.iter().map(|(_, t, _)| *t).collect()
            };
            loop {
                let n = unsafe { poll(fds.as_mut_ptr(), fds.len() as NFds, timeout_ms(timeout)) };
                if n >= 0 {
                    break;
                }
                let e = io::Error::last_os_error();
                if e.kind() != io::ErrorKind::Interrupted {
                    return Err(e);
                }
            }
            if fds[0].revents & POLLIN != 0 {
                // Drain pending wake bytes. poll reported ≥ 1 byte, and
                // pipe reads return what is there without blocking for a
                // full buffer, so this single short read cannot block.
                let mut buf = [0u8; 64];
                unsafe { read(self.pipe_rd, buf.as_mut_ptr(), buf.len()) };
            }
            for (slot, token) in fds[1..].iter().zip(tokens) {
                let r = slot.revents;
                if r == 0 {
                    continue;
                }
                events.push(Event {
                    token,
                    readable: r & (POLLIN | POLLHUP) != 0,
                    writable: r & POLLOUT != 0,
                    error: r & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }

        /// Interrupt a concurrent [`wait`](Self::wait). Callable from any
        /// thread.
        pub fn wake(&self) -> io::Result<()> {
            let one = [1u8];
            // A pipe so backlogged the write would block already has a
            // wake pending; treat it as delivered.
            unsafe { write(self.pipe_wr, one.as_ptr(), one.len()) };
            Ok(())
        }
    }

    impl Drop for PollPoller {
        fn drop(&mut self) {
            unsafe {
                close(self.pipe_rd);
                close(self.pipe_wr);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::{Read, Write};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::time::Instant;

    const SHORT: Option<Duration> = Some(Duration::from_millis(60));

    /// The same behavioral suite runs against every backend, so the
    /// portable fallback is tested on Linux alongside epoll.
    macro_rules! backend_suite {
        ($name:ident, $poller:ty) => {
            mod $name {
                use super::*;

                #[test]
                fn readable_event_carries_the_registration_token() {
                    let p = <$poller>::new().unwrap();
                    let (a, mut b) = UnixStream::pair().unwrap();
                    p.register(a.as_raw_fd(), 7, Interest::READABLE, false)
                        .unwrap();
                    let mut events = Vec::new();
                    p.wait(&mut events, SHORT).unwrap();
                    assert!(events.is_empty(), "no data yet: {events:?}");
                    b.write_all(b"x").unwrap();
                    p.wait(&mut events, SHORT).unwrap();
                    assert_eq!(events.len(), 1);
                    assert_eq!(events[0].token, 7);
                    assert!(events[0].readable && !events[0].writable);
                }

                #[test]
                fn level_mode_refires_until_consumed() {
                    let p = <$poller>::new().unwrap();
                    let (a, mut b) = UnixStream::pair().unwrap();
                    p.register(a.as_raw_fd(), 1, Interest::READABLE, false)
                        .unwrap();
                    b.write_all(b"xy").unwrap();
                    let mut events = Vec::new();
                    for _ in 0..3 {
                        p.wait(&mut events, SHORT).unwrap();
                        assert_eq!(events.len(), 1, "level readiness must re-report");
                    }
                }

                #[test]
                fn interest_modify_switches_direction_and_remove_silences() {
                    let p = <$poller>::new().unwrap();
                    let (a, mut b) = UnixStream::pair().unwrap();
                    p.register(a.as_raw_fd(), 3, Interest::READABLE, false)
                        .unwrap();
                    b.write_all(b"x").unwrap();
                    // Modify: only writability is interesting now — the
                    // unread byte must stop being reported.
                    p.reregister(a.as_raw_fd(), 3, Interest::WRITABLE, false)
                        .unwrap();
                    let mut events = Vec::new();
                    p.wait(&mut events, SHORT).unwrap();
                    assert_eq!(events.len(), 1);
                    assert!(events[0].writable && !events[0].readable);
                    // Both directions at once.
                    p.reregister(a.as_raw_fd(), 3, Interest::BOTH, false)
                        .unwrap();
                    p.wait(&mut events, SHORT).unwrap();
                    assert!(events[0].readable && events[0].writable);
                    // Remove: a ready fd no longer surfaces at all.
                    p.deregister(a.as_raw_fd()).unwrap();
                    p.wait(&mut events, SHORT).unwrap();
                    assert!(events.is_empty(), "deregistered fd still reported");
                    // And removing twice is a clean error, not UB.
                    assert!(p.deregister(a.as_raw_fd()).is_err());
                }

                #[test]
                fn wake_interrupts_a_blocking_wait_from_another_thread() {
                    let p = std::sync::Arc::new(<$poller>::new().unwrap());
                    let waker = p.clone();
                    let t = std::thread::spawn(move || {
                        std::thread::sleep(Duration::from_millis(40));
                        waker.wake().unwrap();
                    });
                    let mut events = Vec::new();
                    let started = Instant::now();
                    // Block "forever": only the wake can release this.
                    p.wait(&mut events, Some(Duration::from_secs(10))).unwrap();
                    assert!(
                        started.elapsed() < Duration::from_secs(5),
                        "wake did not interrupt the wait"
                    );
                    assert!(events.is_empty(), "wake must not surface as an event");
                    t.join().unwrap();
                }

                #[test]
                fn peer_close_reports_readable() {
                    let p = <$poller>::new().unwrap();
                    let (a, b) = UnixStream::pair().unwrap();
                    p.register(a.as_raw_fd(), 9, Interest::READABLE, false)
                        .unwrap();
                    drop(b);
                    let mut events = Vec::new();
                    p.wait(&mut events, SHORT).unwrap();
                    assert_eq!(events.len(), 1);
                    assert!(events[0].readable, "EOF must surface as readable");
                }
            }
        };
    }

    #[cfg(target_os = "linux")]
    backend_suite!(epoll_backend, EpollPoller);
    backend_suite!(posix_backend, PollPoller);

    /// Edge semantics are epoll-specific (the fallback degrades to
    /// level), so the re-arm tests pin the epoll backend.
    #[cfg(target_os = "linux")]
    mod edge {
        use super::*;

        #[test]
        fn partial_read_does_not_rearm_but_new_data_does() {
            let p = EpollPoller::new().unwrap();
            let (mut a, mut b) = UnixStream::pair().unwrap();
            p.register(a.as_raw_fd(), 5, Interest::READABLE, true)
                .unwrap();
            b.write_all(b"ab").unwrap();
            let mut events = Vec::new();
            p.wait(&mut events, SHORT).unwrap();
            assert_eq!(events.len(), 1, "first edge fires");
            // Consume one byte of two: the buffer stays non-empty, but
            // edge mode reports transitions, not states.
            let mut one = [0u8; 1];
            a.read_exact(&mut one).unwrap();
            p.wait(&mut events, SHORT).unwrap();
            assert!(events.is_empty(), "unconsumed edge must not refire");
            // New bytes are a fresh transition: the edge re-arms.
            b.write_all(b"c").unwrap();
            p.wait(&mut events, SHORT).unwrap();
            assert_eq!(events.len(), 1, "new data must re-arm the edge");
        }

        #[test]
        fn write_edge_rearms_when_the_window_reopens() {
            let p = EpollPoller::new().unwrap();
            let (a, mut b) = UnixStream::pair().unwrap();
            a.set_nonblocking(true).unwrap();
            // Fill the send buffer to WouldBlock: writability is spent.
            let chunk = [0u8; 4096];
            let mut sent = 0usize;
            loop {
                match (&a).write(&chunk) {
                    Ok(n) => sent += n,
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                    Err(e) => panic!("fill: {e}"),
                }
            }
            p.register(a.as_raw_fd(), 6, Interest::WRITABLE, true)
                .unwrap();
            let mut events = Vec::new();
            p.wait(&mut events, SHORT).unwrap();
            assert!(events.is_empty(), "a full socket is not writable");
            // Drain the peer: window space is a transition → edge fires.
            let mut drain = vec![0u8; sent];
            b.read_exact(&mut drain).unwrap();
            p.wait(&mut events, Some(Duration::from_secs(5))).unwrap();
            assert_eq!(events.len(), 1);
            assert!(
                events[0].writable,
                "reopened window must fire the write edge"
            );
        }
    }

    #[test]
    fn timeout_expires_without_events() {
        let p = Poller::new().unwrap();
        let mut events = Vec::new();
        let started = Instant::now();
        p.wait(&mut events, Some(Duration::from_millis(30)))
            .unwrap();
        assert!(events.is_empty());
        assert!(started.elapsed() >= Duration::from_millis(25));
    }
}

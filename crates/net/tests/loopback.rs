//! Loopback integration tests: a real `NetServer` on `127.0.0.1:0`, a
//! real `RemoteService` pool, every protocol path exercised over an
//! actual socket.

use std::io::Write;
use std::sync::Arc;
use std::time::{Duration, Instant};

use quaestor_common::{Error, ManualClock, Result};
use quaestor_core::{QuaestorServer, Request, Response, Service, ServiceExt};
use quaestor_document::{doc, Update, Value};
use quaestor_net::{NetServer, RemoteService, RemoteServiceConfig};
use quaestor_query::{Filter, Query, QueryKey};

fn serve() -> (NetServer, Arc<RemoteService>) {
    let clock = ManualClock::new();
    let origin = QuaestorServer::with_defaults(clock);
    let server = NetServer::bind("127.0.0.1:0", origin).expect("bind");
    let svc = RemoteService::connect(server.local_addr(), RemoteServiceConfig::default())
        .expect("connect");
    (server, svc)
}

#[test]
fn every_request_variant_round_trips_over_the_socket() {
    let (server, svc) = serve();
    // Insert / get / update / replace / delete.
    let (v, image) = svc.insert("t", "a", doc! { "n" => 1 }).unwrap();
    assert_eq!(v, 1);
    assert_eq!(image["n"], Value::Int(1));
    let rec = svc.get_record("t", "a").unwrap();
    assert_eq!(rec.etag, 1);
    assert_eq!(rec.doc["n"], Value::Int(1));
    assert_eq!(rec.key, QueryKey::record("t", "a"));
    let (v2, _) = svc.update("t", "a", &Update::new().inc("n", 1.0)).unwrap();
    assert_eq!(v2, 2);
    let (v3, image) = svc.replace("t", "a", doc! { "n" => 9 }).unwrap();
    assert_eq!(v3, 3);
    assert_eq!(image["n"], Value::Int(9));
    // Query.
    let q = Query::table("t").filter(Filter::eq("n", 9));
    let qr = svc.query(&q).unwrap();
    assert_eq!(qr.ids, vec!["a"]);
    assert_eq!(qr.docs.len(), 1);
    // EBF, flat and partitioned.
    let (flat, _at) = svc.fetch_ebf().unwrap();
    assert!(!flat.contains(b"never-inserted"));
    let (_part, _at) = svc.fetch_ebf_partition("t").unwrap();
    // Batch with a mid-batch failure.
    let results = svc
        .batch(vec![
            Request::Insert {
                table: "t".into(),
                id: "b".into(),
                doc: doc! { "n" => 5 },
            },
            Request::Delete {
                table: "t".into(),
                id: "missing".into(),
            },
            Request::GetRecord {
                table: "t".into(),
                id: "b".into(),
            },
        ])
        .unwrap();
    assert!(matches!(
        results[0],
        Ok(Response::Written { version: 1, .. })
    ));
    assert!(matches!(results[1], Err(Error::NotFound { .. })));
    assert!(matches!(results[2], Ok(Response::Record(_))));
    // Flush (in-memory origin: LSN 0).
    assert_eq!(svc.flush().unwrap(), 0);
    // Delete + typed error for a read of the deleted record.
    assert_eq!(svc.delete("t", "a").unwrap(), 3);
    match svc.get_record("t", "a") {
        Err(Error::NotFound { table, id }) => {
            assert_eq!((table.as_str(), id.as_str()), ("t", "a"));
        }
        other => panic!("expected typed NotFound over the wire, got {other:?}"),
    }
    assert!(server.requests_served() >= 10);
    server.shutdown();
}

#[test]
fn subscriptions_stream_pushes_across_the_socket() {
    let (server, svc) = serve();
    svc.insert("posts", "p1", doc! { "tag" => "hot" }).unwrap();
    let q = Query::table("posts").filter(Filter::eq("tag", "hot"));
    // Register the query at the origin (subscription channels carry
    // notifications for *registered* queries), then subscribe remotely.
    svc.query(&q).unwrap();
    let sub = svc.subscribe(&QueryKey::of(&q)).unwrap();
    // A write that changes the result must reach the remote subscriber.
    svc.update("posts", "p1", &Update::new().set("tag", "cold"))
        .unwrap();
    let message = sub
        .recv_timeout(Duration::from_secs(5))
        .expect("push arrives over the socket");
    assert!(!message.is_empty());
    server.shutdown();
}

#[test]
fn pipelined_concurrent_callers_share_one_connection() {
    let clock = ManualClock::new();
    let origin = QuaestorServer::with_defaults(clock);
    let server = NetServer::bind("127.0.0.1:0", origin).expect("bind");
    let svc = RemoteService::connect(
        server.local_addr(),
        RemoteServiceConfig {
            pool_size: 1, // force everything through one socket
            ..Default::default()
        },
    )
    .expect("connect");
    svc.insert("t", "seed", doc! { "n" => 0 }).unwrap();
    let threads: Vec<_> = (0..8)
        .map(|i| {
            let svc = svc.clone();
            std::thread::spawn(move || {
                for j in 0..50 {
                    let id = format!("r{i}-{j}");
                    svc.insert("t", &id, doc! { "i" => i, "j" => j }).unwrap();
                    let rec = svc.get_record("t", &id).unwrap();
                    assert_eq!(rec.doc["j"], Value::Int(j));
                }
            })
        })
        .collect();
    for t in threads {
        t.join().unwrap();
    }
    assert_eq!(
        server.connections_accepted(),
        1,
        "all 800 calls must share the single pooled connection"
    );
    // The latency histogram saw every call.
    assert_eq!(svc.latency_histogram().count(), 801);
    server.shutdown();
}

/// A service that blocks until told to finish — the "server wedged while
/// my request is in flight" scenario.
struct Slow {
    release: crossbeam::channel::Receiver<()>,
}

impl Service for Slow {
    fn call(&self, _req: Request) -> Result<Response> {
        let _ = self.release.recv_timeout(Duration::from_secs(30));
        Ok(Response::Flushed { lsn: 0 })
    }
}

#[test]
fn killing_the_server_mid_request_returns_net_error_not_a_hang() {
    let (release_tx, release_rx) = crossbeam::channel::unbounded();
    let server = NetServer::bind(
        "127.0.0.1:0",
        Arc::new(Slow {
            release: release_rx,
        }),
    )
    .expect("bind");
    let svc = RemoteService::connect(
        server.local_addr(),
        RemoteServiceConfig {
            request_timeout: Duration::from_secs(20), // far beyond the test budget
            ..Default::default()
        },
    )
    .expect("connect");
    let svc2 = svc.clone();
    let caller = std::thread::spawn(move || {
        let started = Instant::now();
        let result = svc2.call(Request::Flush);
        (result, started.elapsed())
    });
    // Let the request reach the (wedged) server, then kill the server.
    // Shutdown closes the connection sockets *before* joining workers,
    // so the client is released even though the handler is still stuck;
    // run the join-half of shutdown on the side.
    std::thread::sleep(Duration::from_millis(200));
    let shutdown = std::thread::spawn(move || server.shutdown());
    let (result, elapsed) = caller.join().unwrap();
    match result {
        Err(Error::Net(msg)) => assert!(msg.contains("in flight"), "got: {msg}"),
        other => panic!("expected Error::Net, got {other:?}"),
    }
    assert!(
        elapsed < Duration::from_secs(10),
        "the caller must be released by the connection teardown, not the timeout ({elapsed:?})"
    );
    // Unwedge the handler so the worker (and shutdown) can finish.
    drop(release_tx);
    shutdown.join().unwrap();
}

#[test]
fn client_reconnects_with_backoff_after_server_restart() {
    let clock = ManualClock::new();
    let origin = QuaestorServer::with_defaults(clock.clone());
    let server = NetServer::bind("127.0.0.1:0", origin.clone()).expect("bind");
    let addr = server.local_addr();
    let svc = RemoteService::connect(addr, RemoteServiceConfig::default()).expect("connect");
    svc.insert("t", "a", doc! { "n" => 1 }).unwrap();
    // Close client side first (client sockets take the TIME_WAIT), then
    // stop the server and rebind the same port.
    svc.disconnect_all();
    server.shutdown();
    // While the address is dead, a call fails with Error::Net after its
    // (shortened) deadline.
    let quick = RemoteService::connect_lazy(
        addr,
        RemoteServiceConfig {
            request_timeout: Duration::from_millis(300),
            connect_timeout: Duration::from_millis(100),
            ..Default::default()
        },
    )
    .expect("lazy handles never fail on a resolvable address");
    match quick.call(Request::Flush) {
        Err(Error::Net(_)) => {}
        other => panic!("expected Error::Net while the server is down, got {other:?}"),
    }
    // Restart on the same address; the original pool reconnects lazily.
    let server2 = loop {
        match NetServer::bind(addr, origin.clone()) {
            Ok(s) => break s,
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    };
    let rec = svc.get_record("t", "a").unwrap();
    assert_eq!(rec.doc["n"], Value::Int(1), "data survives: same origin");
    server2.shutdown();
}

#[test]
fn corrupt_frames_close_the_connection_but_not_the_server() {
    let (server, svc) = serve();
    svc.insert("t", "a", doc! { "n" => 1 }).unwrap();
    // A raw socket speaking garbage: the server must drop it...
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.write_all(&[0xFF; 64]).unwrap();
    let mut buf = [0u8; 16];
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let n = std::io::Read::read(&mut raw, &mut buf).unwrap_or(0);
    assert_eq!(n, 0, "server must close the corrupt connection");
    // ...while existing healthy connections keep serving.
    assert_eq!(svc.get_record("t", "a").unwrap().etag, 1);
    server.shutdown();
}

/// Read one complete frame from a raw socket, consuming it from `buf`.
fn read_raw_frame(
    raw: &mut std::net::TcpStream,
    buf: &mut Vec<u8>,
) -> (quaestor_net::wire::FrameKind, u64, Vec<u8>) {
    use quaestor_net::wire::{decode_frame, FrameDecode};
    let mut chunk = [0u8; 1024];
    loop {
        match decode_frame(buf) {
            FrameDecode::Frame(f) => {
                let out = (f.kind, f.request_id, f.body.to_vec());
                let size = f.size;
                buf.drain(..size);
                return out;
            }
            FrameDecode::Incomplete => {}
            FrameDecode::Corrupt(e) => panic!("corrupt reply: {e}"),
        }
        let n = std::io::Read::read(raw, &mut chunk).unwrap();
        assert!(n > 0, "server must answer, not close");
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn undecodable_request_body_is_answered_not_fatal() {
    use quaestor_net::wire::{encode_frame, FrameKind};
    let (server, _svc) = serve();
    // Hand-build a CRC-valid frame whose body is not a request.
    let mut frame = Vec::new();
    encode_frame(FrameKind::Request, 99, &[0xEE, 0xEE, 0xEE], &mut frame);
    let mut raw = std::net::TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    raw.write_all(&frame).unwrap();
    let mut buf = Vec::new();
    let (kind, id, body) = read_raw_frame(&mut raw, &mut buf);
    assert_eq!(kind, FrameKind::ResponseErr);
    assert_eq!(id, 99, "the error correlates to the bad request's id");
    match quaestor_net::codec::decode_error(&body) {
        Ok(Error::BadRequest(msg)) => assert!(msg.contains("undecodable"), "{msg}"),
        other => panic!("expected BadRequest, got {other:?}"),
    }
    // And the same connection keeps serving afterwards.
    let mut ok_frame = Vec::new();
    encode_frame(
        FrameKind::Request,
        100,
        &quaestor_net::codec::encode_request(&Request::Flush),
        &mut ok_frame,
    );
    raw.write_all(&ok_frame).unwrap();
    let (kind, id, _body) = read_raw_frame(&mut raw, &mut buf);
    assert_eq!(kind, FrameKind::ResponseOk);
    assert_eq!(id, 100);
    server.shutdown();
}

/// A service exposing its own PubSub so the test can observe server-side
/// subscription lifetimes.
struct StreamingEcho {
    bus: Arc<quaestor_kv::PubSub>,
}

impl Service for StreamingEcho {
    fn call(&self, req: Request) -> Result<Response> {
        match req {
            Request::Subscribe { key } => Ok(Response::Stream(self.bus.subscribe(key.as_str()))),
            Request::Flush => Ok(Response::Flushed { lsn: 0 }),
            _ => Err(Error::BadRequest("echo only streams".into())),
        }
    }
}

#[test]
fn dropping_a_remote_subscription_releases_the_server_side_stream() {
    let bus = quaestor_kv::PubSub::new();
    let server =
        NetServer::bind("127.0.0.1:0", Arc::new(StreamingEcho { bus: bus.clone() })).expect("bind");
    let svc = RemoteService::connect(server.local_addr(), RemoteServiceConfig::default())
        .expect("connect");
    let key = QueryKey::record("t", "x");
    let sub = svc.subscribe(&key).unwrap();
    assert_eq!(bus.subscriber_count(key.as_str()), 1, "server-side live");
    // Stream works while held.
    bus.publish(key.as_str(), &b"m1"[..]);
    assert!(sub.recv_timeout(Duration::from_secs(5)).is_some());
    // Drop the client end; the next push finds no local subscriber, the
    // client sends StreamCancel, and the server forwarder releases the
    // origin subscription.
    drop(sub);
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        bus.publish(key.as_str(), &b"poke"[..]);
        if bus.subscriber_count(key.as_str()) == 0 {
            break; // released
        }
        assert!(
            Instant::now() < deadline,
            "server kept the stream alive after the client dropped it"
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    // The connection itself is still healthy.
    assert_eq!(svc.flush().unwrap(), 0);
    server.shutdown();
}

#[test]
fn latency_histogram_merges_across_connections() {
    let clock = ManualClock::new();
    let origin = QuaestorServer::with_defaults(clock);
    let server = NetServer::bind("127.0.0.1:0", origin).expect("bind");
    let svc = RemoteService::connect(
        server.local_addr(),
        RemoteServiceConfig {
            pool_size: 3,
            ..Default::default()
        },
    )
    .expect("connect");
    for i in 0..30 {
        svc.insert("t", &format!("r{i}"), doc! { "i" => i })
            .unwrap();
    }
    let h = svc.latency_histogram();
    assert_eq!(h.count(), 30);
    assert!(h.percentile(0.5).unwrap() <= h.percentile(0.99).unwrap());
    assert!(h.max() > 0, "a real socket round trip takes > 1us");
    // Histories survive connection teardown (merged into `retired`).
    svc.disconnect_all();
    assert_eq!(svc.latency_histogram().count(), 30);
    server.shutdown();
}

//! Event-loop-specific integration tests: slow-consumer backpressure,
//! multi-connection push fan-out, and shutdown idempotency across the
//! shards. The protocol conformance suite lives in `loopback.rs` and is
//! deliberately untouched by the event-loop rewrite — these tests cover
//! the behaviors that only exist *because* of it.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use quaestor_common::{Error, Result};
use quaestor_core::{Request, Response, Service, ServiceExt};
use quaestor_net::wire::{decode_frame, encode_frame, FrameDecode, FrameKind};
use quaestor_net::{codec, NetServer, NetServerConfig, RemoteService, RemoteServiceConfig};
use quaestor_query::QueryKey;

/// A service exposing its own PubSub so tests can publish directly and
/// observe server-side subscription lifetimes.
struct StreamingEcho {
    bus: Arc<quaestor_kv::PubSub>,
}

impl Service for StreamingEcho {
    fn call(&self, req: Request) -> Result<Response> {
        match req {
            Request::Subscribe { key } => Ok(Response::Stream(self.bus.subscribe(key.as_str()))),
            Request::Flush => Ok(Response::Flushed { lsn: 0 }),
            _ => Err(Error::BadRequest("echo only streams".into())),
        }
    }
}

/// Write one `Subscribe` request frame for `key` under `request_id`.
fn send_subscribe(raw: &mut TcpStream, request_id: u64, key: &QueryKey) {
    let mut frame = Vec::new();
    encode_frame(
        FrameKind::Request,
        request_id,
        &codec::encode_request(&Request::Subscribe { key: key.clone() }),
        &mut frame,
    );
    raw.write_all(&frame).unwrap();
}

/// Read one complete frame from a raw socket, consuming it from `buf`.
fn read_raw_frame(raw: &mut TcpStream, buf: &mut Vec<u8>) -> (FrameKind, u64, Vec<u8>) {
    let mut chunk = [0u8; 4096];
    loop {
        match decode_frame(buf) {
            FrameDecode::Frame(f) => {
                let out = (f.kind, f.request_id, f.body.to_vec());
                let size = f.size;
                buf.drain(..size);
                return out;
            }
            FrameDecode::Incomplete => {}
            FrameDecode::Corrupt(e) => panic!("corrupt reply: {e}"),
        }
        let n = raw.read(&mut chunk).unwrap();
        assert!(n > 0, "server closed mid-frame");
        buf.extend_from_slice(&chunk[..n]);
    }
}

#[test]
fn slow_consumer_is_dropped_while_the_shard_keeps_serving() {
    let bus = quaestor_kv::PubSub::new();
    let server = NetServer::bind_with(
        "127.0.0.1:0",
        Arc::new(StreamingEcho { bus: bus.clone() }),
        NetServerConfig {
            shards: 1, // both connections on one shard: the drop must not stall it
            max_write_buffer: 64 * 1024,
            ..NetServerConfig::default()
        },
    )
    .expect("bind");
    let key = QueryKey::record("t", "slow");

    // The slow consumer: subscribes, reads the stream marker, then stops
    // reading forever.
    let mut slow = TcpStream::connect(server.local_addr()).unwrap();
    slow.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut slow_buf = Vec::new();
    send_subscribe(&mut slow, 1, &key);
    let (kind, id, _) = read_raw_frame(&mut slow, &mut slow_buf);
    assert_eq!((kind, id), (FrameKind::ResponseOk, 1));
    assert_eq!(bus.subscriber_count(key.as_str()), 1);

    // A healthy caller sharing the same shard.
    let healthy =
        RemoteService::connect(server.local_addr(), RemoteServiceConfig::default()).unwrap();
    assert_eq!(healthy.flush().unwrap(), 0);

    // Firehose the stream: far more than the socket buffers plus the
    // 64 KiB staged-write bound can absorb while nobody reads.
    let payload = vec![0x5a_u8; 1024];
    for _ in 0..8192 {
        bus.publish(key.as_str(), &payload[..]);
    }

    // The slow consumer's subscription must be released (connection
    // dropped), observed via publisher-side pruning.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        bus.publish(key.as_str(), &payload[..]);
        if bus.subscriber_count(key.as_str()) == 0 {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "slow consumer never dropped; staged queue should have tripped the bound"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    // And the shard it lived on is still fully responsive.
    let started = Instant::now();
    assert_eq!(healthy.flush().unwrap(), 0);
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "shard wedged by the slow consumer"
    );
    server.shutdown();
}

#[test]
fn a_push_burst_fans_out_to_every_subscribed_connection() {
    let bus = quaestor_kv::PubSub::new();
    let server = NetServer::bind_with(
        "127.0.0.1:0",
        Arc::new(StreamingEcho { bus: bus.clone() }),
        NetServerConfig {
            shards: 2, // exercise cross-shard fan-out from one publish
            ..NetServerConfig::default()
        },
    )
    .expect("bind");
    let key = QueryKey::record("t", "fan");
    const CONNS: usize = 64;

    let mut conns: Vec<(TcpStream, Vec<u8>)> = (0..CONNS)
        .map(|_| {
            let mut raw = TcpStream::connect(server.local_addr()).unwrap();
            raw.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
            let mut buf = Vec::new();
            send_subscribe(&mut raw, 7, &key);
            let (kind, id, _) = read_raw_frame(&mut raw, &mut buf);
            assert_eq!((kind, id), (FrameKind::ResponseOk, 7));
            (raw, buf)
        })
        .collect();
    assert_eq!(bus.subscriber_count(key.as_str()), CONNS);

    // One write burst: three messages, fanned out to every connection.
    for msg in [&b"m1"[..], &b"m2"[..], &b"m3"[..]] {
        assert_eq!(bus.publish(key.as_str(), msg), CONNS);
    }
    for (raw, buf) in &mut conns {
        for expect in [b"m1", b"m2", b"m3"] {
            let (kind, id, body) = read_raw_frame(raw, buf);
            assert_eq!((kind, id), (FrameKind::StreamPush, 7));
            assert_eq!(body, expect, "pushes arrive in publish order");
        }
    }
    server.shutdown();
}

#[test]
fn shutdown_is_idempotent_across_shards_and_threads() {
    let bus = quaestor_kv::PubSub::new();
    let server = Arc::new(
        NetServer::bind_with(
            "127.0.0.1:0",
            Arc::new(StreamingEcho { bus: bus.clone() }),
            NetServerConfig {
                shards: 3,
                ..NetServerConfig::default()
            },
        )
        .expect("bind"),
    );
    // Live connections on every shard, one holding a subscription.
    let key = QueryKey::record("t", "x");
    let mut raw = TcpStream::connect(server.local_addr()).unwrap();
    raw.set_read_timeout(Some(Duration::from_secs(5))).unwrap();
    let mut buf = Vec::new();
    send_subscribe(&mut raw, 1, &key);
    let _ = read_raw_frame(&mut raw, &mut buf);
    let svc = RemoteService::connect(server.local_addr(), RemoteServiceConfig::default()).unwrap();
    assert_eq!(svc.flush().unwrap(), 0);

    // Two concurrent shutdowns plus two sequential ones: exactly one
    // does the teardown, none hang, none panic.
    let s1 = server.clone();
    let s2 = server.clone();
    let t1 = std::thread::spawn(move || s1.shutdown());
    let t2 = std::thread::spawn(move || s2.shutdown());
    t1.join().unwrap();
    t2.join().unwrap();
    server.shutdown();
    server.shutdown();

    // The subscription died with its connection.
    let deadline = Instant::now() + Duration::from_secs(5);
    loop {
        bus.publish(key.as_str(), &b"poke"[..]);
        if bus.subscriber_count(key.as_str()) == 0 {
            break;
        }
        assert!(Instant::now() < deadline, "stream outlived shutdown");
        std::thread::sleep(Duration::from_millis(20));
    }
    // New connections are refused.
    assert!(
        TcpStream::connect_timeout(&server.local_addr(), Duration::from_millis(500)).is_err() || {
            // Some OSes accept into the dead listener's backlog; a
            // read then sees immediate EOF instead.
            let mut s =
                TcpStream::connect_timeout(&server.local_addr(), Duration::from_millis(500))
                    .unwrap();
            s.set_read_timeout(Some(Duration::from_secs(2))).unwrap();
            let mut one = [0u8; 1];
            matches!(s.read(&mut one), Ok(0) | Err(_))
        }
    );
}

//! Client-side replication router: primary-aware request routing with
//! automatic failover.
//!
//! [`ReplicatedService`] fronts a fixed set of [`Service`] endpoints — one
//! replication group — and routes:
//!
//! * **writes** (and other primary-only requests) to the endpoint it
//!   believes is the primary;
//! * **reads** round-robin across *all* endpoints, skipping dead ones, so
//!   reads keep flowing while the primary is down. A replica's answer may
//!   lag by its replication lag, which the EBF bounds exactly like any
//!   other cache age — bounded staleness is the contract reads already
//!   have.
//!
//! ## Failover
//!
//! When a write fails in a way that implicates the primary (transport
//! error, or the endpoint answers "not primary" because it was demoted),
//! the router runs an election: it probes every endpoint's
//! `ReplicationStatus`, and among the live ones picks the highest
//! `(epoch, durable_lsn)` — the node that durably holds everything any
//! acked write could have reached (with `ack_replicas >= 1` on the
//! primary, that is *every* acked write). If no live node is already
//! primary, the winner is promoted with an epoch one above the highest
//! epoch observed, writes re-point to it, and the request is retried
//! once. The deposed primary is fenced when it rejoins: it re-enters as a
//! replica and its unreplicated WAL suffix is truncated by the handshake
//! (see `quaestor-repl`'s `Lineage`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use quaestor_common::{lock_rank, Error, Result};
use quaestor_core::{ReplRole, ReplicationStatus, Request, Response, Service, ServiceExt};
use quaestor_obs::Counter;

/// True if `req` mutates state anywhere inside (batches recurse).
fn contains_write(req: &Request) -> bool {
    match req {
        Request::Batch(reqs) => reqs.iter().any(contains_write),
        other => other.is_write(),
    }
}

/// True if `req` must be answered by the primary even though it does not
/// mutate table state.
fn primary_only(req: &Request) -> bool {
    matches!(
        req,
        Request::Flush | Request::Promote { .. } | Request::Subscribe { .. }
    )
}

/// Did this error implicate the *endpoint* rather than the request?
/// Transport failures and demotion fences are grounds for failover;
/// application errors (`NotFound`, `VersionMismatch`, ...) are answers.
fn implicates_endpoint(e: &Error) -> bool {
    match e {
        Error::Net(_) | Error::Closed(_) | Error::Io(_) => true,
        Error::BadRequest(msg) => msg.contains("not primary"),
        _ => false,
    }
}

/// Router state: which endpoint writes go to.
struct RouterState {
    /// Index into `endpoints` of the believed primary.
    primary: usize,
}

/// A [`Service`] that fronts one replication group. See the module docs.
pub struct ReplicatedService {
    endpoints: Vec<Arc<dyn Service>>,
    /// Serializes elections. Two concurrent probe-and-promote passes can
    /// crown two primaries when one's probe of the true winner fails
    /// transiently (a timeout under load) — with a single primary-less
    /// group left behind, every semi-sync write then times out. Held
    /// across endpoint probes, so it ranks below the net client locks.
    election: Mutex<()>,
    route: Mutex<RouterState>,
    /// Round-robin read cursor (relaxed; it only spreads load).
    cursor: AtomicU64,
    /// How many failovers this router has executed (metrics). Also
    /// published on the global registry as `client.failover.elections`.
    failovers: Counter,
}

impl std::fmt::Debug for ReplicatedService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ReplicatedService")
            .field("endpoints", &self.endpoints.len())
            .field("primary", &self.route.lock().primary)
            .field("failovers", &self.failovers.get())
            .finish()
    }
}

impl ReplicatedService {
    /// Build a router over `endpoints`, probing each for its role to find
    /// the current primary. If none answers as primary (all down, or all
    /// replicas mid-failover), writes start at endpoint 0 and the first
    /// write failure triggers an election.
    pub fn new(endpoints: Vec<Arc<dyn Service>>) -> Result<Arc<ReplicatedService>> {
        if endpoints.is_empty() {
            return Err(Error::BadRequest(
                "ReplicatedService needs at least one endpoint".into(),
            ));
        }
        // A per-instance counter, re-bound on the global registry so the
        // newest router's elections show up in `client.failover.elections`.
        let failovers = Counter::default();
        quaestor_obs::registry().bind_counter("client.failover.elections", &failovers);
        let primary = endpoints
            .iter()
            .position(|ep| {
                matches!(
                    ep.replication_status(),
                    Ok(st) if st.role == ReplRole::Primary || st.role == ReplRole::Standalone
                )
            })
            .unwrap_or(0);
        Ok(Arc::new(ReplicatedService {
            endpoints,
            election: Mutex::with_rank(
                (),
                lock_rank::CLIENT_FAILOVER_ELECTION.0,
                lock_rank::CLIENT_FAILOVER_ELECTION.1,
            ),
            route: Mutex::with_rank(
                RouterState { primary },
                lock_rank::CLIENT_FAILOVER_ROUTER.0,
                lock_rank::CLIENT_FAILOVER_ROUTER.1,
            ),
            cursor: AtomicU64::new(0),
            failovers,
        }))
    }

    /// Index of the endpoint writes currently go to.
    pub fn primary_index(&self) -> usize {
        self.route.lock().primary
    }

    /// How many failovers this router has executed.
    pub fn failover_count(&self) -> u64 {
        self.failovers.get()
    }

    /// Probe the believed primary. `Ok` means it is reachable *and* still
    /// answers as primary; any other outcome is a reason to
    /// [`fail_over`](Self::fail_over).
    pub fn health_check(&self) -> Result<ReplicationStatus> {
        let primary = self.route.lock().primary;
        let st = self.endpoints[primary].replication_status()?;
        if st.role == ReplRole::Replica {
            return Err(Error::Net(format!(
                "endpoint {primary} was demoted to replica (epoch {})",
                st.epoch
            )));
        }
        Ok(st)
    }

    /// Run the election: probe every endpoint, pick the live node with
    /// the highest `(epoch, durable_lsn)`, promote it if it is not
    /// already primary, and re-point writes. Returns the new primary's
    /// endpoint index.
    pub fn fail_over(&self) -> Result<usize> {
        let _one_at_a_time = self.election.lock();
        // An election that finished while we waited for the guard may
        // already have re-pointed writes: if the believed primary now
        // answers healthy, adopt it instead of electing again.
        let believed = self.route.lock().primary;
        if let Ok(st) = self.endpoints[believed].replication_status() {
            if st.role == ReplRole::Primary || st.role == ReplRole::Standalone {
                return Ok(believed);
            }
        }
        let statuses: Vec<(usize, ReplicationStatus)> = self
            .endpoints
            .iter()
            .enumerate()
            .filter_map(|(i, ep)| ep.replication_status().ok().map(|st| (i, st)))
            .collect();
        // An existing live primary wins outright — promoting a second one
        // would fork the timeline.
        let winner = statuses
            .iter()
            .filter(|(_, st)| st.role == ReplRole::Primary || st.role == ReplRole::Standalone)
            .max_by_key(|(_, st)| (st.epoch, st.durable_lsn))
            .or_else(|| {
                statuses
                    .iter()
                    .max_by_key(|(_, st)| (st.epoch, st.durable_lsn))
            });
        let Some(&(index, st)) = winner else {
            return Err(Error::Net(
                "failover: no replication endpoint is reachable".into(),
            ));
        };
        if st.role == ReplRole::Replica {
            let max_epoch = statuses.iter().map(|(_, s)| s.epoch).max().unwrap_or(0);
            self.endpoints[index].promote(max_epoch + 1)?;
        }
        self.route.lock().primary = index;
        self.failovers.inc();
        Ok(index)
    }

    /// Route a primary-only request, failing over and retrying once if
    /// the primary is implicated in the failure.
    fn call_primary(&self, req: Request) -> Result<Response> {
        let primary = self.route.lock().primary;
        match self.endpoints[primary].call(req.clone()) {
            Err(e) if implicates_endpoint(&e) => {
                let next = self.fail_over()?;
                self.endpoints[next].call(req)
            }
            other => other,
        }
    }

    /// Route a read: try every endpoint once, starting at the round-robin
    /// cursor. Transport failures rotate to the next endpoint; an
    /// application-level error is an answer and returns immediately.
    fn call_read(&self, req: Request) -> Result<Response> {
        let n = self.endpoints.len();
        let start = self.cursor.fetch_add(1, Ordering::Relaxed) as usize;
        let mut last_err = None;
        for k in 0..n {
            let i = (start + k) % n;
            match self.endpoints[i].call(req.clone()) {
                Err(e) if implicates_endpoint(&e) => last_err = Some(e),
                other => return other,
            }
        }
        Err(last_err.unwrap_or_else(|| Error::Net("no replication endpoint is reachable".into())))
    }
}

impl Service for ReplicatedService {
    fn call(&self, req: Request) -> Result<Response> {
        if contains_write(&req) || primary_only(&req) {
            self.call_primary(req)
        } else {
            self.call_read(req)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;

    /// A scriptable endpoint: a role flag, a durable LSN, a liveness
    /// switch, and counters for how it was used.
    struct FakeNode {
        name: &'static str,
        role: Mutex<ReplRole>,
        epoch: AtomicU64,
        durable_lsn: AtomicU64,
        alive: AtomicBool,
        writes: AtomicU64,
        reads: AtomicU64,
    }

    impl FakeNode {
        fn new(name: &'static str, role: ReplRole, epoch: u64, lsn: u64) -> Arc<FakeNode> {
            Arc::new(FakeNode {
                name,
                role: Mutex::new(role),
                epoch: AtomicU64::new(epoch),
                durable_lsn: AtomicU64::new(lsn),
                alive: AtomicBool::new(true),
                writes: AtomicU64::new(0),
                reads: AtomicU64::new(0),
            })
        }

        fn status(&self) -> ReplicationStatus {
            ReplicationStatus {
                role: *self.role.lock(),
                epoch: self.epoch.load(Ordering::SeqCst),
                last_lsn: self.durable_lsn.load(Ordering::SeqCst),
                durable_lsn: self.durable_lsn.load(Ordering::SeqCst),
            }
        }
    }

    impl Service for FakeNode {
        fn call(&self, req: Request) -> Result<Response> {
            if !self.alive.load(Ordering::SeqCst) {
                return Err(Error::Net(format!("{}: connection refused", self.name)));
            }
            match req {
                Request::ReplicationStatus => Ok(Response::Replication(self.status())),
                Request::Promote { epoch } => {
                    *self.role.lock() = ReplRole::Primary;
                    self.epoch.store(epoch, Ordering::SeqCst);
                    Ok(Response::Replication(self.status()))
                }
                req if req.is_write() => {
                    if *self.role.lock() != ReplRole::Primary {
                        return Err(Error::BadRequest(format!(
                            "not primary: {} is a replica",
                            self.name
                        )));
                    }
                    self.writes.fetch_add(1, Ordering::SeqCst);
                    let v = self.durable_lsn.fetch_add(1, Ordering::SeqCst) + 1;
                    Ok(Response::Written {
                        version: v,
                        image: Arc::new(quaestor_document::Document::default()),
                    })
                }
                _ => {
                    self.reads.fetch_add(1, Ordering::SeqCst);
                    Ok(Response::Flushed { lsn: 0 })
                }
            }
        }
    }

    fn insert(i: u64) -> Request {
        Request::Insert {
            table: "t".into(),
            id: format!("k{i}"),
            doc: quaestor_document::Document::default(),
        }
    }

    fn read() -> Request {
        Request::GetRecord {
            table: "t".into(),
            id: "k0".into(),
        }
    }

    #[test]
    fn probes_for_the_primary_and_routes_writes_to_it() {
        let a = FakeNode::new("a", ReplRole::Replica, 1, 10);
        let b = FakeNode::new("b", ReplRole::Primary, 1, 10);
        let router = ReplicatedService::new(vec![a.clone(), b.clone()]).unwrap();
        assert_eq!(router.primary_index(), 1);
        router.call(insert(1)).unwrap();
        assert_eq!(b.writes.load(Ordering::SeqCst), 1);
        assert_eq!(a.writes.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn reads_round_robin_and_skip_dead_endpoints() {
        let a = FakeNode::new("a", ReplRole::Primary, 1, 10);
        let b = FakeNode::new("b", ReplRole::Replica, 1, 10);
        let c = FakeNode::new("c", ReplRole::Replica, 1, 10);
        let router = ReplicatedService::new(vec![a.clone(), b.clone(), c.clone()]).unwrap();
        for _ in 0..6 {
            router.call(read()).unwrap();
        }
        assert_eq!(a.reads.load(Ordering::SeqCst), 2);
        assert_eq!(b.reads.load(Ordering::SeqCst), 2);
        assert_eq!(c.reads.load(Ordering::SeqCst), 2);
        // Reads keep flowing when the primary dies — the whole point.
        a.alive.store(false, Ordering::SeqCst);
        for _ in 0..6 {
            router.call(read()).unwrap();
        }
        assert_eq!(a.reads.load(Ordering::SeqCst), 2);
        assert_eq!(
            b.reads.load(Ordering::SeqCst) + c.reads.load(Ordering::SeqCst),
            10
        );
    }

    #[test]
    fn write_failure_elects_highest_durable_lsn_and_retries() {
        let a = FakeNode::new("a", ReplRole::Primary, 1, 20);
        let behind = FakeNode::new("behind", ReplRole::Replica, 1, 15);
        let ahead = FakeNode::new("ahead", ReplRole::Replica, 1, 20);
        let router =
            ReplicatedService::new(vec![a.clone(), behind.clone(), ahead.clone()]).unwrap();
        a.alive.store(false, Ordering::SeqCst);
        // The write fails over transparently: election promotes the
        // replica with the highest durable LSN at epoch max+1.
        router.call(insert(1)).unwrap();
        assert_eq!(router.primary_index(), 2);
        assert_eq!(router.failover_count(), 1);
        assert_eq!(*ahead.role.lock(), ReplRole::Primary);
        assert_eq!(ahead.epoch.load(Ordering::SeqCst), 2);
        assert_eq!(ahead.writes.load(Ordering::SeqCst), 1);
        assert_eq!(*behind.role.lock(), ReplRole::Replica);
        // Subsequent writes go straight to the new primary.
        router.call(insert(2)).unwrap();
        assert_eq!(ahead.writes.load(Ordering::SeqCst), 2);
    }

    #[test]
    fn demoted_primary_answer_also_triggers_failover() {
        let a = FakeNode::new("a", ReplRole::Primary, 1, 5);
        let b = FakeNode::new("b", ReplRole::Replica, 1, 5);
        let router = ReplicatedService::new(vec![a.clone(), b.clone()]).unwrap();
        // `a` is demoted behind the router's back (say it rejoined after
        // a partition); its fence error re-routes the write.
        *a.role.lock() = ReplRole::Replica;
        *b.role.lock() = ReplRole::Primary;
        b.epoch.store(2, Ordering::SeqCst);
        router.call(insert(1)).unwrap();
        assert_eq!(router.primary_index(), 1);
        assert_eq!(b.writes.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn health_check_reports_demotion() {
        let a = FakeNode::new("a", ReplRole::Primary, 1, 5);
        let router = ReplicatedService::new(vec![a.clone()]).unwrap();
        assert!(router.health_check().is_ok());
        *a.role.lock() = ReplRole::Replica;
        assert!(router.health_check().is_err());
    }

    #[test]
    fn batch_with_nested_write_routes_to_primary() {
        let a = FakeNode::new("a", ReplRole::Primary, 1, 0);
        let b = FakeNode::new("b", ReplRole::Replica, 1, 0);
        let router = ReplicatedService::new(vec![a.clone(), b.clone()]).unwrap();
        let nested = Request::Batch(vec![Request::Batch(vec![insert(1)])]);
        // FakeNode answers writes per-request, not batches; what matters
        // here is only the routing target.
        let _ = router.call(nested);
        let read_batch = Request::Batch(vec![read()]);
        for _ in 0..4 {
            let _ = router.call(read_batch.clone());
        }
        assert!(
            b.reads.load(Ordering::SeqCst) >= 1,
            "read batches reach replicas"
        );
    }

    #[test]
    fn no_live_endpoint_is_an_error_not_a_hang() {
        let a = FakeNode::new("a", ReplRole::Primary, 1, 0);
        let router = ReplicatedService::new(vec![a.clone()]).unwrap();
        a.alive.store(false, Ordering::SeqCst);
        assert!(matches!(router.call(insert(1)), Err(Error::Net(_))));
        assert!(matches!(router.call(read()), Err(Error::Net(_))));
    }
}

//! The Quaestor client SDK (§3.1–§3.3 client side).
//!
//! "Quaestor's client SDK abstracts from this by transparently performing
//! the EBF lookup for each query executing the freshness policy in the
//! background." (§3.3)
//!
//! [`QuaestorClient`] owns a private browser cache, shares CDN layers with
//! other clients through a `CacheHierarchy`, and implements:
//!
//! * **Δ-bounded staleness**: the EBF is fetched on connect and refreshed
//!   every Δ ms (piggybacked on the first request after Δ); before every
//!   read the EBF decides *cached load* vs *revalidation*.
//! * **Differential whitelisting**: "every query and record that has been
//!   revalidated since the last EBF update is added to a whitelist and
//!   considered fresh until the next EBF renewal."
//! * **Read-your-writes**: own writes are cached locally.
//! * **Monotonic reads**: the client tracks the highest record version
//!   seen and refuses to step backwards, revalidating if needed.
//! * **Opt-in causal and strong consistency** per §3.2 (Figure 4).

pub mod client;
pub mod config;
pub mod failover;
pub mod outcome;
pub mod session;

pub use client::QuaestorClient;
pub use config::{ClientConfig, Consistency};
pub use failover::ReplicatedService;
pub use outcome::{QueryOutcome, ReadOutcome};
pub use session::SessionState;

//! Read outcomes: data plus where it came from (for latency accounting).

use quaestor_document::Document;
use quaestor_webcache::ServedBy;

/// Result of a record read.
#[derive(Debug, Clone)]
pub struct ReadOutcome {
    /// The document.
    pub doc: Document,
    /// Record version observed.
    pub version: u64,
    /// Who served it (browser cache / CDN / origin).
    pub served_by: ServedBy,
    /// Whether the EBF forced a revalidation.
    pub revalidated: bool,
}

/// Result of a query read.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// The result documents, in result order.
    pub docs: Vec<Document>,
    /// The result ETag observed (hash over member ids and versions) —
    /// comparable against the server's current ETag for staleness checks.
    pub etag: u64,
    /// Who served the query entry itself.
    pub served_by: ServedBy,
    /// For id-list results: who served each member record fetch (empty
    /// for object-lists, which carry the documents inline).
    pub record_fetches: Vec<ServedBy>,
    /// Whether the EBF forced a revalidation of the query.
    pub revalidated: bool,
}

impl QueryOutcome {
    /// Total round-trips this read cost beyond the first (id-list record
    /// assembly).
    pub fn extra_fetches(&self) -> usize {
        self.record_fetches.len()
    }
}

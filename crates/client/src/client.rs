//! The client SDK proper.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;
use quaestor_bloom::BloomFilter;
use quaestor_common::{ClockRef, Error, Result, Timestamp};
use quaestor_core::{
    QuaestorServer, QueryResponse, RecordResponse, Request, Response, Service, ServiceExt,
};
use quaestor_document::{Document, Update, Value};
use quaestor_query::{Query, QueryKey};
use quaestor_webcache::{
    CacheEntry, CacheHierarchy, ExpirationCache, FetchMode, InvalidationCache, ServedBy,
};

use crate::config::{ClientConfig, Consistency};
use crate::outcome::{QueryOutcome, ReadOutcome};
use crate::session::SessionState;

/// Per-layer hit counters, split by operation class (Figure 8e reports
/// client and CDN hit rates for reads and queries separately).
#[derive(Debug, Default)]
pub struct ClientMetrics {
    /// Queries answered by the private browser cache.
    pub query_client_hits: AtomicU64,
    /// Queries answered by a shared (CDN) layer.
    pub query_cdn_hits: AtomicU64,
    /// Queries answered by the origin.
    pub query_origin: AtomicU64,
    /// Record reads answered by the browser cache.
    pub record_client_hits: AtomicU64,
    /// Record reads answered by a shared layer.
    pub record_cdn_hits: AtomicU64,
    /// Record reads answered by the origin.
    pub record_origin: AtomicU64,
    /// Reads the EBF promoted to revalidations.
    pub revalidations: AtomicU64,
    /// EBF refreshes performed.
    pub ebf_refreshes: AtomicU64,
}

impl ClientMetrics {
    fn count(&self, is_query: bool, served_by: ServedBy) {
        let counter = match (is_query, served_by) {
            (true, ServedBy::Layer(0)) => &self.query_client_hits,
            (true, ServedBy::Layer(_)) => &self.query_cdn_hits,
            (true, ServedBy::Origin) => &self.query_origin,
            (false, ServedBy::Layer(0)) => &self.record_client_hits,
            (false, ServedBy::Layer(_)) => &self.record_cdn_hits,
            (false, ServedBy::Origin) => &self.record_origin,
        };
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Client-cache hit rate over queries.
    pub fn query_client_hit_rate(&self) -> f64 {
        let h = self.query_client_hits.load(Ordering::Relaxed);
        let total = h
            + self.query_cdn_hits.load(Ordering::Relaxed)
            + self.query_origin.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }

    /// Client-cache hit rate over record reads.
    pub fn record_client_hit_rate(&self) -> f64 {
        let h = self.record_client_hits.load(Ordering::Relaxed);
        let total = h
            + self.record_cdn_hits.load(Ordering::Relaxed)
            + self.record_origin.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }

    /// CDN hit rate over queries.
    pub fn query_cdn_hit_rate(&self) -> f64 {
        let h = self.query_cdn_hits.load(Ordering::Relaxed);
        let total = h
            + self.query_client_hits.load(Ordering::Relaxed)
            + self.query_origin.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }

    /// CDN hit rate over record reads.
    pub fn record_cdn_hit_rate(&self) -> f64 {
        let h = self.record_cdn_hits.load(Ordering::Relaxed);
        let total = h
            + self.record_client_hits.load(Ordering::Relaxed)
            + self.record_origin.load(Ordering::Relaxed);
        if total == 0 {
            0.0
        } else {
            h as f64 / total as f64
        }
    }
}

struct ClientInner {
    ebf: BloomFilter,
    ebf_at: Timestamp,
    /// Per-table partition filters (lazily fetched) when
    /// `ClientConfig::per_table_ebf` is set.
    table_ebfs: quaestor_common::FxHashMap<String, (BloomFilter, Timestamp)>,
    session: SessionState,
}

/// A connected Quaestor client: private browser cache + shared CDN layers
/// + EBF-driven coherence.
///
/// The client speaks only the [`Service`] protocol: every data operation
/// is a [`Request`] through [`Service::call`], so the same client runs
/// unmodified against a single [`QuaestorServer`], a
/// [`ShardRouter`](quaestor_core::ShardRouter) cluster, or any middleware
/// stack (metrics, simulated latency, ...).
pub struct QuaestorClient {
    service: Arc<dyn Service>,
    browser: Arc<ExpirationCache>,
    hierarchy: CacheHierarchy,
    clock: ClockRef,
    config: ClientConfig,
    inner: Mutex<ClientInner>,
    metrics: ClientMetrics,
}

impl std::fmt::Debug for QuaestorClient {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QuaestorClient").finish_non_exhaustive()
    }
}

impl QuaestorClient {
    /// Connect to a single origin server. Convenience over
    /// [`connect_service`](QuaestorClient::connect_service).
    pub fn connect(
        server: Arc<QuaestorServer>,
        cdns: &[Arc<InvalidationCache>],
        config: ClientConfig,
        clock: ClockRef,
    ) -> QuaestorClient {
        Self::connect_service(server, cdns, config, clock)
    }

    /// Connect to any [`Service`] — a server, a shard router, or a
    /// middleware stack: build the cache chain (private browser cache,
    /// then the given shared CDN layers) and fetch the initial EBF —
    /// "upon connection, the client gets a piggybacked EBF" (§3.1).
    ///
    /// # Panics
    ///
    /// Panics if the initial EBF fetch fails (e.g. a misconfigured
    /// cluster with mismatched Bloom geometry). Use
    /// [`try_connect_service`](QuaestorClient::try_connect_service) to
    /// handle that as an error instead.
    pub fn connect_service(
        service: Arc<dyn Service>,
        cdns: &[Arc<InvalidationCache>],
        config: ClientConfig,
        clock: ClockRef,
    ) -> QuaestorClient {
        Self::try_connect_service(service, cdns, config, clock)
            // analyze: allow(unwrap-in-io-crate) documented `# Panics` contract; fallible twin is try_connect_service
            .expect("initial EBF snapshot must succeed on connect")
    }

    /// Fallible [`connect_service`](QuaestorClient::connect_service):
    /// surfaces an initial-EBF failure (a protocol or cluster
    /// misconfiguration error) to the caller instead of panicking.
    pub fn try_connect_service(
        service: Arc<dyn Service>,
        cdns: &[Arc<InvalidationCache>],
        config: ClientConfig,
        clock: ClockRef,
    ) -> Result<QuaestorClient> {
        let browser = Arc::new(ExpirationCache::new(
            "browser",
            config.browser_cache_capacity,
        ));
        let mut hierarchy = CacheHierarchy::new();
        if config.use_browser_cache {
            hierarchy = hierarchy.push_expiration(browser.clone());
        }
        for cdn in cdns {
            hierarchy = hierarchy.push_invalidation(cdn.clone());
        }
        let (ebf, ebf_at) = service.fetch_ebf()?;
        Ok(QuaestorClient {
            service,
            browser,
            hierarchy,
            clock,
            config,
            inner: Mutex::new(ClientInner {
                ebf,
                ebf_at,
                table_ebfs: quaestor_common::FxHashMap::default(),
                session: SessionState::default(),
            }),
            metrics: ClientMetrics::default(),
        })
    }

    /// The service this client talks to.
    pub fn service(&self) -> &Arc<dyn Service> {
        &self.service
    }

    /// Per-layer hit counters.
    pub fn metrics(&self) -> &ClientMetrics {
        &self.metrics
    }

    /// This client's private browser cache (diagnostics).
    pub fn browser_cache(&self) -> &Arc<ExpirationCache> {
        &self.browser
    }

    /// Age of the current EBF — the client's actual Δ bound right now.
    pub fn ebf_age(&self) -> u64 {
        let inner = self.inner.lock();
        self.clock.now().since(inner.ebf_at)
    }

    /// Force an EBF refresh (normally piggybacked automatically).
    pub fn refresh_ebf(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        self.refresh_ebf_locked(&mut inner)
    }

    fn refresh_ebf_locked(&self, inner: &mut ClientInner) -> Result<()> {
        let (ebf, at) = self.service.fetch_ebf()?;
        inner.ebf = ebf;
        inner.ebf_at = at;
        inner.session.on_ebf_refresh();
        self.metrics.ebf_refreshes.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    fn maybe_refresh_ebf(&self, inner: &mut ClientInner) -> Result<()> {
        if self.config.use_ebf && self.clock.now().since(inner.ebf_at) >= self.config.ebf_refresh_ms
        {
            self.refresh_ebf_locked(inner)?;
        }
        Ok(())
    }

    /// Probe the staleness filter for `key`, honouring the per-table-EBF
    /// option (each partition refreshes on its own Δ schedule).
    fn filter_says_stale(&self, inner: &mut ClientInner, table: &str, key: &str) -> Result<bool> {
        if !self.config.use_ebf {
            return Ok(false);
        }
        if self.config.per_table_ebf {
            let now = self.clock.now();
            let needs_refresh = inner
                .table_ebfs
                .get(table)
                .is_none_or(|(_, at)| now.since(*at) >= self.config.ebf_refresh_ms);
            if needs_refresh {
                let (flat, at) = self.service.fetch_ebf_partition(table)?;
                inner.table_ebfs.insert(table.to_owned(), (flat, at));
                // Whitelist entries belong to the previous filter
                // generation; clearing is conservative and safe.
                inner.session.on_ebf_refresh();
                self.metrics.ebf_refreshes.fetch_add(1, Ordering::Relaxed);
            }
            Ok(inner.table_ebfs[table].0.contains(key.as_bytes()))
        } else {
            Ok(inner.ebf.contains(key.as_bytes()))
        }
    }

    /// Decide the fetch mode for a key under the current EBF and session
    /// state. Returns (mode, counts_as_revalidation).
    fn decide_mode(
        &self,
        inner: &mut ClientInner,
        table: &str,
        key: &str,
        consistency: Consistency,
    ) -> Result<(FetchMode, bool)> {
        if consistency == Consistency::Strong {
            return Ok((FetchMode::Bypass, true));
        }
        let stale =
            self.filter_says_stale(inner, table, key)? && !inner.session.whitelist.contains(key);
        if stale {
            return Ok((FetchMode::Revalidate, true));
        }
        if consistency == Consistency::Causal && inner.session.read_newer_than_ebf {
            // "Every read happening before the next EBF refresh is turned
            // into a revalidation." (§3.2, option 2)
            return Ok((FetchMode::Revalidate, true));
        }
        Ok((FetchMode::CachedLoad, false))
    }

    fn note_freshness(&self, inner: &mut ClientInner, entry: &CacheEntry, revalidated: bool) {
        // Data stored after the EBF was generated is "newer than the EBF".
        if revalidated || entry.stored_at > inner.ebf_at {
            inner.session.read_newer_than_ebf = true;
        }
    }

    // ---- reads -----------------------------------------------------------

    /// Read one record with the client's default consistency.
    pub fn read_record(&self, table: &str, id: &str) -> Result<ReadOutcome> {
        self.read_record_with(table, id, self.config.consistency)
    }

    /// Read one record at an explicit consistency level.
    pub fn read_record_with(
        &self,
        table: &str,
        id: &str,
        consistency: Consistency,
    ) -> Result<ReadOutcome> {
        let key = QueryKey::record(table, id);
        let mut inner = self.inner.lock();
        self.maybe_refresh_ebf(&mut inner)?;
        let (mode, revalidated) = self.decide_mode(&mut inner, table, key.as_str(), consistency)?;
        if revalidated {
            self.metrics.revalidations.fetch_add(1, Ordering::Relaxed);
        }
        let (entry, served_by) = self.fetch_record(table, id, key.as_str(), mode)?;
        self.metrics.count(false, served_by);

        // Monotonic reads: never step backwards; a regressed version
        // triggers a revalidation that fetches a fresh copy.
        let mut entry = entry;
        let mut served = served_by;
        if inner.session.observe_version(key.as_str(), entry.etag) {
            // A cache (e.g. an out-of-date CDN edge) served an older
            // version than this session already saw. The stale copy may
            // survive at intermediate layers, so the repair bypasses all
            // of them and refreshes the chain with the origin copy.
            let (fresh, sb) = self.fetch_record(table, id, key.as_str(), FetchMode::Bypass)?;
            self.metrics.revalidations.fetch_add(1, Ordering::Relaxed);
            inner.session.observe_version(key.as_str(), fresh.etag);
            entry = fresh;
            served = sb;
        }
        if revalidated || served == ServedBy::Origin {
            inner.session.whitelist.insert(key.as_str().to_owned());
        }
        self.note_freshness(&mut inner, &entry, revalidated);
        let doc = parse_doc(&entry.body)?;
        Ok(ReadOutcome {
            doc,
            version: entry.etag,
            served_by: served,
            revalidated,
        })
    }

    fn fetch_record(
        &self,
        table: &str,
        id: &str,
        key: &str,
        mode: FetchMode,
    ) -> Result<(CacheEntry, ServedBy)> {
        let now = self.clock.now();
        let captured: RefCell<Option<Result<RecordResponse>>> = RefCell::new(None);
        let outcome = self.hierarchy.fetch(key, now, mode, || {
            let resp = self.service.get_record(table, id);
            match resp {
                Ok(r) => {
                    let entry = CacheEntry::new(r.body.clone(), r.etag, now, r.ttl_ms);
                    *captured.borrow_mut() = Some(Ok(r));
                    entry
                }
                Err(e) => {
                    *captured.borrow_mut() = Some(Err(e));
                    // A dummy uncacheable entry; the error is propagated
                    // below and the entry (ttl 0) is never stored.
                    CacheEntry::new(bytes::Bytes::new(), 0, now, 0)
                }
            }
        });
        if let Some(Err(e)) = captured.into_inner() {
            return Err(e);
        }
        Ok((outcome.entry, outcome.served_by))
    }

    /// Execute a query with the client's default consistency.
    pub fn query(&self, query: &Query) -> Result<QueryOutcome> {
        self.query_with(query, self.config.consistency)
    }

    /// Execute a query at an explicit consistency level.
    pub fn query_with(&self, query: &Query, consistency: Consistency) -> Result<QueryOutcome> {
        let key = QueryKey::of(query);
        let mut inner = self.inner.lock();
        self.maybe_refresh_ebf(&mut inner)?;
        let (mode, revalidated) =
            self.decide_mode(&mut inner, &query.table, key.as_str(), consistency)?;
        if revalidated {
            self.metrics.revalidations.fetch_add(1, Ordering::Relaxed);
        }
        let now = self.clock.now();
        let captured: RefCell<Option<Result<QueryResponse>>> = RefCell::new(None);
        let outcome = self.hierarchy.fetch(key.as_str(), now, mode, || {
            let resp = self.service.query(query);
            match resp {
                Ok(r) => {
                    let entry = CacheEntry::new(r.body.clone(), r.etag, now, r.ttl_ms);
                    *captured.borrow_mut() = Some(Ok(r));
                    entry
                }
                Err(e) => {
                    *captured.borrow_mut() = Some(Err(e));
                    CacheEntry::new(bytes::Bytes::new(), 0, now, 0)
                }
            }
        });
        let origin_resp = match captured.into_inner() {
            Some(Err(e)) => return Err(e),
            Some(Ok(r)) => Some(r),
            None => None,
        };
        self.metrics.count(true, outcome.served_by);
        if revalidated || outcome.served_by == ServedBy::Origin {
            inner.session.whitelist.insert(key.as_str().to_owned());
        }
        self.note_freshness(&mut inner, &outcome.entry, revalidated);
        drop(inner); // record fetches below re-lock per record

        // Assemble the result. Origin responses carry the docs; cached
        // bodies are parsed, and id-lists are assembled record by record
        // (each an independent cached fetch with its own EBF check).
        if let Some(resp) = origin_resp {
            // "All records in a result are inserted into the cache as
            // individual entries, thus causing read cache hits by side
            // effect" (§6.2): each member becomes its own cache entry
            // with its own ETag. Only clients with a private cache do so.
            let mut inner = self.inner.lock();
            for ((id, version), doc) in resp
                .ids
                .iter()
                .zip(&resp.versions)
                .zip(&resp.docs)
                .filter(|_| self.config.use_browser_cache)
            {
                let rkey = QueryKey::record(&query.table, id);
                let body = bytes::Bytes::from(Value::Object((**doc).clone()).canonical());
                self.browser.put(
                    rkey.as_str(),
                    CacheEntry::new(body, *version, self.clock.now(), resp.ttl_ms),
                );
                inner.session.observe_version(rkey.as_str(), *version);
            }
            drop(inner);
            return Ok(QueryOutcome {
                docs: resp.docs.iter().map(|d| (**d).clone()).collect(),
                etag: resp.etag,
                served_by: outcome.served_by,
                record_fetches: Vec::new(),
                revalidated,
            });
        }
        let body = parse_body(&outcome.entry.body)?;
        match body {
            ParsedBody::Objects(docs) => Ok(QueryOutcome {
                docs,
                etag: outcome.entry.etag,
                served_by: outcome.served_by,
                record_fetches: Vec::new(),
                revalidated,
            }),
            ParsedBody::Ids(ids) => {
                let mut docs = Vec::with_capacity(ids.len());
                let mut fetches = Vec::with_capacity(ids.len());
                for id in &ids {
                    let r = self.read_record_with(&query.table, id, consistency)?;
                    fetches.push(r.served_by);
                    docs.push(r.doc);
                }
                Ok(QueryOutcome {
                    docs,
                    etag: outcome.entry.etag,
                    served_by: outcome.served_by,
                    record_fetches: fetches,
                    revalidated,
                })
            }
        }
    }

    // ---- writes ------------------------------------------------------------

    /// Insert a record; caches the result locally (read-your-writes).
    pub fn insert(&self, table: &str, id: &str, doc: Document) -> Result<()> {
        let (version, image) = self.service.insert(table, id, doc)?;
        self.cache_own_write(table, id, version, &image);
        Ok(())
    }

    /// Partially update a record; caches the after-image locally.
    pub fn update(&self, table: &str, id: &str, update: &Update) -> Result<()> {
        let (version, image) = self.service.update(table, id, update)?;
        self.cache_own_write(table, id, version, &image);
        Ok(())
    }

    /// Replace a record wholesale; caches the after-image locally.
    pub fn replace(&self, table: &str, id: &str, doc: Document) -> Result<()> {
        let (version, image) = self.service.replace(table, id, doc)?;
        self.cache_own_write(table, id, version, &image);
        Ok(())
    }

    /// Delete a record; evicts it locally.
    pub fn delete(&self, table: &str, id: &str) -> Result<()> {
        self.service.delete(table, id)?;
        self.after_own_delete(table, id);
        Ok(())
    }

    fn after_own_delete(&self, table: &str, id: &str) {
        let key = QueryKey::record(table, id);
        self.browser.evict(key.as_str());
        let mut inner = self.inner.lock();
        inner.session.read_newer_than_ebf = true;
    }

    /// Execute several requests in one round trip. Results are reported
    /// per-op, in order; successful writes — including writes inside
    /// nested batches — are absorbed into the session exactly like their
    /// singleton counterparts (read-your-writes holds across batches).
    pub fn batch(&self, requests: Vec<Request>) -> Result<Vec<Result<Response>>> {
        let identities: Vec<BatchIdentity> = requests.iter().map(BatchIdentity::of).collect();
        let results = self.service.batch(requests)?;
        self.absorb_batch_outcomes(&identities, &results)?;
        Ok(results)
    }

    /// Fold successful batch writes into the session (own-write cache,
    /// whitelist, monotonic versions), recursing into nested batches. A
    /// result list whose shape disagrees with what was submitted is a
    /// protocol violation — surfaced as an error rather than silently
    /// dropping read-your-writes for the unmatched tail.
    fn absorb_batch_outcomes(
        &self,
        identities: &[BatchIdentity],
        results: &[Result<Response>],
    ) -> Result<()> {
        if identities.len() != results.len() {
            return Err(Error::Internal(format!(
                "protocol violation: batch returned {} results for {} requests",
                results.len(),
                identities.len()
            )));
        }
        for (identity, result) in identities.iter().zip(results) {
            match (identity, result) {
                (BatchIdentity::Write(table, id), Ok(Response::Written { version, image })) => {
                    self.cache_own_write(table, id, *version, image);
                }
                (BatchIdentity::Write(table, id), Ok(Response::Deleted { .. })) => {
                    self.after_own_delete(table, id);
                }
                (BatchIdentity::Nested(inner), Ok(Response::Batch(inner_results))) => {
                    self.absorb_batch_outcomes(inner, inner_results)?;
                }
                _ => {}
            }
        }
        Ok(())
    }

    /// "Read-your-writes consistency is obtained by having the client
    /// cache its own writes within a session." (§3.2)
    fn cache_own_write(&self, table: &str, id: &str, version: u64, image: &Document) {
        let key = QueryKey::record(table, id);
        let body = bytes::Bytes::from(Value::Object(image.clone()).canonical());
        let now = self.clock.now();
        // Own writes are authoritative: cache with the refresh interval as
        // a conservative local TTL.
        self.browser.put(
            key.as_str(),
            CacheEntry::new(body, version, now, self.config.ebf_refresh_ms.max(1_000)),
        );
        let mut inner = self.inner.lock();
        inner.session.observe_version(key.as_str(), version);
        inner.session.whitelist.insert(key.as_str().to_owned());
        inner.session.read_newer_than_ebf = true;
    }

    /// Subscribe to the real-time change stream of a query (§3.2's
    /// websocket alternative to EBF polling).
    pub fn subscribe(&self, query: &Query) -> Result<quaestor_kv::Subscription> {
        self.service.subscribe(&QueryKey::of(query))
    }
}

/// The write-identity skeleton of a batch request, kept client-side so
/// outcomes can be folded back into the session after dispatch.
enum BatchIdentity {
    /// A write op targeting `(table, id)`.
    Write(String, String),
    /// A nested batch.
    Nested(Vec<BatchIdentity>),
    /// Anything session-neutral (reads, queries, EBF snapshots...).
    Other,
}

impl BatchIdentity {
    fn of(req: &Request) -> BatchIdentity {
        match req {
            Request::Insert { table, id, .. }
            | Request::Update { table, id, .. }
            | Request::Replace { table, id, .. }
            | Request::Delete { table, id } => BatchIdentity::Write(table.clone(), id.clone()),
            Request::Batch(inner) => {
                BatchIdentity::Nested(inner.iter().map(BatchIdentity::of).collect())
            }
            _ => BatchIdentity::Other,
        }
    }
}

enum ParsedBody {
    Objects(Vec<Document>),
    Ids(Vec<String>),
}

fn parse_doc(body: &[u8]) -> Result<Document> {
    let v: serde_json::Value = serde_json::from_slice(body)
        .map_err(|e| Error::Internal(format!("malformed cached record body: {e}")))?;
    match Value::from(v) {
        Value::Object(map) => Ok(map),
        other => Err(Error::Internal(format!(
            "cached record body is not an object: {other}"
        ))),
    }
}

fn parse_body(body: &[u8]) -> Result<ParsedBody> {
    let v: serde_json::Value = serde_json::from_slice(body)
        .map_err(|e| Error::Internal(format!("malformed cached query body: {e}")))?;
    let arr = v
        .as_array()
        .ok_or_else(|| Error::Internal("cached query body is not an array".into()))?;
    if arr.iter().all(|e| e.is_string()) && !arr.is_empty() {
        Ok(ParsedBody::Ids(
            arr.iter()
                .filter_map(|e| e.as_str().map(str::to_owned))
                .collect(),
        ))
    } else {
        let mut docs = Vec::with_capacity(arr.len());
        for e in arr {
            match Value::from(e.clone()) {
                Value::Object(map) => docs.push(map),
                other => {
                    return Err(Error::Internal(format!(
                        "query body element is not an object: {other}"
                    )))
                }
            }
        }
        Ok(ParsedBody::Objects(docs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::{Clock, ManualClock};
    use quaestor_document::doc;
    use quaestor_query::Filter;

    fn setup() -> (
        Arc<QuaestorServer>,
        Arc<InvalidationCache>,
        Arc<ManualClock>,
    ) {
        let clock = ManualClock::new();
        let server = QuaestorServer::with_defaults(clock.clone());
        let cdn = Arc::new(InvalidationCache::new("cdn", 4_096));
        server.register_cdn(cdn.clone());
        (server, cdn, clock)
    }

    fn client(
        server: &Arc<QuaestorServer>,
        cdn: &Arc<InvalidationCache>,
        clock: &Arc<ManualClock>,
    ) -> QuaestorClient {
        QuaestorClient::connect(
            server.clone(),
            std::slice::from_ref(cdn),
            ClientConfig::default(),
            clock.clone(),
        )
    }

    #[test]
    fn second_read_hits_browser_cache() {
        let (server, cdn, clock) = setup();
        server.insert("posts", "p1", doc! { "n" => 1 }).unwrap();
        let c = client(&server, &cdn, &clock);
        let r1 = c.read_record("posts", "p1").unwrap();
        assert_eq!(r1.served_by, ServedBy::Origin);
        let r2 = c.read_record("posts", "p1").unwrap();
        assert_eq!(r2.served_by, ServedBy::Layer(0), "browser hit");
        assert_eq!(r2.doc["n"], Value::Int(1));
    }

    #[test]
    fn two_clients_share_the_cdn() {
        let (server, cdn, clock) = setup();
        server.insert("posts", "p1", doc! { "n" => 1 }).unwrap();
        let a = client(&server, &cdn, &clock);
        let b = client(&server, &cdn, &clock);
        a.read_record("posts", "p1").unwrap();
        let r = b.read_record("posts", "p1").unwrap();
        assert_eq!(r.served_by, ServedBy::Layer(1), "CDN warmed by client A");
    }

    #[test]
    fn stale_query_is_revalidated_after_ebf_refresh() {
        let (server, cdn, clock) = setup();
        server
            .insert("posts", "p1", doc! { "tag" => "hot" })
            .unwrap();
        let c = client(&server, &cdn, &clock);
        let q = Query::table("posts").filter(Filter::eq("tag", "hot"));
        let r1 = c.query(&q).unwrap();
        assert_eq!(r1.docs.len(), 1);
        // Another client's write invalidates the query.
        clock.advance(100);
        server
            .update("posts", "p1", &Update::new().set("tag", "cold"))
            .unwrap();
        // Before the EBF refresh the browser copy would be served; after
        // Δ the refreshed EBF promotes the read to a revalidation.
        clock.advance(1_000);
        let r2 = c.query(&q).unwrap();
        assert!(r2.revalidated, "EBF flagged the query stale");
        assert_eq!(r2.docs.len(), 0, "fresh result observed");
    }

    #[test]
    fn staleness_is_bounded_by_delta() {
        let (server, cdn, clock) = setup();
        server
            .insert("posts", "p1", doc! { "tag" => "hot" })
            .unwrap();
        let c = client(&server, &cdn, &clock);
        let q = Query::table("posts").filter(Filter::eq("tag", "hot"));
        c.query(&q).unwrap();
        clock.advance(10);
        server
            .update("posts", "p1", &Update::new().set("tag", "cold"))
            .unwrap();
        // Within Δ the client may legally serve the stale copy...
        let stale = c.query(&q).unwrap();
        assert_eq!(stale.docs.len(), 1, "within Δ stale reads are allowed");
        // ...but never beyond Δ.
        clock.advance(2_000);
        let fresh = c.query(&q).unwrap();
        assert_eq!(fresh.docs.len(), 0, "Δ-atomicity restored");
    }

    #[test]
    fn read_your_writes() {
        let (server, cdn, clock) = setup();
        let c = client(&server, &cdn, &clock);
        c.insert("posts", "p1", doc! { "n" => 1 }).unwrap();
        c.update("posts", "p1", &Update::new().inc("n", 1.0))
            .unwrap();
        let r = c.read_record("posts", "p1").unwrap();
        assert_eq!(r.doc["n"], Value::Int(2), "own write visible");
        assert_eq!(r.served_by, ServedBy::Layer(0), "served from own cache");
    }

    #[test]
    fn strong_consistency_always_hits_origin() {
        let (server, cdn, clock) = setup();
        server.insert("posts", "p1", doc! { "n" => 1 }).unwrap();
        let c = client(&server, &cdn, &clock);
        c.read_record("posts", "p1").unwrap(); // warm caches
        let r = c
            .read_record_with("posts", "p1", Consistency::Strong)
            .unwrap();
        assert_eq!(r.served_by, ServedBy::Origin);
        assert!(r.revalidated);
    }

    #[test]
    fn causal_promotes_reads_after_own_write() {
        let (server, cdn, clock) = setup();
        server.insert("posts", "p1", doc! { "n" => 1 }).unwrap();
        server.insert("posts", "p2", doc! { "n" => 2 }).unwrap();
        let c = client(&server, &cdn, &clock);
        c.read_record("posts", "p2").unwrap(); // warm p2
                                               // Own write makes the session "newer than the EBF".
        c.update("posts", "p1", &Update::new().inc("n", 1.0))
            .unwrap();
        let r = c
            .read_record_with("posts", "p2", Consistency::Causal)
            .unwrap();
        assert!(
            r.revalidated,
            "causal mode must revalidate after observing post-EBF data"
        );
    }

    #[test]
    fn monotonic_reads_never_regress() {
        let (server, cdn, clock) = setup();
        server.insert("posts", "p1", doc! { "n" => 1 }).unwrap();
        let c = client(&server, &cdn, &clock);
        // Observe v2 directly from the origin.
        server
            .update("posts", "p1", &Update::new().inc("n", 1.0))
            .unwrap();
        let r1 = c
            .read_record_with("posts", "p1", Consistency::Strong)
            .unwrap();
        assert_eq!(r1.version, 2);
        // Poison the CDN with a stale v1 copy (as an out-of-date edge
        // might hold).
        let stale_body =
            bytes::Bytes::from(Value::Object(doc! { "_id" => "p1", "n" => 1 }).canonical());
        cdn.put(
            QueryKey::record("posts", "p1").as_str(),
            CacheEntry::new(stale_body, 1, clock.now(), 60_000),
        );
        c.browser_cache().clear(); // force the next read to the CDN
        let r2 = c.read_record("posts", "p1").unwrap();
        assert!(r2.version >= 2, "monotonic reads repaired the regression");
        assert_eq!(r2.doc["n"], Value::Int(2));
    }

    #[test]
    fn metrics_track_layers() {
        let (server, cdn, clock) = setup();
        server.insert("posts", "p1", doc! { "n" => 1 }).unwrap();
        let c = client(&server, &cdn, &clock);
        c.read_record("posts", "p1").unwrap(); // origin
        c.read_record("posts", "p1").unwrap(); // browser
        let m = c.metrics();
        assert_eq!(m.record_origin.load(Ordering::Relaxed), 1);
        assert_eq!(m.record_client_hits.load(Ordering::Relaxed), 1);
        assert!((m.record_client_hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn subscription_receives_change_stream() {
        let (server, cdn, clock) = setup();
        server
            .insert("posts", "p1", doc! { "tag" => "hot" })
            .unwrap();
        let c = client(&server, &cdn, &clock);
        let q = Query::table("posts").filter(Filter::eq("tag", "hot"));
        c.query(&q).unwrap(); // registers the query in InvaliDB
        let sub = c.subscribe(&q).unwrap();
        server
            .update("posts", "p1", &Update::new().set("tag", "cold"))
            .unwrap();
        let msg = sub.try_recv().expect("change notification delivered");
        let text = String::from_utf8(msg.to_vec()).unwrap();
        assert!(text.contains("Remove") && text.contains("p1"), "{text}");
    }

    #[test]
    fn query_members_warm_the_record_cache() {
        // §6.2: "all records in a result are inserted into the cache as
        // individual entries, thus causing read cache hits by side effect".
        let (server, cdn, clock) = setup();
        server
            .insert("posts", "p1", doc! { "tag" => "hot", "n" => 1 })
            .unwrap();
        let c = client(&server, &cdn, &clock);
        let q = Query::table("posts").filter(Filter::eq("tag", "hot"));
        c.query(&q).unwrap();
        let r = c.read_record("posts", "p1").unwrap();
        assert_eq!(
            r.served_by,
            ServedBy::Layer(0),
            "record read must hit the browser cache warmed by the query"
        );
        assert_eq!(r.version, 1, "correct ETag cached");
    }

    #[test]
    fn per_table_ebf_detects_staleness_in_its_partition() {
        let (server, cdn, clock) = setup();
        server
            .insert("posts", "p1", doc! { "tag" => "hot" })
            .unwrap();
        server
            .insert("users", "u1", doc! { "name" => "ada" })
            .unwrap();
        let cfg = ClientConfig {
            per_table_ebf: true,
            ..ClientConfig::default()
        };
        let c = QuaestorClient::connect(
            server.clone(),
            std::slice::from_ref(&cdn),
            cfg,
            clock.clone(),
        );
        let q = Query::table("posts").filter(Filter::eq("tag", "hot"));
        c.query(&q).unwrap();
        c.read_record("users", "u1").unwrap();
        clock.advance(100);
        server
            .update("posts", "p1", &Update::new().set("tag", "cold"))
            .unwrap();
        clock.advance(1_000);
        // The posts partition flags the query stale...
        let r = c.query(&q).unwrap();
        assert!(r.revalidated);
        assert!(r.docs.is_empty());
        // ...while the users partition stays clean: cached hit, no
        // revalidation.
        let u = c.read_record("users", "u1").unwrap();
        assert!(!u.revalidated);
        assert_eq!(u.served_by, ServedBy::Layer(0));
    }

    #[test]
    fn nested_batch_writes_keep_read_your_writes() {
        let (server, cdn, clock) = setup();
        let c = client(&server, &cdn, &clock);
        c.insert("posts", "p1", doc! { "n" => 1 }).unwrap();
        c.read_record("posts", "p1").unwrap(); // warm the browser cache
        let results = c
            .batch(vec![Request::Batch(vec![
                Request::Update {
                    table: "posts".into(),
                    id: "p1".into(),
                    update: Update::new().inc("n", 1.0),
                },
                Request::Insert {
                    table: "posts".into(),
                    id: "p2".into(),
                    doc: doc! { "n" => 9 },
                },
            ])])
            .unwrap();
        assert!(matches!(results[0], Ok(Response::Batch(_))));
        // Both nested writes must be visible immediately from the own-
        // write cache, not served stale from the pre-batch copy.
        let r1 = c.read_record("posts", "p1").unwrap();
        assert_eq!(r1.doc["n"], Value::Int(2), "nested update absorbed");
        assert_eq!(r1.served_by, ServedBy::Layer(0));
        let r2 = c.read_record("posts", "p2").unwrap();
        assert_eq!(r2.doc["n"], Value::Int(9), "nested insert absorbed");
        assert_eq!(r2.served_by, ServedBy::Layer(0));
    }

    #[test]
    fn uncached_after_delete() {
        let (server, cdn, clock) = setup();
        let c = client(&server, &cdn, &clock);
        c.insert("posts", "p1", doc! { "n" => 1 }).unwrap();
        c.read_record("posts", "p1").unwrap();
        c.delete("posts", "p1").unwrap();
        assert!(c.read_record("posts", "p1").is_err(), "gone is gone");
    }
}

//! Session state: the client-side half of the session guarantees.

use quaestor_common::{FxHashMap, FxHashSet, Version};

/// Mutable per-session state (guarded by the client's mutex).
#[derive(Debug, Default)]
pub struct SessionState {
    /// Highest record version seen per cache key — monotonic reads:
    /// "clients cache the most recently seen versions and \[compare\] any
    /// subsequent reads to the highest seen version" (§3.2).
    pub seen_versions: FxHashMap<String, Version>,
    /// Keys revalidated since the last EBF refresh — the differential
    /// whitelist of §3.3.
    pub whitelist: FxHashSet<String>,
    /// Set once the session observed data that may be newer than the
    /// current EBF; drives the causal-consistency promotion rule.
    pub read_newer_than_ebf: bool,
}

impl SessionState {
    /// Record an observed version; returns `true` if it regressed below
    /// the highest previously seen version (a monotonic-reads violation
    /// the caller must repair).
    pub fn observe_version(&mut self, key: &str, version: Version) -> bool {
        match self.seen_versions.get_mut(key) {
            Some(prev) if *prev > version => true,
            Some(prev) => {
                *prev = version;
                false
            }
            None => {
                self.seen_versions.insert(key.to_owned(), version);
                false
            }
        }
    }

    /// Reset the per-EBF-generation state after a refresh.
    pub fn on_ebf_refresh(&mut self) {
        self.whitelist.clear();
        self.read_newer_than_ebf = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_monotonicity_detection() {
        let mut s = SessionState::default();
        assert!(!s.observe_version("k", 3));
        assert!(!s.observe_version("k", 5));
        assert!(s.observe_version("k", 4), "regression detected");
        assert_eq!(s.seen_versions["k"], 5, "highest version retained");
    }

    #[test]
    fn refresh_clears_generation_state() {
        let mut s = SessionState::default();
        s.whitelist.insert("a".into());
        s.read_newer_than_ebf = true;
        s.on_ebf_refresh();
        assert!(s.whitelist.is_empty());
        assert!(!s.read_newer_than_ebf);
    }
}

//! Client configuration and consistency levels.

/// Consistency choices (Figure 4). Δ-atomicity plus the session
/// guarantees are always on; causal and strong are per-operation opt-ins
/// "with a performance penalty".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Consistency {
    /// Default: Δ-atomicity (Δ = EBF refresh interval) + monotonic
    /// reads/writes + read-your-writes.
    #[default]
    DeltaAtomic,
    /// Causal consistency: reads performed after data newer than the
    /// current EBF was observed are promoted to revalidations until the
    /// next EBF refresh.
    Causal,
    /// Strong consistency (linearizability): "explicit revalidation
    /// (cache miss at all levels)".
    Strong,
}

/// Client tunables.
#[derive(Debug, Clone, Copy)]
pub struct ClientConfig {
    /// EBF refresh interval Δ in ms; this *is* the staleness bound of
    /// Theorem 1 ("clients can therefore precisely control the desired
    /// level of consistency").
    pub ebf_refresh_ms: u64,
    /// Browser-cache capacity (entries).
    pub browser_cache_capacity: usize,
    /// Default consistency level for reads.
    pub consistency: Consistency,
    /// Whether this client keeps a private expiration-based cache. The
    /// evaluation's "CDN only" baseline disables it.
    pub use_browser_cache: bool,
    /// Whether the client consults/refreshes the EBF at all. The
    /// evaluation's "CDN only" and "uncached" baselines disable it.
    pub use_ebf: bool,
    /// Fetch per-table EBF partitions instead of the aggregated union:
    /// "clients can also exploit the table-specific EBFs to decrease the
    /// total false positive rate at the expense of loading more
    /// individual EBFs" (§3.3).
    pub per_table_ebf: bool,
}

impl Default for ClientConfig {
    fn default() -> Self {
        ClientConfig {
            ebf_refresh_ms: 1_000, // the paper's read-heavy runs use 1 s
            browser_cache_capacity: 4_096,
            consistency: Consistency::DeltaAtomic,
            use_browser_cache: true,
            use_ebf: true,
            per_table_ebf: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults() {
        let c = ClientConfig::default();
        assert_eq!(c.consistency, Consistency::DeltaAtomic);
        assert_eq!(c.ebf_refresh_ms, 1_000);
    }
}

//! The dual TTL estimation strategy (§4.2).

use serde::{Deserialize, Serialize};

/// Tunables of the estimator.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct EstimatorConfig {
    /// Quantile `p` of Eq. 1: the estimated TTL has probability `p` of
    /// seeing a write before it expires. Lower `p` → shorter TTLs → fewer
    /// invalidations but lower hit rates. ("By varying the quantile,
    /// higher/lower TTLs and thus cache hit rates can be traded off
    /// against more or fewer invalidations.")
    pub quantile: f64,
    /// EWMA weight `α` of Eq. 2 on the *old* estimate.
    pub alpha: f64,
    /// TTL floor in ms (a result must be worth caching at all).
    pub min_ttl_ms: u64,
    /// TTL ceiling in ms, also the default for keys with no write history.
    pub max_ttl_ms: u64,
}

impl Default for EstimatorConfig {
    fn default() -> Self {
        EstimatorConfig {
            quantile: 0.8,
            alpha: 0.5,
            min_ttl_ms: 1_000,
            max_ttl_ms: 600_000, // 10 min, the paper's experiment horizon
        }
    }
}

/// Stateless TTL maths; state (rates, per-query estimates) lives in
/// [`crate::WriteRateSampler`] and [`crate::ActiveList`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TtlEstimator {
    config: EstimatorConfig,
}

impl TtlEstimator {
    /// An estimator with the given tunables.
    pub fn new(config: EstimatorConfig) -> TtlEstimator {
        assert!((0.0..1.0).contains(&config.quantile) && config.quantile > 0.0);
        assert!((0.0..=1.0).contains(&config.alpha));
        assert!(config.min_ttl_ms <= config.max_ttl_ms);
        TtlEstimator { config }
    }

    /// The tunables.
    pub fn config(&self) -> EstimatorConfig {
        self.config
    }

    /// Eq. 1: `F⁻¹(p, λ) = −ln(1−p)/λ` — the TTL such that with
    /// probability `p` the next write arrives before expiry. `rate` is in
    /// writes/ms; `None` (no history) yields the maximum TTL.
    pub fn record_ttl(&self, rate: Option<f64>) -> u64 {
        match rate {
            Some(lambda) if lambda > 0.0 => {
                let ttl = -(1.0 - self.config.quantile).ln() / lambda;
                self.clamp(ttl)
            }
            _ => self.config.max_ttl_ms,
        }
    }

    /// Initial query TTL from the summed write rates of its result set
    /// (`λ_min = λ_w1 + … + λ_wn`; the min of exponentials is exponential
    /// with the summed rate).
    pub fn initial_query_ttl(&self, combined_rate: f64) -> u64 {
        if combined_rate > 0.0 {
            let ttl = -(1.0 - self.config.quantile).ln() / combined_rate;
            self.clamp(ttl)
        } else {
            self.config.max_ttl_ms
        }
    }

    /// Eq. 2: EWMA refinement after an observed invalidation.
    /// `actual_ttl_ms` is "the difference between the invalidation time
    /// stamp and the previous read time stamp".
    pub fn refine_query_ttl(&self, old_ttl_ms: u64, actual_ttl_ms: u64) -> u64 {
        let blended = self.config.alpha * old_ttl_ms as f64
            + (1.0 - self.config.alpha) * actual_ttl_ms as f64;
        self.clamp(blended)
    }

    /// Alternative estimate: expected time to next write, `1/λ` ("always
    /// using the observed mean TTL, but ... does not allow fine-grained
    /// adjustments").
    pub fn mean_ttl(&self, rate: Option<f64>) -> u64 {
        match rate {
            Some(lambda) if lambda > 0.0 => self.clamp(1.0 / lambda),
            _ => self.config.max_ttl_ms,
        }
    }

    fn clamp(&self, ttl_ms: f64) -> u64 {
        if !ttl_ms.is_finite() {
            return self.config.max_ttl_ms;
        }
        (ttl_ms as u64)
            .max(self.config.min_ttl_ms)
            .min(self.config.max_ttl_ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn est(q: f64) -> TtlEstimator {
        TtlEstimator::new(EstimatorConfig {
            quantile: q,
            alpha: 0.5,
            min_ttl_ms: 1,
            max_ttl_ms: 1_000_000,
        })
    }

    #[test]
    fn quantile_formula_matches_closed_form() {
        // λ = 0.001 w/ms (one write per second), p = 0.8
        // F⁻¹ = -ln(0.2)/0.001 ≈ 1609.4 ms
        let ttl = est(0.8).record_ttl(Some(0.001));
        assert!((ttl as f64 - 1609.4).abs() < 2.0, "got {ttl}");
    }

    #[test]
    fn higher_quantile_longer_ttl() {
        let lo = est(0.5).record_ttl(Some(0.001));
        let hi = est(0.95).record_ttl(Some(0.001));
        assert!(hi > lo);
    }

    #[test]
    fn no_history_gets_max_ttl() {
        let e = est(0.8);
        assert_eq!(e.record_ttl(None), 1_000_000);
        assert_eq!(e.record_ttl(Some(0.0)), 1_000_000);
        assert_eq!(e.initial_query_ttl(0.0), 1_000_000);
    }

    #[test]
    fn hotter_result_sets_expire_sooner() {
        let e = est(0.8);
        // A query over 10 records each written at 0.001 w/ms behaves like
        // λ_min = 0.01 → 10x shorter TTL than a single such record.
        let one = e.initial_query_ttl(0.001);
        let ten = e.initial_query_ttl(0.01);
        assert!((one as f64 / ten as f64 - 10.0).abs() < 0.2);
    }

    #[test]
    fn ewma_converges_to_actual() {
        let e = est(0.8);
        let mut ttl = 100_000u64;
        for _ in 0..32 {
            ttl = e.refine_query_ttl(ttl, 2_000);
        }
        assert!(
            (ttl as i64 - 2_000).unsigned_abs() < 50,
            "EWMA must converge to the true TTL, got {ttl}"
        );
    }

    #[test]
    fn ewma_single_step_blend() {
        let e = est(0.8); // alpha = 0.5
        assert_eq!(e.refine_query_ttl(1_000, 3_000), 2_000);
    }

    #[test]
    fn mean_ttl_is_inverse_rate() {
        let e = est(0.8);
        assert_eq!(e.mean_ttl(Some(0.001)), 1_000);
        assert_eq!(e.mean_ttl(None), 1_000_000);
    }

    #[test]
    fn clamping_respects_bounds() {
        let e = TtlEstimator::new(EstimatorConfig {
            quantile: 0.8,
            alpha: 0.5,
            min_ttl_ms: 500,
            max_ttl_ms: 2_000,
        });
        assert_eq!(e.record_ttl(Some(100.0)), 500, "floor");
        assert_eq!(e.record_ttl(Some(1e-9)), 2_000, "ceiling");
    }

    proptest! {
        #[test]
        fn ttl_always_within_bounds(rate in 0.0f64..10.0, q in 0.01f64..0.99) {
            let e = TtlEstimator::new(EstimatorConfig {
                quantile: q, alpha: 0.5, min_ttl_ms: 10, max_ttl_ms: 10_000,
            });
            let r = if rate > 0.0 { Some(rate) } else { None };
            let ttl = e.record_ttl(r);
            prop_assert!((10..=10_000).contains(&ttl));
        }

        #[test]
        fn ewma_is_between_old_and_actual(old in 0u64..100_000, actual in 0u64..100_000,
                                          alpha in 0.0f64..=1.0) {
            let e = TtlEstimator::new(EstimatorConfig {
                quantile: 0.8, alpha, min_ttl_ms: 0, max_ttl_ms: u64::MAX / 2,
            });
            let blended = e.refine_query_ttl(old, actual);
            let (lo, hi) = (old.min(actual), old.max(actual));
            prop_assert!(blended >= lo && blended <= hi);
        }

        #[test]
        fn record_ttl_monotone_in_rate(r1 in 0.0001f64..1.0, r2 in 0.0001f64..1.0) {
            let e = est(0.8);
            let (lo, hi) = if r1 <= r2 { (r1, r2) } else { (r2, r1) };
            prop_assert!(e.record_ttl(Some(lo)) >= e.record_ttl(Some(hi)),
                "faster-written records must get shorter TTLs");
        }
    }
}

//! The Alex protocol — the classic TTL baseline (§7).
//!
//! "A popular and widely used TTL estimation strategy is the Alex
//! protocol that originates from the Alex FTP cache. It calculates the
//! TTL as a percentage of the time since the last modification, capped by
//! an upper TTL bound. This is similar to Quaestor's TTL update strategy
//! for queries but has the downside of neither converging to the actual
//! TTL nor being able to give estimates for new queries." (§7)
//!
//! Implemented here as the comparison baseline for the TTL-strategy
//! ablation: `TTL = factor × (now − last_modified)`, clamped.

use quaestor_common::Timestamp;
use serde::{Deserialize, Serialize};

/// Alex-protocol parameters.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct AlexConfig {
    /// Fraction of the age since last modification granted as TTL.
    /// Squid's classic default is 20%.
    pub factor: f64,
    /// TTL floor (ms).
    pub min_ttl_ms: u64,
    /// TTL cap (ms) — "capped by an upper TTL bound".
    pub max_ttl_ms: u64,
}

impl Default for AlexConfig {
    fn default() -> Self {
        AlexConfig {
            factor: 0.2,
            min_ttl_ms: 1_000,
            max_ttl_ms: 600_000,
        }
    }
}

/// Stateless Alex TTL computation.
#[derive(Debug, Clone, Copy, Default)]
pub struct AlexEstimator {
    config: AlexConfig,
}

impl AlexEstimator {
    /// An estimator with the given parameters.
    pub fn new(config: AlexConfig) -> AlexEstimator {
        assert!(config.factor > 0.0);
        assert!(config.min_ttl_ms <= config.max_ttl_ms);
        AlexEstimator { config }
    }

    /// The parameters.
    pub fn config(&self) -> AlexConfig {
        self.config
    }

    /// `TTL = factor × age`, clamped. For never-modified resources
    /// (`last_modified == None`) Alex has no signal — it falls back to
    /// the *floor*, the conservative choice (the paper's criticism:
    /// "[not] being able to give estimates for new queries").
    pub fn ttl(&self, now: Timestamp, last_modified: Option<Timestamp>) -> u64 {
        match last_modified {
            Some(lm) => {
                let age = now.since(lm) as f64;
                let ttl = (age * self.config.factor) as u64;
                ttl.clamp(self.config.min_ttl_ms, self.config.max_ttl_ms)
            }
            None => self.config.min_ttl_ms,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn ttl_is_fraction_of_age() {
        let alex = AlexEstimator::new(AlexConfig {
            factor: 0.2,
            min_ttl_ms: 0,
            max_ttl_ms: u64::MAX / 2,
        });
        // Modified 100 s ago => 20 s TTL.
        assert_eq!(alex.ttl(ts(200_000), Some(ts(100_000))), 20_000);
    }

    #[test]
    fn cap_and_floor_apply() {
        let alex = AlexEstimator::new(AlexConfig {
            factor: 0.2,
            min_ttl_ms: 5_000,
            max_ttl_ms: 30_000,
        });
        assert_eq!(alex.ttl(ts(1_000), Some(ts(900))), 5_000, "floor");
        assert_eq!(alex.ttl(ts(10_000_000), Some(ts(0))), 30_000, "upper bound");
    }

    #[test]
    fn new_resources_get_the_floor() {
        let alex = AlexEstimator::new(AlexConfig::default());
        assert_eq!(alex.ttl(ts(50_000), None), 1_000);
    }

    #[test]
    fn alex_does_not_converge_unlike_ewma() {
        // The §7 criticism, demonstrated: a resource written every 10 s
        // gets an Alex TTL proportional to *time since last write*, not
        // to the inter-write gap — right after each write the estimate
        // collapses, long after it balloons. Quaestor's EWMA converges.
        let alex = AlexEstimator::new(AlexConfig {
            factor: 0.5,
            min_ttl_ms: 0,
            max_ttl_ms: u64::MAX / 2,
        });
        let just_after = alex.ttl(ts(100_100), Some(ts(100_000)));
        let long_after = alex.ttl(ts(109_900), Some(ts(100_000)));
        assert!(just_after < 100);
        assert!(long_after > 4_000);

        let quaestor = crate::TtlEstimator::new(crate::EstimatorConfig {
            min_ttl_ms: 0,
            max_ttl_ms: u64::MAX / 2,
            alpha: 0.5,
            quantile: 0.8,
        });
        let mut est = 100_000u64;
        for _ in 0..20 {
            est = quaestor.refine_query_ttl(est, 10_000);
        }
        assert!(
            (est as i64 - 10_000).unsigned_abs() < 100,
            "EWMA converges to the 10 s truth, Alex never does"
        );
    }
}

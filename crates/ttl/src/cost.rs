//! The id-list vs object-list representation decision.
//!
//! "A cached query can either be served as a list of record URLs
//! (id-list) or as a full result set (object-list). Id-lists are more
//! space-efficient and yield higher per-record cache hit rates but
//! require more round-trips to assemble the result ... Quaestor employs a
//! cost-based decision model in order to weigh fewer invalidations
//! against fewer round-trips." (§4.2)
//!
//! The paper omits the concrete formula; the model here prices both
//! representations per unit time and picks the cheaper one:
//!
//! * an **object-list** is invalidated on `add`, `remove` *and* `change`
//!   events (§4.1), so its maintenance cost is
//!   `change_rate_total × invalidation_cost`;
//! * an **id-list** is only invalidated on membership changes
//!   (`add`/`remove`), but every query read must fetch the member records
//!   individually: the latency cost is
//!   `read_rate × n × (1 − record_hit_rate) × round_trip_cost`
//!   (record fetches that miss their own cache entry pay a round-trip).

use serde::{Deserialize, Serialize};

/// How a cached query result is represented.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Representation {
    /// Full result set cached under the query URL.
    ObjectList,
    /// Only record ids cached; records fetched individually (and cached
    /// individually, raising per-record hit rates).
    IdList,
}

/// Workload observations feeding one decision.
#[derive(Debug, Clone, Copy)]
pub struct QueryWorkload {
    /// Query reads per second.
    pub read_rate: f64,
    /// Result-membership changes (add/remove) per second.
    pub membership_change_rate: f64,
    /// In-place result mutations (change events) per second.
    pub change_rate: f64,
    /// Result cardinality.
    pub result_size: usize,
    /// Measured cache hit rate of individual records (0..1).
    pub record_hit_rate: f64,
}

/// Relative prices of the two bad outcomes.
#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
pub struct CostModel {
    /// Cost of purging + refilling one cached result (server work plus the
    /// extra miss it causes downstream).
    pub invalidation_cost: f64,
    /// Cost of one extra client round-trip to fetch a missing record.
    pub round_trip_cost: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // With HTTP/1.1, round-trips dominate: fetching a record that
        // missed costs a full WAN RTT, while an invalidation is an
        // origin-side purge. §7 notes HTTP/2 push would let Quaestor
        // "always favor id-lists without any performance downsides" —
        // modelled by setting round_trip_cost → 0.
        CostModel {
            invalidation_cost: 1.0,
            round_trip_cost: 3.0,
        }
    }
}

impl CostModel {
    /// Expected cost per second of serving this query as an object-list.
    pub fn object_list_cost(&self, w: &QueryWorkload) -> f64 {
        (w.membership_change_rate + w.change_rate) * self.invalidation_cost
    }

    /// Expected cost per second of serving this query as an id-list.
    pub fn id_list_cost(&self, w: &QueryWorkload) -> f64 {
        let misses_per_read = w.result_size as f64 * (1.0 - w.record_hit_rate).clamp(0.0, 1.0);
        w.membership_change_rate * self.invalidation_cost
            + w.read_rate * misses_per_read * self.round_trip_cost
    }

    /// Pick the cheaper representation (ties go to object-list, which
    /// saves round-trips).
    pub fn choose(&self, w: &QueryWorkload) -> Representation {
        if self.id_list_cost(w) < self.object_list_cost(w) {
            Representation::IdList
        } else {
            Representation::ObjectList
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> QueryWorkload {
        QueryWorkload {
            read_rate: 10.0,
            membership_change_rate: 0.1,
            change_rate: 0.1,
            result_size: 10,
            record_hit_rate: 0.9,
        }
    }

    #[test]
    fn read_heavy_stable_results_prefer_object_lists() {
        // Few changes, many reads, moderate record hit rate: fetching 10
        // records per read would be madness.
        let w = QueryWorkload {
            record_hit_rate: 0.5,
            ..base()
        };
        assert_eq!(CostModel::default().choose(&w), Representation::ObjectList);
    }

    #[test]
    fn churny_results_with_hot_records_prefer_id_lists() {
        // Records mutate in place constantly (change events) but
        // membership is stable and records are almost always cached:
        // id-lists dodge all those change invalidations.
        let w = QueryWorkload {
            change_rate: 50.0,
            membership_change_rate: 0.01,
            record_hit_rate: 0.999,
            read_rate: 1.0,
            result_size: 10,
        };
        assert_eq!(CostModel::default().choose(&w), Representation::IdList);
    }

    #[test]
    fn http2_push_zero_rt_cost_always_id_list_under_changes() {
        let model = CostModel {
            invalidation_cost: 1.0,
            round_trip_cost: 0.0,
        };
        let w = base(); // has change_rate > 0
        assert_eq!(model.choose(&w), Representation::IdList);
    }

    #[test]
    fn id_list_cost_scales_with_misses() {
        let model = CostModel::default();
        let cold = QueryWorkload {
            record_hit_rate: 0.0,
            ..base()
        };
        let warm = QueryWorkload {
            record_hit_rate: 1.0,
            ..base()
        };
        assert!(model.id_list_cost(&cold) > model.id_list_cost(&warm));
        // With perfectly hot records the only id-list cost is membership
        // invalidations.
        assert!((model.id_list_cost(&warm) - 0.1 * model.invalidation_cost).abs() < 1e-9);
    }

    #[test]
    fn change_events_never_charge_id_lists() {
        let model = CostModel::default();
        let calm = base();
        let churny = QueryWorkload {
            change_rate: 1_000.0,
            ..base()
        };
        assert_eq!(model.id_list_cost(&calm), model.id_list_cost(&churny));
        assert!(model.object_list_cost(&churny) > model.object_list_cost(&calm));
    }
}

//! Statistical TTL estimation — contribution (3) of the paper (§4.2).
//!
//! > "Our mechanism is based on the insight that any cached record should
//! > ideally expire right before its next update occurs, thus achieving
//! > maximum cache hit rates while avoiding unnecessary invalidations."
//!
//! The pieces:
//!
//! * [`WriteRateSampler`] — approximates per-record write rates λ_w by
//!   sampling incoming updates in a sliding window.
//! * [`TtlEstimator`] — the dual strategy: records get the quantile of an
//!   exponential inter-arrival distribution (Eq. 1:
//!   `F⁻¹(p, λ) = −ln(1−p)/λ`); query results start from the
//!   minimum-of-exponentials bound (`λ_min = Σ λ_wi` over the result set)
//!   and are then refined by an EWMA towards observed invalidation-derived
//!   TTLs (Eq. 2: `TTL ← α·TTL_old + (1−α)·TTL_actual`).
//! * [`ActiveList`] — "the current TTL estimate for a query is kept in a
//!   shared partitioned data structure called the active list, which is
//!   accessed by all Quaestor nodes."
//! * [`CapacityManager`] — "through a capacity management model only
//!   queries that are sufficiently cachable are admitted and prioritized
//!   based on the costs of maintaining them" (§4.1).
//! * [`cost`] — the cost-based id-list vs object-list representation
//!   decision ("Quaestor employs a cost-based decision model in order to
//!   weigh fewer invalidations against fewer round-trips").

pub mod active_list;
pub mod alex;
pub mod capacity;
pub mod cost;
pub mod estimator;
pub mod rate;

pub use active_list::{ActiveList, QueryState};
pub use alex::{AlexConfig, AlexEstimator};
pub use capacity::{AdmissionDecision, CapacityManager};
pub use cost::{CostModel, Representation};
pub use estimator::{EstimatorConfig, TtlEstimator};
pub use rate::WriteRateSampler;

//! Capacity management: which queries earn an InvaliDB slot.
//!
//! "The throughput of the invalidation pipeline is the limiting constraint
//! of query caching and determines how many queries can be cached at the
//! same time. Through a capacity management model only queries that are
//! sufficiently cachable are admitted and prioritized based on the costs
//! of maintaining them." (§4.1)
//!
//! Each query gets a **cachability score** = reads / (invalidations + 1):
//! exactly the Zipf insight of §7 — "even if only a small subset of 'hot'
//! queries can be actively matched against update operations, this is
//! sufficient to achieve high cache hit rates". When the pipeline is full,
//! a new query is admitted only by evicting a strictly lower-scored one.

use parking_lot::Mutex;
use quaestor_query::QueryKey;
use std::collections::HashMap;

/// Outcome of an admission request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AdmissionDecision {
    /// Query admitted into free capacity.
    Admitted,
    /// Query admitted; the contained lower-priority query was evicted and
    /// must be deregistered from InvaliDB (and no longer cached).
    AdmittedEvicting(QueryKey),
    /// Pipeline full of higher-value queries; serve uncached.
    Rejected,
}

#[derive(Debug, Clone, Copy, Default)]
struct Slot {
    reads: u64,
    invalidations: u64,
}

impl Slot {
    fn score(&self) -> f64 {
        self.reads as f64 / (self.invalidations as f64 + 1.0)
    }
}

/// Tracks the bounded set of actively matched (cached) queries.
#[derive(Debug)]
pub struct CapacityManager {
    max_slots: usize,
    slots: Mutex<HashMap<QueryKey, Slot>>,
}

impl CapacityManager {
    /// A manager with `max_slots` of matching capacity.
    pub fn new(max_slots: usize) -> CapacityManager {
        assert!(max_slots > 0);
        CapacityManager {
            max_slots,
            slots: Mutex::new(HashMap::new()),
        }
    }

    /// Capacity bound.
    pub fn max_slots(&self) -> usize {
        self.max_slots
    }

    /// Currently admitted queries.
    pub fn len(&self) -> usize {
        self.slots.lock().len()
    }

    /// True if no query is admitted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Is the query currently admitted?
    pub fn contains(&self, key: &QueryKey) -> bool {
        self.slots.lock().contains_key(key)
    }

    /// Request admission for `key` (idempotent for admitted queries).
    pub fn request_admission(&self, key: &QueryKey) -> AdmissionDecision {
        let mut slots = self.slots.lock();
        if let Some(slot) = slots.get_mut(key) {
            slot.reads += 1;
            return AdmissionDecision::Admitted;
        }
        if slots.len() < self.max_slots {
            slots.insert(
                key.clone(),
                Slot {
                    reads: 1,
                    invalidations: 0,
                },
            );
            return AdmissionDecision::Admitted;
        }
        // Full: find the weakest admitted query. A newcomer has score
        // 1/(0+1) = 1; it replaces the victim only if strictly stronger.
        let victim = slots
            .iter()
            .min_by(|a, b| a.1.score().total_cmp(&b.1.score()))
            .map(|(k, s)| (k.clone(), s.score()));
        match victim {
            Some((vkey, vscore)) if vscore < 1.0 => {
                slots.remove(&vkey);
                slots.insert(
                    key.clone(),
                    Slot {
                        reads: 1,
                        invalidations: 0,
                    },
                );
                AdmissionDecision::AdmittedEvicting(vkey)
            }
            _ => AdmissionDecision::Rejected,
        }
    }

    /// Record a read of an admitted query (raises its priority).
    pub fn on_read(&self, key: &QueryKey) {
        if let Some(slot) = self.slots.lock().get_mut(key) {
            slot.reads += 1;
        }
    }

    /// Record an invalidation of an admitted query (lowers its priority).
    pub fn on_invalidation(&self, key: &QueryKey) {
        if let Some(slot) = self.slots.lock().get_mut(key) {
            slot.invalidations += 1;
        }
    }

    /// Explicitly release a slot (query deactivated).
    pub fn release(&self, key: &QueryKey) -> bool {
        self.slots.lock().remove(key).is_some()
    }

    /// Cachability score of an admitted query.
    pub fn score(&self, key: &QueryKey) -> Option<f64> {
        self.slots.lock().get(key).map(|s| s.score())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_query::{Filter, Query};

    fn key(n: i64) -> QueryKey {
        QueryKey::of(&Query::table("t").filter(Filter::eq("n", n)))
    }

    #[test]
    fn admits_until_full() {
        let cm = CapacityManager::new(2);
        assert_eq!(cm.request_admission(&key(1)), AdmissionDecision::Admitted);
        assert_eq!(cm.request_admission(&key(2)), AdmissionDecision::Admitted);
        assert_eq!(cm.len(), 2);
    }

    #[test]
    fn readmission_is_idempotent() {
        let cm = CapacityManager::new(1);
        cm.request_admission(&key(1));
        assert_eq!(cm.request_admission(&key(1)), AdmissionDecision::Admitted);
        assert_eq!(cm.len(), 1);
    }

    #[test]
    fn full_pipeline_rejects_newcomers_against_strong_queries() {
        let cm = CapacityManager::new(1);
        cm.request_admission(&key(1));
        cm.on_read(&key(1));
        cm.on_read(&key(1)); // score 3.0
        assert_eq!(cm.request_admission(&key(2)), AdmissionDecision::Rejected);
    }

    #[test]
    fn weak_queries_are_evicted_for_newcomers() {
        let cm = CapacityManager::new(1);
        cm.request_admission(&key(1));
        // key(1) gets hammered by invalidations: score 1/(5+1) < 1.
        for _ in 0..5 {
            cm.on_invalidation(&key(1));
        }
        match cm.request_admission(&key(2)) {
            AdmissionDecision::AdmittedEvicting(victim) => assert_eq!(victim, key(1)),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(cm.contains(&key(2)) && !cm.contains(&key(1)));
    }

    #[test]
    fn hot_queries_outrank_churny_ones() {
        let cm = CapacityManager::new(2);
        cm.request_admission(&key(1));
        cm.request_admission(&key(2));
        for _ in 0..10 {
            cm.on_read(&key(1)); // hot
            cm.on_invalidation(&key(2)); // churny
        }
        // key(2): score 1/11 — evicted for the newcomer.
        match cm.request_admission(&key(3)) {
            AdmissionDecision::AdmittedEvicting(victim) => assert_eq!(victim, key(2)),
            other => panic!("expected eviction of key(2), got {other:?}"),
        }
        assert!(cm.contains(&key(1)));
    }

    #[test]
    fn release_frees_a_slot() {
        let cm = CapacityManager::new(1);
        cm.request_admission(&key(1));
        assert!(cm.release(&key(1)));
        assert!(!cm.release(&key(1)));
        assert_eq!(cm.request_admission(&key(2)), AdmissionDecision::Admitted);
    }

    #[test]
    fn score_reflects_reads_per_invalidation() {
        let cm = CapacityManager::new(4);
        cm.request_admission(&key(1)); // 1 read
        cm.on_read(&key(1)); // 2 reads
        cm.on_invalidation(&key(1)); // 1 inval
        assert!((cm.score(&key(1)).unwrap() - 1.0).abs() < 1e-9); // 2/(1+1)
        assert!(cm.score(&key(9)).is_none());
    }
}

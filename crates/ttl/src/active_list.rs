//! The active list: shared state for every currently cached query.
//!
//! "The current TTL estimate for a query is kept in a shared partitioned
//! data structure called the active list, which is accessed by all
//! Quaestor nodes." (§4.2)

use parking_lot::RwLock;
use quaestor_common::{fx_hash_str, Timestamp};
use quaestor_query::QueryKey;
use std::collections::HashMap;

use crate::cost::Representation;

/// Per-query cache state.
#[derive(Debug, Clone)]
pub struct QueryState {
    /// Current TTL estimate in ms.
    pub ttl_ms: u64,
    /// Last time the query was served by the origin (read timestamp used
    /// to derive actual TTLs on invalidation).
    pub last_read_at: Timestamp,
    /// Chosen result representation.
    pub representation: Representation,
    /// Total origin reads.
    pub reads: u64,
    /// Total invalidations observed.
    pub invalidations: u64,
    /// Result-membership changes seen (add/remove/changeIndex events) —
    /// these invalidate both representations.
    pub membership_changes: u64,
    /// In-place result mutations seen (change events) — these only
    /// invalidate object-lists.
    pub value_changes: u64,
    /// When the query first appeared (rates are computed over the span
    /// since then).
    pub first_seen: Timestamp,
    /// Whether the query is currently registered with InvaliDB.
    pub registered: bool,
}

impl QueryState {
    /// Observed read rate in events/ms over the query's lifetime.
    pub fn read_rate(&self, now: Timestamp) -> f64 {
        self.reads as f64 / now.since(self.first_seen).max(1) as f64
    }

    /// Observed membership-change rate in events/ms.
    pub fn membership_change_rate(&self, now: Timestamp) -> f64 {
        self.membership_changes as f64 / now.since(self.first_seen).max(1) as f64
    }

    /// Observed value-change rate in events/ms.
    pub fn value_change_rate(&self, now: Timestamp) -> f64 {
        self.value_changes as f64 / now.since(self.first_seen).max(1) as f64
    }
}

/// A sharded map `QueryKey → QueryState`.
pub struct ActiveList {
    shards: Vec<RwLock<HashMap<QueryKey, QueryState>>>,
}

impl std::fmt::Debug for ActiveList {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ActiveList")
            .field("len", &self.len())
            .finish()
    }
}

impl ActiveList {
    /// An active list with `shards` partitions.
    pub fn new(shards: usize) -> ActiveList {
        assert!(shards > 0);
        ActiveList {
            shards: (0..shards).map(|_| RwLock::new(HashMap::new())).collect(),
        }
    }

    fn shard(&self, key: &QueryKey) -> &RwLock<HashMap<QueryKey, QueryState>> {
        let idx = (fx_hash_str(key.as_str()) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    /// Record an origin read of `key` served with `ttl_ms`; creates the
    /// entry on first sight.
    pub fn on_origin_read(
        &self,
        key: &QueryKey,
        ttl_ms: u64,
        representation: Representation,
        now: Timestamp,
    ) {
        let mut shard = self.shard(key).write();
        let entry = shard.entry(key.clone()).or_insert(QueryState {
            ttl_ms,
            last_read_at: now,
            representation,
            reads: 0,
            invalidations: 0,
            membership_changes: 0,
            value_changes: 0,
            first_seen: now,
            registered: false,
        });
        entry.ttl_ms = ttl_ms;
        entry.last_read_at = now;
        entry.representation = representation;
        entry.reads += 1;
    }

    /// Record an invalidation; returns the **actual TTL** ("the difference
    /// between the invalidation time stamp and the previous read time
    /// stamp") for the estimator's EWMA, or `None` if the query is not
    /// tracked.
    pub fn on_invalidation(&self, key: &QueryKey, now: Timestamp) -> Option<u64> {
        let mut shard = self.shard(key).write();
        let entry = shard.get_mut(key)?;
        entry.invalidations += 1;
        Some(now.since(entry.last_read_at))
    }

    /// Record an InvaliDB notification for cost-model bookkeeping.
    pub fn on_notification(&self, key: &QueryKey, is_membership_change: bool) {
        if let Some(entry) = self.shard(key).write().get_mut(key) {
            if is_membership_change {
                entry.membership_changes += 1;
            } else {
                entry.value_changes += 1;
            }
        }
    }

    /// Update the stored TTL estimate (after EWMA refinement).
    pub fn set_ttl(&self, key: &QueryKey, ttl_ms: u64) {
        if let Some(entry) = self.shard(key).write().get_mut(key) {
            entry.ttl_ms = ttl_ms;
        }
    }

    /// Mark InvaliDB registration state.
    pub fn set_registered(&self, key: &QueryKey, registered: bool) {
        if let Some(entry) = self.shard(key).write().get_mut(key) {
            entry.registered = registered;
        }
    }

    /// Snapshot one query's state.
    pub fn get(&self, key: &QueryKey) -> Option<QueryState> {
        self.shard(key).read().get(key).cloned()
    }

    /// Remove a query (deactivation).
    pub fn remove(&self, key: &QueryKey) -> Option<QueryState> {
        self.shard(key).write().remove(key)
    }

    /// Number of tracked queries.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// True if nothing is tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all entries (diagnostics; O(n)).
    pub fn snapshot(&self) -> Vec<(QueryKey, QueryState)> {
        let mut out = Vec::with_capacity(self.len());
        for shard in &self.shards {
            let shard = shard.read();
            out.extend(shard.iter().map(|(k, v)| (k.clone(), v.clone())));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_query::{Filter, Query};

    fn key(n: i64) -> QueryKey {
        QueryKey::of(&Query::table("posts").filter(Filter::eq("n", n)))
    }

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn read_then_invalidation_yields_actual_ttl() {
        let al = ActiveList::new(4);
        let k = key(1);
        al.on_origin_read(&k, 5_000, Representation::ObjectList, ts(100));
        let actual = al.on_invalidation(&k, ts(1_300)).unwrap();
        assert_eq!(actual, 1_200);
        let state = al.get(&k).unwrap();
        assert_eq!(state.reads, 1);
        assert_eq!(state.invalidations, 1);
    }

    #[test]
    fn invalidation_of_unknown_query_is_none() {
        let al = ActiveList::new(4);
        assert!(al.on_invalidation(&key(9), ts(5)).is_none());
    }

    #[test]
    fn ttl_updates_persist() {
        let al = ActiveList::new(4);
        let k = key(1);
        al.on_origin_read(&k, 5_000, Representation::IdList, ts(0));
        al.set_ttl(&k, 2_500);
        assert_eq!(al.get(&k).unwrap().ttl_ms, 2_500);
        assert_eq!(al.get(&k).unwrap().representation, Representation::IdList);
    }

    #[test]
    fn registration_flag() {
        let al = ActiveList::new(4);
        let k = key(1);
        al.on_origin_read(&k, 1_000, Representation::ObjectList, ts(0));
        assert!(!al.get(&k).unwrap().registered);
        al.set_registered(&k, true);
        assert!(al.get(&k).unwrap().registered);
    }

    #[test]
    fn remove_and_len() {
        let al = ActiveList::new(4);
        for i in 0..10 {
            al.on_origin_read(&key(i), 1_000, Representation::ObjectList, ts(0));
        }
        assert_eq!(al.len(), 10);
        assert!(al.remove(&key(3)).is_some());
        assert!(al.remove(&key(3)).is_none());
        assert_eq!(al.len(), 9);
        assert_eq!(al.snapshot().len(), 9);
    }

    #[test]
    fn reads_accumulate_and_refresh_read_time() {
        let al = ActiveList::new(4);
        let k = key(1);
        al.on_origin_read(&k, 1_000, Representation::ObjectList, ts(0));
        al.on_origin_read(&k, 1_000, Representation::ObjectList, ts(500));
        let actual = al.on_invalidation(&k, ts(800)).unwrap();
        assert_eq!(actual, 300, "measured from the latest read");
        assert_eq!(al.get(&k).unwrap().reads, 2);
    }
}

//! Write-rate sampling.
//!
//! "For each database record, Quaestor can estimate (through sampling)
//! the rate of incoming writes λ_w in some time window t." (§4.2)

use std::collections::VecDeque;

use parking_lot::Mutex;
use quaestor_common::{FxHashMap, Timestamp};

/// Ring of recent write timestamps per key, bounded in count and window.
#[derive(Debug)]
struct KeyWindow {
    writes: VecDeque<Timestamp>,
}

/// Sliding-window estimator of per-key write rates.
///
/// The rate is `(#writes in window) / window`, in writes per millisecond.
/// Keys with fewer than two observed writes report `None` — the estimator
/// falls back to its default TTL for them.
#[derive(Debug)]
pub struct WriteRateSampler {
    window_ms: u64,
    max_samples: usize,
    keys: Mutex<FxHashMap<String, KeyWindow>>,
}

impl WriteRateSampler {
    /// A sampler with the given window (e.g. 60 000 ms) keeping at most
    /// `max_samples` timestamps per key.
    pub fn new(window_ms: u64, max_samples: usize) -> WriteRateSampler {
        assert!(window_ms > 0 && max_samples >= 2);
        WriteRateSampler {
            window_ms,
            max_samples,
            keys: Mutex::new(FxHashMap::default()),
        }
    }

    /// Record a write to `key` at `now`.
    pub fn record_write(&self, key: &str, now: Timestamp) {
        let mut keys = self.keys.lock();
        let win = keys.entry(key.to_owned()).or_insert_with(|| KeyWindow {
            writes: VecDeque::with_capacity(8),
        });
        win.writes.push_back(now);
        while win.writes.len() > self.max_samples {
            win.writes.pop_front();
        }
        let horizon = now.minus(self.window_ms);
        while win.writes.front().is_some_and(|&t| t < horizon) {
            win.writes.pop_front();
        }
    }

    /// Estimated write rate of `key` at `now`, in writes **per ms**.
    /// `None` until at least two writes fall inside the window.
    pub fn rate(&self, key: &str, now: Timestamp) -> Option<f64> {
        let keys = self.keys.lock();
        let win = keys.get(key)?;
        let horizon = now.minus(self.window_ms);
        let live = win.writes.iter().filter(|&&t| t >= horizon).count();
        if live < 2 {
            return None;
        }
        // Effective window: from the older of (window start, first sample)
        // to now — avoids overestimating rates for keys hot only recently.
        let first = *win.writes.iter().find(|&&t| t >= horizon).unwrap();
        let span = now.since(first).max(1);
        Some((live as f64 - 1.0) / span as f64)
    }

    /// Sum of rates over several keys (λ_min of the minimum-of-
    /// exponentials model for query results). Keys with no estimate
    /// contribute 0.
    pub fn combined_rate<'a>(
        &self,
        keys: impl IntoIterator<Item = &'a str>,
        now: Timestamp,
    ) -> f64 {
        keys.into_iter().filter_map(|k| self.rate(k, now)).sum()
    }

    /// Drop all state for keys not written since `horizon` (maintenance).
    pub fn prune(&self, horizon: Timestamp) {
        self.keys
            .lock()
            .retain(|_, w| w.writes.back().is_some_and(|&t| t >= horizon));
    }

    /// Number of tracked keys.
    pub fn tracked_keys(&self) -> usize {
        self.keys.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ts(ms: u64) -> Timestamp {
        Timestamp::from_millis(ms)
    }

    #[test]
    fn no_estimate_below_two_samples() {
        let s = WriteRateSampler::new(10_000, 32);
        assert!(s.rate("k", ts(0)).is_none());
        s.record_write("k", ts(100));
        assert!(s.rate("k", ts(200)).is_none());
    }

    #[test]
    fn steady_rate_is_recovered() {
        let s = WriteRateSampler::new(100_000, 64);
        // one write every 500 ms => 0.002 writes/ms
        for i in 0..20 {
            s.record_write("k", ts(i * 500));
        }
        let rate = s.rate("k", ts(20 * 500)).unwrap();
        assert!(
            (rate - 0.002).abs() < 0.0005,
            "expected ~0.002 w/ms, got {rate}"
        );
    }

    #[test]
    fn old_writes_age_out_of_window() {
        let s = WriteRateSampler::new(1_000, 64);
        s.record_write("k", ts(0));
        s.record_write("k", ts(100));
        assert!(s.rate("k", ts(200)).is_some());
        assert!(
            s.rate("k", ts(5_000)).is_none(),
            "both samples left the window"
        );
    }

    #[test]
    fn combined_rate_sums() {
        let s = WriteRateSampler::new(100_000, 64);
        for i in 1..=10 {
            s.record_write("a", ts(i * 1_000)); // 0.001 w/ms
        }
        for i in 1..=20 {
            s.record_write("b", ts(i * 500)); // 0.002 w/ms
        }
        let combined = s.combined_rate(["a", "b", "silent"], ts(10_000));
        assert!(
            (combined - 0.003).abs() < 0.001,
            "expected ~0.003, got {combined}"
        );
    }

    #[test]
    fn sample_cap_bounds_memory() {
        let s = WriteRateSampler::new(u64::MAX / 2, 8);
        for i in 0..100 {
            s.record_write("k", ts(i * 10));
        }
        // Rate computed from the 8 newest samples only.
        let rate = s.rate("k", ts(1_000)).unwrap();
        assert!(rate > 0.0);
    }

    #[test]
    fn prune_drops_idle_keys() {
        let s = WriteRateSampler::new(10_000, 8);
        s.record_write("old", ts(0));
        s.record_write("new", ts(5_000));
        s.prune(ts(1_000));
        assert_eq!(s.tracked_keys(), 1);
    }
}

//! Loopback network scenario: the same closed-loop workload driven
//! against an in-process `Service` and against the *identical* service
//! behind a real TCP socket (`NetServer` + `RemoteService` on
//! `127.0.0.1`).
//!
//! Unlike the Monte Carlo scenarios, this one runs on **real time** —
//! the object under measurement is the transport itself: syscall and
//! framing overhead, pipelining behavior, latency distribution. The
//! in-process run is the control; the delta between the two rows *is*
//! the cost of the wire.

use std::sync::Arc;
use std::time::Instant;

use quaestor_common::{Histogram, SystemClock};
use quaestor_core::{QuaestorServer, Service, ServiceExt};
use quaestor_document::doc;
use quaestor_net::{NetServer, RemoteService, RemoteServiceConfig};

/// Scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct NetLoopConfig {
    /// Pooled TCP connections (the loopback row) — also the thread-group
    /// count for the in-process control.
    pub connections: usize,
    /// Concurrent caller threads per connection: the pipeline depth.
    /// Depth N keeps up to N requests in flight on one socket.
    pub pipeline_depth: usize,
    /// Operations per caller thread.
    pub ops_per_caller: usize,
    /// One write per this many operations (the rest are record reads).
    pub write_every: usize,
}

impl Default for NetLoopConfig {
    fn default() -> Self {
        NetLoopConfig {
            connections: 2,
            pipeline_depth: 16,
            ops_per_caller: 250,
            write_every: 10,
        }
    }
}

/// One row of the scenario's outcome.
#[derive(Debug, Clone)]
pub struct NetLoopReport {
    /// `"in-process"` or `"loopback"`.
    pub mode: &'static str,
    /// Pool size used.
    pub connections: usize,
    /// Caller threads per connection.
    pub pipeline_depth: usize,
    /// Total completed operations.
    pub ops: usize,
    /// Wall-clock duration of the measured phase, microseconds.
    pub wall_us: u128,
    /// Per-operation latency, microseconds.
    pub latency_us: Histogram,
}

impl NetLoopReport {
    /// Operations per second.
    pub fn throughput(&self) -> f64 {
        if self.wall_us == 0 {
            0.0
        } else {
            self.ops as f64 / (self.wall_us as f64 / 1e6)
        }
    }

    /// Median operation latency (µs); 0 before any operation completed.
    pub fn p50_us(&self) -> u64 {
        self.latency_us.percentile(0.50).unwrap_or(0)
    }

    /// Tail operation latency (µs); 0 before any operation completed.
    pub fn p99_us(&self) -> u64 {
        self.latency_us.percentile(0.99).unwrap_or(0)
    }
}

/// Run the workload against a service; one caller group per
/// "connection", `pipeline_depth` threads each.
fn drive(service: Arc<dyn Service>, mode: &'static str, config: NetLoopConfig) -> NetLoopReport {
    // Seed records so reads always hit.
    for i in 0..64 {
        service
            .insert("netloop", &format!("seed-{i}"), doc! { "i" => i as i64 })
            .expect("seed insert");
    }
    let callers = config.connections * config.pipeline_depth;
    let started = Instant::now();
    let handles: Vec<_> = (0..callers)
        .map(|c| {
            let service = service.clone();
            std::thread::spawn(move || {
                let mut latency = Histogram::new();
                for op in 0..config.ops_per_caller {
                    let at = Instant::now();
                    if op % config.write_every == 0 {
                        service
                            .insert(
                                "netloop",
                                &format!("w{c}-{op}"),
                                doc! { "c" => c as i64, "op" => op as i64 },
                            )
                            .expect("write");
                    } else {
                        service
                            .get_record("netloop", &format!("seed-{}", op % 64))
                            .expect("read");
                    }
                    latency.record(at.elapsed().as_micros() as u64);
                }
                latency
            })
        })
        .collect();
    let mut latency_us = Histogram::new();
    for h in handles {
        latency_us.merge(&h.join().expect("caller thread"));
    }
    NetLoopReport {
        mode,
        connections: config.connections,
        pipeline_depth: config.pipeline_depth,
        ops: callers * config.ops_per_caller,
        wall_us: started.elapsed().as_micros(),
        latency_us,
    }
}

/// Run only the loopback half: the workload against a fresh origin
/// behind a real 127.0.0.1 socket. The tracing-overhead experiment
/// uses this directly so its paired runs are back-to-back, without the
/// in-process control run between them.
pub fn net_loopback_only(config: NetLoopConfig) -> NetLoopReport {
    let origin = QuaestorServer::with_defaults(SystemClock::shared());
    let server = NetServer::bind("127.0.0.1:0", origin).expect("bind loopback");
    let remote = RemoteService::connect(
        server.local_addr(),
        RemoteServiceConfig {
            pool_size: config.connections,
            ..Default::default()
        },
    )
    .expect("connect loopback");
    let report = drive(remote, "loopback", config);
    server.shutdown();
    report
}

/// Run the scenario: identical workload, in-process control first, then
/// over a real loopback socket. Returns `(in_process, loopback)`.
pub fn net_loopback(config: NetLoopConfig) -> (NetLoopReport, NetLoopReport) {
    let in_process = {
        let origin = QuaestorServer::with_defaults(SystemClock::shared());
        drive(origin, "in-process", config)
    };
    (in_process, net_loopback_only(config))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loopback_scenario_runs_and_reports() {
        let (local, remote) = net_loopback(NetLoopConfig {
            connections: 1,
            pipeline_depth: 4,
            ops_per_caller: 30,
            write_every: 5,
        });
        assert_eq!(local.ops, 120);
        assert_eq!(remote.ops, 120);
        assert_eq!(local.latency_us.count(), 120);
        assert_eq!(remote.latency_us.count(), 120);
        assert!(local.throughput() > 0.0 && remote.throughput() > 0.0);
        assert!(remote.p50_us() <= remote.p99_us());
    }
}

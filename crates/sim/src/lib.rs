//! The Monte Carlo simulation framework (§6.1).
//!
//! "We also implemented a Monte Carlo simulation framework of our caching
//! model that simulates interactions of concurrent clients with client
//! and CDN caches as well as Quaestor. Simulation is the most reliable
//! method to analyze properties like staleness as it provides globally
//! ordered event time stamps for each operation and does not rely on
//! error-prone clock synchronization."
//!
//! The simulator is a closed-loop discrete-event driver over **virtual
//! time** (a shared [`ManualClock`](quaestor_common::ManualClock)): every
//! connection issues its next operation the moment its previous one
//! completes, and an operation's completion time is its dispatch time
//! plus the round-trip latency of whoever served it ([`LatencyModel`]).
//! Because all components observe the same virtual clock, staleness is
//! measured against globally ordered ground truth, exactly as the paper
//! prescribes.

pub mod c10k;
pub mod crash;
pub mod driver;
pub mod failover;
pub mod fault;
pub mod latency;
pub mod middleware;
pub mod netloop;
pub mod scenario;
pub mod staleness;
pub mod ttl_cdf;

pub use c10k::{c10k_soak, drain_pushes, subscribe_swarm, C10kConfig, C10kReport, SwarmConn};
pub use crash::{crash_recovery, CrashConfig, CrashReport};
pub use driver::{SimConfig, SimReport, Simulation, SystemVariant};
pub use failover::{kill_primary_failover, FailoverConfig, FailoverReport};
pub use fault::{FaultInjector, FaultPlan, FaultStats};
pub use latency::LatencyModel;
pub use middleware::LatencyInjector;
pub use netloop::{net_loopback, net_loopback_only, NetLoopConfig, NetLoopReport};
pub use scenario::{flash_sale, page_load, FlashSaleReport, PageLoadReport, Region};
pub use staleness::{StalenessAudit, StalenessReport};
pub use ttl_cdf::{ttl_estimation_cdf, TtlCdfReport};

//! The closed-loop discrete-event driver.

use std::cmp::Reverse;
use std::collections::BinaryHeap;
use std::sync::Arc;

use quaestor_client::{ClientConfig, QuaestorClient};
use quaestor_common::{Histogram, ManualClock, Timestamp};
use quaestor_core::{QuaestorServer, ServerConfig};
use quaestor_store::{Database, IndexKind};
use quaestor_webcache::{InvalidationCache, ServedBy};
use quaestor_workload::{Operation, WorkloadConfig, WorkloadGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::latency::LatencyModel;
use crate::staleness::{StalenessAudit, StalenessReport};

/// Which system is simulated — the four lines of Figures 8a–8c.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SystemVariant {
    /// Full Quaestor: browser caches + EBF + CDN with InvaliDB.
    Quaestor,
    /// "EBF only": browser caches + EBF, no CDN.
    EbfOnly,
    /// "CDN only": CDN with InvaliDB purges, no browser caches, no EBF.
    CdnOnly,
    /// Uncached baseline (the Orestes-style DBaaS without web caching).
    Uncached,
}

impl SystemVariant {
    /// Display label matching the paper's legends.
    pub fn label(&self) -> &'static str {
        match self {
            SystemVariant::Quaestor => "Quaestor",
            SystemVariant::EbfOnly => "EBF only",
            SystemVariant::CdnOnly => "CDN only",
            SystemVariant::Uncached => "Uncached",
        }
    }

    /// All four variants in the paper's legend order.
    pub fn all() -> [SystemVariant; 4] {
        [
            SystemVariant::Quaestor,
            SystemVariant::EbfOnly,
            SystemVariant::CdnOnly,
            SystemVariant::Uncached,
        ]
    }

    fn has_cdn(&self) -> bool {
        matches!(self, SystemVariant::Quaestor | SystemVariant::CdnOnly)
    }

    fn has_browser(&self) -> bool {
        matches!(self, SystemVariant::Quaestor | SystemVariant::EbfOnly)
    }

    fn has_ebf(&self) -> bool {
        matches!(self, SystemVariant::Quaestor | SystemVariant::EbfOnly)
    }
}

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// System under test.
    pub variant: SystemVariant,
    /// Dataset and request mix.
    pub workload: WorkloadConfig,
    /// Number of client instances (each with its own browser cache and
    /// session).
    pub clients: usize,
    /// Parallel connections per client (a browser opens ~6; the load
    /// generator used up to 300).
    pub connections_per_client: usize,
    /// EBF refresh interval Δ in ms.
    pub ebf_refresh_ms: u64,
    /// Virtual measurement duration.
    pub duration_ms: u64,
    /// Virtual warm-up excluded from metrics.
    pub warmup_ms: u64,
    /// Latency profile.
    pub latency: LatencyModel,
    /// RNG seed (everything is deterministic given the seed).
    pub seed: u64,
    /// Verify every read against ground truth (costly; used by Fig. 10).
    pub measure_staleness: bool,
    /// Origin service capacity in ops/s (None = infinite). Models the
    /// paper's server tier saturating: uncached throughput plateaus and
    /// latency climbs once the origin queue builds (Figures 8a–8c).
    pub origin_capacity_ops_per_sec: Option<f64>,
    /// Per-client-instance capacity in ops/s (None = infinite). Models
    /// the workload-generator machines: "3000 asynchronous connections
    /// delivered by 10 client instances".
    pub client_capacity_ops_per_sec: Option<f64>,
    /// Server tunables.
    pub server: ServerConfig,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            variant: SystemVariant::Quaestor,
            workload: WorkloadConfig::default(),
            clients: 10,
            connections_per_client: 30,
            ebf_refresh_ms: 1_000,
            duration_ms: 60_000,
            warmup_ms: 5_000,
            latency: LatencyModel::default(),
            seed: 42,
            measure_staleness: false,
            origin_capacity_ops_per_sec: Some(15_000.0),
            client_capacity_ops_per_sec: Some(15_000.0),
            server: ServerConfig::default(),
        }
    }
}

/// Aggregated results of one run.
#[derive(Debug, Clone)]
pub struct SimReport {
    /// Variant simulated.
    pub variant: SystemVariant,
    /// Operations completed in the measurement window.
    pub ops_completed: u64,
    /// Completed ops per (virtual) second.
    pub throughput_ops_per_sec: f64,
    /// Record-read latency (ms).
    pub read_latency_ms: Histogram,
    /// Query latency (ms).
    pub query_latency_ms: Histogram,
    /// Write latency (ms).
    pub write_latency_ms: Histogram,
    /// Query client-cache hit rate.
    pub query_client_hit_rate: f64,
    /// Query CDN hit rate.
    pub query_cdn_hit_rate: f64,
    /// Record client-cache hit rate.
    pub record_client_hit_rate: f64,
    /// Record CDN hit rate.
    pub record_cdn_hit_rate: f64,
    /// Stale record reads observed / record reads checked.
    pub stale_reads: (u64, u64),
    /// Stale query reads observed / queries checked.
    pub stale_queries: (u64, u64),
    /// Total origin reads the server performed.
    pub origin_reads: u64,
    /// Δ-atomicity audit of record reads (empty unless
    /// `measure_staleness` was set): actual staleness in ms vs the
    /// promised EBF bound.
    pub staleness: StalenessReport,
}

impl SimReport {
    /// Record staleness rate.
    pub fn record_staleness_rate(&self) -> f64 {
        ratio(self.stale_reads)
    }

    /// Query staleness rate.
    pub fn query_staleness_rate(&self) -> f64 {
        ratio(self.stale_queries)
    }
}

fn ratio((num, den): (u64, u64)) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// Timestamp the write in the staleness ledger with the version the
/// database actually assigned (ground truth, not the client's view).
fn note_truth(
    audit: &mut StalenessAudit,
    server: &Arc<QuaestorServer>,
    table: &str,
    id: &str,
    t: Timestamp,
) {
    let version = server
        .database()
        .table(table)
        .ok()
        .and_then(|tb| tb.get(id))
        .map(|r| r.version);
    if let Some(version) = version {
        audit.note_write(table, id, version, t.as_millis());
    }
}

struct Conn {
    client: usize,
    gen: WorkloadGenerator,
    rng: StdRng,
}

#[derive(Default)]
struct Tally {
    query_hits: [u64; 3], // [client, cdn, origin]
    record_hits: [u64; 3],
}

impl Tally {
    fn count(&mut self, is_query: bool, served: ServedBy, has_browser: bool) {
        let idx = match (served, has_browser) {
            (ServedBy::Layer(0), true) => 0,
            (ServedBy::Layer(_), _) => 1,
            (ServedBy::Origin, _) => 2,
        };
        if is_query {
            self.query_hits[idx] += 1;
        } else {
            self.record_hits[idx] += 1;
        }
    }
}

/// A configured, runnable simulation.
pub struct Simulation {
    config: SimConfig,
}

impl Simulation {
    /// Prepare a simulation.
    pub fn new(config: SimConfig) -> Simulation {
        assert!(config.clients > 0 && config.connections_per_client > 0);
        assert!(config.warmup_ms < config.duration_ms);
        Simulation { config }
    }

    /// Total simulated connections.
    pub fn connections(&self) -> usize {
        self.config.clients * self.config.connections_per_client
    }

    /// Run to completion and report.
    pub fn run(&self) -> SimReport {
        let cfg = &self.config;
        let clock = ManualClock::new();
        let db = Database::with_clock(clock.clone());

        // Declare indexes over the queried field *before* loading, so
        // origin query evaluation is O(result), as a production MongoDB
        // would be: a hash index serves the workload's equality queries
        // and an ordered index covers range/sorted shapes. Declarations
        // attach to the tables as the loader creates them.
        for t in 0..cfg.workload.tables {
            let table = WorkloadConfig::table_name(t);
            db.declare_index(&table, "category", IndexKind::Hash);
            db.declare_index(&table, "category", IndexKind::Ordered);
        }
        let mut seed_rng = StdRng::seed_from_u64(cfg.seed);
        let gen0 = WorkloadGenerator::new(cfg.workload);
        for (table, id, doc) in gen0.dataset(&mut seed_rng) {
            db.create_table(&table).insert(&id, doc).unwrap();
        }

        let server = QuaestorServer::new(db, cfg.server, clock.clone());
        let cdn = Arc::new(InvalidationCache::new("cdn", 1_000_000));
        let cdn_layers: Vec<Arc<InvalidationCache>> = if cfg.variant.has_cdn() {
            server.register_cdn(cdn.clone());
            vec![cdn.clone()]
        } else {
            Vec::new()
        };

        let client_config = ClientConfig {
            ebf_refresh_ms: cfg.ebf_refresh_ms,
            browser_cache_capacity: 100_000,
            consistency: quaestor_client::Consistency::DeltaAtomic,
            use_browser_cache: cfg.variant.has_browser(),
            use_ebf: cfg.variant.has_ebf(),
            per_table_ebf: false,
        };
        let clients: Vec<Arc<QuaestorClient>> = (0..cfg.clients)
            .map(|_| {
                Arc::new(QuaestorClient::connect(
                    server.clone(),
                    &cdn_layers,
                    client_config,
                    clock.clone(),
                ))
            })
            .collect();

        // One generator + RNG per connection; staggered start.
        let mut conns: Vec<Conn> = (0..self.connections())
            .map(|i| Conn {
                client: i % cfg.clients,
                gen: WorkloadGenerator::new(cfg.workload),
                rng: StdRng::seed_from_u64(cfg.seed.wrapping_add(1 + i as u64 * 0x9e3779b9)),
            })
            .collect();

        let mut heap: BinaryHeap<Reverse<(Timestamp, usize)>> = (0..conns.len())
            .map(|i| Reverse((Timestamp::from_millis((i % 16) as u64), i)))
            .collect();

        let mut read_latency = Histogram::new();
        let mut query_latency = Histogram::new();
        let mut write_latency = Histogram::new();
        let mut tally = Tally::default();
        let mut ops_completed = 0u64;
        let mut stale_reads = (0u64, 0u64);
        let mut stale_queries = (0u64, 0u64);
        // The EBF-promised Δ is the refresh interval: no cached read may
        // be further behind than one filter refresh.
        let mut audit = StalenessAudit::new(cfg.ebf_refresh_ms);
        // FCFS queue models: next instant each resource is free, in
        // microseconds of virtual time for sub-ms service times.
        let origin_service_us = cfg
            .origin_capacity_ops_per_sec
            .map(|c| (1_000_000.0 / c) as u64);
        let client_service_us = cfg
            .client_capacity_ops_per_sec
            .map(|c| (1_000_000.0 / c) as u64);
        let mut origin_free_us = 0u64;
        let mut client_free_us = vec![0u64; cfg.clients];
        let warmup = Timestamp::from_millis(cfg.warmup_ms);
        let end = Timestamp::from_millis(cfg.duration_ms);
        let has_browser = cfg.variant.has_browser();

        while let Some(Reverse((t, conn_id))) = heap.pop() {
            if t >= end {
                break;
            }
            clock.set(t);
            let measured = t >= warmup;
            let conn = &mut conns[conn_id];
            let client = &clients[conn.client];
            let op = conn.gen.next_op(&mut conn.rng);
            let mut touched_origin = matches!(
                op,
                Operation::Insert { .. } | Operation::Update { .. } | Operation::Delete { .. }
            );
            let latency_ms = match op {
                Operation::Read { table, id } => match client.read_record(&table, &id) {
                    Ok(outcome) => {
                        touched_origin |= outcome.served_by == ServedBy::Origin;
                        let lat = self.lat(&mut conn.rng, outcome.served_by);
                        if measured {
                            read_latency.record(lat);
                            tally.count(false, outcome.served_by, has_browser);
                            if cfg.measure_staleness {
                                stale_reads.1 += 1;
                                let truth = server
                                    .database()
                                    .table(&table)
                                    .ok()
                                    .and_then(|t| t.get(&id))
                                    .map(|r| r.version)
                                    .unwrap_or(0);
                                if outcome.version < truth {
                                    stale_reads.0 += 1;
                                }
                                audit.note_read(&table, &id, outcome.version, t.as_millis());
                            }
                        }
                        lat
                    }
                    Err(_) => {
                        touched_origin = true;
                        self.config.latency.origin_ms // 404 still costs an RTT
                    }
                },
                Operation::Query(q) => match client.query(&q) {
                    Ok(outcome) => {
                        touched_origin |= outcome.served_by == ServedBy::Origin
                            || outcome.record_fetches.contains(&ServedBy::Origin);
                        let mut lat = self.lat(&mut conn.rng, outcome.served_by);
                        for &sb in &outcome.record_fetches {
                            lat += self.lat(&mut conn.rng, sb);
                        }
                        if measured {
                            query_latency.record(lat);
                            tally.count(true, outcome.served_by, has_browser);
                            if cfg.measure_staleness {
                                stale_queries.1 += 1;
                                if let Ok(truth) = server.current_query_etag(&q) {
                                    if outcome.etag != truth {
                                        stale_queries.0 += 1;
                                    }
                                }
                            }
                        }
                        lat
                    }
                    Err(_) => {
                        touched_origin = true;
                        self.config.latency.origin_ms
                    }
                },
                Operation::Insert {
                    table,
                    id,
                    document,
                } => {
                    let _ = client.insert(&table, &id, document);
                    if cfg.measure_staleness {
                        note_truth(&mut audit, &server, &table, &id, t);
                    }
                    let lat = self.origin_lat(&mut conn.rng);
                    if measured {
                        write_latency.record(lat);
                    }
                    lat
                }
                Operation::Update { table, id, update } => {
                    let _ = client.update(&table, &id, &update);
                    if cfg.measure_staleness {
                        note_truth(&mut audit, &server, &table, &id, t);
                    }
                    let lat = self.origin_lat(&mut conn.rng);
                    if measured {
                        write_latency.record(lat);
                    }
                    lat
                }
                Operation::Delete { table, id } => {
                    let _ = client.delete(&table, &id);
                    let lat = self.origin_lat(&mut conn.rng);
                    if measured {
                        write_latency.record(lat);
                    }
                    lat
                }
            };
            if measured {
                ops_completed += 1;
            }
            // Resource queueing: every op occupies its client instance for
            // one service slot; ops that reached the origin also occupy
            // the origin for one slot. Closed loop: the next op starts
            // when this one completes (min 1 ms so a 0-latency cache hit
            // still advances virtual time).
            let mut total_ms = latency_ms;
            let now_us = t.as_millis() * 1_000;
            if let Some(service) = client_service_us {
                let start = now_us.max(client_free_us[conn.client]);
                client_free_us[conn.client] = start + service;
                total_ms += (start + service - now_us) / 1_000;
            }
            if touched_origin {
                if let Some(service) = origin_service_us {
                    let start = now_us.max(origin_free_us);
                    origin_free_us = start + service;
                    total_ms += (start + service - now_us) / 1_000;
                }
            }
            heap.push(Reverse((t.plus(total_ms.max(1)), conn_id)));
        }

        let span_s = (cfg.duration_ms - cfg.warmup_ms) as f64 / 1_000.0;
        let q_total: u64 = tally.query_hits.iter().sum();
        let r_total: u64 = tally.record_hits.iter().sum();
        SimReport {
            variant: cfg.variant,
            ops_completed,
            throughput_ops_per_sec: ops_completed as f64 / span_s,
            read_latency_ms: read_latency,
            query_latency_ms: query_latency,
            write_latency_ms: write_latency,
            query_client_hit_rate: ratio((tally.query_hits[0], q_total)),
            query_cdn_hit_rate: ratio((tally.query_hits[1], q_total)),
            record_client_hit_rate: ratio((tally.record_hits[0], r_total)),
            record_cdn_hit_rate: ratio((tally.record_hits[1], r_total)),
            stale_reads,
            stale_queries,
            origin_reads: server.metrics().origin_reads(),
            staleness: audit.report(),
        }
    }

    fn lat(&self, rng: &mut StdRng, served: ServedBy) -> u64 {
        if self.config.variant.has_browser() {
            self.config.latency.sample(rng, served)
        } else {
            self.config.latency.sample_no_browser(rng, served)
        }
    }

    fn origin_lat(&self, rng: &mut StdRng) -> u64 {
        self.config.latency.sample(rng, ServedBy::Origin)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(variant: SystemVariant) -> SimConfig {
        SimConfig {
            variant,
            workload: WorkloadConfig {
                tables: 2,
                docs_per_table: 500,
                queries_per_table: 20,
                ..Default::default()
            },
            clients: 4,
            connections_per_client: 5,
            duration_ms: 8_000,
            warmup_ms: 1_000,
            seed: 7,
            ..Default::default()
        }
    }

    #[test]
    fn quaestor_beats_uncached_on_read_heavy() {
        let q = Simulation::new(small(SystemVariant::Quaestor)).run();
        let u = Simulation::new(small(SystemVariant::Uncached)).run();
        assert!(
            q.throughput_ops_per_sec > u.throughput_ops_per_sec * 2.0,
            "Quaestor {} vs uncached {} ops/s — expected a clear win",
            q.throughput_ops_per_sec,
            u.throughput_ops_per_sec
        );
        assert!(
            q.query_latency_ms.mean() < u.query_latency_ms.mean() / 2.0,
            "query latency {} vs {}",
            q.query_latency_ms.mean(),
            u.query_latency_ms.mean()
        );
    }

    #[test]
    fn uncached_latency_is_wan_rtt() {
        let u = Simulation::new(small(SystemVariant::Uncached)).run();
        let mean = u.query_latency_ms.mean();
        assert!(
            (130.0..170.0).contains(&mean),
            "uncached queries must cost ~145 ms, got {mean}"
        );
        assert_eq!(u.query_client_hit_rate, 0.0);
    }

    #[test]
    fn cdn_only_sits_between() {
        let q = Simulation::new(small(SystemVariant::Quaestor)).run();
        let c = Simulation::new(small(SystemVariant::CdnOnly)).run();
        let u = Simulation::new(small(SystemVariant::Uncached)).run();
        assert!(c.throughput_ops_per_sec > u.throughput_ops_per_sec);
        assert!(q.throughput_ops_per_sec > c.throughput_ops_per_sec);
        assert_eq!(c.query_client_hit_rate, 0.0, "no browser cache");
        assert!(c.query_cdn_hit_rate > 0.3, "CDN absorbs the load");
    }

    #[test]
    fn determinism_same_seed_same_report() {
        let a = Simulation::new(small(SystemVariant::Quaestor)).run();
        let b = Simulation::new(small(SystemVariant::Quaestor)).run();
        assert_eq!(a.ops_completed, b.ops_completed);
        assert_eq!(a.query_client_hit_rate, b.query_client_hit_rate);
        assert_eq!(a.stale_queries, b.stale_queries);
    }

    #[test]
    fn staleness_is_low_with_tight_refresh() {
        let mut cfg = small(SystemVariant::Quaestor);
        cfg.measure_staleness = true;
        cfg.ebf_refresh_ms = 1_000;
        let r = Simulation::new(cfg).run();
        assert!(r.stale_queries.1 > 0, "queries were checked");
        assert!(
            r.query_staleness_rate() < 0.2,
            "staleness {} too high for a 1 s refresh",
            r.query_staleness_rate()
        );
    }

    #[test]
    fn longer_refresh_not_less_stale() {
        let mut tight = small(SystemVariant::Quaestor);
        tight.measure_staleness = true;
        tight.ebf_refresh_ms = 500;
        let mut loose = tight.clone();
        loose.ebf_refresh_ms = 6_000;
        let rt = Simulation::new(tight).run();
        let rl = Simulation::new(loose).run();
        assert!(
            rl.query_staleness_rate() >= rt.query_staleness_rate(),
            "loose Δ ({}) must not beat tight Δ ({})",
            rl.query_staleness_rate(),
            rt.query_staleness_rate()
        );
    }
}

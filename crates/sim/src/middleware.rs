//! `Service` middleware that injects the simulated origin round-trip.
//!
//! Every [`Service::call`] reaching the origin corresponds to a WAN round
//! trip in the paper's deployment (client↔origin 145 ms, §6.1). The
//! [`LatencyInjector`] samples that RTT from the [`LatencyModel`], records
//! it in a latency [`Histogram`], and — when driven by a virtual clock —
//! advances time by the sampled amount, so TTLs and EBF ages respond to
//! load exactly as they would over a real network.

use std::sync::Arc;

use parking_lot::Mutex;
use quaestor_common::{Histogram, ManualClock, Result};
use quaestor_core::{Request, Response, Service};
use quaestor_webcache::ServedBy;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::latency::LatencyModel;

struct InjectorState {
    rng: StdRng,
    observed: Histogram,
    total_ms: u64,
}

/// Middleware that charges every origin call one simulated round trip.
pub struct LatencyInjector {
    inner: Arc<dyn Service>,
    model: LatencyModel,
    clock: Option<Arc<ManualClock>>,
    state: Mutex<InjectorState>,
}

impl std::fmt::Debug for LatencyInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock();
        f.debug_struct("LatencyInjector")
            .field("calls", &state.observed.count())
            .field("total_ms", &state.total_ms)
            .finish()
    }
}

impl LatencyInjector {
    /// Wrap `inner`, sampling origin RTTs with a deterministic seed. Time
    /// is only *recorded*, not advanced.
    pub fn new(inner: Arc<dyn Service>, model: LatencyModel, seed: u64) -> Arc<LatencyInjector> {
        Self::build(inner, model, seed, None)
    }

    /// Wrap `inner` and additionally advance the shared virtual clock by
    /// each sampled RTT — the discrete-event variant: wall time passes
    /// while the request is in flight.
    pub fn with_clock(
        inner: Arc<dyn Service>,
        model: LatencyModel,
        seed: u64,
        clock: Arc<ManualClock>,
    ) -> Arc<LatencyInjector> {
        Self::build(inner, model, seed, Some(clock))
    }

    fn build(
        inner: Arc<dyn Service>,
        model: LatencyModel,
        seed: u64,
        clock: Option<Arc<ManualClock>>,
    ) -> Arc<LatencyInjector> {
        Arc::new(LatencyInjector {
            inner,
            model,
            clock,
            state: Mutex::new(InjectorState {
                rng: StdRng::seed_from_u64(seed),
                observed: Histogram::new(),
                total_ms: 0,
            }),
        })
    }

    /// Distribution of simulated RTTs charged so far.
    pub fn observed(&self) -> Histogram {
        self.state.lock().observed.clone()
    }

    /// Sum of all simulated RTTs, in ms.
    pub fn total_simulated_ms(&self) -> u64 {
        self.state.lock().total_ms
    }
}

impl Service for LatencyInjector {
    fn call(&self, req: Request) -> Result<Response> {
        let rtt = {
            let mut state = self.state.lock();
            let rtt = self.model.sample(&mut state.rng, ServedBy::Origin);
            state.observed.record(rtt);
            state.total_ms += rtt;
            rtt
        };
        if let Some(clock) = &self.clock {
            clock.advance(rtt);
        }
        self.inner.call(req)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::Clock;
    use quaestor_core::{QuaestorServer, ServiceExt};
    use quaestor_document::doc;

    #[test]
    fn records_origin_rtts() {
        let clock = ManualClock::new();
        let server = QuaestorServer::with_defaults(clock.clone());
        let svc = LatencyInjector::new(server, LatencyModel::default(), 7);
        for i in 0..50 {
            svc.insert("t", &format!("r{i}"), doc! { "n" => i as i64 })
                .unwrap();
        }
        let h = svc.observed();
        assert_eq!(h.count(), 50);
        // 145 ms ± 5% jitter.
        assert!((130..=160).contains(&h.min()), "{}", h.min());
        assert!((130..=160).contains(&h.max()), "{}", h.max());
        assert!(svc.total_simulated_ms() >= 50 * 130);
    }

    #[test]
    fn with_clock_advances_virtual_time() {
        let clock = ManualClock::new();
        let server = QuaestorServer::with_defaults(clock.clone());
        let svc = LatencyInjector::with_clock(
            server,
            LatencyModel {
                jitter: 0.0,
                ..LatencyModel::default()
            },
            1,
            clock.clone(),
        );
        let before = clock.now();
        svc.insert("t", "a", doc! { "n" => 1 }).unwrap();
        svc.get_record("t", "a").unwrap();
        assert_eq!(clock.now().since(before), 2 * 145);
    }

    #[test]
    fn batches_pay_one_round_trip() {
        let clock = ManualClock::new();
        let server = QuaestorServer::with_defaults(clock.clone());
        let svc = LatencyInjector::new(server, LatencyModel::default(), 3);
        let ops = (0..20)
            .map(|i| quaestor_core::Request::Insert {
                table: "t".into(),
                id: format!("r{i}"),
                doc: doc! { "n" => i as i64 },
            })
            .collect();
        svc.batch(ops).unwrap();
        assert_eq!(
            svc.observed().count(),
            1,
            "a batch is one wire round trip, its ops are not charged individually"
        );
    }
}

//! C10k soak scenario: thousands of concurrent connections, each
//! holding a live InvaliDB change-stream subscription, all receiving
//! the fan-out from one write burst.
//!
//! This is the scenario the event-loop `NetServer` rewrite exists for.
//! The thread-per-connection server it replaced spent two OS threads
//! per idle subscriber (reader + stream forwarder); at 10k connections
//! that is 20k threads before the first byte of payload. The readiness
//! loop holds the same population as N shard threads plus one
//! registration-table entry per connection, so the soak's job is to
//! demonstrate exactly that: *idle subscribers are nearly free, and a
//! single publish reaches all of them.*
//!
//! Like [`netloop`](crate::netloop), this scenario runs on real time —
//! the object under measurement is the transport. Clients are raw
//! framed sockets rather than [`RemoteService`] handles on purpose:
//! a `RemoteService` spins a reader thread per connection, which would
//! re-introduce on the *client* side the thread explosion the server
//! rewrite removed, and the measured figure would be dominated by the
//! harness. One fd per subscriber on each side is the whole budget.
//!
//! The swarm helpers ([`subscribe_swarm`], [`drain_pushes`]) are public
//! because the benchmark harness reuses them from a child process: a
//! 10k soak needs ~10k fds on each side of the socket, and splitting
//! client from server across two processes keeps both under a 20k
//! `RLIMIT_NOFILE` ceiling that a single process would breach.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use quaestor_common::{raise_fd_limit, SystemClock};
use quaestor_core::{QuaestorServer, Request, ServiceExt};
use quaestor_document::doc;
use quaestor_net::wire::{decode_frame, encode_frame, FrameDecode, FrameKind};
use quaestor_net::{codec, NetServer};
use quaestor_query::{Filter, Query, QueryKey};

/// Scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct C10kConfig {
    /// Concurrent subscriber connections to hold. The run caps this to
    /// what the process' fd limit can actually carry (two fds per
    /// connection in-process: the client socket and its accepted peer).
    pub connections: usize,
    /// Matching writes in the burst; every subscriber must receive one
    /// push per write.
    pub burst: usize,
    /// Per-socket read timeout while draining pushes.
    pub read_timeout: Duration,
}

impl Default for C10kConfig {
    fn default() -> Self {
        C10kConfig {
            connections: 10_000,
            burst: 3,
            read_timeout: Duration::from_secs(30),
        }
    }
}

/// Outcome of one soak run.
#[derive(Debug, Clone)]
pub struct C10kReport {
    /// Connections asked for.
    pub requested: usize,
    /// Connections that completed the subscribe handshake (and were
    /// still holding their stream when the burst fired).
    pub connected: usize,
    /// `connected × burst`: the pushes the fan-out owes.
    pub expected: usize,
    /// `StreamPush` frames actually read back across all connections.
    pub delivered: usize,
    /// Wall time to connect + subscribe the whole swarm, microseconds.
    pub connect_wall_us: u128,
    /// Wall time from the first burst write to the last push read,
    /// microseconds.
    pub fanout_wall_us: u128,
}

impl C10kReport {
    /// Did every held subscription receive the full burst?
    pub fn complete(&self) -> bool {
        self.connected == self.requested && self.delivered == self.expected
    }

    /// Subscribe handshakes per second during ramp-up.
    pub fn connect_rate(&self) -> f64 {
        rate(self.connected, self.connect_wall_us)
    }

    /// Pushes delivered per second during the fan-out drain.
    pub fn push_rate(&self) -> f64 {
        rate(self.delivered, self.fanout_wall_us)
    }
}

fn rate(count: usize, wall_us: u128) -> f64 {
    if wall_us == 0 {
        0.0
    } else {
        count as f64 / (wall_us as f64 / 1e6)
    }
}

/// One raw framed subscriber connection in the swarm.
pub struct SwarmConn {
    stream: TcpStream,
    /// Unparsed inbound bytes carried between frame reads.
    buf: Vec<u8>,
}

/// Read one complete frame, pulling from the socket as needed.
fn read_frame(conn: &mut SwarmConn) -> std::io::Result<(FrameKind, u64)> {
    let mut chunk = [0u8; 4096];
    loop {
        match decode_frame(&conn.buf) {
            FrameDecode::Frame(f) => {
                let out = (f.kind, f.request_id);
                let size = f.size;
                conn.buf.drain(..size);
                return Ok(out);
            }
            FrameDecode::Incomplete => {}
            FrameDecode::Corrupt(e) => {
                return Err(std::io::Error::new(std::io::ErrorKind::InvalidData, e))
            }
        }
        let n = conn.stream.read(&mut chunk)?;
        if n == 0 {
            return Err(std::io::ErrorKind::UnexpectedEof.into());
        }
        conn.buf.extend_from_slice(&chunk[..n]);
    }
}

/// Open `connections` raw sockets against `addr` and subscribe each to
/// `key` (request id 1), serially — each handshake completes before the
/// next connect, which self-paces the swarm against the listen backlog.
/// Stops early (returning the partial swarm) if the OS refuses a
/// connect or a handshake fails; callers compare `len()` to what they
/// asked for.
pub fn subscribe_swarm(
    addr: SocketAddr,
    key: &QueryKey,
    connections: usize,
    read_timeout: Duration,
) -> Vec<SwarmConn> {
    let mut subscribe = Vec::new();
    encode_frame(
        FrameKind::Request,
        1,
        &codec::encode_request(&Request::Subscribe { key: key.clone() }),
        &mut subscribe,
    );
    let mut swarm: Vec<SwarmConn> = Vec::with_capacity(connections);
    for _ in 0..connections {
        let ok = (|| -> std::io::Result<SwarmConn> {
            let stream = TcpStream::connect(addr)?;
            stream.set_read_timeout(Some(read_timeout))?;
            let mut conn = SwarmConn {
                stream,
                buf: Vec::new(),
            };
            conn.stream.write_all(&subscribe)?;
            match read_frame(&mut conn)? {
                (FrameKind::ResponseOk, 1) => Ok(conn),
                (kind, id) => Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("subscribe answered {kind:?}/{id}"),
                )),
            }
        })();
        match ok {
            Ok(conn) => swarm.push(conn),
            Err(_) => break,
        }
    }
    swarm
}

/// Read up to `per_conn` `StreamPush` frames from every swarm
/// connection, returning the total actually delivered. Read timeouts
/// and dead sockets truncate that connection's count rather than
/// aborting the drain.
pub fn drain_pushes(swarm: &mut [SwarmConn], per_conn: usize) -> usize {
    let mut delivered = 0;
    for conn in swarm.iter_mut() {
        for _ in 0..per_conn {
            match read_frame(conn) {
                Ok((FrameKind::StreamPush, 1)) => delivered += 1,
                Ok(_) | Err(_) => break,
            }
        }
    }
    delivered
}

/// Run the soak in-process: an event-loop `NetServer` over a fresh
/// origin, a swarm of raw subscribers, one write burst, full drain.
pub fn c10k_soak(config: C10kConfig) -> C10kReport {
    // Two fds per in-process connection, plus headroom for the origin's
    // WAL, the listener, wake fds, and whatever the harness holds open.
    let fd_limit = raise_fd_limit();
    let carryable = (fd_limit.saturating_sub(256) / 2) as usize;
    let requested = config.connections.min(carryable.max(1));

    let origin = QuaestorServer::with_defaults(SystemClock::shared());
    let server = NetServer::bind("127.0.0.1:0", origin.clone()).expect("bind c10k loopback");

    // Register the continuous query whose change stream the swarm
    // holds: pushes flow only for queries InvaliDB actively matches.
    let query = Query::table("c10k").filter(Filter::eq("tag", "burst"));
    origin.query(&query).expect("register burst query");
    let key = QueryKey::of(&query);

    let started = Instant::now();
    let mut swarm = subscribe_swarm(server.local_addr(), &key, requested, config.read_timeout);
    let connect_wall_us = started.elapsed().as_micros();
    let connected = swarm.len();

    // The burst: every insert enters the registered result set (an
    // `Add` notification), so each is one push to every subscriber.
    let fanout_started = Instant::now();
    for b in 0..config.burst {
        origin
            .insert(
                "c10k",
                &format!("burst-{b}"),
                doc! { "tag" => "burst", "b" => b as i64 },
            )
            .expect("burst write");
    }
    let delivered = drain_pushes(&mut swarm, config.burst);
    let fanout_wall_us = fanout_started.elapsed().as_micros();

    server.shutdown();
    C10kReport {
        requested,
        connected,
        expected: connected * config.burst,
        delivered,
        connect_wall_us,
        fanout_wall_us,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Quick-mode soak: 1k connections (the CI `net-c10k` job and the
    /// benchmark harness run the full 10k across two processes).
    #[test]
    fn a_thousand_held_subscriptions_all_receive_the_burst() {
        let report = c10k_soak(C10kConfig {
            connections: 1000,
            burst: 3,
            read_timeout: Duration::from_secs(30),
        });
        assert_eq!(report.connected, 1000, "swarm failed to ramp");
        assert_eq!(report.expected, 3000);
        assert_eq!(
            report.delivered, report.expected,
            "fan-out dropped pushes: {report:?}"
        );
        assert!(report.complete());
        assert!(report.connect_rate() > 0.0 && report.push_rate() > 0.0);
    }
}

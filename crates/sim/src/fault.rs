//! Seeded fault-injection middleware for [`Service`] call paths.
//!
//! [`FaultInjector`] wraps any `Service` and perturbs traffic the way an
//! unreliable network would, with every decision drawn from a seeded
//! RNG so a failing run replays exactly:
//!
//! * **drop (request)** — the call never reaches the inner service; the
//!   caller sees a transport error. Models a lost request packet.
//! * **drop (response)** — the inner service executes the call but the
//!   caller still sees a transport error. Models a lost response: the
//!   operation *happened* without being acknowledged, the case that
//!   separates at-most-once from exactly-once thinking.
//! * **duplicate** — the call is delivered twice (the duplicate's result
//!   is discarded, the caller sees the first). Models a retransmit;
//!   whatever sits below must be idempotent or version-guarded.
//! * **delay** — the call is held for a sampled interval before
//!   delivery. Models congestion; shakes out timeout tuning.
//! * **sever** — a manual (or sampled) switch that fails *every* call
//!   until healed. Models a partition; this is what drives a client-side
//!   router into failover.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::Mutex;
use quaestor_common::{Error, Result};
use quaestor_core::{Request, Response, Service};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Per-call fault probabilities (each in `[0, 1]`, checked independently
/// in the order: sever-trip, drop-request, delay, duplicate,
/// drop-response).
#[derive(Debug, Clone, Copy)]
pub struct FaultPlan {
    /// P(request is dropped before delivery).
    pub drop_request: f64,
    /// P(response is dropped after the inner call executed).
    pub drop_response: f64,
    /// P(call is delivered twice).
    pub duplicate: f64,
    /// P(call is delayed by a sample from `delay_ms`).
    pub delay: f64,
    /// Uniform delay range `[min, max]`, milliseconds.
    pub delay_ms: (u64, u64),
    /// P(the link severs itself at this call; it stays severed until
    /// [`FaultInjector::heal`]). `0.0` leaves severing fully manual.
    pub sever: f64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan {
            drop_request: 0.0,
            drop_response: 0.0,
            duplicate: 0.0,
            delay: 0.0,
            delay_ms: (1, 5),
            sever: 0.0,
        }
    }
}

impl FaultPlan {
    /// A mildly hostile network: a few percent of everything.
    pub fn flaky() -> FaultPlan {
        FaultPlan {
            drop_request: 0.02,
            drop_response: 0.02,
            duplicate: 0.02,
            delay: 0.05,
            delay_ms: (1, 10),
            sever: 0.0,
        }
    }
}

/// Counters for what the injector actually did.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultStats {
    /// Calls that reached the inner service (including duplicates).
    pub delivered: u64,
    /// Requests dropped before delivery.
    pub dropped_requests: u64,
    /// Responses dropped after delivery.
    pub dropped_responses: u64,
    /// Calls delivered twice.
    pub duplicated: u64,
    /// Calls delayed.
    pub delayed: u64,
    /// Calls rejected while severed.
    pub severed_rejections: u64,
}

/// The middleware. See the module docs.
pub struct FaultInjector {
    inner: Arc<dyn Service>,
    plan: FaultPlan,
    rng: Mutex<StdRng>,
    severed: AtomicBool,
    delivered: AtomicU64,
    dropped_requests: AtomicU64,
    dropped_responses: AtomicU64,
    duplicated: AtomicU64,
    delayed: AtomicU64,
    severed_rejections: AtomicU64,
}

impl std::fmt::Debug for FaultInjector {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("severed", &self.severed.load(Ordering::Relaxed))
            .field("stats", &self.stats())
            .finish()
    }
}

impl FaultInjector {
    /// Wrap `inner` with `plan`, all randomness derived from `seed`.
    pub fn new(inner: Arc<dyn Service>, plan: FaultPlan, seed: u64) -> Arc<FaultInjector> {
        Arc::new(FaultInjector {
            inner,
            plan,
            rng: Mutex::new(StdRng::seed_from_u64(seed)),
            severed: AtomicBool::new(false),
            delivered: AtomicU64::new(0),
            dropped_requests: AtomicU64::new(0),
            dropped_responses: AtomicU64::new(0),
            duplicated: AtomicU64::new(0),
            delayed: AtomicU64::new(0),
            severed_rejections: AtomicU64::new(0),
        })
    }

    /// Cut the link: every call fails until [`heal`](Self::heal).
    pub fn sever(&self) {
        self.severed.store(true, Ordering::SeqCst);
    }

    /// Restore a severed link.
    pub fn heal(&self) {
        self.severed.store(false, Ordering::SeqCst);
    }

    /// Is the link currently severed?
    pub fn is_severed(&self) -> bool {
        self.severed.load(Ordering::SeqCst)
    }

    /// Snapshot of the injector's counters.
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            delivered: self.delivered.load(Ordering::Relaxed),
            dropped_requests: self.dropped_requests.load(Ordering::Relaxed),
            dropped_responses: self.dropped_responses.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            delayed: self.delayed.load(Ordering::Relaxed),
            severed_rejections: self.severed_rejections.load(Ordering::Relaxed),
        }
    }

    /// One seeded decision set for a call, drawn under the RNG lock and
    /// applied outside it (delays must not serialize other callers).
    fn decide(&self) -> Decision {
        let mut rng = self.rng.lock();
        let plan = &self.plan;
        Decision {
            sever: plan.sever > 0.0 && rng.gen_bool(plan.sever),
            drop_request: plan.drop_request > 0.0 && rng.gen_bool(plan.drop_request),
            delay: if plan.delay > 0.0 && rng.gen_bool(plan.delay) {
                let (lo, hi) = plan.delay_ms;
                Some(Duration::from_millis(rng.gen_range(lo..=hi.max(lo))))
            } else {
                None
            },
            duplicate: plan.duplicate > 0.0 && rng.gen_bool(plan.duplicate),
            drop_response: plan.drop_response > 0.0 && rng.gen_bool(plan.drop_response),
        }
    }
}

struct Decision {
    sever: bool,
    drop_request: bool,
    delay: Option<Duration>,
    duplicate: bool,
    drop_response: bool,
}

impl Service for FaultInjector {
    fn call(&self, req: Request) -> Result<Response> {
        let d = self.decide();
        if d.sever {
            self.severed.store(true, Ordering::SeqCst);
        }
        if self.severed.load(Ordering::SeqCst) {
            self.severed_rejections.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Net("fault: link severed".into()));
        }
        if d.drop_request {
            self.dropped_requests.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Net("fault: request dropped".into()));
        }
        if let Some(pause) = d.delay {
            self.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(pause);
        }
        let result = self.inner.call(req.clone());
        self.delivered.fetch_add(1, Ordering::Relaxed);
        if d.duplicate {
            // A retransmit: deliver again, discard the second answer. The
            // caller sees the first; the layer below sees the call twice.
            self.duplicated.fetch_add(1, Ordering::Relaxed);
            self.delivered.fetch_add(1, Ordering::Relaxed);
            let _ = self.inner.call(req);
        }
        if d.drop_response {
            self.dropped_responses.fetch_add(1, Ordering::Relaxed);
            return Err(Error::Net(
                "fault: response dropped (the call may have executed)".into(),
            ));
        }
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::ManualClock;
    use quaestor_core::{QuaestorServer, ServiceExt};
    use quaestor_document::doc;

    fn origin() -> Arc<QuaestorServer> {
        QuaestorServer::with_defaults(ManualClock::new())
    }

    #[test]
    fn clean_plan_passes_everything_through() {
        let svc = FaultInjector::new(origin(), FaultPlan::default(), 1);
        for i in 0..50 {
            svc.insert("t", &format!("r{i}"), doc! { "n" => i as i64 })
                .unwrap();
        }
        let st = svc.stats();
        assert_eq!(st.delivered, 50);
        assert_eq!(
            st.dropped_requests + st.dropped_responses + st.duplicated + st.delayed,
            0
        );
    }

    #[test]
    fn seeded_runs_replay_identically() {
        let plan = FaultPlan::flaky();
        let observe = |seed| {
            let svc = FaultInjector::new(origin(), plan, seed);
            let outcomes: Vec<bool> = (0..200)
                .map(|i| svc.insert("t", &format!("r{i}"), doc! {}).is_ok())
                .collect();
            (outcomes, svc.stats().dropped_requests)
        };
        let (a, da) = observe(42);
        let (b, db) = observe(42);
        let (c, _) = observe(43);
        assert_eq!(a, b, "same seed, same faults");
        assert_eq!(da, db);
        assert_ne!(a, c, "different seed, different faults");
    }

    #[test]
    fn dropped_response_executes_but_reports_failure() {
        let plan = FaultPlan {
            drop_response: 1.0,
            ..FaultPlan::default()
        };
        let server = origin();
        let svc = FaultInjector::new(server.clone(), plan, 7);
        assert!(svc.insert("t", "a", doc! { "n" => 1 }).is_err());
        // The write happened underneath — the unacknowledged-but-applied
        // case a crash audit has to tolerate.
        assert!(server.get_record("t", "a").is_ok());
        assert_eq!(svc.stats().dropped_responses, 1);
    }

    #[test]
    fn duplicates_are_absorbed_by_version_guards() {
        let plan = FaultPlan {
            duplicate: 1.0,
            ..FaultPlan::default()
        };
        let server = origin();
        let svc = FaultInjector::new(server.clone(), plan, 7);
        // The duplicated insert's second delivery fails underneath
        // (AlreadyExists) — the caller still sees the first, a success.
        svc.insert("t", "a", doc! { "n" => 1 }).unwrap();
        assert_eq!(svc.stats().duplicated, 1);
        let rec = server.get_record("t", "a").unwrap();
        assert_eq!(rec.etag, 1, "the duplicate did not double-apply");
    }

    #[test]
    fn severed_link_fails_everything_until_healed() {
        let svc = FaultInjector::new(origin(), FaultPlan::default(), 7);
        svc.insert("t", "a", doc! { "n" => 1 }).unwrap();
        svc.sever();
        assert!(svc.get_record("t", "a").is_err());
        assert!(svc.insert("t", "b", doc! {}).is_err());
        assert!(svc.is_severed());
        svc.heal();
        svc.get_record("t", "a").unwrap();
        assert_eq!(svc.stats().severed_rejections, 2);
    }

    #[test]
    fn delay_holds_the_call() {
        let plan = FaultPlan {
            delay: 1.0,
            delay_ms: (5, 5),
            ..FaultPlan::default()
        };
        let svc = FaultInjector::new(origin(), plan, 7);
        let start = std::time::Instant::now();
        svc.insert("t", "a", doc! {}).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(5));
        assert_eq!(svc.stats().delayed, 1);
    }
}

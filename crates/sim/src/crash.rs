//! Crash-recovery scenario: kill a durable origin mid-workload, reopen
//! it, and account for every acknowledged write.
//!
//! The scenario drives concurrent writer threads against a durable
//! [`QuaestorServer`], each recording the writes it saw acknowledged
//! (returned `Ok`). At the kill point the server is dropped **without
//! flushing** — the process-crash model: whatever sat in the group-commit
//! buffer is gone, whatever the WAL called durable survives. A fresh
//! server then recovers from the same directory and the report compares
//! the recovered table state against the acknowledged model.
//!
//! Under [`FsyncPolicy::Always`] the contract is exact: **zero
//! acknowledged writes lost**. Under `EveryN(n)` the loss is bounded by
//! the group; under `OsDefault` it is bounded by what the page cache had
//! not absorbed (in-process drop loses only the engine buffer, so this
//! still recovers everything written out).

use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};

use quaestor_common::{FxHashMap, ManualClock};
use quaestor_core::{QuaestorServer, ServerConfig};
use quaestor_document::{doc, Value};
use quaestor_durability::{DurabilityConfig, FsyncPolicy};

/// Scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct CrashConfig {
    /// Concurrent writer threads.
    pub writers: usize,
    /// Total acknowledged operations after which the crash is triggered.
    pub kill_after_ops: usize,
    /// WAL fsync cadence for the run.
    pub fsync: FsyncPolicy,
    /// WAL group-commit batch size.
    pub group_commit: usize,
}

impl Default for CrashConfig {
    fn default() -> Self {
        CrashConfig {
            writers: 4,
            kill_after_ops: 400,
            fsync: FsyncPolicy::Always,
            group_commit: 64,
        }
    }
}

/// What one record should look like if every acknowledged write survived.
#[derive(Debug, Clone, PartialEq)]
enum Expected {
    /// Live at (version, counter value).
    Live(u64, i64),
    /// Acknowledged as deleted.
    Deleted,
}

/// Outcome of the scenario.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// Distinct records with at least one acknowledged write before the
    /// crash; each is audited against its *last* acknowledged state.
    pub acknowledged: usize,
    /// Audited records found exactly in their last acknowledged state.
    pub recovered: usize,
    /// Audited records missing or wrong after recovery.
    pub lost: usize,
    /// Wall-clock microseconds the reopen (recovery) took.
    pub recovery_wall_us: u128,
    /// Records in the recovered table.
    pub recovered_records: usize,
}

impl CrashReport {
    /// The headline property: no acknowledged write was lost.
    pub fn zero_loss(&self) -> bool {
        self.lost == 0
    }
}

/// Run the kill-and-recover round trip under `dir`.
///
/// Each invocation isolates its server state in a fresh `run-<n>`
/// subdirectory of `dir`: the audit compares the recovered table against
/// *this* run's acknowledged writes, so recovering a previous run's
/// records from a reused directory would corrupt it (colliding inserts,
/// inflated versions). Callers may reuse the same scratch directory
/// freely.
pub fn crash_recovery(dir: &Path, config: CrashConfig) -> CrashReport {
    static RUN: AtomicUsize = AtomicUsize::new(0);
    let dir = dir.join(format!("run-{}", RUN.fetch_add(1, Ordering::Relaxed)));
    let dir = dir.as_path();
    let durability = DurabilityConfig {
        fsync: config.fsync,
        group_commit: config.group_commit,
        ..DurabilityConfig::default()
    };
    // Phase 1: workload until the kill point.
    let acked: Vec<(String, Expected)> = {
        let server =
            QuaestorServer::open_with(dir, ServerConfig::default(), durability, ManualClock::new())
                .expect("fresh open");
        let ops_done = AtomicUsize::new(0);
        let acked: Vec<Vec<(String, Expected)>> = std::thread::scope(|s| {
            let handles: Vec<_> = (0..config.writers.max(1))
                .map(|w| {
                    let server = &server;
                    let ops_done = &ops_done;
                    s.spawn(move || {
                        // Each writer owns its key space, so the expected
                        // state needs no cross-thread ordering.
                        let mut model: FxHashMap<String, Expected> = FxHashMap::default();
                        let mut i = 0usize;
                        while ops_done.fetch_add(1, Ordering::Relaxed) < config.kill_after_ops {
                            let rec_idx = i / 3;
                            let id = format!("w{w}-r{rec_idx}");
                            // Per record: insert, update, then either a
                            // delete (even records) or a second update
                            // (odd records) — the recovered table keeps
                            // half the records, exercising both live and
                            // tombstone recovery.
                            let inc = quaestor_document::Update::new().inc("balance", 1.0);
                            let _acked = match (i % 3, rec_idx % 2) {
                                (0, _) => server
                                    .insert("accounts", &id, doc! { "balance" => 100 })
                                    .map(|(v, _)| model.insert(id.clone(), Expected::Live(v, 100)))
                                    .is_ok(),
                                (1, _) => server
                                    .update("accounts", &id, &inc)
                                    .map(|(v, _)| model.insert(id.clone(), Expected::Live(v, 101)))
                                    .is_ok(),
                                (_, 0) => server
                                    .delete("accounts", &id)
                                    .map(|_| model.insert(id.clone(), Expected::Deleted))
                                    .is_ok(),
                                _ => server
                                    .update("accounts", &id, &inc)
                                    .map(|(v, _)| model.insert(id.clone(), Expected::Live(v, 102)))
                                    .is_ok(),
                            };
                            // Un-acked ops (errors) leave the model on the
                            // last acknowledged state: exactly what the
                            // recovered store must reproduce.
                            i += 1;
                        }
                        model.into_iter().collect::<Vec<_>>()
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        });
        // CRASH: drop the server (and its engine) without flush.
        acked.into_iter().flatten().collect()
    };

    // Phase 2: recover and audit.
    let start = std::time::Instant::now();
    let server =
        QuaestorServer::open_with(dir, ServerConfig::default(), durability, ManualClock::new())
            .expect("recovery open");
    let recovery_wall_us = start.elapsed().as_micros();

    let table = server.database().table("accounts").ok();
    let mut recovered = 0usize;
    let mut lost = 0usize;
    for (id, expected) in &acked {
        let actual = table.as_ref().and_then(|t| t.get(id));
        let ok = match (expected, &actual) {
            (Expected::Deleted, None) => true,
            (Expected::Live(version, balance), Some(rec)) => {
                rec.version == *version && rec.doc["balance"] == Value::Int(*balance)
            }
            _ => false,
        };
        if ok {
            recovered += 1;
        } else {
            lost += 1;
        }
    }
    CrashReport {
        acknowledged: acked.len(),
        recovered,
        lost,
        recovery_wall_us,
        recovered_records: table.map(|t| t.len()).unwrap_or(0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::scratch_dir;
    use std::path::PathBuf;

    fn temp_dir(tag: &str) -> PathBuf {
        scratch_dir(&format!("crash-{tag}"))
    }

    #[test]
    fn always_fsync_loses_no_acknowledged_write() {
        let dir = temp_dir("always");
        let report = crash_recovery(
            &dir,
            CrashConfig {
                writers: 4,
                kill_after_ops: 300,
                fsync: FsyncPolicy::Always,
                group_commit: 32,
            },
        );
        assert!(report.acknowledged > 0);
        assert!(
            report.zero_loss(),
            "fsync=Always lost {} of {} acknowledged writes",
            report.lost,
            report.acknowledged
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_bounds_loss_to_the_buffer() {
        let dir = temp_dir("group");
        let group = 16;
        let report = crash_recovery(
            &dir,
            CrashConfig {
                writers: 2,
                kill_after_ops: 200,
                fsync: FsyncPolicy::EveryN(group),
                group_commit: group,
            },
        );
        // The crash can only eat what still sat in the engine buffer:
        // strictly fewer than `group` frames (records can be touched by
        // several buffered ops, so compare against frames, not records).
        assert!(
            report.lost < group,
            "lost {} acknowledged writes, group is {group}",
            report.lost
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn reusing_the_same_scratch_dir_isolates_runs() {
        let dir = temp_dir("reuse");
        let config = CrashConfig {
            writers: 1, // single writer: the generated key space is deterministic
            kill_after_ops: 60,
            fsync: FsyncPolicy::Always,
            group_commit: 16,
        };
        let first = crash_recovery(&dir, config);
        let second = crash_recovery(&dir, config);
        assert!(first.zero_loss(), "first run lost {}", first.lost);
        // Without per-run isolation the second run recovers the first
        // run's records: its inserts collide, versions inflate, and the
        // audit misattributes state.
        assert!(second.zero_loss(), "second run lost {}", second.lost);
        assert_eq!(first.acknowledged, second.acknowledged);
        assert_eq!(first.recovered_records, second.recovered_records);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

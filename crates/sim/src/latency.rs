//! Round-trip latency modelling.

use quaestor_webcache::ServedBy;
use rand::Rng;

/// Per-hop round-trip times in ms, defaulting to the paper's measured
/// values: "Mean round-trip latency between client instances and Quaestor
/// was 145 ms", "Fastly was used (round-trip latency 4 ms)", client cache
/// hits "with no latency" (§6.1–6.2).
#[derive(Debug, Clone, Copy)]
pub struct LatencyModel {
    /// RTT for a browser-cache hit (effectively zero).
    pub client_hit_ms: u64,
    /// RTT to the nearest CDN edge.
    pub cdn_ms: u64,
    /// RTT to the origin (WAN).
    pub origin_ms: u64,
    /// Uniform jitter fraction applied to each sample (0.0 = none).
    pub jitter: f64,
}

impl Default for LatencyModel {
    fn default() -> Self {
        LatencyModel {
            client_hit_ms: 0,
            cdn_ms: 4,
            origin_ms: 145,
            jitter: 0.05,
        }
    }
}

impl LatencyModel {
    /// Sample the RTT for a response served by `served_by`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, served_by: ServedBy) -> u64 {
        let base = match served_by {
            ServedBy::Layer(0) => self.client_hit_ms,
            ServedBy::Layer(_) => self.cdn_ms,
            ServedBy::Origin => self.origin_ms,
        };
        self.jittered(rng, base)
    }

    /// Sample the RTT when the first layer is *not* a browser cache (the
    /// CDN-only variant: layer 0 is the CDN).
    pub fn sample_no_browser<R: Rng + ?Sized>(&self, rng: &mut R, served_by: ServedBy) -> u64 {
        let base = match served_by {
            ServedBy::Layer(_) => self.cdn_ms,
            ServedBy::Origin => self.origin_ms,
        };
        self.jittered(rng, base)
    }

    fn jittered<R: Rng + ?Sized>(&self, rng: &mut R, base: u64) -> u64 {
        if self.jitter <= 0.0 || base == 0 {
            return base;
        }
        let f = 1.0 + rng.gen_range(-self.jitter..self.jitter);
        (base as f64 * f).round().max(0.0) as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn defaults_match_paper_measurements() {
        let m = LatencyModel::default();
        assert_eq!(m.cdn_ms, 4);
        assert_eq!(m.origin_ms, 145);
        assert_eq!(m.client_hit_ms, 0);
    }

    #[test]
    fn served_by_maps_to_hops() {
        let m = LatencyModel {
            jitter: 0.0,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        assert_eq!(m.sample(&mut rng, ServedBy::Layer(0)), 0);
        assert_eq!(m.sample(&mut rng, ServedBy::Layer(1)), 4);
        assert_eq!(m.sample(&mut rng, ServedBy::Origin), 145);
        assert_eq!(m.sample_no_browser(&mut rng, ServedBy::Layer(0)), 4);
    }

    #[test]
    fn jitter_stays_bounded() {
        let m = LatencyModel {
            jitter: 0.1,
            ..Default::default()
        };
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..1_000 {
            let v = m.sample(&mut rng, ServedBy::Origin);
            assert!((130..=160).contains(&v), "{v} out of 145±10%");
        }
    }
}

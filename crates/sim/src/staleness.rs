//! Δ-atomicity staleness auditor.
//!
//! The paper's central consistency claim is a *bounded* one: with an EBF
//! refreshed every Δ ms, no cached read is more than Δ behind the
//! database — Δ-atomicity. This module checks that claim empirically
//! from inside the simulator: every write is timestamped, every audited
//! read is compared against the ledger, and the *actual* staleness (how
//! long ago the observed version was superseded) lands in a histogram.
//!
//! A read of the latest version has staleness 0. A read of version `v`
//! at time `t`, when a newer version was written at `t' ≤ t`, has
//! staleness `t - t'` — the window during which a linearizable store
//! would already have served newer data. A violation is a staleness
//! sample above the promised Δ.

use std::collections::HashMap;

use quaestor_common::Histogram;

/// Write ledger + staleness histogram for one simulated run.
#[derive(Debug)]
pub struct StalenessAudit {
    /// The promised Δ in ms (the client's EBF refresh interval).
    promised_ms: u64,
    /// `(table, id)` → writes as `(version, at_ms)`, in version order.
    writes: HashMap<(String, String), Vec<(u64, u64)>>,
    /// Staleness of every audited read (ms); fresh reads record 0.
    delta_ms: Histogram,
    /// Audited reads that returned a superseded version.
    stale_reads: u64,
    /// Samples above the promised Δ.
    violations: u64,
}

/// Summary of an audit, ready for assertion or JSON emission.
#[derive(Debug, Clone)]
pub struct StalenessReport {
    /// The promised Δ in ms.
    pub promised_ms: u64,
    /// Audited reads.
    pub reads: u64,
    /// Reads that returned a superseded version.
    pub stale_reads: u64,
    /// Staleness distribution over all audited reads (fresh reads are 0).
    pub delta_ms: Histogram,
    /// Reads staler than the promised Δ.
    pub violations: u64,
}

impl StalenessReport {
    /// CDF points `(staleness_ms, fraction_of_reads ≤ it)` at the
    /// canonical quantiles, for the paper's Figure-10-style plot.
    pub fn cdf(&self) -> Vec<(f64, u64)> {
        [0.5, 0.9, 0.95, 0.99, 0.999, 1.0]
            .into_iter()
            .filter_map(|q| self.delta_ms.percentile(q).map(|v| (q, v)))
            .collect()
    }

    /// Every audited read fell within the promised Δ.
    pub fn within_bound(&self) -> bool {
        self.violations == 0
    }
}

impl StalenessAudit {
    /// Start an audit promising at most `promised_ms` of staleness.
    pub fn new(promised_ms: u64) -> StalenessAudit {
        StalenessAudit {
            promised_ms,
            writes: HashMap::new(),
            delta_ms: Histogram::new(),
            stale_reads: 0,
            violations: 0,
        }
    }

    /// Record that `table/id` reached `version` at `at_ms`.
    pub fn note_write(&mut self, table: &str, id: &str, version: u64, at_ms: u64) {
        let log = self
            .writes
            .entry((table.to_owned(), id.to_owned()))
            .or_default();
        // Concurrent connections can report out of order; keep the log
        // sorted by version so the supersession scan stays a simple walk.
        let pos = log.partition_point(|&(v, _)| v < version);
        if log.get(pos).is_none_or(|&(v, _)| v != version) {
            log.insert(pos, (version, at_ms));
        }
    }

    /// Record a read of `table/id` observing `version` at `at_ms`,
    /// measuring how long ago that version was superseded (0 if it is
    /// still the latest, or the key was never noted).
    pub fn note_read(&mut self, table: &str, id: &str, version: u64, at_ms: u64) {
        let staleness = self
            .writes
            .get(&(table.to_owned(), id.to_owned()))
            .and_then(|log| {
                // First write that superseded what the read returned.
                log.iter()
                    .find(|&&(v, _)| v > version)
                    .map(|&(_, wrote_at)| at_ms.saturating_sub(wrote_at))
            });
        match staleness {
            Some(ms) => {
                self.stale_reads += 1;
                self.delta_ms.record(ms);
                if ms > self.promised_ms {
                    self.violations += 1;
                }
            }
            None => self.delta_ms.record(0),
        }
    }

    /// Audited reads so far.
    pub fn reads(&self) -> u64 {
        self.delta_ms.count()
    }

    /// Summarize the audit.
    pub fn report(&self) -> StalenessReport {
        StalenessReport {
            promised_ms: self.promised_ms,
            reads: self.delta_ms.count(),
            stale_reads: self.stale_reads,
            delta_ms: self.delta_ms.clone(),
            violations: self.violations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_reads_are_zero_staleness() {
        let mut a = StalenessAudit::new(1_000);
        a.note_write("t", "x", 1, 100);
        a.note_read("t", "x", 1, 500);
        let r = a.report();
        assert_eq!(r.reads, 1);
        assert_eq!(r.stale_reads, 0);
        assert_eq!(r.violations, 0);
        assert_eq!(r.delta_ms.max(), 0);
    }

    #[test]
    fn stale_read_measures_time_since_supersession() {
        let mut a = StalenessAudit::new(1_000);
        a.note_write("t", "x", 1, 100);
        a.note_write("t", "x", 2, 400);
        // Read v1 at 900: v2 superseded it at 400 → 500 ms stale.
        a.note_read("t", "x", 1, 900);
        let r = a.report();
        assert_eq!(r.stale_reads, 1);
        assert_eq!(r.delta_ms.max(), 500);
        assert!(r.within_bound(), "500 ≤ promised 1000");
        // Read v1 at 1600 → 1200 ms stale: a Δ violation.
        a.note_write("t", "y", 1, 0);
        a.note_read("t", "x", 1, 1_600);
        let r = a.report();
        assert_eq!(r.violations, 1);
        assert!(!r.within_bound());
    }

    #[test]
    fn out_of_order_write_notes_keep_version_order() {
        let mut a = StalenessAudit::new(1_000);
        a.note_write("t", "x", 3, 900);
        a.note_write("t", "x", 1, 100);
        a.note_write("t", "x", 2, 400);
        // Reading v1 at 1000: first superseding write is v2 at 400.
        a.note_read("t", "x", 1, 1_000);
        assert_eq!(a.report().delta_ms.max(), 600);
    }

    #[test]
    fn unknown_keys_audit_as_fresh() {
        let mut a = StalenessAudit::new(10);
        a.note_read("t", "never-written", 0, 99);
        let r = a.report();
        assert_eq!(r.reads, 1);
        assert_eq!(r.stale_reads, 0);
    }

    #[test]
    fn cdf_is_monotone() {
        let mut a = StalenessAudit::new(1_000);
        a.note_write("t", "x", 2, 0);
        for at in [10, 50, 200, 900] {
            a.note_read("t", "x", 1, at);
        }
        let cdf = a.report().cdf();
        assert!(!cdf.is_empty());
        assert!(cdf.windows(2).all(|w| w[0].1 <= w[1].1), "{cdf:?}");
    }
}

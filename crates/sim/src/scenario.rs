//! End-to-end scenarios: the Figure 1 page-load comparison and the §6.2
//! "Thinks" flash-sale production anecdote.

use std::sync::Arc;

use quaestor_client::{ClientConfig, QuaestorClient};
use quaestor_common::{Clock, ManualClock};
use quaestor_core::QuaestorServer;
use quaestor_document::doc;
use quaestor_query::{Filter, Query};
use quaestor_webcache::InvalidationCache;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A client region with its RTT profile to the CDN edge and to the
/// (single, Ireland-like) origin region.
#[derive(Debug, Clone, Copy)]
pub struct Region {
    /// Region label.
    pub name: &'static str,
    /// RTT to the nearest CDN edge (ms) — CDNs are everywhere, so this is
    /// small and roughly constant.
    pub cdn_rtt_ms: u64,
    /// RTT to the origin region (ms) — grows with distance.
    pub origin_rtt_ms: u64,
}

impl Region {
    /// The four regions of Figure 1 with plausible WAN RTTs to an
    /// EU-hosted origin.
    pub fn figure1() -> [Region; 4] {
        [
            Region {
                name: "Frankfurt",
                cdn_rtt_ms: 4,
                origin_rtt_ms: 20,
            },
            Region {
                name: "California",
                cdn_rtt_ms: 4,
                origin_rtt_ms: 150,
            },
            Region {
                name: "Sydney",
                cdn_rtt_ms: 4,
                origin_rtt_ms: 300,
            },
            Region {
                name: "Tokyo",
                cdn_rtt_ms: 4,
                origin_rtt_ms: 250,
            },
        ]
    }
}

/// Result of one page-load measurement.
#[derive(Debug, Clone)]
pub struct PageLoadReport {
    /// Region measured.
    pub region: &'static str,
    /// First-load latency with Quaestor (cold browser cache, warm CDN).
    pub quaestor_ms: u64,
    /// First-load latency for an uncached DBaaS in the origin region.
    pub uncached_ms: u64,
    /// Δ-atomicity audit of the post-load re-reads: every headline
    /// update is timestamped and every cached re-read is checked
    /// against the EBF-promised bound.
    pub staleness: crate::staleness::StalenessReport,
}

/// Simulate Figure 1: a news-site first load (1 query + `records` record
/// fetches over `parallelism` connections) from each region, with a cold
/// browser cache and a warm CDN, against an uncached competitor.
pub fn page_load(records: usize, parallelism: usize) -> Vec<PageLoadReport> {
    Region::figure1()
        .into_iter()
        .map(|region| {
            let clock = ManualClock::new();
            let server = QuaestorServer::with_defaults(clock.clone());
            for i in 0..records {
                server
                    .insert(
                        "articles",
                        &format!("a{i}"),
                        doc! {
                            "section" => "frontpage",
                            "headline" => format!("headline {i}")
                        },
                    )
                    .unwrap();
            }
            let cdn = Arc::new(InvalidationCache::new("edge", 10_000));
            server.register_cdn(cdn.clone());
            let q = Query::table("articles").filter(Filter::eq("section", "frontpage"));

            // Warm the CDN (previous visitors anywhere in the world).
            let warmer = QuaestorClient::connect(
                server.clone(),
                std::slice::from_ref(&cdn),
                ClientConfig {
                    use_browser_cache: false,
                    ..Default::default()
                },
                clock.clone(),
            );
            warmer.query(&q).unwrap();
            for i in 0..records {
                warmer.read_record("articles", &format!("a{i}")).unwrap();
            }

            // Cold visitor in `region`: every fetch hits the CDN edge.
            let visitor = QuaestorClient::connect(
                server.clone(),
                std::slice::from_ref(&cdn),
                ClientConfig::default(),
                clock.clone(),
            );
            let out = visitor.query(&q).unwrap();
            assert_eq!(out.docs.len(), records);

            // Staleness audit: the newsroom rewrites every other
            // headline, half the promised Δ elapses, and the visitor
            // re-reads everything through their warm caches. Any cached
            // answer may be stale — but never by more than Δ.
            let promised = ClientConfig::default().ebf_refresh_ms;
            let mut audit = crate::staleness::StalenessAudit::new(promised);
            for i in 0..records {
                let id = format!("a{i}");
                if i % 2 == 0 {
                    server
                        .update(
                            "articles",
                            &id,
                            &quaestor_document::Update::new()
                                .set("headline", format!("rewritten {i}")),
                        )
                        .unwrap();
                }
                let version = server
                    .database()
                    .table("articles")
                    .ok()
                    .and_then(|t| t.get(&id))
                    .map(|r| r.version)
                    .unwrap_or(0);
                audit.note_write("articles", &id, version, clock.now().as_millis());
            }
            clock.advance(promised / 2);
            for i in 0..records {
                let id = format!("a{i}");
                let read = visitor.read_record("articles", &id).unwrap();
                audit.note_read("articles", &id, read.version, clock.now().as_millis());
            }
            let staleness = audit.report();
            assert!(
                staleness.within_bound(),
                "{}: {} of {} audited reads exceeded the promised Δ of {promised} ms",
                region.name,
                staleness.violations,
                staleness.reads,
            );

            // The page needs 1 query + `records` record fetches; with
            // `parallelism` connections the critical path is the number
            // of sequential rounds times the per-fetch RTT.
            let rounds = 1 + records.div_ceil(parallelism);
            let quaestor_ms = rounds as u64 * region.cdn_rtt_ms;
            let uncached_ms = rounds as u64 * region.origin_rtt_ms;
            PageLoadReport {
                region: region.name,
                quaestor_ms,
                uncached_ms,
                staleness,
            }
        })
        .collect()
}

/// Result of the flash-sale scenario.
#[derive(Debug, Clone)]
pub struct FlashSaleReport {
    /// Requests issued by the crowd.
    pub requests: u64,
    /// Requests absorbed by the CDN.
    pub cdn_hits: u64,
    /// Requests that reached the origin.
    pub origin_requests: u64,
    /// CDN hit rate.
    pub cdn_hit_rate: f64,
}

/// Simulate the §6.2 production anecdote: a TV-spot flash crowd hammers a
/// product page ("articles with stock counters") while the shop keeps
/// updating stock. The paper reports a 98% CDN hit rate letting 2 DBaaS
/// servers survive >20k req/s.
pub fn flash_sale(
    visitors: usize,
    requests_per_visitor: usize,
    stock_updates: usize,
) -> FlashSaleReport {
    let clock = ManualClock::new();
    let server = QuaestorServer::with_defaults(clock.clone());
    for p in 0..20 {
        server
            .insert(
                "products",
                &format!("p{p}"),
                doc! {
                    "name" => format!("product {p}"),
                    "stock" => 1_000,
                    "featured" => true
                },
            )
            .unwrap();
    }
    let cdn = Arc::new(InvalidationCache::new("edge", 100_000));
    server.register_cdn(cdn.clone());
    let q = Query::table("products").filter(Filter::eq("featured", true));

    let mut rng = StdRng::seed_from_u64(1);
    let mut requests = 0u64;
    let origin_before = server.metrics().origin_reads();
    // Visitors arrive over time; stock updates interleave.
    let update_every = (visitors * requests_per_visitor / stock_updates.max(1)).max(1);
    let mut op_count = 0usize;
    for v in 0..visitors {
        let visitor = QuaestorClient::connect(
            server.clone(),
            std::slice::from_ref(&cdn),
            ClientConfig::default(),
            clock.clone(),
        );
        for _ in 0..requests_per_visitor {
            let _ = visitor.query(&q);
            requests += 1;
            op_count += 1;
            if op_count.is_multiple_of(update_every) {
                use rand::Rng;
                let p = rng.gen_range(0..20);
                let _ = server.update(
                    "products",
                    &format!("p{p}"),
                    &quaestor_document::Update::new().inc("stock", -1.0),
                );
            }
            clock.advance(1);
        }
        let _ = v;
    }
    let origin_requests = server.metrics().origin_reads() - origin_before;
    let cdn_stats = cdn.stats();
    FlashSaleReport {
        requests,
        cdn_hits: cdn_stats.hits,
        origin_requests,
        cdn_hit_rate: cdn_stats.hit_rate(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_load_shape_matches_figure_1() {
        let reports = page_load(20, 6);
        assert_eq!(reports.len(), 4);
        for r in &reports {
            assert!(
                r.quaestor_ms * 3 < r.uncached_ms,
                "{}: Quaestor {} ms must be far below uncached {} ms",
                r.region,
                r.quaestor_ms,
                r.uncached_ms
            );
        }
        // The gap grows with distance from the origin region.
        let frankfurt = &reports[0];
        let sydney = &reports[2];
        assert!(sydney.uncached_ms > frankfurt.uncached_ms * 5);
        // Quaestor is nearly flat across regions (CDN is everywhere).
        assert_eq!(reports[0].quaestor_ms, reports[2].quaestor_ms);
    }

    #[test]
    fn flash_sale_mostly_absorbed_by_cdn() {
        let r = flash_sale(500, 10, 10);
        assert_eq!(r.requests, 5_000);
        assert!(
            r.cdn_hit_rate > 0.95,
            "CDN hit rate {} should approach the reported 98%",
            r.cdn_hit_rate
        );
        assert!(
            r.origin_requests < r.requests / 5,
            "origin saw {}/{} requests",
            r.origin_requests,
            r.requests
        );
    }
}

//! Figure 11: estimated-vs-true TTL CDFs.
//!
//! "We also used the simulator to compare our TTL estimation scheme
//! against the true TTL for every query, which we define as the time
//! period a query could have been cached until invalidation. Figure 11
//! shows the cumulative distribution functions for estimated and true
//! TTLs for a 1% write rate for 10 minutes."

use quaestor_common::Histogram;
use quaestor_ttl::{EstimatorConfig, TtlEstimator, WriteRateSampler};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use quaestor_common::Timestamp;

/// The two empirical distributions of Figure 11.
#[derive(Debug, Clone)]
pub struct TtlCdfReport {
    /// Estimated TTLs issued by the estimator (ms).
    pub estimated: Histogram,
    /// True TTLs (read → next invalidation spans, ms).
    pub true_ttls: Histogram,
}

impl TtlCdfReport {
    /// CDF points at the given TTL values for both curves.
    pub fn cdf_points(&self, ttls: &[u64]) -> Vec<(u64, f64, f64)> {
        ttls.iter()
            .map(|&t| (t, self.estimated.cdf(t), self.true_ttls.cdf(t)))
            .collect()
    }
}

/// Run the Figure 11 experiment: `queries` queries whose result sets are
/// written by Poisson processes; each query is read, the estimator issues
/// a TTL, and the next write reveals the true TTL. The EWMA refines the
/// estimate across rounds, as in the real pipeline.
pub fn ttl_estimation_cdf(
    queries: usize,
    duration_ms: u64,
    write_rate_per_sec: f64,
    seed: u64,
) -> TtlCdfReport {
    let mut rng = StdRng::seed_from_u64(seed);
    let estimator = TtlEstimator::new(EstimatorConfig {
        max_ttl_ms: duration_ms,
        ..Default::default()
    });
    let sampler = WriteRateSampler::new(duration_ms, 64);
    let mut estimated = Histogram::new();
    let mut true_ttls = Histogram::new();

    for q in 0..queries {
        // Heterogeneous per-query write rates around the global mean —
        // the "unpredictable long tail" of the access distribution.
        let factor = (-(rng.gen::<f64>().max(1e-9)).ln()).max(0.05); // Exp(1)
        let lambda_ms = write_rate_per_sec * factor / 1_000.0;
        if lambda_ms <= 0.0 {
            continue;
        }
        let key = format!("q{q}");
        // Generate the Poisson write process for this query's result set.
        let mut writes: Vec<u64> = Vec::new();
        let mut t = 0f64;
        loop {
            let gap = -(rng.gen::<f64>().max(1e-12)).ln() / lambda_ms;
            t += gap;
            if t >= duration_ms as f64 {
                break;
            }
            writes.push(t as u64);
        }
        // Reads happen right after each invalidation (the cache refills on
        // the next request); the true TTL of that read is the gap to the
        // next write.
        let mut last_estimate: Option<u64> = None;
        for pair in writes.windows(2) {
            let (w0, w1) = (pair[0], pair[1]);
            sampler.record_write(&key, Timestamp::from_millis(w0));
            let rate = sampler.rate(&key, Timestamp::from_millis(w0));
            let initial = estimator.initial_query_ttl(rate.unwrap_or(lambda_ms));
            let est = match last_estimate {
                Some(old) => estimator.refine_query_ttl(old, w1 - w0),
                None => initial,
            };
            estimated.record(est);
            true_ttls.record(w1 - w0);
            last_estimate = Some(est);
        }
    }
    TtlCdfReport {
        estimated,
        true_ttls,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distributions_roughly_agree() {
        let report = ttl_estimation_cdf(300, 600_000, 1.0, 11);
        assert!(report.estimated.count() > 100);
        assert!(report.true_ttls.count() > 100);
        // Medians within a factor of ~4 of each other: the paper shows "a
        // similar distribution for the majority of TTLs and larger errors
        // on the unpredictable long tail".
        let em = report.estimated.median().unwrap_or(0).max(1) as f64;
        let tm = report.true_ttls.median().unwrap_or(0).max(1) as f64;
        let ratio = (em / tm).max(tm / em);
        assert!(ratio < 4.0, "medians diverged: est {em} vs true {tm}");
    }

    #[test]
    fn cdf_points_are_monotone() {
        let report = ttl_estimation_cdf(100, 300_000, 1.0, 3);
        let pts = report.cdf_points(&[100, 1_000, 10_000, 100_000]);
        for w in pts.windows(2) {
            assert!(w[0].1 <= w[1].1);
            assert!(w[0].2 <= w[1].2);
        }
    }
}

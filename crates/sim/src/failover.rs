//! Kill-the-primary-mid-workload scenario: the end-to-end failover
//! audit.
//!
//! A replication group (one primary, N replicas, semi-synchronous acks:
//! `ack_replicas = 1`, `FsyncPolicy::Always`) serves a concurrent write
//! workload through the client-side [`ReplicatedService`] router, over
//! real TCP. Mid-run the primary is killed abruptly — threads torn down,
//! nothing flushed, exactly the simulator's crash model. The router's
//! next write fails over: it probes the survivors, promotes the replica
//! with the highest durable LSN, and retries. A controller then
//! re-points the remaining replicas at the new primary
//! ([`ReplNode::refollow`]), and finally the deposed primary rejoins as
//! a replica, its unreplicated WAL suffix fenced off by the epoch
//! handshake.
//!
//! The audit holds the whole transition to two properties:
//!
//! * **zero acked-write loss** — every write acknowledged to a writer
//!   thread, before or after the kill, must be present on the new
//!   primary (and on the rejoined old primary after it catches up).
//!   Semi-sync acks make this sound: an acked write is durable on at
//!   least one replica, and the election maximizes durable LSN.
//! * **reads survive the outage** — the router keeps answering reads
//!   from replicas for the whole window between the kill and the first
//!   post-failover write ack.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use parking_lot::Mutex;
use quaestor_client::ReplicatedService;
use quaestor_core::{ReplRole, Service, ServiceExt};
use quaestor_document::doc;
use quaestor_net::{RemoteService, RemoteServiceConfig};
use quaestor_repl::{ReplConfig, ReplNode};

use crate::fault::{FaultInjector, FaultPlan};

/// Scenario knobs.
#[derive(Debug, Clone, Copy)]
pub struct FailoverConfig {
    /// Replica count (the group is `replicas + 1` nodes).
    pub replicas: usize,
    /// Concurrent writer threads.
    pub writers: usize,
    /// Acked writes after which the primary is killed.
    pub kill_after_acked: usize,
    /// Total acked writes the workload drives (across the kill).
    pub total_writes: usize,
    /// Optional fault plan applied to every client↔node link.
    pub faults: Option<FaultPlan>,
    /// Seed for the fault injectors.
    pub seed: u64,
}

impl Default for FailoverConfig {
    fn default() -> FailoverConfig {
        FailoverConfig {
            replicas: 2,
            writers: 2,
            kill_after_acked: 120,
            total_writes: 360,
            faults: None,
            seed: 7,
        }
    }
}

impl FailoverConfig {
    /// CI-sized run: same shape, fewer operations.
    pub fn quick() -> FailoverConfig {
        FailoverConfig {
            kill_after_acked: 30,
            total_writes: 90,
            ..FailoverConfig::default()
        }
    }
}

/// Outcome of the scenario.
#[derive(Debug, Clone)]
pub struct FailoverReport {
    /// Writes acknowledged to writer threads (these are audited).
    pub acked_writes: usize,
    /// Write attempts that errored (in-flight at the kill, ack-gate
    /// timeouts, injected faults); legitimate, but not audited.
    pub write_errors: usize,
    /// Acked writes missing on the **new** primary. The headline: 0.
    pub lost: usize,
    /// Failovers the router executed. At least 1; concurrent writers
    /// can each run the election (later ones find the already-promoted
    /// primary and only re-point).
    pub failovers: u64,
    /// Endpoint index the router elected.
    pub new_primary: usize,
    /// Milliseconds from the kill to the first post-failover write ack.
    pub outage_ms: u128,
    /// Reads served during that window.
    pub reads_during_outage: usize,
    /// Reads failed during that window. Expected: 0 — the router skips
    /// the dead endpoint and replicas keep serving.
    pub read_failures_during_outage: usize,
    /// Epoch the rejoined old primary adopted (expected: the new
    /// primary's epoch).
    pub rejoined_epoch: u64,
    /// Whether the rejoined old primary fully caught up to the new
    /// primary's log.
    pub rejoined_caught_up: bool,
    /// Acked writes missing on the rejoined old primary.
    pub rejoined_lost: usize,
}

impl FailoverReport {
    /// The acceptance property: no acknowledged write was lost anywhere
    /// across the failover, including on the fenced-and-rejoined node.
    pub fn zero_acked_loss(&self) -> bool {
        self.lost == 0 && self.rejoined_lost == 0
    }
}

fn node_config() -> ReplConfig {
    ReplConfig {
        // Semi-sync: a write is acked only once a replica has fsynced
        // it. This is what makes "zero acked-write loss" achievable at
        // all — with async shipping, acked-but-unshipped writes die with
        // the primary's buffer.
        ack_replicas: 1,
        ack_timeout: Duration::from_secs(10),
        io_timeout: Duration::from_millis(5),
        reconnect_backoff: Duration::from_millis(25),
        ..ReplConfig::default()
    }
}

fn client_config() -> RemoteServiceConfig {
    RemoteServiceConfig {
        // Generous connect timeout: an election probe that times out on a
        // *live* node under CPU contention (the full test suite runs this
        // scenario alongside heavy sims) would elect the wrong node.
        connect_timeout: Duration::from_secs(1),
        request_timeout: Duration::from_secs(2),
        max_backoff: Duration::from_millis(100),
        ..RemoteServiceConfig::default()
    }
}

/// Hard wall-clock bound on the workload phase. A scenario that cannot
/// finish by then reports what it has (and fails its assertions) instead
/// of grinding through write-retry timeouts for half an hour.
const WORKLOAD_DEADLINE: Duration = Duration::from_secs(60);

/// Run the kill-primary scenario under `dir` (isolated per run, like
/// `crash_recovery`). Panics on infrastructure failures — this is a test
/// harness, not a production path.
pub fn kill_primary_failover(dir: &Path, config: FailoverConfig) -> FailoverReport {
    static RUN: AtomicUsize = AtomicUsize::new(0);
    let dir = dir.join(format!("run-{}", RUN.fetch_add(1, Ordering::Relaxed)));
    let node_dir = |i: usize| -> PathBuf { dir.join(format!("node-{i}")) };

    // The group: node 0 is the initial primary. No handle to it may
    // outlive the `nodes` vec — rejoining its directory later requires
    // its engine (and directory LOCK) to drop.
    let primary = ReplNode::open_primary(node_dir(0), node_config()).expect("open primary");
    let primary_repl_addr = primary.repl_addr();
    let mut nodes = vec![primary];
    for i in 1..=config.replicas.max(1) {
        nodes.push(
            ReplNode::open_replica(node_dir(i), primary_repl_addr, node_config())
                .expect("open replica"),
        );
    }

    // Client endpoints (TCP), optionally behind fault injectors.
    let endpoints: Vec<Arc<dyn Service>> = nodes
        .iter()
        .enumerate()
        .map(|(i, n)| {
            let remote = RemoteService::connect_lazy(n.client_addr(), client_config())
                .expect("endpoint") as Arc<dyn Service>;
            match config.faults {
                Some(plan) => {
                    FaultInjector::new(remote, plan, config.seed ^ (i as u64)) as Arc<dyn Service>
                }
                None => remote,
            }
        })
        .collect();
    let router = ReplicatedService::new(endpoints).expect("router");

    // The sentinel read target; also synchronizes the group (the insert
    // acks only after a replica has it).
    router
        .insert("audit", "sentinel", doc! { "kind" => "sentinel" })
        .expect("sentinel write");

    let acked_count = AtomicUsize::new(0);
    let done = AtomicBool::new(false);
    let outage = AtomicBool::new(false);
    let killed_at: Mutex<Option<Instant>> = Mutex::new(None);
    let recovered_at: Mutex<Option<Instant>> = Mutex::new(None);
    let reads_ok = AtomicUsize::new(0);
    let reads_failed = AtomicUsize::new(0);

    let (acked, write_errors) = std::thread::scope(|s| {
        // Writers: fresh key per attempt, so an applied-but-unacked write
        // (in flight at the kill) never collides with a retry.
        let writer_handles: Vec<_> = (0..config.writers.max(1))
            .map(|w| {
                let router = &router;
                let acked_count = &acked_count;
                let outage = &outage;
                let recovered_at = &recovered_at;
                s.spawn(move || {
                    let mut acked: Vec<String> = Vec::new();
                    let mut errors = 0usize;
                    let give_up = Instant::now() + WORKLOAD_DEADLINE;
                    for attempt in 0..config.total_writes * 10 {
                        if acked_count.load(Ordering::SeqCst) >= config.total_writes
                            || Instant::now() >= give_up
                        {
                            break;
                        }
                        let key = format!("w{w}-a{attempt}");
                        match router.insert("audit", &key, doc! { "writer" => w as i64 }) {
                            Ok(_) => {
                                acked.push(key);
                                acked_count.fetch_add(1, Ordering::SeqCst);
                                if outage.swap(false, Ordering::SeqCst) {
                                    *recovered_at.lock() = Some(Instant::now());
                                }
                            }
                            Err(_) => errors += 1,
                        }
                    }
                    (acked, errors)
                })
            })
            .collect();

        // Reader: hammers the sentinel; during the outage window every
        // answer (or failure) is scored.
        let reader = {
            let router = &router;
            let done = &done;
            let outage = &outage;
            let reads_ok = &reads_ok;
            let reads_failed = &reads_failed;
            s.spawn(move || {
                while !done.load(Ordering::SeqCst) {
                    let in_outage = outage.load(Ordering::SeqCst);
                    let ok = router.get_record("audit", "sentinel").is_ok();
                    if in_outage {
                        if ok {
                            reads_ok.fetch_add(1, Ordering::SeqCst);
                        } else {
                            reads_failed.fetch_add(1, Ordering::SeqCst);
                        }
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
            })
        };

        // Controller: kill the primary at the threshold, then re-point
        // the surviving replicas once the router has elected.
        let controller = {
            let router = &router;
            let nodes = &nodes;
            let acked_count = &acked_count;
            let done = &done;
            let outage = &outage;
            let killed_at = &killed_at;
            s.spawn(move || {
                while acked_count.load(Ordering::SeqCst) < config.kill_after_acked {
                    if done.load(Ordering::SeqCst) {
                        return;
                    }
                    std::thread::sleep(Duration::from_millis(1));
                }
                *killed_at.lock() = Some(Instant::now());
                nodes[0].kill();
                // Flag the outage only once the node is down: acks are
                // impossible now until failover completes, so the flag
                // cannot be cleared prematurely by a pre-kill ack.
                outage.store(true, Ordering::SeqCst);
                // Re-point survivors whenever the router's believed
                // primary changes (not just once: a probe that failed
                // transiently can move the election to the other
                // replica, and a survivor still following the old
                // target would starve the semi-sync gate forever).
                let mut pointed_at: Option<usize> = None;
                while !done.load(Ordering::SeqCst) {
                    let new_primary = router.primary_index();
                    if new_primary != 0 && pointed_at != Some(new_primary) {
                        for (i, node) in nodes.iter().enumerate().skip(1) {
                            if i != new_primary {
                                let _ = node.refollow(nodes[new_primary].repl_addr());
                            }
                        }
                        pointed_at = Some(new_primary);
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            })
        };

        let collected: Vec<(Vec<String>, usize)> = writer_handles
            .into_iter()
            .map(|h| h.join().expect("writer thread"))
            .collect();
        done.store(true, Ordering::SeqCst);
        reader.join().expect("reader thread");
        controller.join().expect("controller thread");
        let mut acked = Vec::new();
        let mut errors = 0;
        for (keys, errs) in collected {
            acked.extend(keys);
            errors += errs;
        }
        (acked, errors)
    });

    // Audit on the elected primary, via direct node access (the audit
    // must not be subject to injected faults).
    let new_primary = router.primary_index();
    assert_ne!(new_primary, 0, "the router should have left the dead node");
    let elected = nodes[new_primary].clone();
    assert_eq!(elected.role(), ReplRole::Primary);
    let lost = acked
        .iter()
        .filter(|key| elected.get_record("audit", key).is_err())
        .count();

    let outage_ms = match (*killed_at.lock(), *recovered_at.lock()) {
        (Some(k), Some(r)) => r.duration_since(k).as_millis(),
        _ => 0,
    };

    // Rejoin the deposed primary: the epoch handshake fences its
    // unreplicated suffix, then it follows the new timeline. The dead
    // node's last handle must drop first — its durability engine holds
    // the directory LOCK until then.
    drop(nodes.remove(0));
    let rejoined =
        ReplNode::open_replica(node_dir(0), elected.repl_addr(), node_config()).expect("rejoin");
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut rejoined_caught_up = false;
    while Instant::now() < deadline {
        if rejoined.status().durable_lsn == elected.status().last_lsn {
            rejoined_caught_up = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    let rejoined_status = rejoined.status();
    let rejoined_lost = acked
        .iter()
        .filter(|key| rejoined.get_record("audit", key).is_err())
        .count();

    for node in &nodes {
        node.kill();
    }
    rejoined.kill();

    FailoverReport {
        acked_writes: acked.len(),
        write_errors,
        lost,
        failovers: router.failover_count(),
        new_primary,
        outage_ms,
        reads_during_outage: reads_ok.load(Ordering::SeqCst),
        read_failures_during_outage: reads_failed.load(Ordering::SeqCst),
        rejoined_epoch: rejoined_status.epoch,
        rejoined_caught_up,
        rejoined_lost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::scratch_dir;

    #[test]
    fn kill_primary_loses_no_acked_write_and_reads_survive() {
        let dir = scratch_dir("sim-failover");
        let report = kill_primary_failover(&dir, FailoverConfig::quick());
        assert!(report.acked_writes >= 90, "{report:?}");
        assert!(
            report.zero_acked_loss(),
            "lost {} acked writes (rejoined: {}): {report:?}",
            report.lost,
            report.rejoined_lost
        );
        assert!(report.failovers >= 1, "{report:?}");
        assert!(report.reads_during_outage > 0, "{report:?}");
        assert_eq!(report.read_failures_during_outage, 0, "{report:?}");
        assert_eq!(report.rejoined_epoch, 2, "{report:?}");
        assert!(report.rejoined_caught_up, "{report:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn failover_holds_under_injected_faults() {
        let dir = scratch_dir("sim-failover-faults");
        let config = FailoverConfig {
            faults: Some(FaultPlan {
                delay: 0.05,
                delay_ms: (1, 3),
                duplicate: 0.02,
                ..FaultPlan::default()
            }),
            ..FailoverConfig::quick()
        };
        let report = kill_primary_failover(&dir, config);
        assert!(
            report.zero_acked_loss(),
            "lost {} acked writes (rejoined: {}): {report:?}",
            report.lost,
            report.rejoined_lost
        );
        assert!(report.rejoined_caught_up, "{report:?}");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

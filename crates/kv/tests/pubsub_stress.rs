//! Concurrent stress test for `PubSub`'s channel map and sweep path.
//!
//! Exercises `subscribe` / `publish` / drop churn from many threads while
//! a reader hammers `channel_count()` (the amortized-sweep path). Runs
//! under both the plain and `RUSTFLAGS="--cfg lockcheck"` CI jobs — under
//! the latter, every `channels` acquisition is rank-checked against the
//! workspace hierarchy, so an accidental nested acquisition inside the
//! sweep would panic the test.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use quaestor_kv::PubSub;

#[test]
fn concurrent_churn_keeps_channel_count_consistent() {
    let bus = PubSub::new();
    let stop = Arc::new(AtomicBool::new(false));
    let threads = 4;
    let rounds = 250;

    let mut workers = Vec::new();
    for t in 0..threads {
        let bus = bus.clone();
        workers.push(std::thread::spawn(move || {
            for r in 0..rounds {
                let channel = format!("chan-{t}-{}", r % 7);
                let sub = bus.subscribe(&channel);
                let delivered = bus.publish(&channel, format!("m{r}").into_bytes());
                assert!(delivered >= 1, "own subscriber must be reachable");
                assert_eq!(
                    sub.recv_timeout(std::time::Duration::from_secs(5))
                        .as_deref(),
                    Some(format!("m{r}").as_bytes())
                );
                // Subscription dropped here: the channel entry becomes
                // sweepable garbage for later subscribes/publishes.
            }
        }));
    }

    // Reader thread: channel_count must never panic or report more than
    // the live upper bound while sweeps run concurrently.
    let counter = {
        let bus = bus.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            let mut max_seen = 0usize;
            while !stop.load(Ordering::Acquire) {
                let n = bus.channel_count();
                assert!(
                    n <= threads * 7,
                    "channel_count {n} exceeds the {threads}x7 live channel bound"
                );
                max_seen = max_seen.max(n);
            }
            max_seen
        })
    };

    for w in workers {
        w.join().expect("worker");
    }
    stop.store(true, Ordering::Release);
    counter.join().expect("counter");

    // All subscriptions are dropped; one more publish per channel prunes
    // the dead entries, after which the map must be empty.
    for t in 0..threads {
        for r in 0..7 {
            bus.publish(&format!("chan-{t}-{r}"), &b"sweep"[..]);
        }
    }
    assert_eq!(bus.channel_count(), 0);
    assert_eq!(bus.subscriber_count("chan-0-0"), 0);
}

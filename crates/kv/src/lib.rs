//! In-memory Redis substitute.
//!
//! The paper uses Redis in three roles (§3.3, §4.1, §6.1):
//!
//! 1. Backing store for the **distributed Expiring Bloom Filter**: "all
//!    DBaaS servers communicate with the in-memory key-value store Redis,
//!    which holds the counting Bloom Filter and the tracked expirations".
//! 2. **Message queues** between Quaestor and InvaliDB.
//! 3. The Redis-backed **active list** of currently cached queries.
//!
//! [`KvStore`] reproduces the required primitive set: string keys with
//! per-key expiration, atomic integer counters, hashes with atomic field
//! increments (the counting Bloom filter layout), FIFO lists (queues) and
//! pub/sub. All operations are linearizable per shard (a sharded mutex,
//! mirroring Redis's single-threaded-per-instance execution model) and a
//! [`KvStats`] counter tracks throughput for the §3.3 capacity claim
//! (>150 k ops/s per instance).

pub mod pubsub;
pub mod store;

pub use pubsub::{PubSub, Subscription};
pub use store::{KvStats, KvStore, KvValue};

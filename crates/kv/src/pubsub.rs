//! Publish/subscribe channels.
//!
//! Quaestor and InvaliDB communicate "through Redis message queues"
//! (§4.1), and clients "can directly subscribe to websocket-based query
//! result change streams" (§3.2). Both are served by this fan-out bus:
//! publishing clones the message to every live subscriber. Each
//! [`Subscription`] carries an alive flag cleared on drop; dead
//! subscribers and emptied channel entries are pruned both on publish
//! and on subscribe, so a bus with churning subscribers never leaks.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, OnceLock};

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::RwLock;
use quaestor_common::{lock_rank, FxHashMap};

/// A notify callback shared between a [`Subscription`] and its
/// publisher-side [`Subscriber`] entry.
type NotifyHook = Arc<OnceLock<Box<dyn Fn() + Send + Sync>>>;

/// A subscription handle: a receiver of messages published to one channel.
pub struct Subscription {
    rx: Receiver<Bytes>,
    channel: String,
    alive: Arc<AtomicBool>,
    notify: NotifyHook,
}

impl std::fmt::Debug for Subscription {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Subscription")
            .field("channel", &self.channel)
            .field("alive", &self.alive.load(Ordering::Acquire))
            .field("notify", &self.notify.get().is_some())
            .finish()
    }
}

impl Drop for Subscription {
    fn drop(&mut self) {
        self.alive.store(false, Ordering::Release);
    }
}

impl Subscription {
    /// Channel name this subscription listens on.
    pub fn channel(&self) -> &str {
        &self.channel
    }

    /// Non-blocking poll for the next message.
    pub fn try_recv(&self) -> Option<Bytes> {
        self.rx.try_recv().ok()
    }

    /// Blocking receive (used by worker threads in the real-time pipeline).
    pub fn recv(&self) -> Option<Bytes> {
        self.rx.recv().ok()
    }

    /// Blocking receive with timeout.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Bytes> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drain all currently pending messages.
    pub fn drain(&self) -> Vec<Bytes> {
        let mut out = Vec::new();
        while let Some(m) = self.try_recv() {
            out.push(m);
        }
        out
    }

    /// Install a readiness callback, invoked by [`PubSub::publish`] after
    /// each message is enqueued for this subscription. This is how
    /// event-loop consumers (the net server's shards) get poked without a
    /// polling thread: the hook sends a wake, the loop drains via
    /// [`try_recv`](Self::try_recv).
    ///
    /// Contract for hooks:
    /// * **Install before the first drain.** A message published between
    ///   subscribe and `set_notify` produces no callback; draining after
    ///   installation closes that window.
    /// * **Expect spurious and coalesced calls.** Consumers must drain
    ///   until empty on every notification.
    /// * **Never call back into this bus' subscribe/publish paths** — the
    ///   hook runs while the channel map is read-locked
    ///   (`kv.pubsub.channels`, rank 60); hooks may only take
    ///   higher-ranked leaf locks (the net shard inbox is rank 68).
    ///
    /// One hook per subscription; later installs are ignored.
    pub fn set_notify(&self, hook: impl Fn() + Send + Sync + 'static) {
        let _ = self.notify.set(Box::new(hook));
    }
}

struct Subscriber {
    tx: Sender<Bytes>,
    alive: Arc<AtomicBool>,
    notify: NotifyHook,
}

/// A multi-channel fan-out message bus.
pub struct PubSub {
    channels: RwLock<FxHashMap<String, Vec<Subscriber>>>,
    /// Full-bus sweeps run only when the channel count reaches this
    /// watermark (then it doubles), so per-subscribe cleanup cost is
    /// amortized O(1) instead of O(channels).
    sweep_at: std::sync::atomic::AtomicUsize,
}

impl Default for PubSub {
    fn default() -> PubSub {
        PubSub {
            channels: RwLock::with_rank(
                FxHashMap::default(),
                lock_rank::KV_PUBSUB_CHANNELS.0,
                lock_rank::KV_PUBSUB_CHANNELS.1,
            ),
            sweep_at: std::sync::atomic::AtomicUsize::new(0),
        }
    }
}

impl std::fmt::Debug for PubSub {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PubSub")
            .field("channels", &self.channels.read().len())
            .finish()
    }
}

impl PubSub {
    /// An empty bus.
    pub fn new() -> Arc<PubSub> {
        Arc::new(PubSub::default())
    }

    /// Subscribe to `channel`.
    pub fn subscribe(&self, channel: &str) -> Subscription {
        const MIN_SWEEP: usize = 8;
        let (tx, rx) = unbounded();
        let alive = Arc::new(AtomicBool::new(true));
        let mut chans = self.channels.write();
        // Prune on subscribe as well as on publish, in two tiers: the
        // target channel's dead subscribers go now (O(one vec)), and a
        // full sweep dropping emptied channel entries runs only when the
        // map has grown past a doubling watermark — channels that only
        // ever see subscriptions must not leak forever, but a bus with
        // 10k live query streams must not rescan all of them on every
        // subscribe either.
        if chans.len() >= self.sweep_at.load(Ordering::Relaxed) {
            chans.retain(|_, subs| {
                subs.retain(|s| s.alive.load(Ordering::Acquire));
                !subs.is_empty()
            });
            self.sweep_at
                .store((chans.len() * 2).max(MIN_SWEEP), Ordering::Relaxed);
        }
        let subs = chans.entry(channel.to_owned()).or_default();
        subs.retain(|s| s.alive.load(Ordering::Acquire));
        let notify: NotifyHook = Arc::new(OnceLock::new());
        subs.push(Subscriber {
            tx,
            alive: alive.clone(),
            notify: notify.clone(),
        });
        Subscription {
            rx,
            channel: channel.to_owned(),
            alive,
            notify,
        }
    }

    /// Publish to every live subscriber; returns the number reached.
    /// Dropped subscribers are pruned on the way.
    pub fn publish(&self, channel: &str, message: impl Into<Bytes>) -> usize {
        let message = message.into();
        let mut any_dead = false;
        let mut delivered = 0;
        {
            let chans = self.channels.read();
            if let Some(subs) = chans.get(channel) {
                for sub in subs {
                    if sub.alive.load(Ordering::Acquire) && sub.tx.send(message.clone()).is_ok() {
                        delivered += 1;
                        // Poke push-style consumers (see `set_notify`); runs
                        // under the channel read lock, so hooks are bound to
                        // higher-ranked leaf locks only.
                        if let Some(hook) = sub.notify.get() {
                            hook();
                        }
                    } else {
                        any_dead = true;
                    }
                }
            }
        }
        if any_dead {
            let mut chans = self.channels.write();
            if let Some(subs) = chans.get_mut(channel) {
                subs.retain(|s| s.alive.load(Ordering::Acquire));
                if subs.is_empty() {
                    chans.remove(channel);
                }
            }
        }
        delivered
    }

    /// Number of live subscribers currently registered on `channel`.
    pub fn subscriber_count(&self, channel: &str) -> usize {
        self.channels
            .read()
            .get(channel)
            .map(|v| v.iter().filter(|s| s.alive.load(Ordering::Acquire)).count())
            .unwrap_or(0)
    }

    /// Number of channel entries currently held in the map (dead channels
    /// are pruned on subscribe and on publish-to-that-channel).
    pub fn channel_count(&self) -> usize {
        self.channels.read().len()
    }

    /// Drop all subscribers of a channel.
    pub fn unsubscribe_all(&self, channel: &str) {
        self.channels.write().remove(channel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn publish_reaches_all_subscribers() {
        let bus = PubSub::new();
        let s1 = bus.subscribe("inval");
        let s2 = bus.subscribe("inval");
        assert_eq!(bus.publish("inval", &b"q1"[..]), 2);
        assert_eq!(s1.try_recv().unwrap(), Bytes::from_static(b"q1"));
        assert_eq!(s2.try_recv().unwrap(), Bytes::from_static(b"q1"));
        assert!(s1.try_recv().is_none());
    }

    #[test]
    fn channels_are_isolated() {
        let bus = PubSub::new();
        let a = bus.subscribe("a");
        let b = bus.subscribe("b");
        bus.publish("a", &b"m"[..]);
        assert!(a.try_recv().is_some());
        assert!(b.try_recv().is_none());
    }

    #[test]
    fn publish_to_empty_channel_is_zero() {
        let bus = PubSub::new();
        assert_eq!(bus.publish("nobody", &b"m"[..]), 0);
    }

    #[test]
    fn dropped_subscriber_is_pruned() {
        let bus = PubSub::new();
        let s1 = bus.subscribe("c");
        let s2 = bus.subscribe("c");
        drop(s2);
        assert_eq!(bus.publish("c", &b"m"[..]), 1);
        assert!(s1.try_recv().is_some());
        assert_eq!(bus.subscriber_count("c"), 1, "dead subscriber pruned");
    }

    #[test]
    fn channel_entry_removed_when_all_dead() {
        let bus = PubSub::new();
        let s = bus.subscribe("c");
        drop(s);
        bus.publish("c", &b"m"[..]);
        assert_eq!(bus.subscriber_count("c"), 0);
    }

    #[test]
    fn subscribe_prunes_dead_subscribers_and_empty_channels() {
        let bus = PubSub::new();
        // A burst of short-lived subscriptions across many channels: with
        // publish-only pruning these entries would leak until someone
        // published to each channel again.
        for i in 0..16 {
            let s = bus.subscribe(&format!("ephemeral-{i}"));
            drop(s);
        }
        let _live = bus.subscribe("live");
        assert_eq!(bus.channel_count(), 1, "subscribe must sweep dead channels");
        // Dead subscriber inside a channel someone re-subscribes to.
        let s1 = bus.subscribe("c");
        drop(bus.subscribe("c"));
        let s2 = bus.subscribe("c");
        assert_eq!(bus.subscriber_count("c"), 2, "dead sibling pruned");
        assert_eq!(bus.publish("c", &b"m"[..]), 2);
        assert!(s1.try_recv().is_some() && s2.try_recv().is_some());
    }

    #[test]
    fn drain_collects_backlog() {
        let bus = PubSub::new();
        let s = bus.subscribe("c");
        bus.publish("c", &b"1"[..]);
        bus.publish("c", &b"2"[..]);
        bus.publish("c", &b"3"[..]);
        assert_eq!(s.drain().len(), 3);
        assert!(s.drain().is_empty());
    }

    #[test]
    fn cross_thread_delivery() {
        let bus = PubSub::new();
        let s = bus.subscribe("c");
        let bus2 = bus.clone();
        let t = std::thread::spawn(move || {
            bus2.publish("c", &b"hello"[..]);
        });
        t.join().unwrap();
        assert_eq!(
            s.recv_timeout(std::time::Duration::from_secs(1)).unwrap(),
            Bytes::from_static(b"hello")
        );
    }

    #[test]
    fn notify_hook_fires_per_delivered_message() {
        use std::sync::atomic::AtomicUsize;
        let bus = PubSub::new();
        let s = bus.subscribe("c");
        let pokes = Arc::new(AtomicUsize::new(0));
        let counter = pokes.clone();
        s.set_notify(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        bus.publish("c", &b"1"[..]);
        bus.publish("c", &b"2"[..]);
        assert_eq!(pokes.load(Ordering::SeqCst), 2);
        assert_eq!(s.drain().len(), 2);
        // Other subscriptions on the channel are not affected by the hook.
        let plain = bus.subscribe("c");
        bus.publish("c", &b"3"[..]);
        assert_eq!(pokes.load(Ordering::SeqCst), 3);
        assert!(plain.try_recv().is_some());
        // A second install is ignored, not a panic.
        s.set_notify(|| {});
        bus.publish("c", &b"4"[..]);
        assert_eq!(pokes.load(Ordering::SeqCst), 4);
    }

    #[test]
    fn notify_hook_not_called_after_subscription_drop() {
        use std::sync::atomic::AtomicUsize;
        let bus = PubSub::new();
        let s = bus.subscribe("c");
        let pokes = Arc::new(AtomicUsize::new(0));
        let counter = pokes.clone();
        s.set_notify(move || {
            counter.fetch_add(1, Ordering::SeqCst);
        });
        drop(s);
        bus.publish("c", &b"m"[..]);
        assert_eq!(pokes.load(Ordering::SeqCst), 0);
    }

    #[test]
    fn unsubscribe_all_clears() {
        let bus = PubSub::new();
        let _s = bus.subscribe("c");
        assert_eq!(bus.subscriber_count("c"), 1);
        bus.unsubscribe_all("c");
        assert_eq!(bus.subscriber_count("c"), 0);
    }
}

//! The sharded key-value store.

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;
use quaestor_common::{fx_hash_str, ClockRef, FxHashMap, SystemClock, Timestamp};

/// A value stored under a key.
#[derive(Debug, Clone, PartialEq)]
pub enum KvValue {
    /// Opaque bytes (`GET`/`SET`).
    Bytes(Bytes),
    /// Integer counter (`INCRBY`).
    Int(i64),
    /// Hash of integer fields (`HINCRBY`) — the counting-Bloom-filter
    /// layout: one hash per filter, one field per counter slot.
    Hash(FxHashMap<u64, i64>),
    /// FIFO list (`LPUSH`/`RPOP`) — the message-queue layout.
    List(VecDeque<Bytes>),
}

#[derive(Debug)]
struct Entry {
    value: KvValue,
    /// Absolute expiry deadline, if set.
    expires_at: Option<Timestamp>,
}

#[derive(Debug, Default)]
struct Shard {
    map: HashMap<String, Entry>,
}

impl Shard {
    /// Drop the entry if it has expired as of `now`; returns whether the
    /// key is (still) live.
    fn check_live(&mut self, key: &str, now: Timestamp) -> bool {
        match self.map.get(key) {
            Some(e) => {
                if e.expires_at.is_some_and(|d| d <= now) {
                    self.map.remove(key);
                    false
                } else {
                    true
                }
            }
            None => false,
        }
    }
}

/// Operation counters for throughput accounting.
#[derive(Debug, Default)]
pub struct KvStats {
    reads: AtomicU64,
    writes: AtomicU64,
}

impl KvStats {
    /// Read operations served.
    pub fn reads(&self) -> u64 {
        self.reads.load(Ordering::Relaxed)
    }

    /// Write operations served.
    pub fn writes(&self) -> u64 {
        self.writes.load(Ordering::Relaxed)
    }

    /// Total operations served.
    pub fn total(&self) -> u64 {
        self.reads() + self.writes()
    }
}

/// A sharded, thread-safe, in-memory KV store with Redis-like primitives.
///
/// Sharding serves two purposes: write concurrency inside one logical
/// instance, and a model for the paper's horizontal partitioning of the
/// EBF ("each table has its own EBF instance", §3.3) when several
/// `KvStore`s are instantiated.
pub struct KvStore {
    shards: Vec<Mutex<Shard>>,
    clock: ClockRef,
    stats: KvStats,
}

impl std::fmt::Debug for KvStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KvStore")
            .field("shards", &self.shards.len())
            .finish_non_exhaustive()
    }
}

impl KvStore {
    /// A store with the given shard count and clock.
    pub fn with_clock(shards: usize, clock: ClockRef) -> Arc<KvStore> {
        assert!(shards > 0);
        Arc::new(KvStore {
            shards: (0..shards).map(|_| Mutex::new(Shard::default())).collect(),
            clock,
            stats: KvStats::default(),
        })
    }

    /// A 16-shard store on the system clock.
    pub fn new() -> Arc<KvStore> {
        Self::with_clock(16, SystemClock::shared())
    }

    fn shard(&self, key: &str) -> &Mutex<Shard> {
        let idx = (fx_hash_str(key) % self.shards.len() as u64) as usize;
        &self.shards[idx]
    }

    fn now(&self) -> Timestamp {
        self.clock.now()
    }

    /// Operation statistics.
    pub fn stats(&self) -> &KvStats {
        &self.stats
    }

    // ---- strings -------------------------------------------------------

    /// `SET key value [PX ttl]`.
    pub fn set(&self, key: &str, value: impl Into<Bytes>, ttl_ms: Option<u64>) {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        shard.map.insert(
            key.to_owned(),
            Entry {
                value: KvValue::Bytes(value.into()),
                expires_at: ttl_ms.map(|t| now.plus(t)),
            },
        );
    }

    /// `GET key`.
    pub fn get(&self, key: &str) -> Option<Bytes> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        if !shard.check_live(key, now) {
            return None;
        }
        match &shard.map.get(key)?.value {
            KvValue::Bytes(b) => Some(b.clone()),
            _ => None,
        }
    }

    /// `DEL key` — returns whether the key existed.
    pub fn del(&self, key: &str) -> bool {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        shard.check_live(key, now);
        shard.map.remove(key).is_some()
    }

    /// `EXISTS key`.
    pub fn exists(&self, key: &str) -> bool {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        self.shard(key).lock().check_live(key, now)
    }

    /// `PEXPIRE key ttl` — set/replace the expiry of an existing key.
    pub fn expire(&self, key: &str, ttl_ms: u64) -> bool {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        if !shard.check_live(key, now) {
            return false;
        }
        if let Some(e) = shard.map.get_mut(key) {
            e.expires_at = Some(now.plus(ttl_ms));
            true
        } else {
            false
        }
    }

    /// `PTTL key` — remaining life in ms (`None` = no key or no expiry).
    pub fn ttl(&self, key: &str) -> Option<u64> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        if !shard.check_live(key, now) {
            return None;
        }
        shard.map.get(key)?.expires_at.map(|d| d.since(now))
    }

    // ---- counters ------------------------------------------------------

    /// `INCRBY key delta` — atomic; missing keys start at 0.
    pub fn incr_by(&self, key: &str, delta: i64) -> i64 {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        shard.check_live(key, now);
        let entry = shard.map.entry(key.to_owned()).or_insert(Entry {
            value: KvValue::Int(0),
            expires_at: None,
        });
        match &mut entry.value {
            KvValue::Int(i) => {
                *i += delta;
                *i
            }
            other => {
                // Redis would error; we overwrite-with-counter, which no
                // internal caller relies on, but keep it deterministic.
                *other = KvValue::Int(delta);
                delta
            }
        }
    }

    /// Counter read (0 for missing).
    pub fn get_int(&self, key: &str) -> i64 {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        if !shard.check_live(key, now) {
            return 0;
        }
        match shard.map.get(key) {
            Some(Entry {
                value: KvValue::Int(i),
                ..
            }) => *i,
            _ => 0,
        }
    }

    // ---- hashes (counting Bloom filter layout) --------------------------

    /// `HINCRBY key field delta`, clamped at zero on decrement (a counting
    /// Bloom filter counter can never go negative; clamping matches the
    /// Orestes Bloom filter implementation the paper open-sourced).
    pub fn hincr_clamped(&self, key: &str, field: u64, delta: i64) -> i64 {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        shard.check_live(key, now);
        let entry = shard.map.entry(key.to_owned()).or_insert(Entry {
            value: KvValue::Hash(FxHashMap::default()),
            expires_at: None,
        });
        match &mut entry.value {
            KvValue::Hash(h) => {
                let slot = h.entry(field).or_insert(0);
                *slot = (*slot + delta).max(0);
                let v = *slot;
                if v == 0 {
                    h.remove(&field);
                }
                v
            }
            _ => 0,
        }
    }

    /// `HGET key field` (0 for missing).
    pub fn hget(&self, key: &str, field: u64) -> i64 {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        if !shard.check_live(key, now) {
            return 0;
        }
        match shard.map.get(key) {
            Some(Entry {
                value: KvValue::Hash(h),
                ..
            }) => h.get(&field).copied().unwrap_or(0),
            _ => 0,
        }
    }

    /// `HGETALL key` — snapshot of all non-zero fields.
    pub fn hgetall(&self, key: &str) -> Vec<(u64, i64)> {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        if !shard.check_live(key, now) {
            return Vec::new();
        }
        match shard.map.get(key) {
            Some(Entry {
                value: KvValue::Hash(h),
                ..
            }) => h.iter().map(|(&k, &v)| (k, v)).collect(),
            _ => Vec::new(),
        }
    }

    // ---- lists (message queues) ----------------------------------------

    /// `LPUSH key value` — enqueue; returns the new length.
    pub fn lpush(&self, key: &str, value: impl Into<Bytes>) -> usize {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        shard.check_live(key, now);
        let entry = shard.map.entry(key.to_owned()).or_insert(Entry {
            value: KvValue::List(VecDeque::new()),
            expires_at: None,
        });
        match &mut entry.value {
            KvValue::List(q) => {
                q.push_front(value.into());
                q.len()
            }
            _ => 0,
        }
    }

    /// `RPOP key` — dequeue the oldest element.
    pub fn rpop(&self, key: &str) -> Option<Bytes> {
        self.stats.writes.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        if !shard.check_live(key, now) {
            return None;
        }
        match &mut shard.map.get_mut(key)?.value {
            KvValue::List(q) => q.pop_back(),
            _ => None,
        }
    }

    /// `LLEN key`.
    pub fn llen(&self, key: &str) -> usize {
        self.stats.reads.fetch_add(1, Ordering::Relaxed);
        let now = self.now();
        let mut shard = self.shard(key).lock();
        if !shard.check_live(key, now) {
            return 0;
        }
        match shard.map.get(key) {
            Some(Entry {
                value: KvValue::List(q),
                ..
            }) => q.len(),
            _ => 0,
        }
    }

    // ---- maintenance -----------------------------------------------------

    /// Active-expiry sweep: drop every expired key. Redis runs this
    /// probabilistically; tests and the simulator call it explicitly.
    pub fn sweep_expired(&self) -> usize {
        let now = self.now();
        let mut removed = 0;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let before = shard.map.len();
            shard
                .map
                .retain(|_, e| e.expires_at.is_none_or(|d| d > now));
            removed += before - shard.map.len();
        }
        removed
    }

    /// Number of live keys (expired-but-unswept keys excluded).
    pub fn len(&self) -> usize {
        let now = self.now();
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .map
                    .values()
                    .filter(|e| e.expires_at.is_none_or(|d| d > now))
                    .count()
            })
            .sum()
    }

    /// True if no live keys exist.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Remove everything (FLUSHALL).
    pub fn clear(&self) {
        for shard in &self.shards {
            shard.lock().map.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::ManualClock;

    fn store() -> (Arc<KvStore>, Arc<ManualClock>) {
        let clock = ManualClock::new();
        (KvStore::with_clock(4, clock.clone()), clock)
    }

    #[test]
    fn set_get_del() {
        let (kv, _) = store();
        kv.set("a", &b"hello"[..], None);
        assert_eq!(kv.get("a").unwrap(), Bytes::from_static(b"hello"));
        assert!(kv.del("a"));
        assert!(kv.get("a").is_none());
        assert!(!kv.del("a"));
    }

    #[test]
    fn keys_expire() {
        let (kv, clock) = store();
        kv.set("a", &b"x"[..], Some(100));
        assert!(kv.exists("a"));
        assert_eq!(kv.ttl("a"), Some(100));
        clock.advance(99);
        assert!(kv.exists("a"));
        clock.advance(1);
        assert!(!kv.exists("a"));
        assert!(kv.get("a").is_none());
    }

    #[test]
    fn expire_extends_life() {
        let (kv, clock) = store();
        kv.set("a", &b"x"[..], Some(50));
        clock.advance(40);
        assert!(kv.expire("a", 100));
        clock.advance(60);
        assert!(kv.exists("a"), "expiry was extended");
        assert!(!kv.expire("missing", 10));
    }

    #[test]
    fn counters_are_atomic_across_threads() {
        let (kv, _) = store();
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        kv.incr_by("ctr", 1);
                    }
                });
            }
        });
        assert_eq!(kv.get_int("ctr"), 8000);
    }

    #[test]
    fn hash_counters_clamp_at_zero() {
        let (kv, _) = store();
        assert_eq!(kv.hincr_clamped("cbf", 7, 2), 2);
        assert_eq!(kv.hincr_clamped("cbf", 7, -1), 1);
        assert_eq!(kv.hincr_clamped("cbf", 7, -5), 0, "clamped");
        assert_eq!(kv.hget("cbf", 7), 0);
        assert!(kv.hgetall("cbf").is_empty(), "zero counters are removed");
    }

    #[test]
    fn hgetall_snapshots_nonzero() {
        let (kv, _) = store();
        kv.hincr_clamped("cbf", 1, 3);
        kv.hincr_clamped("cbf", 2, 1);
        kv.hincr_clamped("cbf", 2, -1);
        let mut all = kv.hgetall("cbf");
        all.sort_unstable();
        assert_eq!(all, vec![(1, 3)]);
    }

    #[test]
    fn list_is_fifo() {
        let (kv, _) = store();
        kv.lpush("q", &b"1"[..]);
        kv.lpush("q", &b"2"[..]);
        kv.lpush("q", &b"3"[..]);
        assert_eq!(kv.llen("q"), 3);
        assert_eq!(kv.rpop("q").unwrap(), Bytes::from_static(b"1"));
        assert_eq!(kv.rpop("q").unwrap(), Bytes::from_static(b"2"));
        assert_eq!(kv.rpop("q").unwrap(), Bytes::from_static(b"3"));
        assert!(kv.rpop("q").is_none());
    }

    #[test]
    fn sweep_removes_expired() {
        let (kv, clock) = store();
        for i in 0..10 {
            kv.set(&format!("k{i}"), &b"x"[..], Some(10 + i));
        }
        kv.set("keep", &b"x"[..], None);
        clock.advance(15);
        let removed = kv.sweep_expired();
        assert_eq!(removed, 6, "k0..k5 expired (deadlines 10..15)");
        assert_eq!(kv.len(), 5);
        assert!(kv.exists("keep"));
    }

    #[test]
    fn stats_count_ops() {
        let (kv, _) = store();
        kv.set("a", &b"x"[..], None);
        kv.get("a");
        kv.get("b");
        assert_eq!(kv.stats().writes(), 1);
        assert_eq!(kv.stats().reads(), 2);
        assert_eq!(kv.stats().total(), 3);
    }

    #[test]
    fn clear_flushes() {
        let (kv, _) = store();
        kv.set("a", &b"x"[..], None);
        kv.incr_by("b", 1);
        kv.clear();
        assert!(kv.is_empty());
    }
}

//! A string-keyed LRU map with O(1) touch/insert/evict.
//!
//! Web caches have bounded storage; Breslau et al.'s Zipf analysis (cited
//! in §7) is exactly about how Zipf-distributed requests interact with
//! bounded caches, so the capacity bound must be real. Implemented as a
//! slab of doubly-linked nodes plus a key → slot map. Node values are
//! `Option<V>` so they can be moved out on removal/eviction without a
//! `Default` bound.

use quaestor_common::FxHashMap;

const NIL: usize = usize::MAX;

struct Node<V> {
    key: String,
    value: Option<V>,
    prev: usize,
    next: usize,
}

/// Least-recently-used map with a fixed capacity.
pub struct LruCache<V> {
    map: FxHashMap<String, usize>,
    slab: Vec<Node<V>>,
    free: Vec<usize>,
    head: usize, // most recently used
    tail: usize, // least recently used
    capacity: usize,
}

impl<V> std::fmt::Debug for LruCache<V> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LruCache")
            .field("len", &self.len())
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl<V> LruCache<V> {
    /// An empty cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> LruCache<V> {
        assert!(capacity > 0, "capacity must be positive");
        LruCache {
            map: FxHashMap::default(),
            slab: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            capacity,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Capacity bound.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    fn detach(&mut self, idx: usize) {
        let (prev, next) = (self.slab[idx].prev, self.slab[idx].next);
        if prev != NIL {
            self.slab[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slab[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    fn attach_front(&mut self, idx: usize) {
        self.slab[idx].prev = NIL;
        self.slab[idx].next = self.head;
        if self.head != NIL {
            self.slab[self.head].prev = idx;
        }
        self.head = idx;
        if self.tail == NIL {
            self.tail = idx;
        }
    }

    fn release(&mut self, idx: usize) -> V {
        self.detach(idx);
        self.slab[idx].key = String::new();
        self.free.push(idx);
        self.slab[idx].value.take().expect("live node has a value")
    }

    /// Get and mark as most-recently-used.
    pub fn get(&mut self, key: &str) -> Option<&V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        self.slab[idx].value.as_ref()
    }

    /// Mutable access; also touches recency.
    pub fn get_mut(&mut self, key: &str) -> Option<&mut V> {
        let idx = *self.map.get(key)?;
        self.detach(idx);
        self.attach_front(idx);
        self.slab[idx].value.as_mut()
    }

    /// Get without touching recency (used for metrics peeks).
    pub fn peek(&self, key: &str) -> Option<&V> {
        self.map
            .get(key)
            .and_then(|&idx| self.slab[idx].value.as_ref())
    }

    /// Insert or replace; evicts the LRU entry when full. Returns the
    /// evicted `(key, value)` if any.
    pub fn insert(&mut self, key: String, value: V) -> Option<(String, V)> {
        if let Some(&idx) = self.map.get(&key) {
            self.slab[idx].value = Some(value);
            self.detach(idx);
            self.attach_front(idx);
            return None;
        }
        let mut evicted = None;
        if self.map.len() >= self.capacity {
            let lru = self.tail;
            debug_assert_ne!(lru, NIL, "full cache must have a tail");
            let old_key = self.slab[lru].key.clone();
            self.map.remove(&old_key);
            let old_value = self.release(lru);
            evicted = Some((old_key, old_value));
        }
        let idx = match self.free.pop() {
            Some(i) => {
                self.slab[i].key = key.clone();
                self.slab[i].value = Some(value);
                i
            }
            None => {
                self.slab.push(Node {
                    key: key.clone(),
                    value: Some(value),
                    prev: NIL,
                    next: NIL,
                });
                self.slab.len() - 1
            }
        };
        self.map.insert(key, idx);
        self.attach_front(idx);
        evicted
    }

    /// Remove an entry, returning its value.
    pub fn remove(&mut self, key: &str) -> Option<V> {
        let idx = self.map.remove(key)?;
        Some(self.release(idx))
    }

    /// True if the key is present.
    pub fn contains(&self, key: &str) -> bool {
        self.map.contains_key(key)
    }

    /// Remove every entry for which `pred` returns false.
    pub fn retain(&mut self, mut pred: impl FnMut(&str, &V) -> bool) {
        let doomed: Vec<String> = self
            .map
            .iter()
            .filter(|(k, &idx)| {
                let v = self.slab[idx].value.as_ref().expect("live node");
                !pred(k, v)
            })
            .map(|(k, _)| k.clone())
            .collect();
        for k in doomed {
            self.remove(&k);
        }
    }

    /// Clear everything.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slab.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
    }

    /// Keys from most- to least-recently used (test/diagnostic helper).
    pub fn keys_mru(&self) -> Vec<&str> {
        let mut out = Vec::with_capacity(self.len());
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slab[cur].key.as_str());
            cur = self.slab[cur].next;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn insert_get() {
        let mut lru = LruCache::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        assert_eq!(lru.get("a"), Some(&1));
        assert_eq!(lru.get("b"), Some(&2));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn eviction_is_lru_order() {
        let mut lru = LruCache::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        lru.get("a"); // a is now MRU
        let evicted = lru.insert("c".into(), 3);
        assert_eq!(evicted, Some(("b".to_string(), 2)));
        assert!(lru.contains("a") && lru.contains("c") && !lru.contains("b"));
    }

    #[test]
    fn replace_does_not_evict() {
        let mut lru = LruCache::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        assert!(lru.insert("a".into(), 10).is_none());
        assert_eq!(lru.get("a"), Some(&10));
        assert_eq!(lru.len(), 2);
    }

    #[test]
    fn peek_does_not_touch() {
        let mut lru = LruCache::new(2);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        lru.peek("a");
        lru.insert("c".into(), 3);
        assert!(!lru.contains("a"), "peek must not refresh recency");
    }

    #[test]
    fn remove_returns_value() {
        let mut lru = LruCache::new(3);
        lru.insert("a".into(), 7);
        assert_eq!(lru.remove("a"), Some(7));
        assert_eq!(lru.remove("a"), None);
        assert!(lru.is_empty());
    }

    #[test]
    fn retain_filters() {
        let mut lru = LruCache::new(10);
        for i in 0..10 {
            lru.insert(format!("k{i}"), i);
        }
        lru.retain(|_, v| v % 2 == 0);
        assert_eq!(lru.len(), 5);
        assert!(lru.contains("k4") && !lru.contains("k5"));
    }

    #[test]
    fn slots_are_reused_after_retain() {
        let mut lru = LruCache::new(4);
        for i in 0..4 {
            lru.insert(format!("k{i}"), i);
        }
        lru.retain(|_, _| false);
        assert!(lru.is_empty());
        for i in 10..14 {
            lru.insert(format!("k{i}"), i);
        }
        assert_eq!(lru.len(), 4);
        assert_eq!(lru.get("k12"), Some(&12));
    }

    #[test]
    fn mru_order_tracks_access() {
        let mut lru = LruCache::new(3);
        lru.insert("a".into(), 1);
        lru.insert("b".into(), 2);
        lru.insert("c".into(), 3);
        lru.get("a");
        assert_eq!(lru.keys_mru(), vec!["a", "c", "b"]);
    }

    #[test]
    fn heavy_churn_is_consistent() {
        let mut lru = LruCache::new(64);
        for round in 0..1000 {
            lru.insert(format!("k{}", round % 100), round);
            assert!(lru.len() <= 64);
        }
        assert_eq!(lru.len(), 64);
    }

    /// Reference-model property test: the LRU must behave exactly like a
    /// naive Vec-based model under arbitrary op sequences.
    #[derive(Debug, Clone)]
    enum Op {
        Insert(u8, u32),
        Get(u8),
        Remove(u8),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (any::<u8>(), any::<u32>()).prop_map(|(k, v)| Op::Insert(k % 16, v)),
            any::<u8>().prop_map(|k| Op::Get(k % 16)),
            any::<u8>().prop_map(|k| Op::Remove(k % 16)),
        ]
    }

    proptest! {
        #[test]
        fn matches_reference_model(ops in proptest::collection::vec(arb_op(), 1..200)) {
            const CAP: usize = 4;
            let mut lru = LruCache::new(CAP);
            // model: Vec of (key, value), front = MRU
            let mut model: Vec<(String, u32)> = Vec::new();
            for op in ops {
                match op {
                    Op::Insert(k, v) => {
                        let key = format!("k{k}");
                        if let Some(pos) = model.iter().position(|(mk, _)| *mk == key) {
                            model.remove(pos);
                        } else if model.len() >= CAP {
                            model.pop();
                        }
                        model.insert(0, (key.clone(), v));
                        lru.insert(key, v);
                    }
                    Op::Get(k) => {
                        let key = format!("k{k}");
                        let got = lru.get(&key).copied();
                        let want = model.iter().position(|(mk, _)| *mk == key).map(|pos| {
                            let e = model.remove(pos);
                            let v = e.1;
                            model.insert(0, e);
                            v
                        });
                        prop_assert_eq!(got, want);
                    }
                    Op::Remove(k) => {
                        let key = format!("k{k}");
                        let got = lru.remove(&key);
                        let want = model
                            .iter()
                            .position(|(mk, _)| *mk == key)
                            .map(|pos| model.remove(pos).1);
                        prop_assert_eq!(got, want);
                    }
                }
                prop_assert_eq!(lru.len(), model.len());
                let mru: Vec<String> = lru.keys_mru().iter().map(|s| s.to_string()).collect();
                let model_keys: Vec<String> = model.iter().map(|(k, _)| k.clone()).collect();
                prop_assert_eq!(mru, model_keys);
            }
        }
    }
}

//! Cached HTTP responses.

use bytes::Bytes;
use quaestor_common::{Timestamp, Version};

/// One cached response: body, validator and freshness lifetime.
///
/// Mirrors the HTTP caching model of §2: a TTL assigned by the origin
/// (`Cache-Control: max-age`), a version validator (`ETag`) used for
/// revalidation, and the storage instant from which age is computed.
#[derive(Debug, Clone, PartialEq)]
pub struct CacheEntry {
    /// Response body (a serialized query result or record).
    pub body: Bytes,
    /// Version validator; revalidation compares this against the origin.
    pub etag: Version,
    /// When this copy was stored at the cache.
    pub stored_at: Timestamp,
    /// Freshness lifetime granted by the origin, in ms.
    pub ttl_ms: u64,
}

impl CacheEntry {
    /// A new entry stored now.
    pub fn new(body: impl Into<Bytes>, etag: Version, stored_at: Timestamp, ttl_ms: u64) -> Self {
        CacheEntry {
            body: body.into(),
            etag,
            stored_at,
            ttl_ms,
        }
    }

    /// Absolute expiry instant.
    pub fn expires_at(&self) -> Timestamp {
        self.stored_at.plus(self.ttl_ms)
    }

    /// Is the copy still fresh at `now`? (HTTP: `age < max-age`.)
    pub fn is_fresh(&self, now: Timestamp) -> bool {
        now < self.expires_at()
    }

    /// Age of the copy at `now`, in ms.
    pub fn age(&self, now: Timestamp) -> u64 {
        now.since(self.stored_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn freshness_window() {
        let e = CacheEntry::new(&b"body"[..], 3, Timestamp::from_millis(100), 50);
        assert!(e.is_fresh(Timestamp::from_millis(100)));
        assert!(e.is_fresh(Timestamp::from_millis(149)));
        assert!(
            !e.is_fresh(Timestamp::from_millis(150)),
            "expiry is exclusive"
        );
        assert_eq!(e.expires_at(), Timestamp::from_millis(150));
    }

    #[test]
    fn age_computation() {
        let e = CacheEntry::new(&b""[..], 1, Timestamp::from_millis(100), 50);
        assert_eq!(e.age(Timestamp::from_millis(130)), 30);
        assert_eq!(e.age(Timestamp::from_millis(90)), 0, "clock skew clamps");
    }

    #[test]
    fn zero_ttl_never_fresh() {
        let e = CacheEntry::new(&b""[..], 1, Timestamp::from_millis(100), 0);
        assert!(!e.is_fresh(Timestamp::from_millis(100)));
    }
}

//! The web-caching substrate: HTTP-model caches.
//!
//! Quaestor leverages "the web's infrastructure consisting of caches, load
//! balancers, routers, firewalls and other middleboxes" (§1) without
//! modifying it. Two cache classes matter (§2):
//!
//! * **Expiration-based caches** (browser caches, forward/ISP proxies):
//!   honour a TTL, serve any non-expired copy by URL, and *cannot be
//!   invalidated by the server* — only client-triggered revalidations
//!   refresh them. Modelled by [`ExpirationCache`].
//! * **Invalidation-based caches** (CDNs, reverse proxies): additionally
//!   accept asynchronous purges from the origin. Modelled by
//!   [`InvalidationCache`].
//!
//! [`CacheHierarchy`] chains them client → origin the way a real request
//! traverses browser cache → ISP proxy → CDN edge, implementing HTTP
//! semantics: fresh copies are served locally, misses are forwarded and
//! responses are stored at every level on the way back, and revalidations
//! bypass expiration-based levels (Cache-Control: max-age=0) while still
//! being answerable by invalidation-based levels — the optimization §3.2
//! describes for offloading the origin.

pub mod cache;
pub mod entry;
pub mod hierarchy;
pub mod lru;

pub use cache::{Cache, CacheStats, ExpirationCache, InvalidationCache};
pub use entry::CacheEntry;
pub use hierarchy::{CacheHierarchy, FetchMode, FetchOutcome, LayerKind, ServedBy};
pub use lru::LruCache;

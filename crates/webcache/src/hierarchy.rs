//! Chains of caches between a client and the origin.

use std::sync::Arc;

use quaestor_common::Timestamp;

use crate::cache::{Cache, ExpirationCache, InvalidationCache};
use crate::entry::CacheEntry;

pub use crate::cache::LayerKind;

/// How the client wants this fetch handled — the consistency lever of
/// §3.2 (Figure 4).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FetchMode {
    /// Normal cached load: any fresh copy anywhere may answer.
    CachedLoad,
    /// Revalidation: bypass expiration-based caches (the copy there may be
    /// stale — the EBF said so), but invalidation-based caches are kept
    /// fresh by purges and may answer. "Adjusting Δ ... allows
    /// revalidation requests to be answered by invalidation-based caches
    /// instead of the origin servers." (§3.2)
    Revalidate,
    /// Strong consistency: "explicit revalidation (cache miss at all
    /// levels)" — straight to the origin.
    Bypass,
}

/// Who ultimately served a fetch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Cache level `i` (0 = closest to the client).
    Layer(usize),
    /// The origin server.
    Origin,
}

/// Result of a fetch through the hierarchy.
#[derive(Debug, Clone)]
pub struct FetchOutcome {
    /// The response (always fresh according to the serving node's view).
    pub entry: CacheEntry,
    /// Which node answered.
    pub served_by: ServedBy,
}

/// An ordered chain of caches from client to origin.
///
/// Levels are `Arc`-shared [`Cache`] trait objects, so a CDN edge can be
/// common to many clients while each client keeps a private browser cache
/// — the topology of Figure 3 — and custom tier implementations slot in
/// without touching the traversal logic.
#[derive(Debug, Clone, Default)]
pub struct CacheHierarchy {
    layers: Vec<Arc<dyn Cache>>,
}

impl CacheHierarchy {
    /// An empty hierarchy (every fetch goes to the origin).
    pub fn new() -> CacheHierarchy {
        CacheHierarchy { layers: Vec::new() }
    }

    /// Append a cache level (closest-first order).
    pub fn push(mut self, cache: Arc<dyn Cache>) -> Self {
        self.layers.push(cache);
        self
    }

    /// Append an expiration-based level (closest-first order).
    pub fn push_expiration(self, cache: Arc<ExpirationCache>) -> Self {
        self.push(cache)
    }

    /// Append an invalidation-based level.
    pub fn push_invalidation(self, cache: Arc<InvalidationCache>) -> Self {
        self.push(cache)
    }

    /// Number of levels.
    pub fn depth(&self) -> usize {
        self.layers.len()
    }

    /// Kind of level `i`.
    pub fn layer_kind(&self, i: usize) -> Option<LayerKind> {
        self.layers.get(i).map(|l| l.kind())
    }

    /// Fetch `key` at `now` with the given mode; `origin` is invoked on a
    /// full miss and must return the authoritative fresh entry. The
    /// response is stored at every level the request traversed (standard
    /// HTTP response caching on the way back).
    pub fn fetch(
        &self,
        key: &str,
        now: Timestamp,
        mode: FetchMode,
        origin: impl FnOnce() -> CacheEntry,
    ) -> FetchOutcome {
        let mut traversed: Vec<usize> = Vec::with_capacity(self.layers.len());
        for (i, layer) in self.layers.iter().enumerate() {
            let consult = match mode {
                FetchMode::CachedLoad => true,
                FetchMode::Revalidate => layer.kind() == LayerKind::Invalidation,
                FetchMode::Bypass => false,
            };
            if consult {
                if let Some(entry) = layer.get(key, now) {
                    // Fill the caches the request passed through.
                    for &j in &traversed {
                        self.layers[j].put(key, entry.clone());
                    }
                    return FetchOutcome {
                        entry,
                        served_by: ServedBy::Layer(i),
                    };
                }
            }
            traversed.push(i);
        }
        let entry = origin();
        for &j in &traversed {
            self.layers[j].put(key, entry.clone());
        }
        FetchOutcome {
            entry,
            served_by: ServedBy::Origin,
        }
    }

    /// Purge `key` from every purgeable level (the origin's asynchronous
    /// invalidation). Expiration-based levels refuse the purge — they
    /// *cannot* be purged, which is why the EBF exists.
    pub fn purge(&self, key: &str) -> usize {
        self.layers.iter().filter(|l| l.purge(key)).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (Arc<ExpirationCache>, Arc<InvalidationCache>, CacheHierarchy) {
        let browser = Arc::new(ExpirationCache::new("browser", 128));
        let cdn = Arc::new(InvalidationCache::new("cdn", 128));
        let h = CacheHierarchy::new()
            .push_expiration(browser.clone())
            .push_invalidation(cdn.clone());
        (browser, cdn, h)
    }

    fn fresh(etag: u64, now: Timestamp) -> CacheEntry {
        CacheEntry::new(&b"body"[..], etag, now, 1_000)
    }

    #[test]
    fn miss_goes_to_origin_and_fills_all_levels() {
        let (browser, cdn, h) = setup();
        let now = Timestamp::from_millis(0);
        let out = h.fetch("k", now, FetchMode::CachedLoad, || fresh(1, now));
        assert_eq!(out.served_by, ServedBy::Origin);
        assert_eq!(browser.len(), 1, "browser filled on response path");
        assert_eq!(cdn.len(), 1, "cdn filled on response path");
    }

    #[test]
    fn second_fetch_hits_browser() {
        let (_, _, h) = setup();
        let now = Timestamp::from_millis(0);
        h.fetch("k", now, FetchMode::CachedLoad, || fresh(1, now));
        let out = h.fetch("k", now.plus(10), FetchMode::CachedLoad, || {
            panic!("must not reach origin")
        });
        assert_eq!(out.served_by, ServedBy::Layer(0));
    }

    #[test]
    fn cdn_hit_fills_browser() {
        let (browser, cdn, h) = setup();
        let now = Timestamp::from_millis(0);
        cdn.put("k", fresh(1, now));
        let out = h.fetch("k", now.plus(1), FetchMode::CachedLoad, || {
            panic!("cdn should answer")
        });
        assert_eq!(out.served_by, ServedBy::Layer(1));
        assert_eq!(browser.len(), 1, "browser warmed by the pass-through");
    }

    #[test]
    fn revalidation_skips_browser_but_uses_cdn() {
        let (browser, cdn, h) = setup();
        let now = Timestamp::from_millis(0);
        browser.put("k", fresh(1, now)); // possibly stale copy
        cdn.put("k", fresh(2, now)); // fresh copy (purged on changes)
        let out = h.fetch("k", now.plus(1), FetchMode::Revalidate, || {
            panic!("cdn should answer the revalidation")
        });
        assert_eq!(out.served_by, ServedBy::Layer(1));
        assert_eq!(out.entry.etag, 2, "got the CDN copy, not the browser one");
        // And the browser copy was refreshed:
        assert_eq!(
            browser.peek("k", now.plus(2)).unwrap().etag,
            2,
            "revalidation proactively updates stale caches"
        );
    }

    #[test]
    fn bypass_reaches_origin_despite_fresh_copies() {
        let (browser, cdn, h) = setup();
        let now = Timestamp::from_millis(0);
        browser.put("k", fresh(1, now));
        cdn.put("k", fresh(1, now));
        let out = h.fetch("k", now.plus(1), FetchMode::Bypass, || {
            fresh(9, now.plus(1))
        });
        assert_eq!(out.served_by, ServedBy::Origin);
        assert_eq!(out.entry.etag, 9);
    }

    #[test]
    fn purge_hits_invalidation_layers_only() {
        let (browser, cdn, h) = setup();
        let now = Timestamp::from_millis(0);
        browser.put("k", fresh(1, now));
        cdn.put("k", fresh(1, now));
        assert_eq!(h.purge("k"), 1, "only the CDN layer purged");
        assert_eq!(cdn.len(), 0);
        assert_eq!(browser.len(), 1, "browser cache is unreachable");
    }

    #[test]
    fn expired_copies_fall_through() {
        let (_, _, h) = setup();
        let t0 = Timestamp::from_millis(0);
        h.fetch("k", t0, FetchMode::CachedLoad, || {
            CacheEntry::new(&b"v1"[..], 1, t0, 100)
        });
        // After expiry everywhere, the origin is asked again.
        let out = h.fetch("k", t0.plus(200), FetchMode::CachedLoad, || {
            CacheEntry::new(&b"v2"[..], 2, t0.plus(200), 100)
        });
        assert_eq!(out.served_by, ServedBy::Origin);
        assert_eq!(out.entry.etag, 2);
    }

    #[test]
    fn shared_cdn_across_two_clients() {
        // Two hierarchies (two clients) share one CDN: client A's miss
        // warms the CDN; client B then hits it — the "side effect" cache
        // hits of §6.2.
        let cdn = Arc::new(InvalidationCache::new("cdn", 128));
        let ha = CacheHierarchy::new()
            .push_expiration(Arc::new(ExpirationCache::new("a", 16)))
            .push_invalidation(cdn.clone());
        let hb = CacheHierarchy::new()
            .push_expiration(Arc::new(ExpirationCache::new("b", 16)))
            .push_invalidation(cdn);
        let now = Timestamp::from_millis(0);
        ha.fetch("k", now, FetchMode::CachedLoad, || fresh(1, now));
        let out = hb.fetch("k", now.plus(1), FetchMode::CachedLoad, || {
            panic!("client B must hit the shared CDN")
        });
        assert_eq!(out.served_by, ServedBy::Layer(1));
    }

    #[test]
    fn empty_hierarchy_always_origin() {
        let h = CacheHierarchy::new();
        let now = Timestamp::from_millis(0);
        let out = h.fetch("k", now, FetchMode::CachedLoad, || fresh(1, now));
        assert_eq!(out.served_by, ServedBy::Origin);
        assert_eq!(h.depth(), 0);
    }
}

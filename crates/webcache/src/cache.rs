//! The cache tier abstraction and its two concrete classes.

use parking_lot::Mutex;
use quaestor_common::Timestamp;

use crate::entry::CacheEntry;
use crate::lru::LruCache;

/// The class of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LayerKind {
    /// Browser cache / forward proxy — TTL only, not purgeable.
    Expiration,
    /// CDN edge / reverse proxy — TTL plus origin purges.
    Invalidation,
}

/// Hit/miss counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Requests answered from this cache.
    pub hits: u64,
    /// Requests forwarded upstream.
    pub misses: u64,
    /// Entries purged by the origin (invalidation caches only).
    pub purges: u64,
    /// Entries evicted by the LRU capacity bound.
    pub evictions: u64,
}

impl CacheStats {
    /// hits / (hits + misses), 0 when idle.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// One cache tier on the request path. The two concrete classes differ in
/// exactly one capability — whether the origin can purge entries — which
/// is why [`Cache::purge`] defaults to "not supported" and
/// [`Cache::kind`] drives the revalidation policy in the hierarchy.
pub trait Cache: Send + Sync + std::fmt::Debug {
    /// Cache name (for metrics and reports).
    fn name(&self) -> &str;

    /// Expiration- or invalidation-based.
    fn kind(&self) -> LayerKind;

    /// Look up a fresh copy at time `now`, counting hit/miss.
    fn get(&self, key: &str, now: Timestamp) -> Option<CacheEntry>;

    /// Store a response copy (entries with `ttl_ms == 0` are uncacheable).
    fn put(&self, key: &str, entry: CacheEntry);

    /// Peek without counting a hit or touching recency.
    fn peek(&self, key: &str, now: Timestamp) -> Option<CacheEntry>;

    /// Origin-driven purge. Expiration-based caches cannot be purged —
    /// that asymmetry is the whole reason the EBF exists — so the default
    /// does nothing and reports `false`.
    fn purge(&self, key: &str) -> bool {
        let _ = key;
        false
    }

    /// Counters.
    fn stats(&self) -> CacheStats;

    /// Live entry count (expired entries may linger until touched).
    fn len(&self) -> usize;

    /// True if empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drop everything (a cold cache).
    fn clear(&self);
}

/// An expiration-based cache (browser cache, forward/ISP proxy).
///
/// Honours TTLs; **cannot be purged by the origin**. Expired entries are
/// dropped lazily on access.
#[derive(Debug)]
pub struct ExpirationCache {
    name: String,
    entries: Mutex<LruCache<CacheEntry>>,
    stats: Mutex<CacheStats>,
}

impl ExpirationCache {
    /// A cache holding at most `capacity` entries.
    pub fn new(name: impl Into<String>, capacity: usize) -> ExpirationCache {
        ExpirationCache {
            name: name.into(),
            entries: Mutex::new(LruCache::new(capacity)),
            stats: Mutex::new(CacheStats::default()),
        }
    }

    /// Cache name (for metrics).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Look up a fresh copy at time `now`.
    pub fn get(&self, key: &str, now: Timestamp) -> Option<CacheEntry> {
        let mut entries = self.entries.lock();
        let fresh = match entries.get(key) {
            Some(e) if e.is_fresh(now) => Some(e.clone()),
            Some(_) => {
                entries.remove(key);
                None
            }
            None => None,
        };
        let mut stats = self.stats.lock();
        if fresh.is_some() {
            stats.hits += 1;
        } else {
            stats.misses += 1;
        }
        fresh
    }

    /// Store a response copy.
    pub fn put(&self, key: &str, entry: CacheEntry) {
        if entry.ttl_ms == 0 {
            return; // uncacheable
        }
        let evicted = self.entries.lock().insert(key.to_owned(), entry);
        if evicted.is_some() {
            self.stats.lock().evictions += 1;
        }
    }

    /// Drop one entry locally (a *client's own* eviction — e.g. after its
    /// own write, for read-your-writes; not an origin purge).
    pub fn evict(&self, key: &str) -> bool {
        self.entries.lock().remove(key).is_some()
    }

    /// Peek without counting a hit or touching recency.
    pub fn peek(&self, key: &str, now: Timestamp) -> Option<CacheEntry> {
        self.entries
            .lock()
            .peek(key)
            .filter(|e| e.is_fresh(now))
            .cloned()
    }

    /// Live entry count (expired entries may linger until touched).
    pub fn len(&self) -> usize {
        self.entries.lock().len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        *self.stats.lock()
    }

    /// Drop everything (a cold cache).
    pub fn clear(&self) {
        self.entries.lock().clear();
    }
}

impl Cache for ExpirationCache {
    fn name(&self) -> &str {
        ExpirationCache::name(self)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Expiration
    }

    fn get(&self, key: &str, now: Timestamp) -> Option<CacheEntry> {
        ExpirationCache::get(self, key, now)
    }

    fn put(&self, key: &str, entry: CacheEntry) {
        ExpirationCache::put(self, key, entry)
    }

    fn peek(&self, key: &str, now: Timestamp) -> Option<CacheEntry> {
        ExpirationCache::peek(self, key, now)
    }

    fn stats(&self) -> CacheStats {
        ExpirationCache::stats(self)
    }

    fn len(&self) -> usize {
        ExpirationCache::len(self)
    }

    fn clear(&self) {
        ExpirationCache::clear(self)
    }
}

/// An invalidation-based cache (CDN edge, reverse proxy).
///
/// Same read path as [`ExpirationCache`] plus an origin-driven
/// [`purge`](InvalidationCache::purge): "the DBaaS pro-actively purges
/// stale results from invalidation-based caches" (§1).
#[derive(Debug)]
pub struct InvalidationCache {
    inner: ExpirationCache,
}

impl InvalidationCache {
    /// A cache holding at most `capacity` entries.
    pub fn new(name: impl Into<String>, capacity: usize) -> InvalidationCache {
        InvalidationCache {
            inner: ExpirationCache::new(name, capacity),
        }
    }

    /// Cache name.
    pub fn name(&self) -> &str {
        self.inner.name()
    }

    /// Look up a fresh copy.
    pub fn get(&self, key: &str, now: Timestamp) -> Option<CacheEntry> {
        self.inner.get(key, now)
    }

    /// Store a copy. Invalidation-based caches may receive a dedicated,
    /// typically longer TTL (§2: "invalidation-based caches support
    /// dedicated TTLs") — the caller passes it in the entry.
    pub fn put(&self, key: &str, entry: CacheEntry) {
        self.inner.put(key, entry);
    }

    /// Origin-driven purge of a stale entry.
    pub fn purge(&self, key: &str) -> bool {
        let removed = self.inner.evict(key);
        if removed {
            self.inner.stats.lock().purges += 1;
        }
        removed
    }

    /// Peek without metrics.
    pub fn peek(&self, key: &str, now: Timestamp) -> Option<CacheEntry> {
        self.inner.peek(key, now)
    }

    /// Counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Entry count.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    /// Drop everything.
    pub fn clear(&self) {
        self.inner.clear()
    }
}

impl Cache for InvalidationCache {
    fn name(&self) -> &str {
        InvalidationCache::name(self)
    }

    fn kind(&self) -> LayerKind {
        LayerKind::Invalidation
    }

    fn get(&self, key: &str, now: Timestamp) -> Option<CacheEntry> {
        InvalidationCache::get(self, key, now)
    }

    fn put(&self, key: &str, entry: CacheEntry) {
        InvalidationCache::put(self, key, entry)
    }

    fn peek(&self, key: &str, now: Timestamp) -> Option<CacheEntry> {
        InvalidationCache::peek(self, key, now)
    }

    fn purge(&self, key: &str) -> bool {
        InvalidationCache::purge(self, key)
    }

    fn stats(&self) -> CacheStats {
        InvalidationCache::stats(self)
    }

    fn len(&self) -> usize {
        InvalidationCache::len(self)
    }

    fn clear(&self) {
        InvalidationCache::clear(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(etag: u64, stored: u64, ttl: u64) -> CacheEntry {
        CacheEntry::new(&b"body"[..], etag, Timestamp::from_millis(stored), ttl)
    }

    #[test]
    fn fresh_hit_expired_miss() {
        let c = ExpirationCache::new("browser", 16);
        c.put("k", entry(1, 0, 100));
        assert!(c.get("k", Timestamp::from_millis(50)).is_some());
        assert!(c.get("k", Timestamp::from_millis(150)).is_none());
        let s = c.stats();
        assert_eq!((s.hits, s.misses), (1, 1));
    }

    #[test]
    fn expired_entries_are_dropped_on_access() {
        let c = ExpirationCache::new("browser", 16);
        c.put("k", entry(1, 0, 10));
        assert_eq!(c.len(), 1);
        c.get("k", Timestamp::from_millis(20));
        assert_eq!(c.len(), 0, "lazy expiry removed it");
    }

    #[test]
    fn zero_ttl_is_uncacheable() {
        let c = ExpirationCache::new("browser", 16);
        c.put("k", entry(1, 0, 0));
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn capacity_bound_evicts() {
        let c = ExpirationCache::new("tiny", 2);
        c.put("a", entry(1, 0, 1000));
        c.put("b", entry(1, 0, 1000));
        c.put("c", entry(1, 0, 1000));
        assert_eq!(c.len(), 2);
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn purge_removes_and_counts() {
        let c = InvalidationCache::new("cdn", 16);
        c.put("k", entry(1, 0, 1000));
        assert!(c.purge("k"));
        assert!(!c.purge("k"), "already gone");
        assert!(c.get("k", Timestamp::from_millis(1)).is_none());
        assert_eq!(c.stats().purges, 1);
    }

    #[test]
    fn client_evict_supports_read_your_writes() {
        let c = ExpirationCache::new("browser", 16);
        c.put("k", entry(1, 0, 1000));
        assert!(c.evict("k"));
        assert!(c.get("k", Timestamp::from_millis(1)).is_none());
    }

    #[test]
    fn hit_rate_math() {
        let c = ExpirationCache::new("b", 4);
        assert_eq!(c.stats().hit_rate(), 0.0);
        c.put("k", entry(1, 0, 100));
        c.get("k", Timestamp::from_millis(1));
        c.get("nope", Timestamp::from_millis(1));
        assert!((c.stats().hit_rate() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn peek_is_metric_free() {
        let c = InvalidationCache::new("cdn", 4);
        c.put("k", entry(1, 0, 100));
        assert!(c.peek("k", Timestamp::from_millis(1)).is_some());
        assert_eq!(c.stats().hits + c.stats().misses, 0);
    }

    #[test]
    fn trait_objects_expose_kind_and_purgeability() {
        let exp: Box<dyn Cache> = Box::new(ExpirationCache::new("browser", 4));
        let inv: Box<dyn Cache> = Box::new(InvalidationCache::new("cdn", 4));
        exp.put("k", entry(1, 0, 100));
        inv.put("k", entry(1, 0, 100));
        assert_eq!(exp.kind(), LayerKind::Expiration);
        assert_eq!(inv.kind(), LayerKind::Invalidation);
        assert!(!exp.purge("k"), "expiration caches refuse purges");
        assert_eq!(exp.len(), 1, "the entry survived the refused purge");
        assert!(inv.purge("k"));
        assert_eq!(inv.len(), 0);
        assert_eq!(exp.name(), "browser");
        assert!(!exp.is_empty() && inv.is_empty());
    }
}

//! The discrete operation-type distribution.

use rand::Rng;

/// Operation classes of the benchmark (§6.1: "reads, queries, inserts,
/// partial updates, and deletes").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpKind {
    /// Key-based record read.
    Read,
    /// Query execution.
    Query,
    /// Insert of a new record.
    Insert,
    /// Partial update of an existing record.
    Update,
    /// Delete of an existing record.
    Delete,
}

/// Relative weights of the operation classes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OperationMix {
    /// Weight of record reads.
    pub read: f64,
    /// Weight of queries.
    pub query: f64,
    /// Weight of inserts.
    pub insert: f64,
    /// Weight of partial updates.
    pub update: f64,
    /// Weight of deletes.
    pub delete: f64,
}

impl OperationMix {
    /// The paper's read-heavy workload: "99% queries and reads (equally
    /// weighted) and 1% writes" (writes split between inserts and
    /// updates).
    pub fn read_heavy() -> OperationMix {
        OperationMix {
            read: 0.495,
            query: 0.495,
            insert: 0.002,
            update: 0.008,
            delete: 0.0,
        }
    }

    /// A parameterized mix: equal read and query rates, `update_rate`
    /// going to partial updates (the Figure 9 sweep "increasing update
    /// rates (keeping equal read and query rates)").
    pub fn with_update_rate(update_rate: f64) -> OperationMix {
        assert!((0.0..1.0).contains(&update_rate));
        let rest = 1.0 - update_rate;
        OperationMix {
            read: rest / 2.0,
            query: rest / 2.0,
            insert: 0.0,
            update: update_rate,
            delete: 0.0,
        }
    }

    fn total(&self) -> f64 {
        self.read + self.query + self.insert + self.update + self.delete
    }

    /// Sample an operation class.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> OpKind {
        let mut x: f64 = rng.gen::<f64>() * self.total();
        for (kind, w) in [
            (OpKind::Read, self.read),
            (OpKind::Query, self.query),
            (OpKind::Insert, self.insert),
            (OpKind::Update, self.update),
        ] {
            if x < w {
                return kind;
            }
            x -= w;
        }
        OpKind::Delete
    }

    /// Fraction of operations that are writes.
    pub fn write_fraction(&self) -> f64 {
        (self.insert + self.update + self.delete) / self.total()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn read_heavy_is_one_percent_writes() {
        let m = OperationMix::read_heavy();
        assert!((m.write_fraction() - 0.01).abs() < 1e-9);
    }

    #[test]
    fn sample_respects_weights() {
        let m = OperationMix::with_update_rate(0.2);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let mut updates = 0;
        let n = 100_000;
        for _ in 0..n {
            if m.sample(&mut rng) == OpKind::Update {
                updates += 1;
            }
        }
        let frac = updates as f64 / n as f64;
        assert!((frac - 0.2).abs() < 0.01, "got {frac}");
    }

    #[test]
    fn zero_weight_never_sampled() {
        let m = OperationMix::with_update_rate(0.1); // insert & delete are 0
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        for _ in 0..50_000 {
            let k = m.sample(&mut rng);
            assert!(k != OpKind::Insert && k != OpKind::Delete);
        }
    }
}

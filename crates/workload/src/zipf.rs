//! Bounded Zipfian sampling (the YCSB generator).

use rand::Rng;

/// Zipfian distribution over `0..n` with skew `theta`, using the
/// rejection-free closed-form sampler from Gray et al., "Quickly
/// Generating Billion-Record Synthetic Databases" (the algorithm YCSB
/// uses). Rank 0 is the most popular item.
#[derive(Debug, Clone)]
pub struct Zipfian {
    n: usize,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    scramble: bool,
}

fn zeta(n: usize, theta: f64) -> f64 {
    (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
}

impl Zipfian {
    /// A Zipfian over `0..n` with skew `theta` (YCSB default 0.99; the
    /// paper uses 0.99 for Table 1 and a more moderate skew elsewhere).
    pub fn new(n: usize, theta: f64) -> Zipfian {
        assert!(n > 0, "empty domain");
        assert!((0.0..1.0).contains(&theta), "theta must be in [0,1)");
        let zetan = zeta(n, theta);
        let zeta2 = zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        Zipfian {
            n,
            theta,
            alpha,
            zetan,
            eta,
            scramble: false,
        }
    }

    /// Scrambled variant: ranks are hashed onto the key space so that the
    /// hot items are spread out instead of clustered at low ids (YCSB's
    /// `ScrambledZipfianGenerator`).
    pub fn scrambled(n: usize, theta: f64) -> Zipfian {
        let mut z = Self::new(n, theta);
        z.scramble = true;
        z
    }

    /// Domain size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Sample a value in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        let uz = u * self.zetan;
        let rank = if uz < 1.0 {
            0
        } else if uz < 1.0 + 0.5f64.powf(self.theta) {
            1
        } else {
            (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as usize
        };
        let rank = rank.min(self.n - 1);
        if self.scramble {
            (quaestor_common::fx_hash_bytes(&rank.to_le_bytes()) % self.n as u64) as usize
        } else {
            rank
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn histogram(z: &Zipfian, samples: usize, seed: u64) -> Vec<usize> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut counts = vec![0usize; z.n()];
        for _ in 0..samples {
            counts[z.sample(&mut rng)] += 1;
        }
        counts
    }

    #[test]
    fn all_samples_in_range() {
        let z = Zipfian::new(100, 0.8);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            assert!(z.sample(&mut rng) < 100);
        }
    }

    #[test]
    fn rank_zero_is_hottest() {
        let z = Zipfian::new(1_000, 0.99);
        let counts = histogram(&z, 100_000, 2);
        let max = counts.iter().max().unwrap();
        assert_eq!(counts[0], *max, "rank 0 must be the most frequent");
        // Strong skew: the head item should take several percent.
        assert!(counts[0] as f64 / 100_000.0 > 0.03);
    }

    #[test]
    fn low_theta_is_flatter() {
        let skewed = histogram(&Zipfian::new(100, 0.99), 50_000, 3);
        let flat = histogram(&Zipfian::new(100, 0.1), 50_000, 3);
        assert!(
            skewed[0] > flat[0] * 2,
            "theta 0.99 head ({}) must dominate theta 0.1 head ({})",
            skewed[0],
            flat[0]
        );
    }

    #[test]
    fn scrambled_moves_the_head() {
        let z = Zipfian::scrambled(1_000, 0.99);
        let counts = histogram(&z, 100_000, 4);
        let (hottest, _) = counts.iter().enumerate().max_by_key(|(_, &c)| c).unwrap();
        // The hottest key must be exactly where the hash sent rank 0.
        let expected = (quaestor_common::fx_hash_bytes(&0usize.to_le_bytes()) % 1_000) as usize;
        assert_eq!(hottest, expected, "scrambling maps rank 0 via the hash");
        let total: usize = counts.iter().sum();
        assert_eq!(total, 100_000);
    }

    #[test]
    fn zipf_mass_concentrates_in_head() {
        let z = Zipfian::new(10_000, 0.99);
        let counts = histogram(&z, 200_000, 5);
        let head: usize = counts[..100].iter().sum();
        let frac = head as f64 / 200_000.0;
        assert!(
            frac > 0.3,
            "top 1% of a 0.99-Zipf should carry >30% of mass, got {frac}"
        );
    }

    #[test]
    fn singleton_domain() {
        let z = Zipfian::new(1, 0.5);
        let mut rng = rand::rngs::StdRng::seed_from_u64(6);
        assert_eq!(z.sample(&mut rng), 0);
    }
}

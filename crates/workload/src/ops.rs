//! Dataset population and request sampling.

use quaestor_document::{doc, Document, Update};
use quaestor_query::{Filter, Query};
use rand::Rng;

use crate::mix::{OpKind, OperationMix};
use crate::zipf::Zipfian;

/// One sampled request.
#[derive(Debug, Clone)]
pub enum Operation {
    /// Key-based record read.
    Read {
        /// Target table.
        table: String,
        /// Primary key.
        id: String,
    },
    /// Query execution.
    Query(Query),
    /// Insert a fresh record.
    Insert {
        /// Target table.
        table: String,
        /// Primary key.
        id: String,
        /// Document body.
        document: Document,
    },
    /// Partial update.
    Update {
        /// Target table.
        table: String,
        /// Primary key.
        id: String,
        /// Update operators.
        update: Update,
    },
    /// Delete.
    Delete {
        /// Target table.
        table: String,
        /// Primary key.
        id: String,
    },
}

/// Dataset & sampling configuration, defaulting to the paper's layout.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// Number of tables ("10 database tables").
    pub tables: usize,
    /// Documents per table ("each with 10,000 documents").
    pub docs_per_table: usize,
    /// Distinct queries per table ("100 distinct queries per table").
    pub queries_per_table: usize,
    /// Average result cardinality ("initially return on average 10
    /// documents"); controls the category-value domain.
    pub avg_result_size: usize,
    /// Zipf skew for key/query/table choice.
    pub zipf_theta: f64,
    /// Operation mix.
    pub mix: OperationMix,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            tables: 10,
            docs_per_table: 10_000,
            queries_per_table: 100,
            avg_result_size: 10,
            zipf_theta: 0.8,
            mix: OperationMix::read_heavy(),
        }
    }
}

impl WorkloadConfig {
    /// Category domain size: with `docs_per_table` docs uniformly
    /// assigned to this many categories, each category holds
    /// `avg_result_size` docs on average.
    pub fn category_domain(&self) -> usize {
        (self.docs_per_table / self.avg_result_size).max(1)
    }

    /// Table name for index `i`.
    pub fn table_name(i: usize) -> String {
        format!("table{i}")
    }

    /// Document id for index `i`.
    pub fn doc_id(i: usize) -> String {
        format!("doc{i:07}")
    }

    /// The document for id `i`: a category field (queried), a counter, a
    /// tag list and some payload.
    pub fn make_doc<R: Rng + ?Sized>(&self, i: usize, rng: &mut R) -> Document {
        let category = (i % self.category_domain()) as i64;
        let mut d = doc! {
            "category" => category,
            "counter" => 0,
            "payload" => format!("{:032x}", rng.gen::<u128>())
        };
        d.insert(
            "tags".into(),
            quaestor_document::Value::Array(vec![
                quaestor_document::Value::Str(format!("tag{}", i % 50)),
                quaestor_document::Value::Str(format!("tag{}", (i / 7) % 50)),
            ]),
        );
        d
    }

    /// The `q`-th query of a table: an equality match on `category`
    /// (values `0..queries_per_table`, each holding ~`avg_result_size`
    /// documents).
    pub fn make_query(&self, table: usize, q: usize) -> Query {
        Query::table(Self::table_name(table))
            .filter(Filter::eq("category", (q % self.category_domain()) as i64))
    }
}

/// Samples [`Operation`]s per the config; owns the Zipfian choosers.
#[derive(Debug, Clone)]
pub struct WorkloadGenerator {
    config: WorkloadConfig,
    table_chooser: Zipfian,
    key_chooser: Zipfian,
    query_chooser: Zipfian,
    insert_counter: usize,
}

impl WorkloadGenerator {
    /// Build choosers for a config.
    pub fn new(config: WorkloadConfig) -> WorkloadGenerator {
        WorkloadGenerator {
            table_chooser: Zipfian::new(config.tables, config.zipf_theta),
            key_chooser: Zipfian::scrambled(config.docs_per_table, config.zipf_theta),
            query_chooser: Zipfian::new(config.queries_per_table, config.zipf_theta),
            insert_counter: 0,
            config,
        }
    }

    /// The config in use.
    pub fn config(&self) -> &WorkloadConfig {
        &self.config
    }

    /// All `(table, id, doc)` triples of the initial dataset
    /// (deterministic given the RNG).
    pub fn dataset<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
    ) -> impl Iterator<Item = (String, String, Document)> + '_ {
        let docs: Vec<(String, String, Document)> = (0..self.config.tables)
            .flat_map(|t| (0..self.config.docs_per_table).map(move |i| (t, i)))
            .map(|(t, i)| {
                (
                    WorkloadConfig::table_name(t),
                    WorkloadConfig::doc_id(i),
                    self.config.make_doc(i, rng),
                )
            })
            .collect();
        docs.into_iter()
    }

    /// Sample the next operation.
    pub fn next_op<R: Rng + ?Sized>(&mut self, rng: &mut R) -> Operation {
        let kind = self.config.mix.sample(rng);
        let table_idx = self.table_chooser.sample(rng);
        let table = WorkloadConfig::table_name(table_idx);
        match kind {
            OpKind::Read => Operation::Read {
                table,
                id: WorkloadConfig::doc_id(self.key_chooser.sample(rng)),
            },
            OpKind::Query => {
                let q = self.query_chooser.sample(rng);
                Operation::Query(self.config.make_query(table_idx, q))
            }
            OpKind::Insert => {
                self.insert_counter += 1;
                let i = self.config.docs_per_table + self.insert_counter;
                Operation::Insert {
                    table,
                    id: format!("ins{:07}", self.insert_counter),
                    document: self.config.make_doc(i, rng),
                }
            }
            OpKind::Update => {
                let id = WorkloadConfig::doc_id(self.key_chooser.sample(rng));
                // Partial updates alternate between a counter bump (pure
                // change event) and a category move (membership change).
                let update = if rng.gen_bool(0.5) {
                    Update::new().inc("counter", 1.0)
                } else {
                    let cat = rng.gen_range(0..self.config.category_domain()) as i64;
                    Update::new().set("category", cat)
                };
                Operation::Update { table, id, update }
            }
            OpKind::Delete => Operation::Delete {
                table,
                id: WorkloadConfig::doc_id(self.key_chooser.sample(rng)),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn dataset_matches_paper_layout() {
        let cfg = WorkloadConfig {
            tables: 2,
            docs_per_table: 100,
            ..Default::default()
        };
        let gen = WorkloadGenerator::new(cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(1);
        let all: Vec<_> = gen.dataset(&mut rng).collect();
        assert_eq!(all.len(), 200);
        assert!(all.iter().any(|(t, _, _)| t == "table0"));
        assert!(all.iter().any(|(t, _, _)| t == "table1"));
    }

    #[test]
    fn queries_return_avg_result_size() {
        let cfg = WorkloadConfig {
            tables: 1,
            docs_per_table: 1_000,
            queries_per_table: 100,
            avg_result_size: 10,
            ..Default::default()
        };
        // 1000 docs / 10 = 100 categories, each with exactly 10 docs
        // (deterministic i % 100 assignment).
        assert_eq!(cfg.category_domain(), 100);
        let mut rng = rand::rngs::StdRng::seed_from_u64(2);
        let gen = WorkloadGenerator::new(cfg);
        let docs: Vec<_> = gen.dataset(&mut rng).collect();
        let q = cfg.make_query(0, 7);
        let matches = docs
            .iter()
            .filter(|(_, _, d)| quaestor_query::matches(&q.filter, d))
            .count();
        assert_eq!(matches, 10);
    }

    #[test]
    fn op_stream_is_mostly_reads_for_read_heavy() {
        let mut gen = WorkloadGenerator::new(WorkloadConfig::default());
        let mut rng = rand::rngs::StdRng::seed_from_u64(3);
        let mut writes = 0;
        let n = 20_000;
        for _ in 0..n {
            match gen.next_op(&mut rng) {
                Operation::Insert { .. } | Operation::Update { .. } | Operation::Delete { .. } => {
                    writes += 1
                }
                _ => {}
            }
        }
        let frac = writes as f64 / n as f64;
        assert!((frac - 0.01).abs() < 0.005, "write fraction {frac}");
    }

    #[test]
    fn inserts_use_fresh_ids() {
        let cfg = WorkloadConfig {
            mix: OperationMix {
                read: 0.0,
                query: 0.0,
                insert: 1.0,
                update: 0.0,
                delete: 0.0,
            },
            ..WorkloadConfig::default()
        };
        let mut gen = WorkloadGenerator::new(cfg);
        let mut rng = rand::rngs::StdRng::seed_from_u64(4);
        let mut ids = std::collections::HashSet::new();
        for _ in 0..100 {
            match gen.next_op(&mut rng) {
                Operation::Insert { id, .. } => assert!(ids.insert(id), "duplicate insert id"),
                _ => unreachable!(),
            }
        }
    }
}

//! The append-only, segmented write-ahead log.
//!
//! Segments are named `seg-<first-lsn>.wal` (zero-padded so lexical order
//! is LSN order). The writer appends framed records (see [`crate::frame`])
//! with group commit: frames accumulate in an in-memory buffer and are
//! written out when the batch fills, with fsync cadence governed by
//! [`FsyncPolicy`]. Dropping the writer does **not** flush — that is the
//! crash model; call [`Wal::flush`] for a graceful shutdown.
//!
//! Reading tolerates a *torn tail*: a bad frame at the end of the newest
//! segment (a write interrupted by the crash) truncates the log there. A
//! bad frame anywhere else — in any segment that valid data follows — is
//! corruption and surfaces as an error, never as silent data loss.

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::{Path, PathBuf};

use quaestor_common::{Error, Result};

use crate::codec::WalRecord;
use crate::config::{DurabilityConfig, FsyncPolicy};
use crate::frame::{encode_frame, read_frame, FrameRead};

const SEGMENT_PREFIX: &str = "seg-";
const SEGMENT_SUFFIX: &str = ".wal";

pub(crate) fn io_err(context: &str, e: std::io::Error) -> Error {
    Error::Io(format!("{context}: {e}"))
}

/// Fsync a directory so freshly created/renamed entries survive power
/// loss (fsyncing a file does not persist its directory entry).
pub(crate) fn fsync_dir(dir: &Path) -> Result<()> {
    let f = std::fs::File::open(dir).map_err(|e| io_err("open dir for fsync", e))?;
    f.sync_all().map_err(|e| io_err("fsync dir", e))
}

/// Name of the segment whose first frame has `lsn`.
fn segment_name(lsn: u64) -> String {
    format!("{SEGMENT_PREFIX}{lsn:020}{SEGMENT_SUFFIX}")
}

/// Parse a segment file name back to its first LSN.
fn segment_start(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// List segment files in `dir`, sorted by starting LSN.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err("read wal dir", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read wal dir entry", e))?;
        if let Some(start) = entry.file_name().to_str().and_then(segment_start) {
            out.push((start, entry.path()));
        }
    }
    out.sort_by_key(|(start, _)| *start);
    Ok(out)
}

/// What a full log scan found.
#[derive(Debug)]
pub struct LogScan {
    /// All valid frames in LSN order.
    pub frames: Vec<(u64, WalRecord)>,
    /// Next LSN the writer should assign.
    pub next_lsn: u64,
    /// Bytes cut off the newest segment because of a torn tail (0 for a
    /// clean log).
    pub truncated_bytes: u64,
}

/// Scan every segment in `dir` starting from `first_lsn`, validating CRCs
/// and LSN continuity.
///
/// A bad frame at the tail of the **newest** segment is treated as a torn
/// write: the segment file is truncated to its valid prefix and the scan
/// succeeds. A bad frame in any older segment is mid-log corruption and
/// fails the scan.
pub fn scan(dir: &Path, first_lsn: u64) -> Result<LogScan> {
    let segments = list_segments(dir)?;
    let mut frames = Vec::new();
    let mut truncated_bytes = 0u64;
    let mut expected_lsn = first_lsn;
    let last_index = segments.len().saturating_sub(1);
    for (i, (start, path)) in segments.iter().enumerate() {
        if *start != expected_lsn {
            return Err(Error::Io(format!(
                "wal gap: segment {} starts at lsn {start}, expected {expected_lsn}",
                path.display()
            )));
        }
        let buf = std::fs::read(path).map_err(|e| io_err("read segment", e))?;
        let mut offset = 0usize;
        loop {
            match read_frame(&buf, offset) {
                FrameRead::Frame { lsn, record, size } => {
                    if lsn != expected_lsn {
                        return Err(Error::Io(format!(
                            "wal corruption in {}: frame lsn {lsn}, expected {expected_lsn}",
                            path.display()
                        )));
                    }
                    frames.push((lsn, record));
                    expected_lsn = lsn + 1;
                    offset += size;
                }
                FrameRead::Eof => break,
                FrameRead::BadTail(reason) => {
                    if i != last_index {
                        return Err(Error::Io(format!(
                            "wal corruption mid-log in {}: {reason} (valid segments follow)",
                            path.display()
                        )));
                    }
                    // A bad frame in the newest segment is only a *torn
                    // tail* if nothing valid follows it. If any complete
                    // frame decodes after the damage, truncating here
                    // would silently discard acknowledged, fsynced
                    // writes — that is mid-log corruption (bit rot in
                    // frame k with frames k+1.. intact) and must fail
                    // loudly. The byte-wise probe is O(bytes) but runs
                    // only on the damaged-recovery path; a false
                    // positive needs a 2^-32 CRC collision at a bogus
                    // offset.
                    if let Some(valid_at) = ((offset + 1)..buf.len())
                        .find(|&probe| matches!(read_frame(&buf, probe), FrameRead::Frame { .. }))
                    {
                        return Err(Error::Io(format!(
                            "wal corruption mid-log in {}: {reason} at byte {offset}, but a                              valid frame follows at byte {valid_at}",
                            path.display()
                        )));
                    }
                    // Torn tail of the newest segment: truncate to the
                    // valid prefix so the next append continues cleanly.
                    truncated_bytes = (buf.len() - offset) as u64;
                    let f = OpenOptions::new()
                        .write(true)
                        .open(path)
                        .map_err(|e| io_err("open segment for truncation", e))?;
                    f.set_len(offset as u64)
                        .map_err(|e| io_err("truncate torn tail", e))?;
                    f.sync_all()
                        .map_err(|e| io_err("sync truncated segment", e))?;
                    break;
                }
            }
        }
    }
    Ok(LogScan {
        frames,
        next_lsn: expected_lsn,
        truncated_bytes,
    })
}

/// Read up to `max` complete frames with LSN strictly above `after_lsn`
/// from the segment files in `dir`, without any lock. This is the
/// replication tailer's read path: the writer may be appending
/// concurrently, so a torn frame at the end of the newest segment just
/// means "caught up" — the tailer stops there and re-reads from the same
/// cursor on its next poll.
///
/// Errors if the log no longer retains `after_lsn + 1` (compacted away):
/// the caller cannot resume from that cursor and must re-seed.
pub fn read_frames_after(dir: &Path, after_lsn: u64, max: usize) -> Result<Vec<(u64, WalRecord)>> {
    let segments = list_segments(dir)?;
    let mut out = Vec::new();
    if segments.is_empty() || max == 0 {
        return Ok(out);
    }
    let want = after_lsn + 1;
    if segments[0].0 > want {
        return Err(Error::Io(format!(
            "wal tail read: frames from lsn {want} were compacted (oldest segment starts at {})",
            segments[0].0
        )));
    }
    // Skip segments wholly below the cursor: a segment is irrelevant
    // when its successor starts at or below `want`.
    let mut start_idx = 0;
    for (i, window) in segments.windows(2).enumerate() {
        if window[1].0 <= want {
            start_idx = i + 1;
        }
    }
    for (seg_start, path) in &segments[start_idx..] {
        let buf = match std::fs::read(path) {
            Ok(b) => b,
            // Compaction may remove a segment between the listing and
            // this read; the tailer retries from its cursor next poll.
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => break,
            Err(e) => return Err(io_err("read segment for tail", e)),
        };
        let mut offset = 0usize;
        let mut expected = *seg_start;
        loop {
            if out.len() >= max {
                return Ok(out);
            }
            match read_frame(&buf, offset) {
                FrameRead::Frame { lsn, record, size } => {
                    if lsn != expected {
                        return Err(Error::Io(format!(
                            "wal tail read: frame lsn {lsn} in {}, expected {expected}",
                            path.display()
                        )));
                    }
                    if lsn >= want {
                        out.push((lsn, record));
                    }
                    expected = lsn + 1;
                    offset += size;
                }
                FrameRead::Eof => break,
                // An incomplete frame mid-write: stop here, do not skip
                // ahead into later segments.
                FrameRead::BadTail(_) => return Ok(out),
            }
        }
    }
    Ok(out)
}

/// Delete or cut back segment files so no frame with LSN above `lsn`
/// survives. Used when a fenced node rejoins as a replica and must drop
/// the unreplicated suffix that diverges from the new primary's history.
/// Must run while no [`Wal`] writer is open on `dir`. Returns the number
/// of frames dropped.
pub fn truncate_above(dir: &Path, lsn: u64) -> Result<u64> {
    let mut dropped = 0u64;
    for (seg_start, path) in &list_segments(dir)? {
        let buf = std::fs::read(path).map_err(|e| io_err("read segment for truncation", e))?;
        if *seg_start > lsn {
            // Entirely above the cut: count its frames and remove it.
            let mut offset = 0usize;
            while let FrameRead::Frame { size, .. } = read_frame(&buf, offset) {
                dropped += 1;
                offset += size;
            }
            std::fs::remove_file(path).map_err(|e| io_err("remove truncated segment", e))?;
            continue;
        }
        // Walk to the byte offset right after `lsn` and cut there.
        let mut offset = 0usize;
        while let FrameRead::Frame {
            lsn: frame_lsn,
            size,
            ..
        } = read_frame(&buf, offset)
        {
            if frame_lsn > lsn {
                break;
            }
            offset += size;
        }
        if offset < buf.len() {
            let mut probe = offset;
            while let FrameRead::Frame { size, .. } = read_frame(&buf, probe) {
                dropped += 1;
                probe += size;
            }
            let f = OpenOptions::new()
                .write(true)
                .open(path)
                .map_err(|e| io_err("open segment for truncation", e))?;
            f.set_len(offset as u64)
                .map_err(|e| io_err("truncate segment", e))?;
            f.sync_all()
                .map_err(|e| io_err("sync truncated segment", e))?;
        }
    }
    if dropped > 0 {
        fsync_dir(dir)?;
    }
    Ok(dropped)
}

/// The segmented WAL writer.
pub struct Wal {
    dir: PathBuf,
    config: DurabilityConfig,
    /// Open handle on the active segment.
    file: File,
    /// Bytes already written to the active segment.
    segment_bytes: u64,
    /// Next LSN to assign.
    next_lsn: u64,
    /// Encoded-but-unwritten frames (the group-commit buffer) and how
    /// many frames it holds.
    buffer: Vec<u8>,
    buffered_frames: usize,
    /// Frames written to the file but not yet fsynced (for `EveryN`).
    unsynced_frames: usize,
    /// Highest LSN written to the segment file.
    written_lsn: u64,
    /// Highest LSN known fsynced. `commit` under `Always` fast-paths
    /// when another committer's fsync already covered the caller's LSN —
    /// that observation *is* the group commit.
    durable_lsn: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("next_lsn", &self.next_lsn)
            .field("buffered_frames", &self.buffered_frames)
            .finish()
    }
}

impl Wal {
    /// Open (creating if needed) the log in `dir`, continuing after
    /// `next_lsn - 1`. [`scan`] must have run first — it both yields
    /// `next_lsn` and repairs any torn tail.
    pub fn open(dir: &Path, config: DurabilityConfig, next_lsn: u64) -> Result<Wal> {
        std::fs::create_dir_all(dir).map_err(|e| io_err("create wal dir", e))?;
        let segments = list_segments(dir)?;
        let (path, segment_bytes) = match segments.last() {
            Some((_, path)) => {
                let len = std::fs::metadata(path)
                    .map_err(|e| io_err("stat segment", e))?
                    .len();
                (path.clone(), len)
            }
            None => (dir.join(segment_name(next_lsn)), 0),
        };
        let created = !path.exists();
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open segment", e))?;
        if created {
            // Persist the new segment's directory entry: frames fsynced
            // into a file whose dir entry is lost are frames lost.
            fsync_dir(dir)?;
        }
        Ok(Wal {
            dir: dir.to_path_buf(),
            config,
            file,
            segment_bytes,
            next_lsn,
            buffer: Vec::new(),
            buffered_frames: 0,
            unsynced_frames: 0,
            written_lsn: next_lsn - 1,
            durable_lsn: next_lsn - 1,
        })
    }

    /// Stage one record into the group-commit buffer; returns its LSN.
    /// Cheap (an in-memory encode) — the durable half is
    /// [`commit`](Self::commit). The two are split so callers can stage
    /// inside a critical section (preserving ordering) and pay for I/O
    /// outside it.
    pub fn stage(&mut self, record: &WalRecord) -> Result<u64> {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        encode_frame(lsn, record, &mut self.buffer);
        self.buffered_frames += 1;
        Ok(lsn)
    }

    /// Make the staged `lsn` as durable as the [`FsyncPolicy`] promises.
    /// Under `Always` this returns only once `lsn` is fsynced — and one
    /// committer's fsync covers every LSN staged before it, so
    /// concurrent writers amortize to one sync per batch (group
    /// commit). Under `EveryN(n)` the buffer drains and syncs on its
    /// cadence (loss bounded by `n`); under `OsDefault` the buffer
    /// drains on the group boundary and the page cache does the rest.
    pub fn commit(&mut self, lsn: u64) -> Result<()> {
        match self.config.fsync {
            FsyncPolicy::Always => {
                if self.durable_lsn >= lsn {
                    return Ok(());
                }
                self.write_buffer()?;
                self.sync()?;
            }
            FsyncPolicy::EveryN(n) => {
                let n = n.max(1);
                // `EveryN(n)` promises "at most n acknowledged writes
                // lost", so the in-memory buffer must drain at least
                // every n frames even when the group is larger.
                let write_threshold = self.config.group_commit.max(1).min(n);
                if self.buffered_frames >= write_threshold {
                    self.write_buffer()?;
                }
                if self.unsynced_frames >= n {
                    self.sync()?;
                }
            }
            FsyncPolicy::OsDefault => {
                if self.buffered_frames >= self.config.group_commit.max(1) {
                    self.write_buffer()?;
                }
            }
        }
        Ok(())
    }

    /// Stage + commit in one call (metadata records, tests).
    pub fn append(&mut self, record: &WalRecord) -> Result<u64> {
        let lsn = self.stage(record)?;
        self.commit(lsn)?;
        Ok(lsn)
    }

    /// Write the group-commit buffer to the active segment, rotating
    /// first if the segment is full.
    fn write_buffer(&mut self) -> Result<()> {
        if self.buffer.is_empty() {
            return Ok(());
        }
        if self.segment_bytes >= self.config.max_segment_bytes {
            // The new segment's name is the LSN of the first frame it
            // will hold — the oldest frame in the buffer.
            self.rotate(self.next_lsn - self.buffered_frames as u64)?;
        }
        self.file
            .write_all(&self.buffer)
            .map_err(|e| io_err("append to segment", e))?;
        self.segment_bytes += self.buffer.len() as u64;
        self.unsynced_frames += self.buffered_frames;
        self.buffer.clear();
        self.buffered_frames = 0;
        // The buffer always ends at the most recently staged LSN.
        self.written_lsn = self.next_lsn - 1;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync segment", e))?;
        self.unsynced_frames = 0;
        self.durable_lsn = self.written_lsn;
        Ok(())
    }

    /// Flush the group-commit buffer and fsync regardless of policy.
    /// Returns the highest LSN now durable on disk.
    pub fn flush(&mut self) -> Result<u64> {
        self.write_buffer()?;
        self.sync()?;
        Ok(self.durable_lsn)
    }

    /// Highest LSN assigned so far (`first_lsn - 1` if none).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Highest LSN known fsynced to stable storage.
    pub fn durable(&self) -> u64 {
        self.durable_lsn
    }

    /// Rotate to a fresh segment starting at `first_lsn`. The old segment
    /// is synced first so rotation never widens the loss window.
    fn rotate(&mut self, first_lsn: u64) -> Result<()> {
        self.file
            .sync_data()
            .map_err(|e| io_err("fsync before rotate", e))?;
        self.unsynced_frames = 0;
        self.durable_lsn = self.written_lsn;
        let path = self.dir.join(segment_name(first_lsn));
        self.file = OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
            .map_err(|e| io_err("open new segment", e))?;
        fsync_dir(&self.dir)?;
        self.segment_bytes = 0;
        Ok(())
    }

    /// Delete every segment whose frames all have LSN ≤ `keep_lsn`: a
    /// segment is removable when the *next* segment starts at or below
    /// `keep_lsn + 1`. The active (newest) segment always survives.
    /// Returns the number removed.
    pub fn compact_below(&mut self, keep_lsn: u64) -> Result<usize> {
        let segments = list_segments(&self.dir)?;
        let mut removed = 0;
        for window in segments.windows(2) {
            let (_, ref path) = window[0];
            let (next_start, _) = window[1];
            if next_start <= keep_lsn + 1 {
                std::fs::remove_file(path).map_err(|e| io_err("remove compacted segment", e))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::scratch_dir;

    fn temp_dir(tag: &str) -> PathBuf {
        scratch_dir(&format!("wal-{tag}"))
    }

    fn rec(i: u64) -> WalRecord {
        WalRecord::CreateTable {
            table: format!("t{i}"),
        }
    }

    #[test]
    fn append_scan_roundtrip() {
        let dir = temp_dir("roundtrip");
        let mut wal = Wal::open(&dir, DurabilityConfig::default(), 1).unwrap();
        for i in 0..10 {
            assert_eq!(wal.append(&rec(i)).unwrap(), i + 1);
        }
        wal.flush().unwrap();
        let scan = scan(&dir, 1).unwrap();
        assert_eq!(scan.frames.len(), 10);
        assert_eq!(scan.next_lsn, 11);
        assert_eq!(scan.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn group_commit_buffers_until_batch_fills() {
        let dir = temp_dir("group");
        let cfg = DurabilityConfig {
            fsync: FsyncPolicy::OsDefault,
            group_commit: 4,
            ..DurabilityConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg, 1).unwrap();
        for i in 0..3 {
            wal.append(&rec(i)).unwrap();
        }
        // Crash before the batch fills: the 3 buffered frames are lost.
        drop(wal);
        assert_eq!(scan(&dir, 1).unwrap().frames.len(), 0);
        // Refill past the batch boundary: 4 frames hit the file.
        let mut wal = Wal::open(&dir, cfg, 1).unwrap();
        for i in 0..5 {
            wal.append(&rec(i)).unwrap();
        }
        drop(wal);
        assert_eq!(scan(&dir, 1).unwrap().frames.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn always_policy_survives_unflushed_drop() {
        let dir = temp_dir("always");
        let mut wal = Wal::open(&dir, DurabilityConfig::default(), 1).unwrap();
        for i in 0..7 {
            wal.append(&rec(i)).unwrap();
        }
        drop(wal); // no flush — the crash model
        assert_eq!(scan(&dir, 1).unwrap().frames.len(), 7);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn segments_rotate_and_resume() {
        let dir = temp_dir("rotate");
        let cfg = DurabilityConfig {
            max_segment_bytes: 256,
            ..DurabilityConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg, 1).unwrap();
        for i in 0..50 {
            wal.append(&rec(i)).unwrap();
        }
        wal.flush().unwrap();
        assert!(
            list_segments(&dir).unwrap().len() > 1,
            "256-byte segments must have rotated"
        );
        // Reopen and keep appending across the boundary.
        let s = scan(&dir, 1).unwrap();
        assert_eq!(s.frames.len(), 50);
        let mut wal = Wal::open(&dir, cfg, s.next_lsn).unwrap();
        wal.append(&rec(99)).unwrap();
        wal.flush().unwrap();
        assert_eq!(scan(&dir, 1).unwrap().frames.len(), 51);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_truncates_only_newest_segment() {
        let dir = temp_dir("torn");
        let mut wal = Wal::open(&dir, DurabilityConfig::default(), 1).unwrap();
        for i in 0..5 {
            wal.append(&rec(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Chop bytes off the newest segment.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 3)
            .unwrap();
        let s = scan(&dir, 1).unwrap();
        assert_eq!(s.frames.len(), 4, "last frame torn, first four intact");
        assert!(s.truncated_bytes > 0);
        // Scan repaired the file: a second scan is clean.
        let s2 = scan(&dir, 1).unwrap();
        assert_eq!(s2.truncated_bytes, 0);
        assert_eq!(s2.frames.len(), 4);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_corruption_is_an_error() {
        let dir = temp_dir("midlog");
        let cfg = DurabilityConfig {
            max_segment_bytes: 128,
            ..DurabilityConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg, 1).unwrap();
        for i in 0..40 {
            wal.append(&rec(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        let segments = list_segments(&dir).unwrap();
        assert!(segments.len() > 2);
        // Flip a byte in the FIRST segment — valid segments follow, so
        // this must be corruption, not a torn tail.
        let path = &segments[0].1;
        let mut bytes = std::fs::read(path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(path, &bytes).unwrap();
        let err = scan(&dir, 1).unwrap_err();
        assert!(err.to_string().contains("corruption"), "got: {err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn bad_frame_with_valid_frames_after_it_is_corruption_even_in_newest_segment() {
        let dir = temp_dir("midseg");
        let mut wal = Wal::open(&dir, DurabilityConfig::default(), 1).unwrap();
        for i in 0..6 {
            wal.append(&rec(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        // Single segment (16 MiB default): flip a byte in the SECOND
        // frame — frames 3..6, all acknowledged and fsynced, follow it.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        // Frame 1's size: read it to find frame 2's offset.
        let first_size = match read_frame(&bytes, 0) {
            FrameRead::Frame { size, .. } => size,
            other => panic!("expected frame, got {other:?}"),
        };
        bytes[first_size + 12] ^= 0xFF; // inside frame 2's payload
        std::fs::write(&path, &bytes).unwrap();
        let err = scan(&dir, 1).unwrap_err();
        assert!(
            err.to_string().contains("valid frame follows"),
            "must refuse to truncate past acknowledged frames, got: {err}"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_read_follows_a_live_writer() {
        let dir = temp_dir("tail");
        let cfg = DurabilityConfig {
            max_segment_bytes: 128,
            ..DurabilityConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg, 1).unwrap();
        for i in 0..10 {
            wal.append(&rec(i)).unwrap();
        }
        // Cursor at 0: everything; at 7: the suffix; capped by max.
        let all = read_frames_after(&dir, 0, 100).unwrap();
        assert_eq!(
            all.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            (1..=10).collect::<Vec<_>>()
        );
        let tail = read_frames_after(&dir, 7, 100).unwrap();
        assert_eq!(tail.iter().map(|(l, _)| *l).collect::<Vec<_>>(), [8, 9, 10]);
        let capped = read_frames_after(&dir, 0, 4).unwrap();
        assert_eq!(capped.len(), 4);
        // The writer keeps going; the tailer picks up from its cursor.
        for i in 10..15 {
            wal.append(&rec(i)).unwrap();
        }
        let more = read_frames_after(&dir, 10, 100).unwrap();
        assert_eq!(
            more.iter().map(|(l, _)| *l).collect::<Vec<_>>(),
            (11..=15).collect::<Vec<_>>()
        );
        // A torn frame at the tail reads as "caught up", not an error.
        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let len = std::fs::metadata(&path).unwrap().len();
        OpenOptions::new()
            .write(true)
            .open(&path)
            .unwrap()
            .set_len(len - 2)
            .unwrap();
        let torn = read_frames_after(&dir, 10, 100).unwrap();
        assert_eq!(torn.last().unwrap().0, 14, "torn final frame not served");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn tail_read_errors_when_cursor_is_compacted() {
        let dir = temp_dir("tailgone");
        let cfg = DurabilityConfig {
            max_segment_bytes: 128,
            ..DurabilityConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg, 1).unwrap();
        for i in 0..40 {
            wal.append(&rec(i)).unwrap();
        }
        wal.flush().unwrap();
        let second_start = list_segments(&dir).unwrap()[1].0;
        wal.compact_below(second_start - 1).unwrap();
        let err = read_frames_after(&dir, 0, 100).unwrap_err();
        assert!(err.to_string().contains("compacted"), "got: {err}");
        // A cursor inside the retained range still works.
        let ok = read_frames_after(&dir, second_start - 1, 100).unwrap();
        assert_eq!(ok.first().unwrap().0, second_start);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn truncate_above_cuts_frames_and_whole_segments() {
        let dir = temp_dir("truncabove");
        let cfg = DurabilityConfig {
            max_segment_bytes: 128,
            ..DurabilityConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg, 1).unwrap();
        for i in 0..40 {
            wal.append(&rec(i)).unwrap();
        }
        wal.flush().unwrap();
        drop(wal);
        let dropped = truncate_above(&dir, 17).unwrap();
        assert_eq!(dropped, 23, "frames 18..=40 removed");
        let s = scan(&dir, 1).unwrap();
        assert_eq!(s.next_lsn, 18);
        assert_eq!(s.frames.last().unwrap().0, 17);
        // Idempotent: nothing above 17 remains.
        assert_eq!(truncate_above(&dir, 17).unwrap(), 0);
        // The log reopens and continues from the cut.
        let mut wal = Wal::open(&dir, cfg, s.next_lsn).unwrap();
        assert_eq!(wal.append(&rec(99)).unwrap(), 18);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn compaction_drops_fully_covered_segments() {
        let dir = temp_dir("compact");
        let cfg = DurabilityConfig {
            max_segment_bytes: 128,
            ..DurabilityConfig::default()
        };
        let mut wal = Wal::open(&dir, cfg, 1).unwrap();
        for i in 0..40 {
            wal.append(&rec(i)).unwrap();
        }
        wal.flush().unwrap();
        let before = list_segments(&dir).unwrap();
        assert!(before.len() > 2);
        // Keep everything above the second segment's start.
        let keep = before[2].0 - 1;
        let removed = wal.compact_below(keep).unwrap();
        assert_eq!(removed, 2);
        let after = list_segments(&dir).unwrap();
        assert_eq!(after.len(), before.len() - 2);
        // The surviving log still scans cleanly from its new start.
        let s = scan(&dir, after[0].0).unwrap();
        assert_eq!(s.next_lsn, 41);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! The durability engine: the [`WriteSink`] implementation that owns the
//! WAL and snapshot files of one database directory.
//!
//! Directory layout:
//!
//! ```text
//! <dir>/wal/seg-<lsn>.wal     append-only log segments
//! <dir>/snap/snap-<lsn>.qsnap full-state snapshots
//! ```
//!
//! Opening the engine performs recovery in one pass: load the newest
//! valid snapshot, scan the log (repairing a torn tail), and hand back a
//! [`Recovery`] that can replay the state into a fresh
//! [`Database`]. Only after `Recovery::restore` has run is the engine
//! attached as the database's write sink, so replayed writes are never
//! re-logged.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;
use quaestor_common::{lock_rank, Error, FxHashMap, Result, Timestamp};
use quaestor_query::{Query, QueryKey};
use quaestor_store::{Database, WriteEvent, WriteSink};

use crate::codec::WalRecord;
use crate::config::DurabilityConfig;
use crate::snapshot::{self, SnapshotData, SnapshotRecord, SnapshotTable};
use crate::wal::{self, Wal};

/// Statistics of one recovery pass (reported, not interpreted).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// LSN of the snapshot recovery started from (0 = no snapshot).
    pub snapshot_lsn: u64,
    /// WAL frames replayed on top of the snapshot.
    pub replayed_frames: u64,
    /// Write frames among them that actually changed state.
    pub applied_writes: u64,
    /// Bytes truncated off the newest segment (torn tail; 0 = clean).
    pub torn_tail_bytes: u64,
    /// Highest LSN in the recovered log.
    pub last_lsn: u64,
}

/// Everything recovery reconstructs besides raw table state.
#[derive(Debug)]
pub struct RecoveredMeta {
    /// Queries that were actively matched before the crash, in first-
    /// registration order; the server re-registers them before serving.
    pub queries: Vec<Query>,
    /// `(table, id)` pairs whose delete tombstones were replayed from the
    /// log. Caches out there may still hold these records, so the server
    /// warm-starts its EBF sketch by marking them stale.
    pub tombstones: Vec<(String, String)>,
    /// Scan/replay statistics.
    pub report: RecoveryReport,
}

/// Replay the registered-query bookkeeping: the snapshot's set seeded
/// first, then `RegisterQuery`/`DeregisterQuery` frames above the
/// snapshot LSN, preserving first-registration order. The single source
/// of truth shared by [`Recovery::restore`] (what the server
/// re-registers) and [`DurabilityEngine::open`] (the engine's live
/// mirror) — two hand-rolled copies of this rule would drift.
fn replay_query_set(
    snapshot: Option<&(u64, SnapshotData)>,
    frames: &[(u64, WalRecord)],
) -> Vec<(String, Query)> {
    let snapshot_lsn = snapshot.map(|(lsn, _)| *lsn).unwrap_or(0);
    let mut queries: Vec<(String, Query)> = Vec::new();
    if let Some((_, data)) = snapshot {
        for q in &data.queries {
            queries.push((QueryKey::of(q).as_str().to_owned(), q.clone()));
        }
    }
    for (lsn, record) in frames {
        if *lsn <= snapshot_lsn {
            continue;
        }
        match record {
            WalRecord::RegisterQuery { query } => {
                let key = QueryKey::of(query).as_str().to_owned();
                if !queries.iter().any(|(k, _)| *k == key) {
                    queries.push((key, query.clone()));
                }
            }
            WalRecord::DeregisterQuery { key } => {
                queries.retain(|(k, _)| k != key);
            }
            _ => {}
        }
    }
    queries
}

/// The pending result of opening an engine: consumed by
/// [`Recovery::restore`] to populate a database.
#[derive(Debug)]
pub struct Recovery {
    snapshot: Option<(u64, SnapshotData)>,
    frames: Vec<(u64, WalRecord)>,
    torn_tail_bytes: u64,
    last_lsn: u64,
}

impl Recovery {
    /// True when there is nothing on disk yet (fresh directory).
    pub fn is_empty(&self) -> bool {
        self.snapshot.is_none() && self.frames.is_empty()
    }

    /// Replay snapshot + log into `db` (normally a fresh database).
    /// Idempotent by construction: snapshot restore is a plain load and
    /// frame replay is version-keyed (see
    /// [`Table::apply_recovered_write`](quaestor_store::Table::apply_recovered_write)).
    pub fn restore(self, db: &Database) -> Result<RecoveredMeta> {
        let mut report = RecoveryReport {
            torn_tail_bytes: self.torn_tail_bytes,
            last_lsn: self.last_lsn,
            ..RecoveryReport::default()
        };
        let queries = replay_query_set(self.snapshot.as_ref(), &self.frames);
        // Tombstones carried by the snapshot: their delete frames were
        // compacted away, but surviving caches may still hold the
        // records, so the EBF warm-start needs them as much as the
        // replayed ones below.
        let mut tombstones: Vec<(String, String)> = self
            .snapshot
            .as_ref()
            .map(|(_, data)| {
                data.tombstones
                    .iter()
                    .map(|(table, id, _)| (table.clone(), id.clone()))
                    .collect()
            })
            .unwrap_or_default();
        if let Some((lsn, data)) = self.snapshot {
            report.snapshot_lsn = lsn;
            for table in data.tables {
                let t = db.create_table(&table.name);
                for rec in table.records {
                    t.restore_record(
                        &rec.id,
                        Arc::new(rec.doc),
                        rec.version,
                        Timestamp::from_millis(rec.updated_at),
                    );
                }
                t.set_seq_floor(table.seq);
            }
        }
        for (lsn, record) in self.frames {
            if lsn <= report.snapshot_lsn {
                // Frames at or below the snapshot are already reflected
                // in it; skipping (rather than re-applying) keeps replay
                // linear even when compaction has not run yet.
                continue;
            }
            report.replayed_frames += 1;
            match record {
                WalRecord::Write {
                    table,
                    id,
                    kind,
                    image,
                    version,
                    seq,
                    at,
                } => {
                    let t = db.create_table(&table);
                    let applied = t.apply_recovered_write(
                        kind,
                        &id,
                        Arc::new(image),
                        version,
                        seq,
                        Timestamp::from_millis(at),
                    );
                    if applied {
                        report.applied_writes += 1;
                    }
                    if matches!(kind, quaestor_store::WriteKind::Delete) {
                        tombstones.push((table, id));
                    }
                }
                WalRecord::CreateTable { table } => {
                    db.create_table(&table);
                }
                // Query bookkeeping is handled by replay_query_set above.
                WalRecord::RegisterQuery { .. } | WalRecord::DeregisterQuery { .. } => {}
            }
        }
        Ok(RecoveredMeta {
            queries: queries.into_iter().map(|(_, q)| q).collect(),
            tombstones,
            report,
        })
    }
}

struct EngineState {
    wal: Wal,
    /// Live registered-query set, mirrored here so snapshots can persist
    /// it without reaching into InvaliDB.
    queries: FxHashMap<String, Query>,
    /// Recent delete tombstones `(table, id, at_ms)`, mirrored so
    /// snapshots can carry them past the compaction of their frames.
    /// Pruned to `tombstone_retention_ms` of database time at snapshot.
    tombstones: Vec<(String, String, u64)>,
    /// Frames appended since the last snapshot (for auto-snapshot).
    frames_since_snapshot: u64,
}

/// The write-ahead-logging, snapshotting [`WriteSink`].
pub struct DurabilityEngine {
    dir: PathBuf,
    config: DurabilityConfig,
    state: Mutex<EngineState>,
    /// The held `LOCK` file; removed on drop so the directory can be
    /// reopened (a crashed process leaves it behind — staleness is
    /// detected via the recorded pid).
    lock_path: PathBuf,
    /// Held for the whole of [`snapshot`](Self::snapshot); probed by
    /// [`wants_snapshot`](Self::wants_snapshot) so every writer crossing
    /// the auto-checkpoint threshold does not pile onto a full-state
    /// sweep already in flight.
    snapshot_gate: Mutex<()>,
}

impl std::fmt::Debug for DurabilityEngine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityEngine")
            .field("dir", &self.dir)
            .finish()
    }
}

/// Take the directory's `LOCK` file, or explain who holds it. Two live
/// engines on one directory would interleave duplicate LSNs into the
/// same segment and corrupt the log, so open refuses. A lock left by a
/// dead process (crash) is detected by its recorded pid and broken.
fn acquire_lock(dir: &Path) -> Result<PathBuf> {
    use std::io::Write as _;
    let lock_path = dir.join("LOCK");
    for _ in 0..8 {
        match std::fs::OpenOptions::new()
            .write(true)
            .create_new(true)
            .open(&lock_path)
        {
            Ok(mut f) => {
                let _ = writeln!(f, "{}", std::process::id());
                return Ok(lock_path);
            }
            Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                let holder: Option<u32> = std::fs::read_to_string(&lock_path)
                    .ok()
                    .and_then(|c| c.trim().parse().ok());
                let alive = |pid: u32| Path::new(&format!("/proc/{pid}")).exists();
                match holder {
                    Some(pid) if pid == std::process::id() => {
                        return Err(Error::Io(format!(
                            "durability dir {} already open in this process (pid {pid})",
                            dir.display()
                        )));
                    }
                    Some(pid) if alive(pid) => {
                        return Err(Error::Io(format!(
                            "durability dir {} locked by live pid {pid}",
                            dir.display()
                        )));
                    }
                    // Dead holder (or unreadable lock): break it and
                    // retry the create_new race.
                    _ => {
                        let _ = std::fs::remove_file(&lock_path);
                    }
                }
            }
            Err(e) => return Err(Error::Io(format!("create lock file: {e}"))),
        }
    }
    Err(Error::Io(format!(
        "could not acquire lock on {} (stale-lock race)",
        dir.display()
    )))
}

impl Drop for DurabilityEngine {
    fn drop(&mut self) {
        // Intentionally no flush (dropping IS the crash model); only the
        // advisory lock is released.
        let _ = std::fs::remove_file(&self.lock_path);
    }
}

impl DurabilityEngine {
    /// Open (creating if needed) the durability directory and perform the
    /// read half of recovery. The returned [`Recovery`] must be
    /// [`restore`](Recovery::restore)d into a database *before* the
    /// engine is attached as its sink.
    pub fn open(dir: impl AsRef<Path>, config: DurabilityConfig) -> Result<(Arc<Self>, Recovery)> {
        let dir = dir.as_ref().to_path_buf();
        let wal_dir = dir.join("wal");
        let snap_dir = dir.join("snap");
        std::fs::create_dir_all(&wal_dir)
            .and(std::fs::create_dir_all(&snap_dir))
            .map_err(|e| Error::Io(format!("create durability dirs: {e}")))?;
        let lock_path = acquire_lock(&dir)?;

        let snapshot = snapshot::load_latest(&snap_dir)?;
        let snapshot_lsn = snapshot.as_ref().map(|(l, _)| *l).unwrap_or(0);
        let segments = wal::list_segments(&wal_dir)?;
        let first_lsn = segments
            .first()
            .map(|(s, _)| *s)
            .unwrap_or(snapshot_lsn + 1);
        if first_lsn > snapshot_lsn + 1 {
            return Err(Error::Io(format!(
                "wal gap after snapshot: snapshot at lsn {snapshot_lsn}, oldest segment starts \
                 at {first_lsn}"
            )));
        }
        let scan = wal::scan(&wal_dir, first_lsn)?;
        let next_lsn = scan.next_lsn.max(snapshot_lsn + 1);
        let wal = Wal::open(&wal_dir, config, next_lsn)?;

        // Seed the live query mirror from the same derivation restore
        // hands the server, so mirror and re-registration cannot drift.
        let queries: FxHashMap<String, Query> = replay_query_set(snapshot.as_ref(), &scan.frames)
            .into_iter()
            .collect();
        // Seed the tombstone mirror: the snapshot's carried list plus
        // every delete frame above it.
        let mut tombstones: Vec<(String, String, u64)> = snapshot
            .as_ref()
            .map(|(_, data)| data.tombstones.clone())
            .unwrap_or_default();
        for (lsn, record) in &scan.frames {
            if *lsn <= snapshot_lsn {
                continue;
            }
            if let WalRecord::Write {
                table,
                id,
                kind: quaestor_store::WriteKind::Delete,
                at,
                ..
            } = record
            {
                tombstones.push((table.clone(), id.clone(), *at));
            }
        }

        let last_lsn = next_lsn - 1;
        let recovery = Recovery {
            snapshot,
            frames: scan.frames,
            torn_tail_bytes: scan.truncated_bytes,
            last_lsn,
        };
        let engine = Arc::new(DurabilityEngine {
            dir,
            config,
            state: Mutex::with_rank(
                EngineState {
                    wal,
                    queries,
                    tombstones,
                    frames_since_snapshot: 0,
                },
                lock_rank::DURABILITY_WAL.0,
                lock_rank::DURABILITY_WAL.1,
            ),
            snapshot_gate: Mutex::with_rank(
                (),
                lock_rank::DURABILITY_SNAPSHOT_GATE.0,
                lock_rank::DURABILITY_SNAPSHOT_GATE.1,
            ),
            lock_path,
        });
        Ok((engine, recovery))
    }

    /// The durability directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The configuration in effect.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// Highest LSN assigned so far.
    pub fn last_lsn(&self) -> u64 {
        self.state.lock().wal.last_lsn()
    }

    /// Highest LSN known fsynced to stable storage.
    pub fn durable_lsn(&self) -> u64 {
        self.state.lock().wal.durable()
    }

    /// Read up to `max` frames with LSN above `after_lsn` straight from
    /// the segment files (lock-free; see [`wal::read_frames_after`]).
    /// The replication tailer's read path: only frames the group-commit
    /// buffer has written out are visible, so a replica can never be
    /// ahead of the primary's own disk.
    pub fn read_frames_after(&self, after_lsn: u64, max: usize) -> Result<Vec<(u64, WalRecord)>> {
        wal::read_frames_after(&self.dir.join("wal"), after_lsn, max)
    }

    /// Append a frame shipped from a replication primary, preserving its
    /// LSN (possible because [`Wal`] assigns LSNs sequentially: applying
    /// the primary's frames in order reproduces its numbering exactly).
    /// Returns `Ok(false)` for a duplicate (`lsn` ≤ the log's last LSN —
    /// reconnection re-sends are no-ops) and an error for a gap
    /// (`lsn > last + 1`): frames must arrive in order.
    pub fn append_replicated(&self, lsn: u64, record: &WalRecord) -> Result<bool> {
        let mut state = self.state.lock();
        let last = state.wal.last_lsn();
        if lsn <= last {
            return Ok(false);
        }
        if lsn > last + 1 {
            return Err(Error::Io(format!(
                "replication gap: got frame lsn {lsn}, log ends at {last}"
            )));
        }
        let assigned = state.wal.append(record)?;
        if assigned != lsn {
            return Err(Error::Io(format!(
                "replication lsn mismatch: wal assigned {assigned}, frame says {lsn}"
            )));
        }
        state.frames_since_snapshot += 1;
        // Mirror the same bookkeeping the primary's sink methods keep, so
        // a promoted replica snapshots the full query/tombstone state.
        match record {
            WalRecord::Write {
                table,
                id,
                kind: quaestor_store::WriteKind::Delete,
                at,
                ..
            } => {
                state.tombstones.push((table.clone(), id.clone(), *at));
            }
            WalRecord::RegisterQuery { query } => {
                state
                    .queries
                    .insert(QueryKey::of(query).as_str().to_owned(), query.clone());
            }
            WalRecord::DeregisterQuery { key } => {
                state.queries.remove(key);
            }
            _ => {}
        }
        Ok(true)
    }

    /// Currently registered (durable) queries, in no particular order.
    pub fn registered_queries(&self) -> Vec<Query> {
        self.state.lock().queries.values().cloned().collect()
    }

    fn append_record(&self, record: &WalRecord) -> Result<u64> {
        let mut state = self.state.lock();
        let lsn = state.wal.append(record)?;
        state.frames_since_snapshot += 1;
        Ok(lsn)
    }

    /// Log a query registration (mirrored into the live set so the next
    /// snapshot carries it). Idempotent: re-registering an
    /// already-durable query appends no frame — the origin re-registers
    /// on every cache-miss evaluation, and logging each would bloat the
    /// log with no information.
    pub fn log_register_query(&self, query: &Query) -> Result<u64> {
        let key = QueryKey::of(query).as_str().to_owned();
        let mut state = self.state.lock();
        if state.queries.contains_key(&key) {
            return Ok(state.wal.last_lsn());
        }
        let lsn = state.wal.append(&WalRecord::RegisterQuery {
            query: query.clone(),
        })?;
        state.frames_since_snapshot += 1;
        state.queries.insert(key, query.clone());
        Ok(lsn)
    }

    /// Log a query eviction. Idempotent like
    /// [`log_register_query`](Self::log_register_query).
    pub fn log_deregister_query(&self, key: &QueryKey) -> Result<u64> {
        let mut state = self.state.lock();
        if state.queries.remove(key.as_str()).is_none() {
            return Ok(state.wal.last_lsn());
        }
        let lsn = state.wal.append(&WalRecord::DeregisterQuery {
            key: key.as_str().to_owned(),
        })?;
        state.frames_since_snapshot += 1;
        Ok(lsn)
    }

    /// Force the group-commit buffer to disk; returns the durable LSN.
    pub fn flush(&self) -> Result<u64> {
        self.state.lock().wal.flush()
    }

    /// Whether the auto-snapshot threshold has been crossed — false
    /// while another snapshot is already in flight (the counter only
    /// resets at the *end* of a snapshot, so without this probe every
    /// concurrent writer would launch its own full-state sweep).
    pub fn wants_snapshot(&self) -> bool {
        let every = self.config.snapshot_every_frames;
        every > 0
            && self.state.lock().frames_since_snapshot >= every
            && self.snapshot_gate.try_lock().is_some()
    }

    /// Write a full snapshot of `db` at the current LSN, then compact:
    /// drop log segments entirely below the snapshot and prune older
    /// snapshot files. Returns the snapshot LSN.
    ///
    /// Concurrent writes during the state capture simply land in frames
    /// above the snapshot LSN captured *before* the sweep, so they replay
    /// on recovery — the snapshot is conservative, never lossy.
    pub fn snapshot(&self, db: &Database) -> Result<u64> {
        // One snapshot at a time: concurrent callers queue here rather
        // than interleaving sweeps, compaction and pruning.
        let _gate = self.snapshot_gate.lock();
        // Capture the LSN floor first: every write acked before this
        // point is either in the tables we are about to sweep or in
        // frames ≤ lsn; writes racing the sweep have frames > lsn and
        // replay fine on top.
        let (lsn, queries, tombstones) = {
            let mut state = self.state.lock();
            let lsn = state.wal.flush()?;
            // Prune the tombstone mirror to the retention window
            // (measured in database time against the newest tombstone).
            let newest = state.tombstones.iter().map(|(_, _, at)| *at).max();
            if let Some(newest) = newest {
                let cutoff = newest.saturating_sub(self.config.tombstone_retention_ms);
                state.tombstones.retain(|(_, _, at)| *at >= cutoff);
            }
            (
                lsn,
                state.queries.values().cloned().collect::<Vec<_>>(),
                state.tombstones.clone(),
            )
        };
        let mut tables = Vec::new();
        for name in db.table_names() {
            let t = db.table(&name)?;
            let records = t
                .snapshot()
                .into_iter()
                .map(|(id, rec)| SnapshotRecord {
                    id,
                    version: rec.version,
                    updated_at: rec.updated_at.as_millis(),
                    doc: (*rec.doc).clone(),
                })
                .collect();
            tables.push(SnapshotTable {
                name,
                seq: t.seq(),
                records,
            });
        }
        let data = SnapshotData {
            tables,
            queries,
            tombstones,
        };
        snapshot::write_snapshot(&self.dir.join("snap"), lsn, &data)?;
        {
            let mut state = self.state.lock();
            state.frames_since_snapshot = 0;
            state.wal.compact_below(lsn)?;
        }
        snapshot::prune_below(&self.dir.join("snap"), lsn)?;
        Ok(lsn)
    }
}

/// Truncate the durability directory `dir` so nothing above `lsn`
/// survives: WAL frames with higher LSNs are cut away and snapshots
/// taken above `lsn` are deleted. A fenced old primary runs this before
/// rejoining as a replica, dropping the unreplicated suffix that
/// diverges from the new primary's history. Must run while the
/// directory is closed (no live engine — the `LOCK` protocol is not
/// consulted here). Returns the number of WAL frames dropped.
pub fn truncate_above(dir: impl AsRef<Path>, lsn: u64) -> Result<u64> {
    let dir = dir.as_ref();
    let dropped = wal::truncate_above(&dir.join("wal"), lsn)?;
    let snap_dir = dir.join("snap");
    let mut snaps_removed = false;
    for (snap_lsn, path) in snapshot::list_snapshots(&snap_dir)? {
        if snap_lsn > lsn {
            std::fs::remove_file(&path)
                .map_err(|e| Error::Io(format!("remove truncated snapshot: {e}")))?;
            snaps_removed = true;
        }
    }
    if snaps_removed {
        wal::fsync_dir(&snap_dir)?;
    }
    Ok(dropped)
}

impl WriteSink for DurabilityEngine {
    /// Stage the event (called under the record's shard lock — cheap:
    /// encode + buffer) and mirror delete tombstones for snapshots.
    fn append(&self, event: &WriteEvent) -> Result<u64> {
        let _span = quaestor_obs::span("wal.append");
        let record = WalRecord::from_event(event);
        let lsn = {
            let mut state = self.state.lock();
            let lsn = state.wal.stage(&record)?;
            state.frames_since_snapshot += 1;
            if matches!(event.kind, quaestor_store::WriteKind::Delete) {
                state.tombstones.push((
                    event.table.to_string(),
                    event.id.to_string(),
                    event.at.as_millis(),
                ));
            }
            lsn
        };
        // Park the trace context keyed by LSN so the replication session
        // that later ships this frame can stitch into the same trace.
        quaestor_obs::note_handoff(lsn);
        Ok(lsn)
    }

    /// Durability phase, called after the shard lock is released: one
    /// committer's fsync covers every LSN staged before it.
    fn commit(&self, ticket: u64) -> Result<()> {
        self.state.lock().wal.commit(ticket)
    }

    fn table_created(&self, name: &str) -> Result<()> {
        self.append_record(&WalRecord::CreateTable {
            table: name.to_owned(),
        })?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::{scratch_dir, ManualClock};
    use quaestor_document::doc;
    use quaestor_query::Filter;
    use quaestor_store::WriteKind;

    fn temp_dir(tag: &str) -> PathBuf {
        scratch_dir(&format!("engine-{tag}"))
    }

    fn durable_db(dir: &Path, config: DurabilityConfig) -> (Arc<Database>, Arc<DurabilityEngine>) {
        let (engine, recovery) = DurabilityEngine::open(dir, config).unwrap();
        let db = Database::with_clock(ManualClock::new());
        recovery.restore(&db).unwrap();
        db.attach_sink(engine.clone());
        (db, engine)
    }

    type RecordState = (String, u64, String);

    fn table_state(db: &Database) -> Vec<(String, Vec<RecordState>)> {
        let mut names = db.table_names();
        names.sort();
        names
            .into_iter()
            .map(|n| {
                let t = db.table(&n).unwrap();
                let mut recs: Vec<RecordState> = t
                    .snapshot()
                    .into_iter()
                    .map(|(id, r)| {
                        (
                            id,
                            r.version,
                            quaestor_document::Value::Object((*r.doc).clone()).canonical(),
                        )
                    })
                    .collect();
                recs.sort();
                (n, recs)
            })
            .collect()
    }

    #[test]
    fn writes_survive_crash_and_reopen() {
        let dir = temp_dir("basic");
        {
            let (db, _engine) = durable_db(&dir, DurabilityConfig::default());
            let t = db.create_table("posts");
            t.insert("p1", doc! { "likes" => 1 }).unwrap();
            t.insert("p2", doc! { "likes" => 2 }).unwrap();
            t.update(
                "p1",
                &quaestor_document::Update::new().inc("likes", 10.0),
                None,
            )
            .unwrap();
            t.delete("p2", None).unwrap();
            // Drop without flush: the crash.
        }
        let (db, engine) = durable_db(&dir, DurabilityConfig::default());
        let t = db.table("posts").unwrap();
        assert_eq!(t.len(), 1);
        let rec = t.get("p1").unwrap();
        assert_eq!(rec.version, 2);
        assert_eq!(rec.doc["likes"], quaestor_document::Value::Int(11));
        assert!(t.get("p2").is_none());
        assert_eq!(t.seq(), 4, "seq counter continues the total order");
        assert_eq!(engine.last_lsn(), 5, "create-table frame + 4 writes");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn recovery_is_idempotent_across_reopens() {
        let dir = temp_dir("idem");
        {
            let (db, _e) = durable_db(&dir, DurabilityConfig::default());
            let t = db.create_table("a");
            for i in 0..20 {
                t.insert(&format!("r{i}"), doc! { "n" => i }).unwrap();
            }
            t.delete("r7", None).unwrap();
        }
        let (db1, e1) = durable_db(&dir, DurabilityConfig::default());
        let s1 = table_state(&db1);
        let seq1 = db1.table("a").unwrap().seq();
        drop((db1, e1));
        let (db2, _e2) = durable_db(&dir, DurabilityConfig::default());
        assert_eq!(s1, table_state(&db2));
        assert_eq!(seq1, db2.table("a").unwrap().seq());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn snapshot_compacts_and_recovery_uses_it() {
        let dir = temp_dir("snap");
        let cfg = DurabilityConfig {
            max_segment_bytes: 512,
            ..DurabilityConfig::default()
        };
        {
            let (db, engine) = durable_db(&dir, cfg);
            let t = db.create_table("posts");
            for i in 0..30 {
                t.insert(&format!("p{i}"), doc! { "n" => i }).unwrap();
            }
            let before = wal::list_segments(&dir.join("wal")).unwrap().len();
            assert!(before > 1, "small segments must have rotated");
            let lsn = engine.snapshot(&db).unwrap();
            assert_eq!(lsn, 31, "30 writes + 1 create-table frame");
            let after = wal::list_segments(&dir.join("wal")).unwrap().len();
            assert!(after < before, "compaction dropped covered segments");
            // Writes after the snapshot land in the surviving log.
            t.insert("extra", doc! { "n" => 99 }).unwrap();
        }
        let (db, engine) = durable_db(&dir, cfg);
        let t = db.table("posts").unwrap();
        assert_eq!(t.len(), 31);
        assert!(t.get("extra").is_some());
        assert_eq!(engine.last_lsn(), 32);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_tables_survive_via_create_table_frames_and_snapshots() {
        let dir = temp_dir("empty");
        {
            let (db, engine) = durable_db(&dir, DurabilityConfig::default());
            db.create_table("nothing_here");
            engine.snapshot(&db).unwrap();
            db.create_table("post_snapshot_table");
        }
        let (db, _e) = durable_db(&dir, DurabilityConfig::default());
        let mut names = db.table_names();
        names.sort();
        assert_eq!(names, vec!["nothing_here", "post_snapshot_table"]);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn registered_queries_and_tombstones_recover() {
        let dir = temp_dir("queries");
        let q1 = Query::table("posts").filter(Filter::eq("topic", "db"));
        let q2 = Query::table("posts").filter(Filter::eq("topic", "ml"));
        {
            let (db, engine) = durable_db(&dir, DurabilityConfig::default());
            let t = db.create_table("posts");
            t.insert("p1", doc! { "topic" => "db" }).unwrap();
            engine.log_register_query(&q1).unwrap();
            engine.log_register_query(&q2).unwrap();
            engine.log_deregister_query(&QueryKey::of(&q2)).unwrap();
            t.delete("p1", None).unwrap();
        }
        let (engine, recovery) = DurabilityEngine::open(&dir, DurabilityConfig::default()).unwrap();
        let db = Database::with_clock(ManualClock::new());
        let meta = recovery.restore(&db).unwrap();
        assert_eq!(meta.queries, vec![q1.clone()]);
        assert_eq!(
            meta.tombstones,
            vec![("posts".to_string(), "p1".to_string())]
        );
        assert_eq!(engine.registered_queries(), vec![q1.clone()]);
        // Snapshot carries the query set (and the tombstone, whose
        // delete frame compaction just dropped) across restarts.
        db.attach_sink(engine.clone());
        engine.snapshot(&db).unwrap();
        drop((db, engine));
        let (_engine2, recovery2) =
            DurabilityEngine::open(&dir, DurabilityConfig::default()).unwrap();
        let db2 = Database::with_clock(ManualClock::new());
        let meta2 = recovery2.restore(&db2).unwrap();
        assert_eq!(meta2.queries, vec![q1]);
        assert_eq!(meta2.report.replayed_frames, 0, "snapshot covers the log");
        assert_eq!(
            meta2.tombstones,
            vec![("posts".to_string(), "p1".to_string())],
            "tombstone must survive compaction via the snapshot"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_recovers_to_last_valid_lsn() {
        let dir = temp_dir("torn");
        {
            let (db, _e) = durable_db(&dir, DurabilityConfig::default());
            let t = db.create_table("posts");
            for i in 0..5 {
                t.insert(&format!("p{i}"), doc! { "n" => i }).unwrap();
            }
        }
        // Tear the final frame.
        let (_, seg) = wal::list_segments(&dir.join("wal")).unwrap().pop().unwrap();
        let len = std::fs::metadata(&seg).unwrap().len();
        std::fs::OpenOptions::new()
            .write(true)
            .open(&seg)
            .unwrap()
            .set_len(len - 2)
            .unwrap();
        let (engine, recovery) = DurabilityEngine::open(&dir, DurabilityConfig::default()).unwrap();
        let db = Database::with_clock(ManualClock::new());
        let meta = recovery.restore(&db).unwrap();
        assert!(meta.report.torn_tail_bytes > 0);
        let t = db.table("posts").unwrap();
        assert_eq!(t.len(), 4, "last insert torn away, rest intact");
        // New writes continue from the truncated LSN.
        db.attach_sink(engine.clone());
        let ev = t.insert("p4", doc! { "n" => 4 }).unwrap();
        assert_eq!(ev.seq, 5);
        assert_eq!(engine.last_lsn(), 6);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn double_open_is_refused_while_locked_and_stale_locks_break() {
        let dir = temp_dir("lock");
        let (engine, _recovery) =
            DurabilityEngine::open(&dir, DurabilityConfig::default()).unwrap();
        // A second engine on the same directory would interleave
        // duplicate LSNs into the segment files: refused.
        let err = DurabilityEngine::open(&dir, DurabilityConfig::default()).unwrap_err();
        assert!(err.to_string().contains("already open"), "got: {err}");
        drop(engine); // releases the lock
        drop(_recovery);
        // A lock left by a dead process is broken, not fatal.
        std::fs::write(dir.join("LOCK"), "999999999\n").unwrap();
        let (engine, _recovery) = DurabilityEngine::open(&dir, DurabilityConfig::default())
            .expect("stale lock from a dead pid must be broken");
        drop(engine);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_delete_reinsert_recovers_exact_final_state() {
        // Delete + re-insert resets the record version to 1, so replay
        // cannot rely on versions alone across that boundary: the log
        // must carry same-record events in apply order (the sink is
        // invoked under the record's shard lock). Hammer one key from
        // two threads, crash, and require recovery to land on exactly
        // the final in-memory state.
        let dir = temp_dir("reinsert");
        let final_state = {
            let (db, _engine) = durable_db(&dir, DurabilityConfig::default());
            let t = db.create_table("hot");
            std::thread::scope(|s| {
                for _ in 0..2 {
                    let t = &t;
                    s.spawn(move || {
                        for i in 0..200i64 {
                            let _ = t.insert("x", doc! { "i" => i });
                            let _ = t.update(
                                "x",
                                &quaestor_document::Update::new().inc("i", 1.0),
                                None,
                            );
                            let _ = t.delete("x", None);
                        }
                    });
                }
            });
            let _ = t.insert("x", doc! { "i" => -1 });
            t.get("x").map(|r| (r.version, (*r.doc).clone()))
        };
        let (db, _engine) = durable_db(&dir, DurabilityConfig::default());
        let recovered = db
            .table("hot")
            .unwrap()
            .get("x")
            .map(|r| (r.version, (*r.doc).clone()));
        assert_eq!(
            recovered, final_state,
            "replayed state must equal the pre-crash in-memory state"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn append_replicated_preserves_lsns_and_rejects_gaps() {
        let src = temp_dir("repl-src");
        let dst = temp_dir("repl-dst");
        // A primary produces frames...
        {
            let (db, _e) = durable_db(&src, DurabilityConfig::default());
            let t = db.create_table("posts");
            for i in 0..6 {
                t.insert(&format!("p{i}"), doc! { "n" => i }).unwrap();
            }
            t.delete("p0", None).unwrap();
        }
        let (src_engine, src_rec) =
            DurabilityEngine::open(&src, DurabilityConfig::default()).unwrap();
        drop(src_rec);
        let frames = src_engine.read_frames_after(0, usize::MAX).unwrap();
        assert_eq!(frames.len(), 8, "create-table + 6 inserts + 1 delete");

        // ...a replica appends them with LSNs preserved.
        let (dst_engine, dst_rec) =
            DurabilityEngine::open(&dst, DurabilityConfig::default()).unwrap();
        drop(dst_rec);
        // Out-of-order first frame is a gap.
        let (lsn3, rec3) = &frames[2];
        let err = dst_engine.append_replicated(*lsn3, rec3).unwrap_err();
        assert!(err.to_string().contains("replication gap"), "got: {err}");
        for (lsn, record) in &frames {
            assert!(dst_engine.append_replicated(*lsn, record).unwrap());
        }
        // Duplicate delivery is a no-op, not an error.
        for (lsn, record) in frames.iter().take(3) {
            assert!(!dst_engine.append_replicated(*lsn, record).unwrap());
        }
        assert_eq!(dst_engine.last_lsn(), src_engine.last_lsn());
        assert_eq!(dst_engine.durable_lsn(), src_engine.last_lsn());
        drop(dst_engine);
        // The replica's own recovery reproduces the primary's state.
        let (_, recovery) = DurabilityEngine::open(&dst, DurabilityConfig::default()).unwrap();
        let db = Database::with_clock(ManualClock::new());
        let meta = recovery.restore(&db).unwrap();
        assert_eq!(db.table("posts").unwrap().len(), 5);
        assert_eq!(meta.tombstones, vec![("posts".into(), "p0".into())]);
        std::fs::remove_dir_all(&src).unwrap();
        std::fs::remove_dir_all(&dst).unwrap();
    }

    #[test]
    fn truncate_above_drops_wal_suffix_and_newer_snapshots() {
        let dir = temp_dir("trunc");
        {
            let (db, engine) = durable_db(&dir, DurabilityConfig::default());
            let t = db.create_table("posts");
            for i in 0..5 {
                t.insert(&format!("p{i}"), doc! { "n" => i }).unwrap();
            }
            // Snapshot at lsn 6, then two more (unreplicated) writes.
            assert_eq!(engine.snapshot(&db).unwrap(), 6);
            t.insert("late1", doc! { "n" => 98 }).unwrap();
            t.insert("late2", doc! { "n" => 99 }).unwrap();
        }
        // Fence at lsn 7: the snapshot (lsn 6) survives, frame 8 goes.
        assert_eq!(truncate_above(&dir, 7).unwrap(), 1);
        {
            let (engine, recovery) =
                DurabilityEngine::open(&dir, DurabilityConfig::default()).unwrap();
            let db = Database::with_clock(ManualClock::new());
            recovery.restore(&db).unwrap();
            let t = db.table("posts").unwrap();
            assert!(t.get("late1").is_some());
            assert!(t.get("late2").is_none(), "frame above the fence dropped");
            assert_eq!(engine.last_lsn(), 7);
        }
        // Fence below the snapshot: the snapshot itself must go too.
        assert_eq!(truncate_above(&dir, 4).unwrap(), 3);
        let (engine, recovery) = DurabilityEngine::open(&dir, DurabilityConfig::default()).unwrap();
        let db = Database::with_clock(ManualClock::new());
        let meta = recovery.restore(&db).unwrap();
        assert_eq!(meta.report.snapshot_lsn, 0, "newer snapshot deleted");
        assert_eq!(engine.last_lsn(), 4);
        assert_eq!(
            db.table("posts").unwrap().len(),
            3,
            "create-table + 3 inserts"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_write_events_reconstruct() {
        // WalRecord::from_event/to_event round trip.
        let ev = WriteEvent {
            table: "t".into(),
            id: "x".into(),
            kind: WriteKind::Update,
            image: Arc::new(doc! { "a" => 1 }),
            version: 4,
            seq: 9,
            at: Timestamp::from_millis(77),
        };
        let rec = WalRecord::from_event(&ev);
        let back = rec.to_event().unwrap();
        assert_eq!(back.table, ev.table);
        assert_eq!(back.id, ev.id);
        assert_eq!(back.kind, ev.kind);
        assert_eq!(back.image, ev.image);
        assert_eq!(
            (back.version, back.seq, back.at),
            (ev.version, ev.seq, ev.at)
        );
    }
}

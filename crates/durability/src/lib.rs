//! Durability for the Quaestor store: write-ahead log, snapshots, crash
//! recovery.
//!
//! The paper's deployment delegates persistence to the underlying
//! database system ("Quaestor is agnostic of its underlying database
//! system", §2 — the evaluation ran on MongoDB). Our reproduction's
//! store is in-memory, so this crate supplies the missing property with
//! the classic log-structured recipe:
//!
//! * **WAL** ([`wal`]) — an append-only, segmented log of CRC-checksummed
//!   binary frames, one per write after-image, in the store's existing
//!   per-table `seq` order. Group commit batches frames; the
//!   [`FsyncPolicy`] decides when batches hit stable storage.
//! * **Snapshots** ([`snapshot`]) — full table state at a snapshot LSN,
//!   written atomically, carrying the registered-query set. Segments
//!   entirely below the newest snapshot are compacted away.
//! * **Recovery** ([`engine`]) — open the newest valid snapshot, replay
//!   frames with LSN above it, tolerate a torn tail (truncate at the
//!   first bad CRC at the end of the newest segment — a bad frame that
//!   valid data follows is corruption and fails loudly), and hand the
//!   server what it needs to resume: tables with their `seq` counters,
//!   the queries to re-register with InvaliDB, and the delete tombstones
//!   to warm-start the EBF sketch from.
//!
//! The store stays ignorant of files: it exposes the
//! [`WriteSink`](quaestor_store::WriteSink) seam (called synchronously
//! before a write is acknowledged) and version-keyed replay hooks;
//! [`DurabilityEngine`] implements the sink. `quaestor-core` wires it all
//! together in `QuaestorServer::open`.

pub mod codec;
pub mod config;
pub mod engine;
pub mod frame;
pub mod snapshot;
pub mod wal;

pub use codec::WalRecord;
pub use config::{DurabilityConfig, FsyncPolicy};
pub use engine::{truncate_above, DurabilityEngine, RecoveredMeta, Recovery, RecoveryReport};
pub use snapshot::{SnapshotData, SnapshotRecord, SnapshotTable};

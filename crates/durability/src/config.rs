//! Durability tunables.

/// When the WAL writer calls `fsync` (well, `fdatasync`-equivalent).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Sync before acknowledging every write: an acknowledged write is on
    /// disk, full stop. The crash-recovery guarantee ("zero
    /// acknowledged-write loss") holds only under this policy.
    Always,
    /// Sync once every `n` frames, and drain the group-commit buffer at
    /// least that often (even when `group_commit > n`). Bounds loss to at
    /// most `n` acknowledged writes on a crash; the group-commit sweet
    /// spot for write-heavy workloads.
    EveryN(usize),
    /// Never sync explicitly; the OS page cache flushes on its own
    /// schedule. For simulation and benchmarks of the in-process cost.
    OsDefault,
}

/// Configuration of a [`DurabilityEngine`](crate::DurabilityEngine).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityConfig {
    /// Fsync cadence.
    pub fsync: FsyncPolicy,
    /// Frames buffered in memory before they are written to the segment
    /// file (the group-commit batch). Under [`FsyncPolicy::Always`] the
    /// buffer is flushed on every append regardless, so this only shapes
    /// the other policies.
    pub group_commit: usize,
    /// Rotate to a new segment file once the current one exceeds this
    /// many bytes.
    pub max_segment_bytes: u64,
    /// Write a snapshot (and compact segments below it) automatically
    /// once this many frames have accumulated since the last snapshot.
    /// `0` disables automatic snapshots (explicit calls still work).
    pub snapshot_every_frames: u64,
    /// How long delete tombstones are carried forward into snapshots
    /// (milliseconds of database time). Compaction drops delete frames
    /// below the snapshot LSN, but the EBF warm-start after recovery
    /// still needs recent tombstones — caches may hold the deleted
    /// records until their TTLs lapse. Should comfortably exceed the TTL
    /// estimator's ceiling.
    pub tombstone_retention_ms: u64,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            fsync: FsyncPolicy::Always,
            group_commit: 64,
            max_segment_bytes: 16 << 20,
            snapshot_every_frames: 0,
            tombstone_retention_ms: 3_600_000,
        }
    }
}

impl DurabilityConfig {
    /// A configuration for simulation and tests: no fsync, small segments
    /// so rotation and compaction paths are exercised.
    pub fn sim() -> DurabilityConfig {
        DurabilityConfig {
            fsync: FsyncPolicy::OsDefault,
            group_commit: 1,
            max_segment_bytes: 64 << 10,
            snapshot_every_frames: 0,
            tombstone_retention_ms: 3_600_000,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_safe() {
        let c = DurabilityConfig::default();
        assert_eq!(
            c.fsync,
            FsyncPolicy::Always,
            "default must be the safe policy"
        );
        assert!(c.max_segment_bytes > 0);
    }
}

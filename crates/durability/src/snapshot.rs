//! Snapshot files: the full table state at one LSN.
//!
//! A snapshot bounds replay work and enables segment compaction: every
//! WAL frame with LSN ≤ the snapshot LSN is redundant once the snapshot
//! is on disk. Snapshots also carry the set of registered (actively
//! matched) queries, so re-registration after recovery survives the
//! compaction of their original `RegisterQuery` frames.
//!
//! File layout (`snap-<lsn>.qsnap`, written to a temp name and renamed so
//! a crash mid-write never leaves a half snapshot under the real name):
//!
//! ```text
//! [8-byte magic "QSNAPv1\n"][u64 lsn][u32 body_len][u32 crc32(body)][body]
//! body: u32 table_count
//!       per table: str name, u64 seq, u32 record_count,
//!                  per record: str id, u64 version, u64 updated_at, doc
//!       u32 query_count, per query: Query
//!       u32 tombstone_count, per tombstone: str table, str id, u64 at_ms
//! ```

use std::io::Write as _;
use std::path::{Path, PathBuf};

use quaestor_common::{Error, Result};
use quaestor_document::Document;
use quaestor_query::Query;

use crate::codec::{get_document, get_query, put_document, put_query, Reader, Writer};
use crate::frame::crc32;
use crate::wal::{fsync_dir, io_err};

const MAGIC: &[u8; 8] = b"QSNAPv1\n";
const SNAP_PREFIX: &str = "snap-";
const SNAP_SUFFIX: &str = ".qsnap";

/// One record inside a snapshotted table.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotRecord {
    /// Primary key.
    pub id: String,
    /// Record version (the ETag).
    pub version: u64,
    /// Timestamp of the last write (ms).
    pub updated_at: u64,
    /// The stored document.
    pub doc: Document,
}

/// One table inside a snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct SnapshotTable {
    /// Table name.
    pub name: String,
    /// The table's write-sequence counter at snapshot time.
    pub seq: u64,
    /// All records.
    pub records: Vec<SnapshotRecord>,
}

/// A full point-in-time state: tables plus registered queries plus
/// recent delete tombstones.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SnapshotData {
    /// Every table (including empty ones).
    pub tables: Vec<SnapshotTable>,
    /// Queries actively matched at snapshot time.
    pub queries: Vec<Query>,
    /// Recent deletes as `(table, id, at_ms)`: compaction drops their
    /// WAL frames, but recovery still warm-starts the EBF from them
    /// (caches may hold the deleted records until their TTLs lapse).
    pub tombstones: Vec<(String, String, u64)>,
}

fn snapshot_name(lsn: u64) -> String {
    format!("{SNAP_PREFIX}{lsn:020}{SNAP_SUFFIX}")
}

fn snapshot_lsn_of(name: &str) -> Option<u64> {
    name.strip_prefix(SNAP_PREFIX)?
        .strip_suffix(SNAP_SUFFIX)?
        .parse()
        .ok()
}

/// List snapshot files in `dir`, sorted ascending by LSN.
pub fn list_snapshots(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    let entries = match std::fs::read_dir(dir) {
        Ok(e) => e,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(out),
        Err(e) => return Err(io_err("read snapshot dir", e)),
    };
    for entry in entries {
        let entry = entry.map_err(|e| io_err("read snapshot dir entry", e))?;
        if let Some(lsn) = entry.file_name().to_str().and_then(snapshot_lsn_of) {
            out.push((lsn, entry.path()));
        }
    }
    out.sort_by_key(|(lsn, _)| *lsn);
    Ok(out)
}

/// Serialize and write a snapshot of `data` at `lsn`; returns its path.
/// The write is atomic (temp file + rename + dir-independent fsync).
pub fn write_snapshot(dir: &Path, lsn: u64, data: &SnapshotData) -> Result<PathBuf> {
    std::fs::create_dir_all(dir).map_err(|e| io_err("create snapshot dir", e))?;
    let mut w = Writer::new();
    w.put_u32(data.tables.len() as u32);
    for table in &data.tables {
        w.put_str(&table.name);
        w.put_u64(table.seq);
        w.put_u32(table.records.len() as u32);
        for rec in &table.records {
            w.put_str(&rec.id);
            w.put_u64(rec.version);
            w.put_u64(rec.updated_at);
            put_document(&mut w, &rec.doc);
        }
    }
    w.put_u32(data.queries.len() as u32);
    for q in &data.queries {
        put_query(&mut w, q);
    }
    w.put_u32(data.tombstones.len() as u32);
    for (table, id, at_ms) in &data.tombstones {
        w.put_str(table);
        w.put_str(id);
        w.put_u64(*at_ms);
    }
    let body = w.into_bytes();

    let mut file_bytes = Vec::with_capacity(body.len() + 24);
    file_bytes.extend_from_slice(MAGIC);
    file_bytes.extend_from_slice(&lsn.to_le_bytes());
    file_bytes.extend_from_slice(&(body.len() as u32).to_le_bytes());
    file_bytes.extend_from_slice(&crc32(&body).to_le_bytes());
    file_bytes.extend_from_slice(&body);

    let tmp = dir.join(format!(".{}.tmp", snapshot_name(lsn)));
    let path = dir.join(snapshot_name(lsn));
    {
        let mut f = std::fs::File::create(&tmp).map_err(|e| io_err("create snapshot temp", e))?;
        f.write_all(&file_bytes)
            .map_err(|e| io_err("write snapshot", e))?;
        f.sync_all().map_err(|e| io_err("sync snapshot", e))?;
    }
    std::fs::rename(&tmp, &path).map_err(|e| io_err("rename snapshot into place", e))?;
    // Persist the rename itself: compaction deletes the covering log
    // segments right after this returns, so a snapshot whose directory
    // entry evaporates on power loss would leave an unrecoverable gap.
    fsync_dir(dir)?;
    Ok(path)
}

/// Parse one snapshot file, validating magic, length and CRC.
pub fn read_snapshot(path: &Path) -> Result<(u64, SnapshotData)> {
    let bytes = std::fs::read(path).map_err(|e| io_err("read snapshot", e))?;
    let fail = |msg: &str| {
        Err(Error::Io(format!(
            "invalid snapshot {}: {msg}",
            path.display()
        )))
    };
    if bytes.len() < 24 {
        return fail("too short");
    }
    if &bytes[0..8] != MAGIC {
        return fail("bad magic");
    }
    let mut lsn_a = [0u8; 8];
    lsn_a.copy_from_slice(&bytes[8..16]);
    let lsn = u64::from_le_bytes(lsn_a);
    let mut len_a = [0u8; 4];
    len_a.copy_from_slice(&bytes[16..20]);
    let body_len = u32::from_le_bytes(len_a) as usize;
    let mut crc_a = [0u8; 4];
    crc_a.copy_from_slice(&bytes[20..24]);
    let want_crc = u32::from_le_bytes(crc_a);
    if bytes.len() != 24 + body_len {
        return fail("length mismatch");
    }
    let body = &bytes[24..];
    if crc32(body) != want_crc {
        return fail("crc mismatch");
    }
    fn parse(r: &mut Reader<'_>) -> Result<SnapshotData, crate::codec::DecodeError> {
        let table_count = r.u32()? as usize;
        let mut tables = Vec::with_capacity(table_count.min(1024));
        for _ in 0..table_count {
            let name = r.str()?;
            let seq = r.u64()?;
            let record_count = r.u32()? as usize;
            let mut records = Vec::with_capacity(record_count.min(4096));
            for _ in 0..record_count {
                let id = r.str()?;
                let version = r.u64()?;
                let updated_at = r.u64()?;
                let doc = get_document(r)?;
                records.push(SnapshotRecord {
                    id,
                    version,
                    updated_at,
                    doc,
                });
            }
            tables.push(SnapshotTable { name, seq, records });
        }
        let query_count = r.u32()? as usize;
        let mut queries = Vec::with_capacity(query_count.min(4096));
        for _ in 0..query_count {
            queries.push(get_query(r)?);
        }
        let tombstone_count = r.u32()? as usize;
        let mut tombstones = Vec::with_capacity(tombstone_count.min(4096));
        for _ in 0..tombstone_count {
            let table = r.str()?;
            let id = r.str()?;
            let at_ms = r.u64()?;
            tombstones.push((table, id, at_ms));
        }
        Ok(SnapshotData {
            tables,
            queries,
            tombstones,
        })
    }
    let mut r = Reader::new(body);
    match parse(&mut r) {
        Ok(data) => Ok((lsn, data)),
        Err(e) => fail(&format!("undecodable body: {e}")),
    }
}

/// Load the newest snapshot that parses and CRC-validates, skipping over
/// damaged ones (a crash can tear at most the newest; older ones are a
/// belt-and-braces fallback). Returns `None` for a snapshot-less dir.
pub fn load_latest(dir: &Path) -> Result<Option<(u64, SnapshotData)>> {
    let mut snaps = list_snapshots(dir)?;
    while let Some((lsn, path)) = snaps.pop() {
        match read_snapshot(&path) {
            Ok((stored_lsn, data)) => {
                if stored_lsn != lsn {
                    return Err(Error::Io(format!(
                        "snapshot {} claims lsn {stored_lsn}, file name says {lsn}",
                        path.display()
                    )));
                }
                return Ok(Some((lsn, data)));
            }
            // Damaged snapshot: fall back to the previous one. The WAL
            // segments below it still exist (compaction only runs after
            // a snapshot is durably in place), so no data is lost.
            Err(_) if !snaps.is_empty() => continue,
            Err(e) => return Err(e),
        }
    }
    Ok(None)
}

/// Delete every snapshot older than `keep_lsn`. Returns how many.
pub fn prune_below(dir: &Path, keep_lsn: u64) -> Result<usize> {
    let mut removed = 0;
    for (lsn, path) in list_snapshots(dir)? {
        if lsn < keep_lsn {
            std::fs::remove_file(&path).map_err(|e| io_err("remove old snapshot", e))?;
            removed += 1;
        }
    }
    Ok(removed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_common::scratch_dir;
    use quaestor_document::doc;
    use quaestor_query::Filter;

    fn temp_dir(tag: &str) -> PathBuf {
        scratch_dir(&format!("snap-{tag}"))
    }

    fn sample() -> SnapshotData {
        SnapshotData {
            tables: vec![
                SnapshotTable {
                    name: "posts".into(),
                    seq: 17,
                    records: vec![SnapshotRecord {
                        id: "p1".into(),
                        version: 3,
                        updated_at: 1_000,
                        doc: doc! { "_id" => "p1", "likes" => 7 },
                    }],
                },
                SnapshotTable {
                    name: "empty".into(),
                    seq: 0,
                    records: vec![],
                },
            ],
            queries: vec![Query::table("posts").filter(Filter::eq("likes", 7))],
            tombstones: vec![("posts".into(), "gone".into(), 500)],
        }
    }

    #[test]
    fn write_read_roundtrip() {
        let dir = temp_dir("roundtrip");
        let data = sample();
        write_snapshot(&dir, 42, &data).unwrap();
        let (lsn, back) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(lsn, 42);
        assert_eq!(back, data);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn newest_valid_snapshot_wins() {
        let dir = temp_dir("newest");
        write_snapshot(&dir, 10, &SnapshotData::default()).unwrap();
        write_snapshot(&dir, 20, &sample()).unwrap();
        let (lsn, data) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(lsn, 20);
        assert_eq!(data.tables.len(), 2);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn damaged_newest_falls_back_to_older() {
        let dir = temp_dir("damaged");
        write_snapshot(&dir, 10, &sample()).unwrap();
        let newest = write_snapshot(&dir, 20, &SnapshotData::default()).unwrap();
        // Flip a byte inside the newest snapshot's body.
        let mut bytes = std::fs::read(&newest).unwrap();
        let n = bytes.len();
        bytes[n - 1] ^= 0x01;
        std::fs::write(&newest, &bytes).unwrap();
        let (lsn, data) = load_latest(&dir).unwrap().unwrap();
        assert_eq!(lsn, 10, "fell back to the valid older snapshot");
        assert_eq!(data, sample());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn prune_keeps_newest() {
        let dir = temp_dir("prune");
        write_snapshot(&dir, 10, &SnapshotData::default()).unwrap();
        write_snapshot(&dir, 20, &SnapshotData::default()).unwrap();
        write_snapshot(&dir, 30, &sample()).unwrap();
        assert_eq!(prune_below(&dir, 30).unwrap(), 2);
        let snaps = list_snapshots(&dir).unwrap();
        assert_eq!(snaps.len(), 1);
        assert_eq!(snaps[0].0, 30);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn empty_dir_is_none() {
        let dir = temp_dir("empty");
        assert!(load_latest(&dir).unwrap().is_none());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}

//! Length-prefixed, CRC-checksummed log frames.
//!
//! Wire layout of one frame:
//!
//! ```text
//! [u32 payload_len][u32 crc32(payload)][payload]
//! payload = [u64 lsn][WalRecord]
//! ```
//!
//! The length prefix makes the log self-delimiting; the CRC detects both
//! bit rot and torn writes. A reader distinguishes three outcomes per
//! frame position: a valid frame, a clean end of file, and a *bad tail*
//! (anything else — short header, short payload, CRC mismatch, or a
//! payload that does not decode). Whether a bad tail is tolerated is the
//! recovery layer's decision: at the end of the newest segment it is a
//! torn write and the log is truncated there; anywhere else it is
//! corruption and recovery must fail loudly.

use crate::codec::{Reader, WalRecord, Writer};

/// Hard ceiling on a single frame's payload (a frame holds one write's
/// after-image; 64 MiB is far beyond any sane document). Bounds the
/// allocation a corrupt length prefix can trigger.
pub const MAX_FRAME_PAYLOAD: u32 = 64 << 20;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.
pub fn crc32(data: &[u8]) -> u32 {
    const TABLE: [u32; 256] = crc_table();
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        let idx = ((crc ^ b as u32) & 0xFF) as usize;
        crc = (crc >> 8) ^ TABLE[idx];
    }
    !crc
}

const fn crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

/// Encode `(lsn, record)` as one framed byte run, appended to `out`.
pub fn encode_frame(lsn: u64, record: &WalRecord, out: &mut Vec<u8>) {
    let mut w = Writer::new();
    w.put_u64(lsn);
    record.encode(&mut w);
    let payload = w.into_bytes();
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(&payload).to_le_bytes());
    out.extend_from_slice(&payload);
}

/// Outcome of reading one frame position.
#[derive(Debug)]
pub enum FrameRead {
    /// A valid frame: its LSN, record, and total on-disk size in bytes.
    Frame {
        /// Log sequence number carried by the frame.
        lsn: u64,
        /// The decoded record.
        record: WalRecord,
        /// Header + payload size (advance the cursor by this much).
        size: usize,
    },
    /// Clean end: zero bytes remain.
    Eof,
    /// Anything else — short header, short payload, CRC mismatch, or an
    /// undecodable payload. Carries a human-readable reason.
    BadTail(String),
}

/// Read the frame starting at `buf[offset..]`.
pub fn read_frame(buf: &[u8], offset: usize) -> FrameRead {
    let rest = &buf[offset.min(buf.len())..];
    if rest.is_empty() {
        return FrameRead::Eof;
    }
    if rest.len() < 8 {
        return FrameRead::BadTail(format!("short frame header: {} bytes", rest.len()));
    }
    let len = le_u32(rest, 0);
    if len > MAX_FRAME_PAYLOAD {
        return FrameRead::BadTail(format!("frame length {len} exceeds cap"));
    }
    let want = crc32_from(rest);
    let len = len as usize;
    if rest.len() < 8 + len {
        return FrameRead::BadTail(format!(
            "short frame payload: want {len}, have {}",
            rest.len() - 8
        ));
    }
    let payload = &rest[8..8 + len];
    let got = crc32(payload);
    if got != want {
        return FrameRead::BadTail(format!(
            "crc mismatch: stored {want:#010x}, computed {got:#010x}"
        ));
    }
    let mut r = Reader::new(payload);
    let lsn = match r.u64() {
        Ok(l) => l,
        Err(e) => return FrameRead::BadTail(format!("bad lsn: {e}")),
    };
    match WalRecord::decode(&mut r) {
        Ok(record) => FrameRead::Frame {
            lsn,
            record,
            size: 8 + len,
        },
        // A CRC-valid but undecodable payload means a writer/reader
        // version skew or a hash collision; both are worth surfacing as a
        // bad tail rather than a panic.
        Err(e) => FrameRead::BadTail(format!("undecodable payload: {e}")),
    }
}

fn crc32_from(rest: &[u8]) -> u32 {
    le_u32(rest, 4)
}

/// Little-endian u32 at `at`; caller guarantees `b.len() >= at + 4`.
fn le_u32(b: &[u8], at: usize) -> u32 {
    let mut a = [0u8; 4];
    a.copy_from_slice(&b[at..at + 4]);
    u32::from_le_bytes(a)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(table: &str) -> WalRecord {
        WalRecord::CreateTable {
            table: table.into(),
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn frames_roundtrip_back_to_back() {
        let mut buf = Vec::new();
        encode_frame(1, &rec("a"), &mut buf);
        encode_frame(2, &rec("b"), &mut buf);
        let mut offset = 0;
        let mut lsns = Vec::new();
        loop {
            match read_frame(&buf, offset) {
                FrameRead::Frame { lsn, size, .. } => {
                    lsns.push(lsn);
                    offset += size;
                }
                FrameRead::Eof => break,
                FrameRead::BadTail(e) => panic!("unexpected bad tail: {e}"),
            }
        }
        assert_eq!(lsns, vec![1, 2]);
    }

    #[test]
    fn truncation_is_a_bad_tail_at_every_cut() {
        let mut buf = Vec::new();
        encode_frame(1, &rec("table"), &mut buf);
        for cut in 1..buf.len() {
            match read_frame(&buf[..cut], 0) {
                FrameRead::BadTail(_) => {}
                other => panic!("cut at {cut} gave {other:?}"),
            }
        }
    }

    #[test]
    fn bit_flip_is_a_bad_tail() {
        let mut buf = Vec::new();
        encode_frame(7, &rec("posts"), &mut buf);
        for pos in 8..buf.len() {
            let mut corrupt = buf.clone();
            corrupt[pos] ^= 0x40;
            match read_frame(&corrupt, 0) {
                FrameRead::BadTail(_) => {}
                FrameRead::Frame { .. } => panic!("flip at {pos} went undetected"),
                FrameRead::Eof => panic!("flip at {pos} read as eof"),
            }
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_without_allocating() {
        let mut buf = vec![0xFF, 0xFF, 0xFF, 0xFF]; // len = u32::MAX
        buf.extend_from_slice(&[0; 12]);
        assert!(matches!(read_frame(&buf, 0), FrameRead::BadTail(_)));
    }
}

//! Binary encoding of documents, queries and log records.
//!
//! The vendored serde stand-in has no derive machinery, so the WAL speaks
//! a hand-rolled little-endian format: tagged values, length-prefixed
//! strings and containers. The format is *self-delimiting* (every decoder
//! knows exactly how many bytes it consumes), which is what lets the
//! frame layer treat "decoder ran off the end" as a torn tail rather
//! than undefined behaviour.

use std::collections::BTreeMap;
use std::sync::Arc;

use quaestor_document::{Document, Path, Value};
use quaestor_query::{Filter, Op, Order, Query, SortKey};
use quaestor_store::{WriteEvent, WriteKind};

/// A decode failure. The frame layer maps this to either a tolerated torn
/// tail (at the end of the newest segment) or a hard corruption error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError(pub String);

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "decode error: {}", self.0)
    }
}

type DResult<T> = Result<T, DecodeError>;

fn err<T>(msg: impl Into<String>) -> DResult<T> {
    Err(DecodeError(msg.into()))
}

/// Cursor over an encoded byte slice.
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> DResult<&'a [u8]> {
        if self.remaining() < n {
            return err(format!("need {n} bytes, have {}", self.remaining()));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// `take` into a fixed-size array (for the integer decoders) without
    /// a fallible slice conversion.
    fn take_array<const N: usize>(&mut self) -> DResult<[u8; N]> {
        let s = self.take(N)?;
        let mut out = [0u8; N];
        out.copy_from_slice(s);
        Ok(out)
    }

    /// One byte.
    pub fn u8(&mut self) -> DResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u32.
    pub fn u32(&mut self) -> DResult<u32> {
        Ok(u32::from_le_bytes(self.take_array()?))
    }

    /// Little-endian u64.
    pub fn u64(&mut self) -> DResult<u64> {
        Ok(u64::from_le_bytes(self.take_array()?))
    }

    /// Little-endian i64.
    pub fn i64(&mut self) -> DResult<i64> {
        Ok(i64::from_le_bytes(self.take_array()?))
    }

    /// IEEE-754 f64 from its bit pattern.
    pub fn f64(&mut self) -> DResult<f64> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Length-prefixed UTF-8 string.
    pub fn str(&mut self) -> DResult<String> {
        let n = self.u32()? as usize;
        let bytes = self.take(n)?;
        match std::str::from_utf8(bytes) {
            Ok(s) => Ok(s.to_owned()),
            Err(_) => err("invalid utf-8 in string"),
        }
    }

    /// Length-prefixed raw byte run (the payload-carrying twin of
    /// [`str`](Self::str); used by the wire protocol for opaque bodies
    /// such as serialized responses and Bloom filter bitmaps).
    pub fn bytes(&mut self) -> DResult<&'a [u8]> {
        let n = self.u32()? as usize;
        self.take(n)
    }

    fn count(&mut self, what: &str) -> DResult<usize> {
        let n = self.u32()? as usize;
        // A length prefix can never exceed the bytes that are left; this
        // bounds allocations when decoding garbage.
        if n > self.remaining() {
            return err(format!("{what} count {n} exceeds remaining bytes"));
        }
        Ok(n)
    }
}

/// Append-only encoder; all `put_*` mirror the `Reader` getters.
#[derive(Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty buffer.
    pub fn new() -> Writer {
        Writer::default()
    }

    /// Consume, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// One byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// f64 bit pattern.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Length-prefixed raw byte run.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_u32(b.len() as u32);
        self.buf.extend_from_slice(b);
    }
}

// ---- Value / Document ----------------------------------------------------

const V_NULL: u8 = 0;
const V_BOOL: u8 = 1;
const V_INT: u8 = 2;
const V_FLOAT: u8 = 3;
const V_STR: u8 = 4;
const V_ARRAY: u8 = 5;
const V_OBJECT: u8 = 6;

/// Encode one [`Value`].
pub fn put_value(w: &mut Writer, v: &Value) {
    match v {
        Value::Null => w.put_u8(V_NULL),
        Value::Bool(b) => {
            w.put_u8(V_BOOL);
            w.put_u8(*b as u8);
        }
        Value::Int(i) => {
            w.put_u8(V_INT);
            w.put_i64(*i);
        }
        Value::Float(f) => {
            w.put_u8(V_FLOAT);
            w.put_f64(*f);
        }
        Value::Str(s) => {
            w.put_u8(V_STR);
            w.put_str(s);
        }
        Value::Array(items) => {
            w.put_u8(V_ARRAY);
            w.put_u32(items.len() as u32);
            for item in items {
                put_value(w, item);
            }
        }
        Value::Object(map) => {
            w.put_u8(V_OBJECT);
            put_document(w, map);
        }
    }
}

/// Hard ceiling on decoder recursion (nested arrays/objects, nested
/// filter combinators). Real documents nest a handful of levels; the cap
/// exists because these decoders also face *untrusted* bytes over the
/// wire, where a few KB of crafted nesting tags would otherwise drive
/// the recursion to a stack overflow — an abort, not a clean error.
pub const MAX_DECODE_DEPTH: usize = 64;

pub(crate) fn deeper(depth: usize, what: &str) -> DResult<usize> {
    if depth >= MAX_DECODE_DEPTH {
        return err(format!(
            "{what} nesting exceeds depth cap {MAX_DECODE_DEPTH}"
        ));
    }
    Ok(depth + 1)
}

/// Decode one [`Value`].
pub fn get_value(r: &mut Reader<'_>) -> DResult<Value> {
    get_value_at(r, 0)
}

fn get_value_at(r: &mut Reader<'_>, depth: usize) -> DResult<Value> {
    Ok(match r.u8()? {
        V_NULL => Value::Null,
        V_BOOL => Value::Bool(r.u8()? != 0),
        V_INT => Value::Int(r.i64()?),
        V_FLOAT => Value::Float(r.f64()?),
        V_STR => Value::Str(r.str()?),
        V_ARRAY => {
            let depth = deeper(depth, "value")?;
            let n = r.count("array")?;
            let mut items = Vec::with_capacity(n);
            for _ in 0..n {
                items.push(get_value_at(r, depth)?);
            }
            Value::Array(items)
        }
        V_OBJECT => Value::Object(get_document_at(r, deeper(depth, "value")?)?),
        t => return err(format!("unknown value tag {t}")),
    })
}

/// Encode a [`Document`] (count + sorted key/value pairs).
pub fn put_document(w: &mut Writer, doc: &Document) {
    w.put_u32(doc.len() as u32);
    for (k, v) in doc {
        w.put_str(k);
        put_value(w, v);
    }
}

/// Decode a [`Document`].
pub fn get_document(r: &mut Reader<'_>) -> DResult<Document> {
    get_document_at(r, 0)
}

fn get_document_at(r: &mut Reader<'_>, depth: usize) -> DResult<Document> {
    let n = r.count("document")?;
    let mut map = BTreeMap::new();
    for _ in 0..n {
        let k = r.str()?;
        let v = get_value_at(r, depth)?;
        map.insert(k, v);
    }
    Ok(map)
}

// ---- Filter / Query ------------------------------------------------------

const OP_EQ: u8 = 0;
const OP_NE: u8 = 1;
const OP_GT: u8 = 2;
const OP_GTE: u8 = 3;
const OP_LT: u8 = 4;
const OP_LTE: u8 = 5;
const OP_IN: u8 = 6;
const OP_NIN: u8 = 7;
const OP_CONTAINS: u8 = 8;
const OP_ALL: u8 = 9;
const OP_EXISTS: u8 = 10;
const OP_SIZE: u8 = 11;
const OP_STARTS_WITH: u8 = 12;

fn put_values(w: &mut Writer, vs: &[Value]) {
    w.put_u32(vs.len() as u32);
    for v in vs {
        put_value(w, v);
    }
}

fn get_values(r: &mut Reader<'_>) -> DResult<Vec<Value>> {
    let n = r.count("value list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_value(r)?);
    }
    Ok(out)
}

fn put_op(w: &mut Writer, op: &Op) {
    match op {
        Op::Eq(v) => {
            w.put_u8(OP_EQ);
            put_value(w, v);
        }
        Op::Ne(v) => {
            w.put_u8(OP_NE);
            put_value(w, v);
        }
        Op::Gt(v) => {
            w.put_u8(OP_GT);
            put_value(w, v);
        }
        Op::Gte(v) => {
            w.put_u8(OP_GTE);
            put_value(w, v);
        }
        Op::Lt(v) => {
            w.put_u8(OP_LT);
            put_value(w, v);
        }
        Op::Lte(v) => {
            w.put_u8(OP_LTE);
            put_value(w, v);
        }
        Op::In(vs) => {
            w.put_u8(OP_IN);
            put_values(w, vs);
        }
        Op::Nin(vs) => {
            w.put_u8(OP_NIN);
            put_values(w, vs);
        }
        Op::Contains(v) => {
            w.put_u8(OP_CONTAINS);
            put_value(w, v);
        }
        Op::All(vs) => {
            w.put_u8(OP_ALL);
            put_values(w, vs);
        }
        Op::Exists(b) => {
            w.put_u8(OP_EXISTS);
            w.put_u8(*b as u8);
        }
        Op::Size(n) => {
            w.put_u8(OP_SIZE);
            w.put_u64(*n as u64);
        }
        Op::StartsWith(s) => {
            w.put_u8(OP_STARTS_WITH);
            w.put_str(s);
        }
    }
}

fn get_op(r: &mut Reader<'_>) -> DResult<Op> {
    Ok(match r.u8()? {
        OP_EQ => Op::Eq(get_value(r)?),
        OP_NE => Op::Ne(get_value(r)?),
        OP_GT => Op::Gt(get_value(r)?),
        OP_GTE => Op::Gte(get_value(r)?),
        OP_LT => Op::Lt(get_value(r)?),
        OP_LTE => Op::Lte(get_value(r)?),
        OP_IN => Op::In(get_values(r)?),
        OP_NIN => Op::Nin(get_values(r)?),
        OP_CONTAINS => Op::Contains(get_value(r)?),
        OP_ALL => Op::All(get_values(r)?),
        OP_EXISTS => Op::Exists(r.u8()? != 0),
        OP_SIZE => Op::Size(r.u64()? as usize),
        OP_STARTS_WITH => Op::StartsWith(r.str()?),
        t => return err(format!("unknown op tag {t}")),
    })
}

const F_TRUE: u8 = 0;
const F_CMP: u8 = 1;
const F_AND: u8 = 2;
const F_OR: u8 = 3;
const F_NOR: u8 = 4;
const F_NOT: u8 = 5;

fn put_filters(w: &mut Writer, fs: &[Filter]) {
    w.put_u32(fs.len() as u32);
    for f in fs {
        put_filter(w, f);
    }
}

fn get_filters(r: &mut Reader<'_>, depth: usize) -> DResult<Vec<Filter>> {
    let n = r.count("filter list")?;
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        out.push(get_filter_at(r, depth)?);
    }
    Ok(out)
}

/// Encode a [`Filter`] tree.
pub fn put_filter(w: &mut Writer, f: &Filter) {
    match f {
        Filter::True => w.put_u8(F_TRUE),
        Filter::Cmp(path, op) => {
            w.put_u8(F_CMP);
            w.put_str(path.as_str());
            put_op(w, op);
        }
        Filter::And(fs) => {
            w.put_u8(F_AND);
            put_filters(w, fs);
        }
        Filter::Or(fs) => {
            w.put_u8(F_OR);
            put_filters(w, fs);
        }
        Filter::Nor(fs) => {
            w.put_u8(F_NOR);
            put_filters(w, fs);
        }
        Filter::Not(inner) => {
            w.put_u8(F_NOT);
            put_filter(w, inner);
        }
    }
}

/// Decode a [`Filter`] tree.
pub fn get_filter(r: &mut Reader<'_>) -> DResult<Filter> {
    get_filter_at(r, 0)
}

fn get_filter_at(r: &mut Reader<'_>, depth: usize) -> DResult<Filter> {
    Ok(match r.u8()? {
        F_TRUE => Filter::True,
        F_CMP => {
            let path = Path::new(r.str()?);
            Filter::Cmp(path, get_op(r)?)
        }
        F_AND => Filter::And(get_filters(r, deeper(depth, "filter")?)?),
        F_OR => Filter::Or(get_filters(r, deeper(depth, "filter")?)?),
        F_NOR => Filter::Nor(get_filters(r, deeper(depth, "filter")?)?),
        F_NOT => Filter::Not(Box::new(get_filter_at(r, deeper(depth, "filter")?)?)),
        t => return err(format!("unknown filter tag {t}")),
    })
}

/// Encode a full [`Query`].
pub fn put_query(w: &mut Writer, q: &Query) {
    w.put_str(&q.table);
    put_filter(w, &q.filter);
    w.put_u32(q.sort.len() as u32);
    for key in &q.sort {
        w.put_str(key.path.as_str());
        w.put_u8(matches!(key.order, Order::Desc) as u8);
    }
    match q.limit {
        Some(l) => {
            w.put_u8(1);
            w.put_u64(l as u64);
        }
        None => w.put_u8(0),
    }
    w.put_u64(q.offset as u64);
}

/// Decode a full [`Query`].
// analyze: allow(depth-cap) only the filter recurses, via depth-capped get_filter_at
pub fn get_query(r: &mut Reader<'_>) -> DResult<Query> {
    let table = r.str()?;
    let filter = get_filter(r)?;
    let n = r.count("sort keys")?;
    let mut sort = Vec::with_capacity(n);
    for _ in 0..n {
        let path = Path::new(r.str()?);
        let order = if r.u8()? != 0 {
            Order::Desc
        } else {
            Order::Asc
        };
        sort.push(SortKey { path, order });
    }
    let limit = if r.u8()? != 0 {
        Some(r.u64()? as usize)
    } else {
        None
    };
    let offset = r.u64()? as usize;
    Ok(Query {
        table,
        filter,
        sort,
        limit,
        offset,
    })
}

// ---- WAL records ---------------------------------------------------------

/// One logical record carried by a WAL frame.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// A write after-image, mirroring [`WriteEvent`] minus the interning.
    Write {
        /// Table name.
        table: String,
        /// Primary key.
        id: String,
        /// Insert / update / delete.
        kind: WriteKind,
        /// After-image (before-image for deletes).
        image: Document,
        /// Record version produced by the write.
        version: u64,
        /// The table's per-write sequence number.
        seq: u64,
        /// Database timestamp of the write (ms).
        at: u64,
    },
    /// A table was created (covers empty tables between snapshots).
    CreateTable {
        /// Table name.
        table: String,
    },
    /// A query was registered with InvaliDB and must be re-registered
    /// after recovery.
    RegisterQuery {
        /// The full query (the normalized key is derivable from it).
        query: Query,
    },
    /// A previously registered query was evicted.
    DeregisterQuery {
        /// The normalized query-key string.
        key: String,
    },
}

const R_WRITE: u8 = 1;
const R_CREATE_TABLE: u8 = 2;
const R_REGISTER_QUERY: u8 = 3;
const R_DEREGISTER_QUERY: u8 = 4;

fn kind_tag(kind: WriteKind) -> u8 {
    match kind {
        WriteKind::Insert => 0,
        WriteKind::Update => 1,
        WriteKind::Delete => 2,
    }
}

impl WalRecord {
    /// Build a `Write` record from a live [`WriteEvent`].
    pub fn from_event(event: &WriteEvent) -> WalRecord {
        WalRecord::Write {
            table: event.table.to_string(),
            id: event.id.to_string(),
            kind: event.kind,
            image: (*event.image).clone(),
            version: event.version,
            seq: event.seq,
            at: event.at.as_millis(),
        }
    }

    /// Reconstruct a [`WriteEvent`] (fresh interned strings).
    pub fn to_event(&self) -> Option<WriteEvent> {
        match self {
            WalRecord::Write {
                table,
                id,
                kind,
                image,
                version,
                seq,
                at,
            } => Some(WriteEvent {
                table: Arc::from(table.as_str()),
                id: Arc::from(id.as_str()),
                kind: *kind,
                image: Arc::new(image.clone()),
                version: *version,
                seq: *seq,
                at: quaestor_common::Timestamp::from_millis(*at),
            }),
            _ => None,
        }
    }

    /// Encode into `w`.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            WalRecord::Write {
                table,
                id,
                kind,
                image,
                version,
                seq,
                at,
            } => {
                w.put_u8(R_WRITE);
                w.put_str(table);
                w.put_str(id);
                w.put_u8(kind_tag(*kind));
                put_document(w, image);
                w.put_u64(*version);
                w.put_u64(*seq);
                w.put_u64(*at);
            }
            WalRecord::CreateTable { table } => {
                w.put_u8(R_CREATE_TABLE);
                w.put_str(table);
            }
            WalRecord::RegisterQuery { query } => {
                w.put_u8(R_REGISTER_QUERY);
                put_query(w, query);
            }
            WalRecord::DeregisterQuery { key } => {
                w.put_u8(R_DEREGISTER_QUERY);
                w.put_str(key);
            }
        }
    }

    /// Decode from `r`.
    pub fn decode(r: &mut Reader<'_>) -> DResult<WalRecord> {
        Ok(match r.u8()? {
            R_WRITE => {
                let table = r.str()?;
                let id = r.str()?;
                let kind = match r.u8()? {
                    0 => WriteKind::Insert,
                    1 => WriteKind::Update,
                    2 => WriteKind::Delete,
                    t => return err(format!("unknown write kind {t}")),
                };
                let image = get_document(r)?;
                let version = r.u64()?;
                let seq = r.u64()?;
                let at = r.u64()?;
                WalRecord::Write {
                    table,
                    id,
                    kind,
                    image,
                    version,
                    seq,
                    at,
                }
            }
            R_CREATE_TABLE => WalRecord::CreateTable { table: r.str()? },
            R_REGISTER_QUERY => WalRecord::RegisterQuery {
                query: get_query(r)?,
            },
            R_DEREGISTER_QUERY => WalRecord::DeregisterQuery { key: r.str()? },
            t => return err(format!("unknown record tag {t}")),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use quaestor_document::doc;

    fn roundtrip_value(v: &Value) -> Value {
        let mut w = Writer::new();
        put_value(&mut w, v);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = get_value(&mut r).unwrap();
        assert_eq!(r.remaining(), 0, "decoder must consume exactly");
        back
    }

    #[test]
    fn value_roundtrips_preserve_numeric_type() {
        // Unlike the canonical-JSON path, the binary codec must keep
        // Int/Float distinct: 3 and 3.0 compare equal but replaying a
        // document should restore the exact variant written.
        let v = Value::Int(3);
        assert!(matches!(roundtrip_value(&v), Value::Int(3)));
        let v = Value::Float(3.0);
        assert!(matches!(roundtrip_value(&v), Value::Float(f) if f == 3.0));
    }

    #[test]
    fn document_roundtrip() {
        let d = doc! {
            "title" => "a \"quoted\" title",
            "likes" => 42,
            "score" => 1.5,
            "tags" => vec!["a", "b"],
            "nested" => Value::Object(doc! { "x" => Value::Null })
        };
        let mut w = Writer::new();
        put_document(&mut w, &d);
        let bytes = w.into_bytes();
        let back = get_document(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn query_roundtrip_preserves_key() {
        use quaestor_query::QueryKey;
        let q = Query::table("posts")
            .filter(Filter::and([
                Filter::contains("tags", "example"),
                Filter::not(Filter::eq("hidden", true)),
                Filter::is_in("kind", [Value::str("a"), Value::str("b")]),
                Filter::starts_with("title", "He"),
            ]))
            .sort_by("likes", Order::Desc)
            .limit(20)
            .offset(5);
        let mut w = Writer::new();
        put_query(&mut w, &q);
        let bytes = w.into_bytes();
        let back = get_query(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(q, back);
        assert_eq!(QueryKey::of(&q), QueryKey::of(&back));
    }

    #[test]
    fn wal_record_roundtrip() {
        let records = vec![
            WalRecord::Write {
                table: "posts".into(),
                id: "p1".into(),
                kind: WriteKind::Update,
                image: doc! { "_id" => "p1", "likes" => 3 },
                version: 7,
                seq: 42,
                at: 1_000,
            },
            WalRecord::CreateTable {
                table: "empty".into(),
            },
            WalRecord::RegisterQuery {
                query: Query::table("posts").filter(Filter::eq("topic", "db")),
            },
            WalRecord::DeregisterQuery {
                key: "posts?{}".into(),
            },
        ];
        for rec in &records {
            let mut w = Writer::new();
            rec.encode(&mut w);
            let bytes = w.into_bytes();
            let back = WalRecord::decode(&mut Reader::new(&bytes)).unwrap();
            assert_eq!(*rec, back);
        }
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let rec = WalRecord::Write {
            table: "posts".into(),
            id: "p1".into(),
            kind: WriteKind::Insert,
            image: doc! { "x" => 1 },
            version: 1,
            seq: 1,
            at: 0,
        };
        let mut w = Writer::new();
        rec.encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                WalRecord::decode(&mut Reader::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes must not decode"
            );
        }
    }

    fn arb_value() -> impl Strategy<Value = Value> {
        let leaf = prop_oneof![
            Just(Value::Null),
            any::<bool>().prop_map(Value::Bool),
            any::<i64>().prop_map(Value::Int),
            (-1e12f64..1e12).prop_map(Value::Float),
            "[a-z\"\\\\]{0,8}".prop_map(Value::Str),
        ];
        leaf.prop_recursive(3, 16, 4, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Array),
                proptest::collection::btree_map("[a-z]{1,4}", inner, 0..4).prop_map(Value::Object),
            ]
        })
    }

    proptest! {
        #[test]
        fn arbitrary_values_roundtrip(v in arb_value()) {
            prop_assert_eq!(roundtrip_value(&v), v);
        }

        #[test]
        fn garbage_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
            let _ = WalRecord::decode(&mut Reader::new(&bytes));
            let _ = get_value(&mut Reader::new(&bytes));
        }
    }
}

//! A log-bucketed latency histogram with percentile queries.
//!
//! The evaluation reports mean latencies, 99th-percentile bounds
//! (Figure 12) and a full latency histogram (Figure 8f). This histogram
//! uses logarithmic bucketing (HdrHistogram-style, base-2 with 16 linear
//! sub-buckets per octave) which keeps relative error below ~6% across the
//! full `u64` range while using a few KB of memory.

use serde::{Deserialize, Serialize};

const SUB_BUCKET_BITS: u32 = 4; // 16 sub-buckets per octave
const SUB_BUCKETS: usize = 1 << SUB_BUCKET_BITS;

/// Log-bucketed histogram over `u64` values (typically microseconds or
/// milliseconds of latency).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        // 64 octaves x 16 sub-buckets covers all of u64.
        Histogram {
            counts: vec![0; 64 * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    #[inline]
    fn bucket_index(value: u64) -> usize {
        if value < SUB_BUCKETS as u64 {
            return value as usize;
        }
        let octave = 63 - value.leading_zeros();
        let shift = octave - SUB_BUCKET_BITS;
        let sub = (value >> shift) as usize & (SUB_BUCKETS - 1);
        ((octave - SUB_BUCKET_BITS + 1) as usize) * SUB_BUCKETS + sub
    }

    /// Representative (lower-bound) value of a bucket.
    fn bucket_value(index: usize) -> u64 {
        if index < SUB_BUCKETS {
            return index as u64;
        }
        let octave = (index / SUB_BUCKETS) as u32 + SUB_BUCKET_BITS - 1;
        let sub = (index % SUB_BUCKETS) as u64;
        let base = 1u64 << octave;
        base + (sub << (octave - SUB_BUCKET_BITS))
    }

    /// Record a single observation.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_index(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Record `n` identical observations.
    pub fn record_n(&mut self, value: u64, n: u64) {
        if n == 0 {
            return;
        }
        self.counts[Self::bucket_index(value)] += n;
        self.total += n;
        self.sum += value as u128 * n as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += *b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Arithmetic mean of observations (0 if empty).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    /// Smallest recorded value (0 if empty).
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Value at quantile `q` in `[0, 1]`: the lower bound of the bucket
    /// containing the `ceil(q * count)`-th observation. `None` on an
    /// empty histogram — an empty distribution has no quantiles, and the
    /// old `0` return read as "p99 was zero microseconds" in reports.
    pub fn percentile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let target = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(Self::bucket_value(i));
            }
        }
        Some(self.max)
    }

    /// Median (p50); `None` on an empty histogram.
    pub fn median(&self) -> Option<u64> {
        self.percentile(0.5)
    }

    /// Iterate non-empty `(bucket_lower_bound, count)` pairs, ascending.
    pub fn iter_buckets(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_value(i), c))
    }

    /// Fraction of observations `<= value` (an empirical CDF point).
    pub fn cdf(&self, value: u64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let limit = Self::bucket_index(value);
        let below: u64 = self.counts[..=limit].iter().sum();
        below as f64 / self.total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn empty_histogram() {
        let h = Histogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.99), None, "no quantiles without data");
        assert_eq!(h.median(), None);
    }

    #[test]
    fn one_observation_defines_every_percentile() {
        let mut h = Histogram::new();
        h.record(42);
        assert_eq!(h.percentile(0.0), Some(42));
        assert_eq!(h.percentile(0.99), Some(42));
        assert_eq!(h.median(), Some(42));
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 15);
        assert_eq!(h.percentile(1.0), Some(15));
        assert_eq!(h.median(), Some(7));
    }

    #[test]
    fn percentiles_ordered() {
        let mut h = Histogram::new();
        for v in [1u64, 2, 3, 4, 5, 100, 200, 1000, 10_000] {
            h.record(v);
        }
        assert!(h.percentile(0.5) <= h.percentile(0.9));
        assert!(h.percentile(0.9) <= h.percentile(0.99));
        assert!(h.percentile(0.99).unwrap() <= h.max());
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        h.record(10);
        h.record(20);
        h.record(30);
        assert_eq!(h.mean(), 20.0);
    }

    #[test]
    fn merge_combines() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record(5);
        b.record(15);
        b.record_n(25, 2);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        assert_eq!(a.min(), 5);
        assert_eq!(a.max(), 25);
    }

    #[test]
    fn cdf_monotone() {
        let mut h = Histogram::new();
        for v in [1u64, 10, 100, 1000] {
            h.record(v);
        }
        assert!(h.cdf(0) <= h.cdf(10));
        assert!(h.cdf(10) <= h.cdf(100));
        assert!((h.cdf(u64::MAX / 2) - 1.0).abs() < f64::EPSILON);
    }

    proptest! {
        #[test]
        fn bucket_relative_error_bounded(v in 1u64..u64::MAX / 2) {
            let idx = Histogram::bucket_index(v);
            let lo = Histogram::bucket_value(idx);
            prop_assert!(lo <= v, "bucket lower bound {lo} must be <= value {v}");
            // Relative error of the lower bound is < 1/16 + epsilon.
            let err = (v - lo) as f64 / v as f64;
            prop_assert!(err < 0.07, "relative error {err} too large for {v}");
        }

        #[test]
        fn bucket_index_monotone(a in 0u64..1_000_000, b in 0u64..1_000_000) {
            let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
            prop_assert!(Histogram::bucket_index(lo) <= Histogram::bucket_index(hi));
        }

        #[test]
        fn percentile_bounded_by_min_max(values in proptest::collection::vec(0u64..100_000, 1..200),
                                         q in 0.0f64..1.0) {
            let mut h = Histogram::new();
            for &v in &values { h.record(v); }
            let p = h.percentile(q).expect("non-empty histogram has quantiles");
            prop_assert!(p <= h.max());
        }
    }
}

//! The workspace lock-rank hierarchy.
//!
//! Every long-lived lock in the workspace is constructed with
//! [`parking_lot::Mutex::with_rank`] using a `(name, rank)` pair from this
//! table. Under `RUSTFLAGS="--cfg lockcheck"` the vendored `parking_lot`
//! enforces that locks are only acquired in strictly increasing rank order
//! per thread (same-name lock *classes*, like the table shards, are exempt
//! so slice-ordered sweeps stay legal); an inversion panics with both
//! acquisition sites.
//!
//! The static linter (`cargo run -p quaestor-analyze -- lint`) checks a
//! token-level projection of the same hierarchy from
//! `analyze/lock-order.toml`. Keep all three in sync: this table, that
//! TOML file, and `crates/analyze/DESIGN.md`.
//!
//! Rank gaps are deliberate — new locks slot in between existing ones
//! without renumbering the world.

/// A `(name, rank)` pair for [`parking_lot::Mutex::with_rank`].
pub type LockRank = (&'static str, u32);

/// `QuaestorServer`'s global commit lock — held across whole BOCC
/// validate+apply cycles, so it is the outermost lock in the system.
pub const CORE_COMMIT: LockRank = ("core.commit", 5);
/// `DurabilityEngine::snapshot_gate` — serialises snapshot attempts. Held
/// across `Database::table()` lookups and per-shard reads during
/// `snapshot()`, so it ranks *below* `store.db.tables` and `store.shard`
/// despite living in the durability crate (found empirically by the
/// `lockcheck` detector, not by reading the code).
pub const DURABILITY_SNAPSHOT_GATE: LockRank = ("durability.snapshot_gate", 8);
/// `Database::tables` — the table map, outermost store lock.
pub const STORE_DB_TABLES: LockRank = ("store.db.tables", 10);
/// `Database::index_registry` — declarative index specs; held (via an
/// `if let` scrutinee temporary) across `ensure_index`, so it must rank
/// below every lock `ensure_index` takes.
pub const STORE_DB_INDEX_REGISTRY: LockRank = ("store.db.index_registry", 12);
/// `Table::shards[i]` — one per shard; a lock *class* (same name), so
/// slice-ordered multi-shard sweeps (`ensure_index`, `snapshot`) are
/// exempt from the order check among themselves.
pub const STORE_SHARD: LockRank = ("store.shard", 20);
/// `Table::indexes` — acquired while a shard write lock is held
/// (shard → index is the documented store order from PR 5).
pub const STORE_INDEX: LockRank = ("store.index", 30);
/// `Database::sink` / `Table::sink` — the shared durability-sink slot,
/// read while a shard write lock (and the index lock path) is active.
pub const STORE_SINK: LockRank = ("store.sink", 40);
/// `ChangeStream::taps` — publish fan-out, called under the sink read.
pub const STORE_CHANGES: LockRank = ("store.changes", 45);
/// `DurabilityEngine::state` — WAL writer state; appends run under a
/// shard write lock via the sink.
pub const DURABILITY_WAL: LockRank = ("durability.wal", 55);
/// `PubSub::channels` — kv fan-out map (leaf; nothing nests inside it).
pub const KV_PUBSUB_CHANNELS: LockRank = ("kv.pubsub.channels", 60);
/// `ReplicatedService::election` — serializes fail-over elections (two
/// concurrent probe-and-promote passes can crown two primaries when a
/// probe fails transiently). Held across endpoint probes, which take
/// the `net.client.*` locks, so it ranks below that whole range.
pub const CLIENT_FAILOVER_ELECTION: LockRank = ("client.failover.election", 62);
/// `Server::accept` — accept-thread handle slot.
pub const NET_SERVER_ACCEPT: LockRank = ("net.server.accept", 65);
/// `Server::workers` — worker-thread handles.
pub const NET_SERVER_WORKERS: LockRank = ("net.server.workers", 66);
/// The fallback `poll(2)` backend's fd registration table (leaf with
/// respect to the loop: copied out before the blocking syscall, never
/// held across it; the epoll backend has no lock at all).
pub const NET_POLL_REGISTRY: LockRank = ("net.poll.registry", 67);
/// One event-loop shard's cross-thread task inbox (accepts, stream
/// notifies, shutdown). Publish-side notify hooks take it while
/// `kv.pubsub.channels` (60) is read-held, so it ranks above that.
pub const NET_SHARD_INBOX: LockRank = ("net.server.shard.inbox", 68);
/// One event-loop shard's force-close registry: token → socket clone,
/// so `NetServer::shutdown` can sever connections a wedged handler is
/// still serving. Leaf within the shard (installed/removed by the loop,
/// drained once by shutdown).
pub const NET_SHARD_CONNS: LockRank = ("net.server.shard.conns", 69);
/// `RemoteService::slots[i]` — connection-pool slots (a class: one per
/// slot, only ever one held at a time).
pub const NET_CLIENT_SLOT: LockRank = ("net.client.slot", 70);
/// Client-side per-connection write half (acquired under a pool slot).
pub const NET_CLIENT_WRITER: LockRank = ("net.client.conn.writer", 74);
/// Client-side pending-response map (acquired under the write half).
pub const NET_CLIENT_PENDING: LockRank = ("net.client.conn.pending", 78);
/// Pool-wide retired-connection latency histogram.
pub const NET_CLIENT_RETIRED_LATENCY: LockRank = ("net.client.retired_latency", 82);
/// Per-connection latency histogram (merged into `retired_latency` while
/// that lock is held, so it ranks above it).
pub const NET_CLIENT_LATENCY: LockRank = ("net.client.conn.latency", 86);
/// `ReplNode::role_state` — replication role, epoch, and fence LSN. Held
/// across promotion, which attaches the durability sink (`store.sink`,
/// rank 40) and persists the epoch file, so it ranks below every store
/// and durability lock.
pub const REPL_NODE_ROLE: LockRank = ("repl.node.role", 3);
/// `ReplNode` thread-handle and follower-socket slots (`accept_slot`,
/// `follower_slot`, `follower_conn`, `follow_target`) — a class: only
/// ever held briefly to install, signal, retarget, or join, never while
/// calling into lower layers.
pub const REPL_THREADS: LockRank = ("repl.node.threads", 88);
/// `ReplNode::sessions` — per-replica shipping-session registry (leaf;
/// pushed on accept, swept on shutdown, scanned by the ack-wait loop).
pub const REPL_SESSIONS: LockRank = ("repl.node.sessions", 90);
/// `ReplicatedService::state` — the client failover router's
/// believed-primary index (leaf: read/updated around endpoint calls,
/// never held across them).
pub const CLIENT_FAILOVER_ROUTER: LockRank = ("client.failover.router", 92);
/// `obs` trace-handoff map (WAL append → replication-ship stitching).
/// Taken after a frame is staged — potentially while I/O-layer locks are
/// held — so it ranks above every service lock.
pub const OBS_HANDOFF: LockRank = ("obs.trace.handoff", 93);
/// `obs::Registry` inner map — name → metric handle. Registration and
/// snapshots may run while middleware holds service-layer locks, so it
/// sits in the leaf-high range.
pub const OBS_REGISTRY: LockRank = ("obs.registry", 94);
/// One `obs::HistogramHandle`'s histogram — recorded into from
/// middleware after a call completes; nothing is acquired under it.
pub const OBS_METRIC_HIST: LockRank = ("obs.metric.hist", 96);
/// The global span ring buffer — pushed into from `SpanGuard::drop`,
/// which can run while *any* other lock is held, so it must outrank
/// every other lock in the workspace. Nothing nests inside it.
pub const OBS_TRACE_COLLECTOR: LockRank = ("obs.trace.collector", 98);

//! Scratch directories for tests and benchmarks.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

static SEQ: AtomicU64 = AtomicU64::new(0);

/// A fresh, process-unique scratch directory under the system temp dir,
/// created empty. Used by durability/crash tests and benches across the
/// workspace (one shared implementation instead of a copy per crate).
/// The caller owns cleanup (`std::fs::remove_dir_all`); leaking on a
/// panicking test is fine — the next run gets a new suffix.
pub fn scratch_dir(tag: &str) -> PathBuf {
    let d = std::env::temp_dir().join(format!(
        "quaestor-{tag}-{}-{}",
        std::process::id(),
        SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&d);
    std::fs::create_dir_all(&d).expect("create scratch dir");
    d
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scratch_dirs_are_unique_and_empty() {
        let a = scratch_dir("t");
        let b = scratch_dir("t");
        assert_ne!(a, b);
        assert!(a.exists() && b.exists());
        assert_eq!(std::fs::read_dir(&a).unwrap().count(), 0);
        std::fs::remove_dir_all(&a).unwrap();
        std::fs::remove_dir_all(&b).unwrap();
    }
}

//! Fast, stable hashing.
//!
//! Two consumers with different needs share this module:
//!
//! * Hot hash maps (record id → state, query → state) want a fast hasher;
//!   we provide an FxHash-style multiplicative hasher as drop-in
//!   `HashMap`/`HashSet` aliases, per the workspace performance guide.
//! * The Bloom filters need `k` independent, *stable* hash functions over
//!   arbitrary byte strings: stability matters because the server-built
//!   filter is shipped to clients which must probe the same bit positions.
//!   [`DoubleHasher`] derives `k` functions from two 64-bit hashes using
//!   the standard Kirsch–Mitzenmacher construction `g_i(x) = h1 + i·h2`.

use std::hash::{BuildHasherDefault, Hasher};

/// 64-bit FxHash multiplier (golden-ratio derived).
const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// FxHash-style hasher: fast multiplicative mixing, not HashDoS resistant.
/// Fine here: all keys are internal (record ids, query strings), never
/// attacker-controlled hash-map keys in a long-lived public service.
#[derive(Debug, Default, Clone, Copy)]
pub struct FxHasher {
    state: u64,
}

impl FxHasher {
    #[inline]
    fn mix(&mut self, word: u64) {
        self.state = (self.state.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.state
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            self.mix(u64::from_le_bytes(chunk.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            // Fold in the remainder length so "a" and "a\0" differ.
            buf[7] = rest.len() as u8;
            self.mix(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.mix(n);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.mix(n as u64);
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.mix(n as u64);
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// `HashMap` keyed with [`FxHasher`].
pub type FxHashMap<K, V> = std::collections::HashMap<K, V, FxBuildHasher>;

/// `HashSet` keyed with [`FxHasher`].
pub type FxHashSet<T> = std::collections::HashSet<T, FxBuildHasher>;

/// Stable 64-bit hash of a byte string. Independent of process, platform
/// and endianness of the caller; safe to persist or ship to clients.
#[inline]
pub fn fx_hash_bytes(bytes: &[u8]) -> u64 {
    let mut h = FxHasher::default();
    h.write(bytes);
    h.finish()
}

/// Stable 64-bit hash of a string (hashes its UTF-8 bytes).
#[inline]
pub fn fx_hash_str(s: &str) -> u64 {
    fx_hash_bytes(s.as_bytes())
}

/// Stable bucket assignment: hash `key` and reduce to `buckets` with a
/// full-avalanche finalizer first. `fx_hash_*` alone concentrates entropy
/// in the high bits, so a bare `hash % n` degenerates — shard routers and
/// other modulo consumers must go through this instead.
#[inline]
pub fn stable_bucket(key: &[u8], buckets: u64) -> u64 {
    assert!(buckets > 0, "bucket count must be positive");
    fmix64(fx_hash_bytes(key)) % buckets
}

/// MurmurHash3's 64-bit finalizer: full-avalanche bit mixing.
#[inline]
fn fmix64(mut h: u64) -> u64 {
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    h = h.wrapping_mul(0xc4ce_b9fe_1a85_ec53);
    h ^= h >> 33;
    h
}

/// Derives `k` hash functions from two base hashes of the key
/// (Kirsch–Mitzenmacher double hashing): `g_i(x) = h1(x) + i * h2(x)`.
///
/// This is the construction the Bloom-filter survey the paper cites
/// (Broder & Mitzenmacher) recommends: two hashes give the same asymptotic
/// false-positive rate as `k` independent ones.
#[derive(Debug, Clone, Copy)]
pub struct DoubleHasher {
    h1: u64,
    h2: u64,
}

impl DoubleHasher {
    /// Hash `key` with two seeded base functions.
    #[inline]
    pub fn new(key: &[u8]) -> Self {
        // FxHash concentrates entropy in the high bits; Bloom position
        // computation reduces modulo m (often a power of two, i.e. low
        // bits only), so both hashes get a murmur-style finalizer that
        // spreads entropy across the word.
        let h1 = fmix64(fx_hash_bytes(key));
        let mut h = FxHasher::default();
        h.write_u64(h1 ^ 0x9e37_79b9_7f4a_7c15);
        h.write(key);
        // Force h2 odd: an even stride shares factors with even table
        // sizes and collapses the probe sequence into a subgroup, which
        // skews the Bloom filter's load away from the analytic model.
        // (Odd also rules out the degenerate h2 == 0.)
        let h2 = fmix64(h.finish()) | 1;
        DoubleHasher { h1, h2 }
    }

    /// The `i`-th derived hash.
    #[inline]
    pub fn get(&self, i: u32) -> u64 {
        self.h1.wrapping_add((i as u64).wrapping_mul(self.h2))
    }

    /// Iterator over the first `k` derived positions modulo `m`.
    /// Takes `self` by value (`DoubleHasher` is `Copy`) so the iterator
    /// owns its state and can outlive the binding.
    #[inline]
    pub fn positions(self, k: u32, m: usize) -> impl Iterator<Item = usize> {
        debug_assert!(m > 0);
        (0..k).map(move |i| (self.get(i) % m as u64) as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hash_is_stable_across_calls() {
        assert_eq!(fx_hash_str("posts/42"), fx_hash_str("posts/42"));
        assert_ne!(fx_hash_str("posts/42"), fx_hash_str("posts/43"));
    }

    #[test]
    fn remainder_length_matters() {
        assert_ne!(fx_hash_bytes(b"a"), fx_hash_bytes(b"a\0"));
        assert_ne!(fx_hash_bytes(b""), fx_hash_bytes(b"\0"));
    }

    #[test]
    fn double_hasher_positions_in_range() {
        let dh = DoubleHasher::new(b"SELECT * FROM posts");
        for pos in dh.positions(16, 1024) {
            assert!(pos < 1024);
        }
    }

    #[test]
    fn double_hasher_deterministic() {
        let a: Vec<_> = DoubleHasher::new(b"key").positions(8, 997).collect();
        let b: Vec<_> = DoubleHasher::new(b"key").positions(8, 997).collect();
        assert_eq!(a, b);
    }

    proptest! {
        #[test]
        fn positions_always_in_range(key in proptest::collection::vec(any::<u8>(), 0..64),
                                     k in 1u32..20, m in 1usize..10_000) {
            let dh = DoubleHasher::new(&key);
            for pos in dh.positions(k, m) {
                prop_assert!(pos < m);
            }
        }

        #[test]
        fn equal_keys_equal_hashes(key in proptest::collection::vec(any::<u8>(), 0..64)) {
            prop_assert_eq!(fx_hash_bytes(&key), fx_hash_bytes(&key));
        }

        #[test]
        fn distribution_not_degenerate(keys in proptest::collection::hash_set(
            proptest::collection::vec(any::<u8>(), 1..16), 50..100)) {
            // At least half of distinct keys should get distinct hashes
            // (in practice virtually all do; this is a smoke bound).
            let hashes: std::collections::HashSet<u64> =
                keys.iter().map(|k| fx_hash_bytes(k)).collect();
            prop_assert!(hashes.len() >= keys.len() / 2);
        }
    }
}

//! The shared error type.

use std::fmt;

/// Workspace-wide result alias.
pub type Result<T, E = Error> = std::result::Result<T, E>;

/// Errors surfaced by the Quaestor service and its substrates.
///
/// The variants mirror the failure classes a REST DBaaS exposes over HTTP:
/// not-found (404), conflict (412 on version mismatch), bad request (400),
/// capacity (429/503) and internal faults (500).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// Table does not exist.
    UnknownTable(String),
    /// Record does not exist.
    NotFound { table: String, id: String },
    /// Optimistic concurrency failure: expected version did not match.
    VersionMismatch {
        table: String,
        id: String,
        expected: u64,
        actual: u64,
    },
    /// The record already exists (insert of a duplicate primary key).
    AlreadyExists { table: String, id: String },
    /// Malformed query or document (e.g. invalid update operator).
    BadRequest(String),
    /// A transaction failed validation at commit time.
    TransactionAborted(String),
    /// Component at capacity (e.g. InvaliDB refused a query registration).
    Capacity(String),
    /// A pipeline or channel shut down while an operation was in flight.
    Closed(String),
    /// A durability-layer failure: the write-ahead log or a snapshot
    /// could not be read or written, or was found corrupt.
    Io(String),
    /// A transport-layer failure between a remote client and a server:
    /// connect/read/write errors, request timeouts, a connection that
    /// died with requests in flight, or an undecodable wire frame. The
    /// request's fate on the server is unknown — it may or may not have
    /// executed.
    Net(String),
    /// Anything else.
    Internal(String),
}

impl Error {
    /// Classifies the error the way an HTTP API would.
    pub fn status_code(&self) -> u16 {
        match self {
            Error::UnknownTable(_) | Error::NotFound { .. } => 404,
            Error::VersionMismatch { .. } => 412,
            Error::AlreadyExists { .. } => 409,
            Error::BadRequest(_) => 400,
            Error::TransactionAborted(_) => 409,
            Error::Capacity(_) => 429,
            Error::Closed(_) => 503,
            Error::Io(_) => 500,
            Error::Net(_) => 503,
            Error::Internal(_) => 500,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::UnknownTable(t) => write!(f, "unknown table '{t}'"),
            Error::NotFound { table, id } => write!(f, "record '{table}/{id}' not found"),
            Error::VersionMismatch {
                table,
                id,
                expected,
                actual,
            } => write!(
                f,
                "version mismatch on '{table}/{id}': expected v{expected}, found v{actual}"
            ),
            Error::AlreadyExists { table, id } => {
                write!(f, "record '{table}/{id}' already exists")
            }
            Error::BadRequest(msg) => write!(f, "bad request: {msg}"),
            Error::TransactionAborted(msg) => write!(f, "transaction aborted: {msg}"),
            Error::Capacity(msg) => write!(f, "capacity exceeded: {msg}"),
            Error::Closed(msg) => write!(f, "component closed: {msg}"),
            Error::Io(msg) => write!(f, "durability i/o error: {msg}"),
            Error::Net(msg) => write!(f, "network error: {msg}"),
            Error::Internal(msg) => write!(f, "internal error: {msg}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn status_codes_match_http_semantics() {
        assert_eq!(Error::UnknownTable("posts".into()).status_code(), 404);
        assert_eq!(
            Error::NotFound {
                table: "posts".into(),
                id: "1".into()
            }
            .status_code(),
            404
        );
        assert_eq!(
            Error::VersionMismatch {
                table: "posts".into(),
                id: "1".into(),
                expected: 1,
                actual: 2
            }
            .status_code(),
            412
        );
        assert_eq!(Error::BadRequest("x".into()).status_code(), 400);
        assert_eq!(Error::Capacity("x".into()).status_code(), 429);
    }

    #[test]
    fn display_is_informative() {
        let e = Error::VersionMismatch {
            table: "posts".into(),
            id: "42".into(),
            expected: 3,
            actual: 5,
        };
        let s = e.to_string();
        assert!(s.contains("posts/42") && s.contains("v3") && s.contains("v5"));
    }
}

//! Best-effort file-descriptor rlimit raise for C10k workloads.
//!
//! A 10k-connection soak needs ~10k descriptors per process (the
//! event-loop server holds one fd per accepted socket — the force-close
//! registry stores raw fds, not dups — and the client one per
//! connection), but stock shells commonly start with `RLIMIT_NOFILE`
//! soft limits of 1024. Raising the soft limit to the hard limit is
//! always permitted without privileges, so the soak entry points call
//! this once at startup and then *size their swarms to what it
//! returns* instead of failing mid-connect with `EMFILE`.

/// Raise the process' soft `RLIMIT_NOFILE` to its hard limit
/// (best effort) and return the resulting soft limit.
///
/// Returns the *current* soft limit when the platform is unsupported or
/// either syscall fails — callers treat the result as "how many fds I
/// may use", never as an error.
pub fn raise_fd_limit() -> u64 {
    imp::raise()
}

#[cfg(unix)]
mod imp {
    /// `struct rlimit` is two `rlim_t`s on every unix we target, and
    /// `rlim_t` is 64-bit on Linux and the BSDs.
    #[repr(C)]
    struct Rlimit {
        cur: u64,
        max: u64,
    }

    #[cfg(any(target_os = "linux", target_os = "android"))]
    const RLIMIT_NOFILE: i32 = 7;
    #[cfg(not(any(target_os = "linux", target_os = "android")))]
    const RLIMIT_NOFILE: i32 = 8;

    extern "C" {
        fn getrlimit(resource: i32, rlim: *mut Rlimit) -> i32;
        fn setrlimit(resource: i32, rlim: *const Rlimit) -> i32;
    }

    pub(super) fn raise() -> u64 {
        let mut lim = Rlimit { cur: 0, max: 0 };
        if unsafe { getrlimit(RLIMIT_NOFILE, &mut lim) } != 0 {
            return 1024; // the conservative historical default
        }
        if lim.cur >= lim.max {
            return lim.cur;
        }
        let want = Rlimit {
            cur: lim.max,
            max: lim.max,
        };
        if unsafe { setrlimit(RLIMIT_NOFILE, &want) } == 0 {
            lim.max
        } else {
            lim.cur
        }
    }
}

#[cfg(not(unix))]
mod imp {
    pub(super) fn raise() -> u64 {
        // Windows has no fd rlimit; report a figure large enough that
        // soak sizing never scales itself down.
        u64::MAX
    }
}

#[cfg(test)]
mod tests {
    use super::raise_fd_limit;

    #[test]
    fn raising_is_idempotent_and_reports_a_usable_limit() {
        let first = raise_fd_limit();
        let second = raise_fd_limit();
        // After one raise the soft limit sits at the hard limit, so a
        // second call must be a no-op reporting the same figure.
        assert_eq!(first, second);
        assert!(first >= 256, "soft fd limit implausibly low: {first}");
    }
}

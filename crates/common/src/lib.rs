//! Shared infrastructure for the Quaestor workspace.
//!
//! This crate deliberately has no dependency on the rest of the workspace.
//! It provides:
//!
//! * [`clock`] — the [`Clock`] abstraction with a wall-clock
//!   implementation and a virtual, manually-advanced implementation used by
//!   the discrete-event simulator. Every time-dependent component in the
//!   workspace takes a `Clock` so that experiments are deterministic.
//! * [`hash`] — a fast, stable, non-cryptographic hasher (an FxHash
//!   derivative) plus the double-hashing scheme used by the Bloom filters.
//! * [`histogram`] — a fixed-bucket latency histogram with percentile
//!   queries, used by the workload driver and the benchmarks.
//! * [`error`] — the shared [`Error`] type.
//! * [`lock_rank`] — the workspace-wide lock-rank hierarchy enforced by
//!   the `lockcheck` runtime detector and the `quaestor-analyze` linter.

pub mod clock;
pub mod error;
pub mod fdlimit;
pub mod hash;
pub mod histogram;
pub mod lock_rank;
pub mod scratch;

pub use clock::{Clock, ClockRef, ManualClock, SystemClock, Timestamp};
pub use error::{Error, Result};
pub use fdlimit::raise_fd_limit;
pub use hash::{
    fx_hash_bytes, fx_hash_str, stable_bucket, DoubleHasher, FxBuildHasher, FxHashMap, FxHashSet,
};
pub use histogram::Histogram;
pub use scratch::scratch_dir;

/// A monotonically increasing version counter attached to every stored
/// record. Versions double as HTTP `ETag`s in the web-caching model.
pub type Version = u64;

/// Milliseconds, the time unit used throughout the workspace.
pub type Millis = u64;

//! Time sources.
//!
//! Quaestor's correctness argument (Definition 1 / Theorem 1 in the paper)
//! is phrased in terms of timestamps: a query result read at `t_r` with a
//! TTL is cacheable until `t_r + TTL`, and the Expiring Bloom Filter
//! generated at `t_1` bounds staleness of any read at `t_2` by
//! `Δ = t_2 − t_1`. To test those properties deterministically, every
//! component takes a [`Clock`] rather than calling the OS. The simulator
//! drives a [`ManualClock`]; production-style benchmarks use
//! [`SystemClock`].

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{SystemTime, UNIX_EPOCH};

use serde::{Deserialize, Serialize};

/// A point in time, in milliseconds since an arbitrary epoch.
///
/// The paper's TTL estimation "does not require clock synchronization, as
/// only relative time spans are used" (§4.2); accordingly `Timestamp` only
/// supports differences and offsets.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Timestamp(pub u64);

impl Timestamp {
    /// The zero timestamp (epoch).
    pub const ZERO: Timestamp = Timestamp(0);

    /// Construct from raw milliseconds.
    #[inline]
    pub const fn from_millis(ms: u64) -> Self {
        Timestamp(ms)
    }

    /// Raw milliseconds since the epoch.
    #[inline]
    pub const fn as_millis(self) -> u64 {
        self.0
    }

    /// `self + ms`, saturating.
    #[inline]
    pub fn plus(self, ms: u64) -> Timestamp {
        Timestamp(self.0.saturating_add(ms))
    }

    /// `self - ms`, saturating at zero.
    #[inline]
    pub fn minus(self, ms: u64) -> Timestamp {
        Timestamp(self.0.saturating_sub(ms))
    }

    /// Milliseconds elapsed from `earlier` to `self` (0 if negative).
    #[inline]
    pub fn since(self, earlier: Timestamp) -> u64 {
        self.0.saturating_sub(earlier.0)
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ms", self.0)
    }
}

/// A source of timestamps.
pub trait Clock: Send + Sync + 'static {
    /// Current time.
    fn now(&self) -> Timestamp;
}

/// Shared handle to a clock. Cloning is cheap.
pub type ClockRef = Arc<dyn Clock>;

/// Wall-clock time with millisecond resolution.
///
/// Uses `SystemTime` so timestamps are comparable across threads; Quaestor
/// only ever uses relative spans, so non-monotonic adjustments merely show
/// up as measurement noise, exactly as on the paper's EC2 testbed.
#[derive(Debug, Default, Clone, Copy)]
pub struct SystemClock;

impl SystemClock {
    /// A `ClockRef` for wall-clock time.
    pub fn shared() -> ClockRef {
        Arc::new(SystemClock)
    }
}

impl Clock for SystemClock {
    fn now(&self) -> Timestamp {
        let ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .expect("system clock before unix epoch")
            .as_millis() as u64;
        Timestamp(ms)
    }
}

/// A virtual clock advanced explicitly by the discrete-event simulator.
///
/// All components observing a `ManualClock` see exactly the same instant
/// until the simulator advances it, which gives the globally ordered event
/// timestamps the paper's Monte Carlo methodology relies on ("simulation is
/// the most reliable method to analyze properties like staleness", §6.1).
#[derive(Debug, Default)]
pub struct ManualClock {
    now_ms: AtomicU64,
}

impl ManualClock {
    /// A clock starting at time zero.
    pub fn new() -> Arc<Self> {
        Arc::new(ManualClock {
            now_ms: AtomicU64::new(0),
        })
    }

    /// A clock starting at `start`.
    pub fn starting_at(start: Timestamp) -> Arc<Self> {
        Arc::new(ManualClock {
            now_ms: AtomicU64::new(start.0),
        })
    }

    /// Move the clock forward by `ms` milliseconds and return the new time.
    pub fn advance(&self, ms: u64) -> Timestamp {
        let new = self.now_ms.fetch_add(ms, Ordering::SeqCst) + ms;
        Timestamp(new)
    }

    /// Jump directly to `t`. Panics if `t` is in the past: the simulator
    /// must never move time backwards or event ordering breaks.
    pub fn set(&self, t: Timestamp) {
        let prev = self.now_ms.swap(t.0, Ordering::SeqCst);
        assert!(
            prev <= t.0,
            "ManualClock moved backwards: {prev} -> {}",
            t.0
        );
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Timestamp {
        Timestamp(self.now_ms.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timestamp_arithmetic() {
        let t = Timestamp::from_millis(100);
        assert_eq!(t.plus(50), Timestamp(150));
        assert_eq!(t.minus(30), Timestamp(70));
        assert_eq!(t.minus(200), Timestamp(0), "saturates at zero");
        assert_eq!(t.plus(50).since(t), 50);
        assert_eq!(t.since(t.plus(50)), 0, "negative spans clamp to zero");
    }

    #[test]
    fn manual_clock_advances() {
        let clock = ManualClock::new();
        assert_eq!(clock.now(), Timestamp::ZERO);
        assert_eq!(clock.advance(10), Timestamp(10));
        assert_eq!(clock.now(), Timestamp(10));
        clock.set(Timestamp(25));
        assert_eq!(clock.now(), Timestamp(25));
    }

    #[test]
    #[should_panic(expected = "moved backwards")]
    fn manual_clock_rejects_backwards() {
        let clock = ManualClock::starting_at(Timestamp(100));
        clock.set(Timestamp(50));
    }

    #[test]
    fn system_clock_is_sane() {
        let clock = SystemClock;
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
        // After 2020-01-01 in unix millis.
        assert!(a.as_millis() > 1_577_836_800_000);
    }

    #[test]
    fn manual_clock_shared_view() {
        let clock = ManualClock::new();
        let as_ref: ClockRef = clock.clone();
        clock.advance(42);
        assert_eq!(as_ref.now(), Timestamp(42));
    }
}

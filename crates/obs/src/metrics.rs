//! The unified metrics registry: named counters, gauges and histograms
//! registered once and snapshotted anywhere — including across the wire
//! via `Request::Metrics`.
//!
//! Handles are cheap clones of `Arc`-shared state; a struct that used to
//! hold `AtomicU64` fields holds [`Counter`]s instead and keeps working
//! unchanged, because [`Counter`] carries `load`/`store`/`fetch_add`
//! shims with the atomic's signatures.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use parking_lot::Mutex;
use quaestor_common::{lock_rank, Histogram};

/// A monotonically increasing named counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, unregistered counter at 0.
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    // ---- AtomicU64-compatible shims --------------------------------------
    // The pre-registry metric structs exposed raw `AtomicU64` fields, and
    // call sites (including the conformance tests) use the atomic API.
    // Keeping these signatures lets a field migrate to `Counter` without
    // touching a single caller.

    /// `AtomicU64::load` shim.
    #[inline]
    pub fn load(&self, order: Ordering) -> u64 {
        self.0.load(order)
    }

    /// `AtomicU64::store` shim.
    #[inline]
    pub fn store(&self, value: u64, order: Ordering) {
        self.0.store(value, order)
    }

    /// `AtomicU64::fetch_add` shim.
    #[inline]
    pub fn fetch_add(&self, n: u64, order: Ordering) -> u64 {
        self.0.fetch_add(n, order)
    }
}

/// A named gauge: a value that goes up *and* down (lag, queue depth).
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, unregistered gauge at 0.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, value: u64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A named latency histogram handle (shared, lock-ranked).
#[derive(Debug, Clone)]
pub struct HistogramHandle {
    obs_hist: Arc<Mutex<Histogram>>,
}

impl Default for HistogramHandle {
    fn default() -> Self {
        Self::new()
    }
}

impl HistogramHandle {
    /// A fresh, unregistered histogram.
    pub fn new() -> HistogramHandle {
        HistogramHandle {
            obs_hist: Arc::new(Mutex::with_rank(
                Histogram::new(),
                lock_rank::OBS_METRIC_HIST.0,
                lock_rank::OBS_METRIC_HIST.1,
            )),
        }
    }

    /// Record one observation.
    pub fn record(&self, value: u64) {
        self.obs_hist.lock().record(value);
    }

    /// Merge another histogram's observations into this handle.
    pub fn merge_from(&self, other: &Histogram) {
        self.obs_hist.lock().merge(other);
    }

    /// Number of recorded observations.
    pub fn count(&self) -> u64 {
        self.obs_hist.lock().count()
    }

    /// A full copy of the underlying histogram.
    pub fn snapshot(&self) -> Histogram {
        self.obs_hist.lock().clone()
    }

    /// The exposition summary of the current contents.
    pub fn summary(&self) -> HistogramSummary {
        HistogramSummary::of(&self.obs_hist.lock())
    }
}

/// The fixed-width digest of a histogram carried in snapshots (and over
/// the wire — shipping full bucket arrays per metric would dwarf the
/// payload they describe).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HistogramSummary {
    /// Observation count.
    pub count: u64,
    /// Smallest observation (0 if empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Arithmetic mean (0.0 if empty).
    pub mean: f64,
    /// Median; 0 if empty.
    pub p50: u64,
    /// 95th percentile; 0 if empty.
    pub p95: u64,
    /// 99th percentile; 0 if empty.
    pub p99: u64,
}

impl HistogramSummary {
    /// Digest a histogram.
    pub fn of(h: &Histogram) -> HistogramSummary {
        HistogramSummary {
            count: h.count(),
            min: h.min(),
            max: h.max(),
            mean: h.mean(),
            p50: h.percentile(0.50).unwrap_or(0),
            p95: h.percentile(0.95).unwrap_or(0),
            p99: h.percentile(0.99).unwrap_or(0),
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<String, Counter>,
    gauges: BTreeMap<String, Gauge>,
    histograms: BTreeMap<String, HistogramHandle>,
}

/// A set of named metrics. Instances are cheap `Arc` clones; a component
/// that owns its metrics (one server, one middleware layer) holds its own
/// registry, and cross-cutting series live on the process-global
/// [`registry()`].
#[derive(Debug, Clone, Default)]
pub struct Registry {
    registry_state: Arc<Mutex<RegistryInner>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Registry {
        Registry {
            registry_state: Arc::new(Mutex::with_rank(
                RegistryInner::default(),
                lock_rank::OBS_REGISTRY.0,
                lock_rank::OBS_REGISTRY.1,
            )),
        }
    }

    /// Get or register the counter named `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut inner = self.registry_state.lock();
        inner.counters.entry(name.to_owned()).or_default().clone()
    }

    /// Register (or re-point) `name` at an existing counter handle —
    /// how a struct field created before the registry joins it.
    pub fn bind_counter(&self, name: &str, handle: &Counter) {
        self.registry_state
            .lock()
            .counters
            .insert(name.to_owned(), handle.clone());
    }

    /// Get or register the gauge named `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut inner = self.registry_state.lock();
        inner.gauges.entry(name.to_owned()).or_default().clone()
    }

    /// Register (or re-point) `name` at an existing gauge handle.
    pub fn bind_gauge(&self, name: &str, handle: &Gauge) {
        self.registry_state
            .lock()
            .gauges
            .insert(name.to_owned(), handle.clone());
    }

    /// Get or register the histogram named `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut inner = self.registry_state.lock();
        inner.histograms.entry(name.to_owned()).or_default().clone()
    }

    /// Register (or re-point) `name` at an existing histogram handle.
    pub fn bind_histogram(&self, name: &str, handle: &HistogramHandle) {
        self.registry_state
            .lock()
            .histograms
            .insert(name.to_owned(), handle.clone());
    }

    /// Snapshot every registered metric, sorted by name.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.registry_state.lock();
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(n, c)| (n.clone(), c.get()))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(n, g)| (n.clone(), g.get()))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(n, h)| (n.clone(), h.summary()))
                .collect(),
        }
    }
}

/// The process-global registry: cross-cutting metrics with no natural
/// per-instance owner (replication lag, failover elections).
pub fn registry() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// A point-in-time copy of a registry's metrics — plain data, mergeable
/// (the `ShardRouter` prefixes and concatenates per-shard snapshots) and
/// wire-encodable (`Response::Metrics`).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// `(name, value)` pairs, sorted by name within one source registry.
    pub counters: Vec<(String, u64)>,
    /// `(name, value)` pairs, sorted by name within one source registry.
    pub gauges: Vec<(String, u64)>,
    /// `(name, digest)` pairs, sorted by name within one source registry.
    pub histograms: Vec<(String, HistogramSummary)>,
}

impl MetricsSnapshot {
    /// Look up a counter by exact name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by exact name.
    pub fn gauge(&self, name: &str) -> Option<u64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram digest by exact name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSummary> {
        self.histograms
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, h)| h)
    }

    /// Append every entry of `other`, prefixing its names (the router
    /// merges shard snapshots as `shard0.`, `shard1.`, …; middleware
    /// merges its own series with an empty prefix).
    pub fn merge_prefixed(&mut self, prefix: &str, other: MetricsSnapshot) {
        let pre = |n: String| {
            if prefix.is_empty() {
                n
            } else {
                format!("{prefix}{n}")
            }
        };
        self.counters
            .extend(other.counters.into_iter().map(|(n, v)| (pre(n), v)));
        self.gauges
            .extend(other.gauges.into_iter().map(|(n, v)| (pre(n), v)));
        self.histograms
            .extend(other.histograms.into_iter().map(|(n, h)| (pre(n), h)));
    }

    /// The stable text exposition: one line per metric, sections in
    /// fixed order, each section sorted by name. Byte-stable across
    /// runs with identical values, so it diffs and greps cleanly.
    pub fn render_text(&self) -> String {
        let mut counters = self.counters.clone();
        counters.sort();
        let mut gauges = self.gauges.clone();
        gauges.sort();
        let mut hists = self.histograms.clone();
        hists.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::from("# quaestor metrics v1\n");
        for (n, v) in &counters {
            out.push_str(&format!("counter {n} {v}\n"));
        }
        for (n, v) in &gauges {
            out.push_str(&format!("gauge {n} {v}\n"));
        }
        for (n, h) in &hists {
            out.push_str(&format!(
                "hist {n} count={} min={} max={} mean={:.1} p50={} p95={} p99={}\n",
                h.count, h.min, h.max, h.mean, h.p50, h.p95, h.p99
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_shims_match_atomic_semantics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.fetch_add(5, Ordering::Relaxed), 5);
        assert_eq!(c.load(Ordering::Relaxed), 10);
        c.store(3, Ordering::Relaxed);
        assert_eq!(c.get(), 3);
        // Clones share state — the registry handle and the struct field
        // are the same counter.
        let c2 = c.clone();
        c2.inc();
        assert_eq!(c.get(), 4);
    }

    #[test]
    fn registry_get_or_register_returns_shared_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.inc();
        assert_eq!(b.get(), 1);
        let g = r.gauge("lag");
        g.set(7);
        let h = r.histogram("lat");
        h.record(10);
        h.record(30);
        let snap = r.snapshot();
        assert_eq!(snap.counter("x"), Some(1));
        assert_eq!(snap.gauge("lag"), Some(7));
        let hs = snap.histogram("lat").unwrap();
        assert_eq!(hs.count, 2);
        assert_eq!(hs.mean, 20.0);
        assert!(hs.p50 <= hs.p99);
    }

    #[test]
    fn bind_points_a_name_at_an_existing_handle() {
        let r = Registry::new();
        let field = Counter::new();
        field.add(9);
        r.bind_counter("migrated", &field);
        assert_eq!(r.snapshot().counter("migrated"), Some(9));
        field.inc();
        assert_eq!(r.snapshot().counter("migrated"), Some(10));
    }

    #[test]
    fn snapshot_merge_prefixes_names() {
        let a = Registry::new();
        a.counter("reads").add(1);
        let b = Registry::new();
        b.counter("reads").add(2);
        let mut snap = MetricsSnapshot::default();
        snap.merge_prefixed("shard0.", a.snapshot());
        snap.merge_prefixed("shard1.", b.snapshot());
        assert_eq!(snap.counter("shard0.reads"), Some(1));
        assert_eq!(snap.counter("shard1.reads"), Some(2));
    }

    #[test]
    fn exposition_is_stable_and_sorted() {
        let r = Registry::new();
        r.counter("b").add(2);
        r.counter("a").add(1);
        r.gauge("g").set(5);
        r.histogram("h").record(100);
        let text = r.snapshot().render_text();
        let expected = "# quaestor metrics v1\n\
                        counter a 1\n\
                        counter b 2\n\
                        gauge g 5\n\
                        hist h count=1 min=100 max=100 mean=100.0 p50=100 p95=100 p99=100\n";
        assert_eq!(text, expected);
        // Stability: a second render is byte-identical.
        assert_eq!(text, r.snapshot().render_text());
    }

    #[test]
    fn empty_histogram_digest_is_all_zero() {
        let h = HistogramHandle::new();
        let s = h.summary();
        assert_eq!((s.count, s.p50, s.p99), (0, 0, 0));
    }
}

//! Observability substrate for the Quaestor workspace.
//!
//! Three pillars, all dependency-free (vendored `parking_lot` only):
//!
//! * [`trace`] — thread-local span stacks with RAII guards, a bounded
//!   ring-buffer collector, and a 17-byte wire context
//!   ([`TraceContext`]) that lets one client request stitch into a
//!   single trace across `RemoteService` → `NetServer` → middleware →
//!   planner → WAL → replication ship.
//! * [`metrics`] — named counters/gauges/histograms behind a
//!   [`Registry`], snapshotted into a [`MetricsSnapshot`] with a stable
//!   text exposition format. The legacy ad-hoc metric structs
//!   (`ServerMetrics`, `ServiceMetrics`, `QueryStats`) keep their field
//!   APIs as thin shims over these handles.
//! * the process-global [`registry()`] — cross-cutting gauges (e.g.
//!   replication lag) and counters that have no obvious owner.
//!
//! Tracing is **inert by default**: when sampling is off and no trace is
//! active, a [`span!`](span) guard is one thread-local check. See
//! `DESIGN.md` for the span model and propagation rules.

pub mod metrics;
pub mod trace;

pub use metrics::{
    registry, Counter, Gauge, HistogramHandle, HistogramSummary, MetricsSnapshot, Registry,
};
pub use trace::{
    adopt_span, clear_collector, client_span, current_context, note_handoff, render_trace,
    sample_interval, sampling_enabled, set_sample_interval, set_sampling, span, spans_for,
    take_handoff_below, SpanGuard, SpanRecord, Trace, TraceContext,
};

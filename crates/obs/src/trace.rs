//! Tracing: thread-local span stacks, RAII guards, a bounded global
//! collector, and the wire-propagated trace context.
//!
//! ## Span model
//!
//! A *trace* is a tree of spans sharing one `trace_id`. Each thread
//! carries at most one active trace (a thread-local stack of open span
//! ids); [`span`] opens a child of the innermost open span and is
//! **inert** — one thread-local check — when no trace is active, which
//! is what keeps the overhead of instrumented hot paths below the
//! noise floor when tracing is off.
//!
//! Roots come from three places:
//!
//! * [`Trace::start`] — an explicit, always-sampled root (tests, CLI);
//! * [`client_span`] — the `RemoteService` hook: a child if a trace is
//!   active; otherwise, with the global sampling flag on, a root for
//!   one in [`sample_interval`] calls per thread (Dapper-style ambient
//!   sampling — per-trace cost is irreducible, so always-on overhead is
//!   bought down by tracing a fraction of requests); inert otherwise;
//! * [`adopt_span`] — the server hook: continues a trace whose
//!   [`TraceContext`] arrived over the wire, parenting the new span
//!   under the remote caller's span id. Adoption is driven by the
//!   context's own `sampled` flag, so a traced request is traced on
//!   every node it touches regardless of each node's local flag.
//!
//! Closed spans land in a bounded, sharded ring buffer (drop-oldest,
//! so a long-running process never grows without bound; one shard per
//! pushing thread group, so guard drops on different threads don't
//! serialize on one mutex); [`render_trace`] dumps one trace as an
//! indented tree with per-span durations.
//!
//! Asynchronous handoffs (a WAL frame written under a trace, shipped to
//! a replica later by a different thread) stitch via [`note_handoff`] /
//! [`take_handoff_below`], keyed by LSN.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

use parking_lot::Mutex;
use quaestor_common::lock_rank;

/// Spans the collector retains across all shards; beyond this the
/// oldest are dropped.
const RING_CAP: usize = 65_536;
/// Collector shards. Spans are pushed from `SpanGuard::drop` on every
/// instrumented thread; a single ring would serialize all of them on
/// one mutex (and one cache line). Threads are assigned round-robin.
const SHARDS: usize = 16;
/// Pending async handoff contexts retained (drop-oldest).
const HANDOFF_CAP: usize = 4_096;

/// The 17-byte wire trace context: who the caller is inside a trace.
/// Piggybacked on request frames as an additive body-prefix tag (see
/// `quaestor_net::codec`), so untraced peers skip it untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceContext {
    /// The trace every span of this request joins.
    pub trace_id: u64,
    /// The caller's open span — the parent of the callee's root span.
    pub span_id: u64,
    /// Whether the callee should record spans for this request.
    pub sampled: bool,
}

/// One closed span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// This span's id.
    pub span_id: u64,
    /// Parent span id; 0 for a root with no known parent.
    pub parent: u64,
    /// Static layer name (`"client.call"`, `"wal.append"`, …).
    pub name: &'static str,
    /// Start, µs since the process trace epoch.
    pub start_us: u64,
    /// Duration, µs.
    pub dur_us: u64,
}

/// Per-thread trace state. `trace_id == 0` means no trace is active;
/// the stack `Vec`'s allocation is kept across traces so opening a
/// root on a warm thread allocates nothing.
struct ActiveTrace {
    trace_id: u64,
    stack: Vec<u64>,
}

impl ActiveTrace {
    fn tracing(&self) -> bool {
        self.trace_id != 0
    }
}

thread_local! {
    static ACTIVE: RefCell<ActiveTrace> = const {
        RefCell::new(ActiveTrace { trace_id: 0, stack: Vec::new() })
    };
}

static SAMPLING: AtomicBool = AtomicBool::new(false);

/// With ambient sampling on, [`client_span`] roots a trace for one in
/// this many untraced outgoing requests (per calling thread). Tracing a
/// *fraction* of requests is how production tracing systems keep the
/// cost of always-on tracing below the noise floor — per-trace work is
/// irreducible, so overhead is bought down by tracing fewer of them.
/// Explicit roots ([`Trace::start`]) and adoption of a sampled wire
/// context ([`adopt_span`]) always trace regardless of the interval.
const DEFAULT_SAMPLE_INTERVAL: u64 = 8;

static SAMPLE_INTERVAL: AtomicU64 = AtomicU64::new(DEFAULT_SAMPLE_INTERVAL);

/// Turn ambient sampling on or off: with it on, [`client_span`] starts a
/// root trace for one in [`sample_interval`] outgoing requests that are
/// not already traced.
pub fn set_sampling(on: bool) {
    SAMPLING.store(on, Ordering::Relaxed);
}

/// Whether ambient sampling is on.
pub fn sampling_enabled() -> bool {
    SAMPLING.load(Ordering::Relaxed)
}

/// Set the ambient sampling interval: 1 traces every untraced request,
/// `n` traces one in `n` per thread (0 is clamped to 1). The first
/// request of each thread is always eligible, so short-lived callers
/// still produce traces.
pub fn set_sample_interval(n: u64) {
    SAMPLE_INTERVAL.store(n.max(1), Ordering::Relaxed);
}

/// The current ambient sampling interval.
pub fn sample_interval() -> u64 {
    SAMPLE_INTERVAL.load(Ordering::Relaxed)
}

/// Per-thread 1-in-N decision for ambient sampling; only consulted when
/// the sampling flag is on and no trace is active.
fn ambient_sample_due() -> bool {
    use std::cell::Cell;
    thread_local! {
        static SEEN: Cell<u64> = const { Cell::new(0) };
    }
    SEEN.with(|seen| {
        let n = seen.get();
        seen.set(n.wrapping_add(1));
        n % SAMPLE_INTERVAL.load(Ordering::Relaxed).max(1) == 0
    })
}

fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

fn now_us() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// Non-zero process-unique ids (splitmix64 over a global counter).
fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    let mut z = NEXT
        .fetch_add(1, Ordering::Relaxed)
        .wrapping_mul(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    (z ^ (z >> 31)) | 1
}

struct Collector {
    /// One bounded ring per shard; all share the `obs.trace.collector`
    /// rank (same-name classes are exempt from the order check, and the
    /// shards are only ever locked one at a time).
    span_ring: Vec<Mutex<VecDeque<SpanRecord>>>,
}

fn collector() -> &'static Collector {
    static C: OnceLock<Collector> = OnceLock::new();
    C.get_or_init(|| Collector {
        span_ring: (0..SHARDS)
            .map(|_| {
                Mutex::with_rank(
                    VecDeque::new(),
                    lock_rank::OBS_TRACE_COLLECTOR.0,
                    lock_rank::OBS_TRACE_COLLECTOR.1,
                )
            })
            .collect(),
    })
}

/// The collector shard this thread pushes to (round-robin at first use).
fn shard() -> usize {
    thread_local! {
        static IDX: usize = {
            static NEXT: std::sync::atomic::AtomicUsize =
                std::sync::atomic::AtomicUsize::new(0);
            NEXT.fetch_add(1, Ordering::Relaxed) % SHARDS
        };
    }
    IDX.with(|i| *i)
}

fn push_record(record: SpanRecord) {
    let mut ring = collector().span_ring[shard()].lock();
    if ring.len() >= RING_CAP / SHARDS {
        ring.pop_front();
    }
    ring.push_back(record);
}

/// All collected spans of one trace, ordered by start time.
pub fn spans_for(trace_id: u64) -> Vec<SpanRecord> {
    let mut spans: Vec<SpanRecord> = collector()
        .span_ring
        .iter()
        .flat_map(|shard| {
            shard
                .lock()
                .iter()
                .filter(|s| s.trace_id == trace_id)
                .copied()
                .collect::<Vec<_>>()
        })
        .collect();
    spans.sort_by_key(|s| s.start_us);
    spans
}

/// Drop every collected span, returning how many there were
/// (benchmarks isolate runs with this).
pub fn clear_collector() -> usize {
    let mut n = 0;
    for shard in &collector().span_ring {
        let mut ring = shard.lock();
        n += ring.len();
        ring.clear();
    }
    n
}

struct SpanInner {
    trace_id: u64,
    span_id: u64,
    parent: u64,
    name: &'static str,
    start_us: u64,
    ends_trace: bool,
}

/// RAII span guard: records the span into the collector on drop. An
/// inert guard (no active trace) does nothing at all.
#[must_use = "a span measures the scope it lives in; dropping it immediately records nothing useful"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    const INERT: SpanGuard = SpanGuard { inner: None };

    /// The context a callee should adopt to continue this span's trace;
    /// `None` for an inert guard.
    pub fn context(&self) -> Option<TraceContext> {
        self.inner.as_ref().map(|s| TraceContext {
            trace_id: s.trace_id,
            span_id: s.span_id,
            sampled: true,
        })
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(s) = self.inner.take() else { return };
        let dur_us = now_us().saturating_sub(s.start_us);
        ACTIVE.with(|slot| {
            let mut t = slot.borrow_mut();
            if s.ends_trace {
                t.trace_id = 0;
                t.stack.clear();
            } else {
                t.stack.pop();
            }
        });
        push_record(SpanRecord {
            trace_id: s.trace_id,
            span_id: s.span_id,
            parent: s.parent,
            name: s.name,
            start_us: s.start_us,
            dur_us,
        });
    }
}

fn child_of(t: &mut ActiveTrace, name: &'static str) -> SpanGuard {
    let id = next_id();
    let parent = t.stack.last().copied().unwrap_or(0);
    t.stack.push(id);
    SpanGuard {
        inner: Some(SpanInner {
            trace_id: t.trace_id,
            span_id: id,
            parent,
            name,
            start_us: now_us(),
            ends_trace: false,
        }),
    }
}

fn install_root(t: &mut ActiveTrace, trace_id: u64, parent: u64, name: &'static str) -> SpanGuard {
    let id = next_id();
    t.trace_id = trace_id;
    t.stack.clear();
    t.stack.push(id);
    SpanGuard {
        inner: Some(SpanInner {
            trace_id,
            span_id: id,
            parent,
            name,
            start_us: now_us(),
            ends_trace: true,
        }),
    }
}

/// Open a child span of the current trace; inert if no trace is active.
pub fn span(name: &'static str) -> SpanGuard {
    ACTIVE.with(|slot| {
        let mut t = slot.borrow_mut();
        if t.tracing() {
            child_of(&mut t, name)
        } else {
            SpanGuard::INERT
        }
    })
}

/// The `RemoteService` hook: child if a trace is active; with ambient
/// sampling on, a fresh root for one in [`sample_interval`] untraced
/// calls per thread; inert otherwise.
pub fn client_span(name: &'static str) -> SpanGuard {
    ACTIVE.with(|slot| {
        let mut t = slot.borrow_mut();
        if t.tracing() {
            child_of(&mut t, name)
        } else if sampling_enabled() && ambient_sample_due() {
            install_root(&mut t, next_id(), 0, name)
        } else {
            SpanGuard::INERT
        }
    })
}

/// The server hook: continue the wire-propagated trace `ctx` under the
/// caller's span. Driven by `ctx.sampled` alone — deterministic on the
/// serving node whatever its local sampling flag says. If this thread is
/// somehow already tracing, degrades to a child of that trace.
pub fn adopt_span(ctx: Option<TraceContext>, name: &'static str) -> SpanGuard {
    let Some(ctx) = ctx else {
        return SpanGuard::INERT;
    };
    if !ctx.sampled {
        return SpanGuard::INERT;
    }
    ACTIVE.with(|slot| {
        let mut t = slot.borrow_mut();
        if t.tracing() {
            child_of(&mut t, name)
        } else {
            install_root(&mut t, ctx.trace_id, ctx.span_id, name)
        }
    })
}

/// An explicit trace handle for tests and tools.
pub struct Trace;

impl Trace {
    /// Force-start a sampled root span regardless of the ambient
    /// sampling flag (a child span if a trace is already active).
    pub fn start(name: &'static str) -> SpanGuard {
        ACTIVE.with(|slot| {
            let mut t = slot.borrow_mut();
            if t.tracing() {
                child_of(&mut t, name)
            } else {
                install_root(&mut t, next_id(), 0, name)
            }
        })
    }
}

/// The context a callee should propagate right now, if any.
pub fn current_context() -> Option<TraceContext> {
    ACTIVE.with(|slot| {
        let t = slot.borrow();
        t.tracing().then(|| TraceContext {
            trace_id: t.trace_id,
            span_id: t.stack.last().copied().unwrap_or(0),
            sampled: true,
        })
    })
}

struct HandoffMap {
    handoffs: Mutex<Vec<(u64, TraceContext)>>,
}

fn handoff() -> &'static HandoffMap {
    static H: OnceLock<HandoffMap> = OnceLock::new();
    H.get_or_init(|| HandoffMap {
        handoffs: Mutex::with_rank(
            Vec::new(),
            lock_rank::OBS_HANDOFF.0,
            lock_rank::OBS_HANDOFF.1,
        ),
    })
}

/// Note that asynchronous work keyed by `key` (a WAL LSN) belongs to the
/// currently active trace. No-op when untraced.
pub fn note_handoff(key: u64) {
    let Some(ctx) = current_context() else { return };
    let mut map = handoff().handoffs.lock();
    if map.len() >= HANDOFF_CAP {
        map.remove(0);
    }
    map.push((key, ctx));
}

/// Claim the newest handoff context with key ≤ `key`, dropping every
/// entry at or below it (a replication session shipping frames up to
/// LSN `key` adopts the latest trace that produced one of them).
pub fn take_handoff_below(key: u64) -> Option<TraceContext> {
    let mut map = handoff().handoffs.lock();
    let best = map
        .iter()
        .filter(|(k, _)| *k <= key)
        .max_by_key(|(k, _)| *k)
        .map(|(_, ctx)| *ctx);
    map.retain(|(k, _)| *k > key);
    best
}

/// Render one trace as an indented tree with per-span durations — the
/// text flame view. Children are ordered by start time.
pub fn render_trace(trace_id: u64) -> String {
    let spans = spans_for(trace_id);
    if spans.is_empty() {
        return format!("trace {trace_id:016x}: no spans collected\n");
    }
    let ids: std::collections::HashSet<u64> = spans.iter().map(|s| s.span_id).collect();
    let mut children: std::collections::HashMap<u64, Vec<&SpanRecord>> =
        std::collections::HashMap::new();
    let mut roots: Vec<&SpanRecord> = Vec::new();
    for s in &spans {
        if s.parent != 0 && ids.contains(&s.parent) {
            children.entry(s.parent).or_default().push(s);
        } else {
            roots.push(s);
        }
    }
    for v in children.values_mut() {
        v.sort_by_key(|s| s.start_us);
    }
    roots.sort_by_key(|s| s.start_us);
    let mut out = format!("trace {trace_id:016x} ({} spans)\n", spans.len());
    fn emit(
        out: &mut String,
        s: &SpanRecord,
        depth: usize,
        children: &std::collections::HashMap<u64, Vec<&SpanRecord>>,
    ) {
        out.push_str(&format!(
            "{:indent$}{} {}us\n",
            "",
            s.name,
            s.dur_us,
            indent = 2 + depth * 2
        ));
        if let Some(kids) = children.get(&s.span_id) {
            for k in kids {
                emit(out, k, depth + 1, children);
            }
        }
    }
    for r in &roots {
        emit(&mut out, r, 0, &children);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn collected() -> usize {
        collector().span_ring.iter().map(|s| s.lock().len()).sum()
    }

    #[test]
    fn inert_when_no_trace_active() {
        let before = collected();
        {
            let _s = span("nothing");
        }
        assert_eq!(collected(), before);
        assert!(current_context().is_none());
    }

    #[test]
    fn forced_root_stitches_nested_spans() {
        let trace_id;
        {
            let root = Trace::start("root");
            trace_id = root.context().unwrap().trace_id;
            {
                let _a = span("layer.a");
                let _b = span("layer.b");
            }
            let _c = span("layer.c");
        }
        let spans = spans_for(trace_id);
        assert_eq!(spans.len(), 4);
        let names: Vec<&str> = spans.iter().map(|s| s.name).collect();
        assert!(names.contains(&"root") && names.contains(&"layer.b"));
        // Every non-root span's parent is in the same trace.
        let ids: Vec<u64> = spans.iter().map(|s| s.span_id).collect();
        for s in &spans {
            if s.name != "root" {
                assert!(ids.contains(&s.parent), "{} parent missing", s.name);
            }
        }
        // After the root dropped, the thread is clean.
        assert!(current_context().is_none());
        let dump = render_trace(trace_id);
        assert!(dump.contains("root"), "{dump}");
        assert!(dump.contains("    layer.a"), "indented child: {dump}");
    }

    #[test]
    fn adopt_continues_a_remote_trace() {
        let ctx = TraceContext {
            trace_id: 0xDEAD_BEEF,
            span_id: 0x1234,
            sampled: true,
        };
        {
            let _server = adopt_span(Some(ctx), "net.server");
            let _inner = span("service.query");
        }
        let spans = spans_for(0xDEAD_BEEF);
        assert_eq!(spans.len(), 2);
        let server = spans.iter().find(|s| s.name == "net.server").unwrap();
        assert_eq!(server.parent, 0x1234, "parented under the remote span");
        let inner = spans.iter().find(|s| s.name == "service.query").unwrap();
        assert_eq!(inner.parent, server.span_id);
        // Unsampled and absent contexts are ignored entirely.
        let inert = adopt_span(
            Some(TraceContext {
                trace_id: 7,
                span_id: 7,
                sampled: false,
            }),
            "net.server",
        );
        assert!(inert.context().is_none());
        assert!(adopt_span(None, "net.server").context().is_none());
    }

    #[test]
    fn client_span_roots_only_when_sampling() {
        // Off: inert.
        set_sampling(false);
        assert!(client_span("client.call").context().is_none());
        // On: a sampled root.
        set_sampling(true);
        let g = client_span("client.call");
        let ctx = g
            .context()
            .expect("a thread's first sampled call must open a root");
        assert!(ctx.sampled);
        drop(g);
        // 1-in-N ambient sampling: with interval 4 (and this thread's
        // counter at 1 after the root above) the next three untraced
        // calls are inert and the fourth roots again.
        set_sample_interval(4);
        for _ in 0..3 {
            assert!(client_span("client.call").context().is_none());
        }
        assert!(client_span("client.call").context().is_some());
        set_sample_interval(DEFAULT_SAMPLE_INTERVAL);
        assert_eq!(sample_interval(), DEFAULT_SAMPLE_INTERVAL);
        set_sampling(false);
        // Inside an explicit trace the flag is irrelevant: still a child.
        let root = Trace::start("outer");
        let child = client_span("client.call");
        assert_eq!(
            child.context().unwrap().trace_id,
            root.context().unwrap().trace_id
        );
    }

    #[test]
    fn handoff_round_trip() {
        {
            let _root = Trace::start("writer");
            note_handoff(41);
            note_handoff(42);
        }
        let ctx = take_handoff_below(100).expect("latest handoff claimed");
        assert!(ctx.sampled);
        assert!(take_handoff_below(100).is_none(), "claimed entries drained");
        // Untraced notes are dropped silently.
        note_handoff(7);
        assert!(take_handoff_below(100).is_none());
    }

    #[test]
    fn ring_is_bounded() {
        // Everything pushed from one thread lands in one shard, which is
        // capped at its share of RING_CAP.
        for i in 0..(RING_CAP + 100) {
            push_record(SpanRecord {
                trace_id: 0xF1,
                span_id: i as u64 + 1,
                parent: 0,
                name: "fill",
                start_us: 0,
                dur_us: 0,
            });
        }
        assert!(collected() <= RING_CAP);
        assert!(spans_for(0xF1).len() <= RING_CAP / SHARDS);
    }
}

//! Canonical query strings: the cache key.
//!
//! Web caches "only serve non-expired resources by their unique URL" (§2),
//! so Quaestor addresses a cached query result by its *normalized query
//! string*. Normalization must guarantee:
//!
//! 1. **Determinism** — the same `Query` value always yields the same key.
//! 2. **Structural identification** — queries differing only in the order
//!    of commutative conjuncts/disjuncts or `$in` lists map to one key, so
//!    the cache is not fragmented and InvaliDB maintains one result per
//!    logical query.
//!
//! The key doubles as the EBF member for stale queries ("the key (i.e. the
//! normalized query string or record id) is hashed", §3.1).

use quaestor_common::fx_hash_str;
use quaestor_document::{Path, Value};
use serde::{Deserialize, Serialize};

use crate::filter::{Filter, Op, Order, Query};

/// A normalized query key: the canonical string plus its stable hash.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct QueryKey {
    canonical: String,
}

impl QueryKey {
    /// Normalize a query into its canonical cache key.
    pub fn of(query: &Query) -> QueryKey {
        let mut s = String::with_capacity(64);
        s.push_str("q:");
        s.push_str(&query.table);
        s.push('?');
        write_filter(&normalize_filter(&query.filter), &mut s);
        if !query.sort.is_empty() {
            s.push_str("&sort=");
            for (i, k) in query.sort.iter().enumerate() {
                if i > 0 {
                    s.push(',');
                }
                s.push_str(k.path.as_str());
                s.push(match k.order {
                    Order::Asc => '+',
                    Order::Desc => '-',
                });
            }
        }
        if let Some(l) = query.limit {
            s.push_str("&limit=");
            s.push_str(&l.to_string());
        }
        if query.offset > 0 {
            s.push_str("&offset=");
            s.push_str(&query.offset.to_string());
        }
        QueryKey { canonical: s }
    }

    /// Key for a record read (records share the EBF namespace with
    /// queries; Theorem 1 "subsumes record caching, if q is substituted by
    /// the record id").
    pub fn record(table: &str, id: &str) -> QueryKey {
        QueryKey {
            canonical: format!("r:{table}/{id}"),
        }
    }

    /// The canonical string (usable as a URL path + query string).
    pub fn as_str(&self) -> &str {
        &self.canonical
    }

    /// Rehydrate a key from a canonical string previously produced by
    /// [`as_str`](Self::as_str) — the decode half of transporting keys
    /// over the wire or storing them in a log. The string is trusted:
    /// no re-normalization happens, so feeding anything that did not
    /// come from a `QueryKey` yields a key that matches nothing.
    pub fn from_canonical(canonical: impl Into<String>) -> QueryKey {
        QueryKey {
            canonical: canonical.into(),
        }
    }

    /// Stable 64-bit hash, used for partitioning queries across InvaliDB
    /// matching nodes and EBF shards.
    pub fn stable_hash(&self) -> u64 {
        fx_hash_str(&self.canonical)
    }

    /// True if this key denotes a record rather than a query.
    pub fn is_record(&self) -> bool {
        self.canonical.starts_with("r:")
    }

    /// The table this key addresses (`q:<table>?...` / `r:<table>/<id>`) —
    /// the routing key for shard routers and per-table EBF partitions.
    pub fn table(&self) -> &str {
        let rest = self.canonical.get(2..).unwrap_or("");
        let end = rest.find(['?', '/']).unwrap_or(rest.len());
        &rest[..end]
    }
}

impl std::fmt::Display for QueryKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.canonical)
    }
}

/// One index-servable conjunct of a filter: a predicate every matching
/// document *must* satisfy, in a shape a secondary index can serve.
///
/// Extracted by [`index_bindings`]; consumed by the store's query planner
/// (equality → hash-index probe, range → ordered-index scan).
#[derive(Debug, Clone, PartialEq)]
pub enum IndexBinding {
    /// The field at `path` equals `value` (or, for array fields, some
    /// element does — the matcher's implicit `$elemMatch`).
    Eq {
        /// Pinned field path.
        path: Path,
        /// Pinned value.
        value: Value,
    },
    /// The field at `path` (or some array element) lies in a half-open
    /// interval under the canonical BSON-style value order. Exactly one
    /// side is set per extracted conjunct (`$gt`/`$gte` → `lower`,
    /// `$lt`/`$lte` → `upper`); the planner merges sides per path where
    /// that is semantically safe.
    Range {
        /// Bounded field path.
        path: Path,
        /// Lower bound `(value, inclusive)`.
        lower: Option<(Value, bool)>,
        /// Upper bound `(value, inclusive)`.
        upper: Option<(Value, bool)>,
    },
}

impl IndexBinding {
    /// The bound field path.
    pub fn path(&self) -> &Path {
        match self {
            IndexBinding::Eq { path, .. } | IndexBinding::Range { path, .. } => path,
        }
    }
}

/// Decompose a filter's top-level conjunction into index-servable
/// conjuncts. Every returned binding is a *necessary* condition: a
/// document violating it cannot match the filter, so an index probe over
/// the binding plus a residual re-check of the full filter is exact.
///
/// Call this on a [`normalize_filter`]-normalized filter — normalization
/// flattens nested `And`s and collapses singleton combinators, so the
/// top-level walk here sees every conjunct. (On a non-normalized filter
/// the result is still sound, merely incomplete.) Operators that missing
/// fields can satisfy (`$ne`, `$nin`, `$exists:false`) and operators with
/// value semantics an equality/order index cannot mirror (`$contains` on
/// strings is substring match, `$in` is a union, …) are never extracted.
pub fn index_bindings(filter: &Filter) -> Vec<IndexBinding> {
    let mut out = Vec::new();
    match filter {
        Filter::And(fs) => {
            for f in fs {
                push_binding(f, &mut out);
            }
        }
        f => push_binding(f, &mut out),
    }
    out
}

fn push_binding(f: &Filter, out: &mut Vec<IndexBinding>) {
    let Filter::Cmp(path, op) = f else { return };
    let binding = match op {
        Op::Eq(v) => IndexBinding::Eq {
            path: path.clone(),
            value: v.clone(),
        },
        Op::Gt(v) => IndexBinding::Range {
            path: path.clone(),
            lower: Some((v.clone(), false)),
            upper: None,
        },
        Op::Gte(v) => IndexBinding::Range {
            path: path.clone(),
            lower: Some((v.clone(), true)),
            upper: None,
        },
        Op::Lt(v) => IndexBinding::Range {
            path: path.clone(),
            lower: None,
            upper: Some((v.clone(), false)),
        },
        Op::Lte(v) => IndexBinding::Range {
            path: path.clone(),
            lower: None,
            upper: Some((v.clone(), true)),
        },
        _ => return,
    };
    out.push(binding);
}

/// Structurally normalize a filter:
/// * flatten nested `And`/`Or` of the same kind,
/// * drop `True` from conjunctions, collapse singleton combinators,
/// * sort commutative operand lists (`And`, `Or`, `Nor`, `$in`, `$nin`,
///   `$all`) by canonical rendering,
/// * cancel double negation.
pub fn normalize_filter(filter: &Filter) -> Filter {
    match filter {
        Filter::True => Filter::True,
        Filter::Cmp(path, op) => Filter::Cmp(path.clone(), normalize_op(op)),
        Filter::And(fs) => {
            let mut flat = Vec::new();
            flatten_and(fs, &mut flat);
            flat.retain(|f| !matches!(f, Filter::True));
            normalize_list(flat, Filter::And, Filter::True)
        }
        Filter::Or(fs) => {
            let mut flat = Vec::new();
            flatten_or(fs, &mut flat);
            // An empty disjunction is unsatisfiable — it must stay `Or([])`
            // (there is deliberately no `False` variant; it never occurs in
            // user queries).
            normalize_list(flat, Filter::Or, Filter::Or(Vec::new()))
        }
        Filter::Nor(fs) => {
            let mut items: Vec<Filter> = fs.iter().map(normalize_filter).collect();
            sort_filters(&mut items);
            Filter::Nor(items)
        }
        Filter::Not(inner) => match normalize_filter(inner) {
            // ¬¬f = f
            Filter::Not(f) => *f,
            f => Filter::Not(Box::new(f)),
        },
    }
}

fn flatten_and(fs: &[Filter], out: &mut Vec<Filter>) {
    for f in fs {
        match normalize_filter(f) {
            Filter::And(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
}

fn flatten_or(fs: &[Filter], out: &mut Vec<Filter>) {
    for f in fs {
        match normalize_filter(f) {
            Filter::Or(inner) => out.extend(inner),
            other => out.push(other),
        }
    }
}

fn normalize_list(
    mut items: Vec<Filter>,
    wrap: impl FnOnce(Vec<Filter>) -> Filter,
    empty: Filter,
) -> Filter {
    sort_filters(&mut items);
    items.dedup();
    match items.len() {
        0 => empty,
        1 => items.pop().unwrap(),
        _ => wrap(items),
    }
}

fn sort_filters(items: &mut [Filter]) {
    items.sort_by_cached_key(|f| {
        let mut s = String::new();
        write_filter(f, &mut s);
        s
    });
}

fn normalize_op(op: &Op) -> Op {
    match op {
        Op::In(vs) => {
            let mut vs = vs.clone();
            vs.sort();
            vs.dedup();
            Op::In(vs)
        }
        Op::Nin(vs) => {
            let mut vs = vs.clone();
            vs.sort();
            vs.dedup();
            Op::Nin(vs)
        }
        Op::All(vs) => {
            let mut vs = vs.clone();
            vs.sort();
            vs.dedup();
            Op::All(vs)
        }
        other => other.clone(),
    }
}

fn write_filter(f: &Filter, out: &mut String) {
    match f {
        Filter::True => out.push_str("true"),
        Filter::Cmp(path, op) => {
            out.push_str(path.as_str());
            out.push_str(op.name());
            match op {
                Op::Eq(v)
                | Op::Ne(v)
                | Op::Gt(v)
                | Op::Gte(v)
                | Op::Lt(v)
                | Op::Lte(v)
                | Op::Contains(v) => out.push_str(&v.canonical()),
                Op::In(vs) | Op::Nin(vs) | Op::All(vs) => {
                    out.push('[');
                    for (i, v) in vs.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        out.push_str(&v.canonical());
                    }
                    out.push(']');
                }
                Op::Exists(b) => out.push_str(if *b { "1" } else { "0" }),
                Op::Size(n) => out.push_str(&n.to_string()),
                Op::StartsWith(s) => {
                    out.push('"');
                    out.push_str(s);
                    out.push('"');
                }
            }
        }
        Filter::And(fs) => write_combo("and", fs, out),
        Filter::Or(fs) => write_combo("or", fs, out),
        Filter::Nor(fs) => write_combo("nor", fs, out),
        Filter::Not(inner) => {
            out.push_str("not(");
            write_filter(inner, out);
            out.push(')');
        }
    }
}

fn write_combo(name: &str, fs: &[Filter], out: &mut String) {
    out.push_str(name);
    out.push('(');
    for (i, f) in fs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_filter(f, out);
    }
    out.push(')');
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use quaestor_document::Value;

    #[test]
    fn table_extraction_from_keys() {
        let q = Query::table("posts").filter(Filter::eq("a", 1));
        assert_eq!(QueryKey::of(&q).table(), "posts");
        assert_eq!(QueryKey::record("users", "7").table(), "users");
        let bare = Query::table("plain");
        assert_eq!(QueryKey::of(&bare).table(), "plain");
    }

    #[test]
    fn commutative_conjunctions_share_a_key() {
        let a = Query::table("posts").filter(Filter::and([
            Filter::eq("topic", "db"),
            Filter::gt("likes", 5),
        ]));
        let b = Query::table("posts").filter(Filter::and([
            Filter::gt("likes", 5),
            Filter::eq("topic", "db"),
        ]));
        assert_eq!(QueryKey::of(&a), QueryKey::of(&b));
    }

    #[test]
    fn in_list_order_is_irrelevant() {
        let a = Query::table("t").filter(Filter::is_in(
            "x",
            vec![Value::Int(3), Value::Int(1), Value::Int(1)],
        ));
        let b = Query::table("t").filter(Filter::is_in("x", vec![Value::Int(1), Value::Int(3)]));
        assert_eq!(QueryKey::of(&a), QueryKey::of(&b));
    }

    #[test]
    fn nested_and_flattens() {
        let a = Filter::and([
            Filter::eq("a", 1),
            Filter::and([Filter::eq("b", 2), Filter::eq("c", 3)]),
        ]);
        let b = Filter::and([Filter::eq("c", 3), Filter::eq("b", 2), Filter::eq("a", 1)]);
        assert_eq!(normalize_filter(&a), normalize_filter(&b));
    }

    #[test]
    fn double_negation_cancels() {
        let f = Filter::not(Filter::not(Filter::eq("a", 1)));
        assert_eq!(normalize_filter(&f), Filter::eq("a", 1));
    }

    #[test]
    fn singleton_combinators_collapse() {
        let f = Filter::and([Filter::eq("a", 1)]);
        assert_eq!(normalize_filter(&f), Filter::eq("a", 1));
        let f = Filter::or([Filter::eq("a", 1)]);
        assert_eq!(normalize_filter(&f), Filter::eq("a", 1));
        let f = Filter::and([Filter::True, Filter::eq("a", 1)]);
        assert_eq!(normalize_filter(&f), Filter::eq("a", 1));
    }

    #[test]
    fn duplicate_conjuncts_dedup() {
        let f = Filter::and([Filter::eq("a", 1), Filter::eq("a", 1)]);
        assert_eq!(normalize_filter(&f), Filter::eq("a", 1));
    }

    #[test]
    fn different_semantics_different_keys() {
        let a = Query::table("posts").filter(Filter::gt("likes", 5));
        let b = Query::table("posts").filter(Filter::gte("likes", 5));
        assert_ne!(QueryKey::of(&a), QueryKey::of(&b));
        let c = Query::table("other").filter(Filter::gt("likes", 5));
        assert_ne!(QueryKey::of(&a), QueryKey::of(&c));
    }

    #[test]
    fn pagination_distinguishes_keys() {
        let base = Query::table("posts").filter(Filter::eq("a", 1));
        let limited = base.clone().limit(10);
        let offset = base.clone().offset(5);
        let sorted = base.clone().sort_by("likes", Order::Desc);
        let keys: Vec<String> = [&base, &limited, &offset, &sorted]
            .iter()
            .map(|q| QueryKey::of(q).as_str().to_string())
            .collect();
        for i in 0..keys.len() {
            for j in (i + 1)..keys.len() {
                assert_ne!(keys[i], keys[j]);
            }
        }
    }

    #[test]
    fn record_keys_distinct_from_query_keys() {
        let r = QueryKey::record("posts", "42");
        assert!(r.is_record());
        assert_eq!(r.as_str(), "r:posts/42");
        let q = QueryKey::of(&Query::table("posts"));
        assert!(!q.is_record());
    }

    #[test]
    fn numeric_literal_forms_unify() {
        // 5 and 5.0 are the same point in Mongo's order; same cache key.
        let a = Query::table("t").filter(Filter::eq("x", 5));
        let b = Query::table("t").filter(Filter::eq("x", 5.0));
        assert_eq!(QueryKey::of(&a), QueryKey::of(&b));
    }

    #[test]
    fn index_bindings_decompose_conjunctions() {
        let f = normalize_filter(&Filter::and([
            Filter::eq("topic", "db"),
            Filter::gt("likes", 5),
            Filter::lte("likes", 20),
            Filter::or([Filter::eq("a", 1), Filter::eq("b", 2)]),
            Filter::not(Filter::eq("c", 3)),
            Filter::ne("d", 4),
        ]));
        let bindings = index_bindings(&f);
        assert_eq!(bindings.len(), 3, "eq + two range sides, nothing else");
        assert!(bindings.contains(&IndexBinding::Eq {
            path: "topic".into(),
            value: Value::str("db"),
        }));
        assert!(bindings.contains(&IndexBinding::Range {
            path: "likes".into(),
            lower: Some((Value::Int(5), false)),
            upper: None,
        }));
        assert!(bindings.contains(&IndexBinding::Range {
            path: "likes".into(),
            lower: None,
            upper: Some((Value::Int(20), true)),
        }));
    }

    #[test]
    fn index_bindings_on_single_predicates() {
        let gte = index_bindings(&Filter::gte("n", 7));
        assert_eq!(
            gte,
            vec![IndexBinding::Range {
                path: "n".into(),
                lower: Some((Value::Int(7), true)),
                upper: None,
            }]
        );
        assert_eq!(gte[0].path().as_str(), "n");
        assert!(index_bindings(&Filter::True).is_empty());
        assert!(index_bindings(&Filter::or([Filter::eq("a", 1)])).is_empty());
        // Normalization collapses the singleton Or, making it extractable.
        let collapsed = normalize_filter(&Filter::or([Filter::eq("a", 1)]));
        assert_eq!(index_bindings(&collapsed).len(), 1);
    }

    fn arb_filter() -> impl Strategy<Value = Filter> {
        let leaf = prop_oneof![
            Just(Filter::True),
            ("[a-c]", -5i64..5).prop_map(|(p, v)| Filter::eq(p.as_str(), v)),
            ("[a-c]", -5i64..5).prop_map(|(p, v)| Filter::gt(p.as_str(), v)),
            ("[a-c]", proptest::collection::vec(-5i64..5, 0..3))
                .prop_map(|(p, vs)| { Filter::is_in(p.as_str(), vs.into_iter().map(Value::Int)) }),
        ];
        leaf.prop_recursive(3, 16, 3, |inner| {
            prop_oneof![
                proptest::collection::vec(inner.clone(), 0..3).prop_map(Filter::And),
                proptest::collection::vec(inner.clone(), 0..3).prop_map(Filter::Or),
                inner.prop_map(Filter::not),
            ]
        })
    }

    proptest! {
        #[test]
        fn normalization_is_idempotent(f in arb_filter()) {
            let once = normalize_filter(&f);
            let twice = normalize_filter(&once);
            prop_assert_eq!(once, twice);
        }

        #[test]
        fn normalization_preserves_semantics(f in arb_filter(),
            fields in proptest::collection::btree_map("[a-c]", -5i64..5, 0..4)) {
            let doc: quaestor_document::Document = fields
                .into_iter()
                .map(|(k, v)| (k, Value::Int(v)))
                .collect();
            let norm = normalize_filter(&f);
            prop_assert_eq!(
                crate::matcher::matches(&f, &doc),
                crate::matcher::matches(&norm, &doc),
                "normalization changed semantics: {:?} vs {:?}", f, norm
            );
        }

        #[test]
        fn key_is_deterministic(f in arb_filter()) {
            let q = Query::table("t").filter(f);
            prop_assert_eq!(QueryKey::of(&q), QueryKey::of(&q));
        }
    }
}

//! The predicate AST and full query descriptions.

use quaestor_document::{Path, Value};
use serde::{Deserialize, Serialize};

/// A comparison or array operator applied to one field path.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Op {
    /// Field equals value (array fields also match if any element equals,
    /// like MongoDB's implicit `$elemMatch` for scalars).
    Eq(Value),
    /// Field does not equal value.
    Ne(Value),
    /// Strictly greater than.
    Gt(Value),
    /// Greater than or equal.
    Gte(Value),
    /// Strictly less than.
    Lt(Value),
    /// Less than or equal.
    Lte(Value),
    /// Field value is one of the listed values.
    In(Vec<Value>),
    /// Field value is none of the listed values.
    Nin(Vec<Value>),
    /// Array field contains the value (the paper's running example:
    /// `WHERE tags CONTAINS 'example'`).
    Contains(Value),
    /// Array field contains **all** listed values (`$all`).
    All(Vec<Value>),
    /// Field exists (or, with `false`, does not exist).
    Exists(bool),
    /// Array length equals n (`$size`).
    Size(usize),
    /// String field starts with the given prefix. A decidable, stateless
    /// stand-in for MongoDB's anchored regex `/^prefix/`.
    StartsWith(String),
}

impl Op {
    /// Operator mnemonic used in canonical query strings.
    pub fn name(&self) -> &'static str {
        match self {
            Op::Eq(_) => "$eq",
            Op::Ne(_) => "$ne",
            Op::Gt(_) => "$gt",
            Op::Gte(_) => "$gte",
            Op::Lt(_) => "$lt",
            Op::Lte(_) => "$lte",
            Op::In(_) => "$in",
            Op::Nin(_) => "$nin",
            Op::Contains(_) => "$contains",
            Op::All(_) => "$all",
            Op::Exists(_) => "$exists",
            Op::Size(_) => "$size",
            Op::StartsWith(_) => "$startsWith",
        }
    }
}

/// A boolean predicate tree over document fields.
///
/// All predicates are **stateless** in the sense of §4.1: whether a single
/// document matches depends only on that document. (Statefulness enters
/// only through sorting/offset, handled in [`Query`] and InvaliDB's sorted
/// processing layer.)
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Filter {
    /// Matches every document.
    True,
    /// One field predicate.
    Cmp(Path, Op),
    /// All sub-filters match.
    And(Vec<Filter>),
    /// At least one sub-filter matches.
    Or(Vec<Filter>),
    /// No sub-filter matches.
    Nor(Vec<Filter>),
    /// The sub-filter does not match.
    Not(Box<Filter>),
}

impl Filter {
    /// `field == value`.
    pub fn eq(path: impl Into<Path>, v: impl Into<Value>) -> Filter {
        Filter::Cmp(path.into(), Op::Eq(v.into()))
    }

    /// `field != value`.
    pub fn ne(path: impl Into<Path>, v: impl Into<Value>) -> Filter {
        Filter::Cmp(path.into(), Op::Ne(v.into()))
    }

    /// `field > value`.
    pub fn gt(path: impl Into<Path>, v: impl Into<Value>) -> Filter {
        Filter::Cmp(path.into(), Op::Gt(v.into()))
    }

    /// `field >= value`.
    pub fn gte(path: impl Into<Path>, v: impl Into<Value>) -> Filter {
        Filter::Cmp(path.into(), Op::Gte(v.into()))
    }

    /// `field < value`.
    pub fn lt(path: impl Into<Path>, v: impl Into<Value>) -> Filter {
        Filter::Cmp(path.into(), Op::Lt(v.into()))
    }

    /// `field <= value`.
    pub fn lte(path: impl Into<Path>, v: impl Into<Value>) -> Filter {
        Filter::Cmp(path.into(), Op::Lte(v.into()))
    }

    /// `field CONTAINS value` — the paper's running example predicate.
    pub fn contains(path: impl Into<Path>, v: impl Into<Value>) -> Filter {
        Filter::Cmp(path.into(), Op::Contains(v.into()))
    }

    /// `field IN (values...)`.
    pub fn is_in(path: impl Into<Path>, vs: impl IntoIterator<Item = Value>) -> Filter {
        Filter::Cmp(path.into(), Op::In(vs.into_iter().collect()))
    }

    /// `field exists`.
    pub fn exists(path: impl Into<Path>) -> Filter {
        Filter::Cmp(path.into(), Op::Exists(true))
    }

    /// `field starts with prefix`.
    pub fn starts_with(path: impl Into<Path>, prefix: impl Into<String>) -> Filter {
        Filter::Cmp(path.into(), Op::StartsWith(prefix.into()))
    }

    /// Conjunction.
    pub fn and(filters: impl IntoIterator<Item = Filter>) -> Filter {
        Filter::And(filters.into_iter().collect())
    }

    /// Disjunction.
    pub fn or(filters: impl IntoIterator<Item = Filter>) -> Filter {
        Filter::Or(filters.into_iter().collect())
    }

    /// Negation.
    #[allow(clippy::should_implement_trait)]
    pub fn not(filter: Filter) -> Filter {
        Filter::Not(Box::new(filter))
    }

    /// Number of leaf predicates; a proxy for matching cost used by the
    /// capacity manager.
    pub fn leaf_count(&self) -> usize {
        match self {
            Filter::True => 0,
            Filter::Cmp(..) => 1,
            Filter::And(fs) | Filter::Or(fs) | Filter::Nor(fs) => {
                fs.iter().map(Filter::leaf_count).sum()
            }
            Filter::Not(f) => f.leaf_count(),
        }
    }

    /// The set of top-level field names this filter touches. Used for
    /// index selection in the store.
    pub fn touched_fields(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_fields(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_fields<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Filter::True => {}
            Filter::Cmp(path, _) => out.push(path.head()),
            Filter::And(fs) | Filter::Or(fs) | Filter::Nor(fs) => {
                for f in fs {
                    f.collect_fields(out);
                }
            }
            Filter::Not(f) => f.collect_fields(out),
        }
    }

    /// If this filter pins a field to a single equality value at top level
    /// of a conjunction, return `(path, value)`. Used by the store to serve
    /// the query from a hash index.
    pub fn equality_binding(&self) -> Option<(&Path, &Value)> {
        match self {
            Filter::Cmp(p, Op::Eq(v)) => Some((p, v)),
            Filter::And(fs) => fs.iter().find_map(Filter::equality_binding),
            _ => None,
        }
    }
}

/// Sort direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Order {
    /// Ascending.
    Asc,
    /// Descending.
    Desc,
}

/// One ORDER BY key.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SortKey {
    /// Field path to sort on.
    pub path: Path,
    /// Direction.
    pub order: Order,
}

/// A complete query: table, predicate, optional ordering and pagination.
///
/// "With additional ORDER BY, LIMIT or OFFSET clauses ... a formerly
/// stateless query becomes stateful" (§4.1) — [`Query::is_stateful`]
/// captures exactly that distinction; InvaliDB routes stateful queries
/// through its order-maintaining layer.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Query {
    /// Table (collection) name.
    pub table: String,
    /// The predicate.
    pub filter: Filter,
    /// ORDER BY keys (ties broken by `_id` for determinism).
    pub sort: Vec<SortKey>,
    /// Maximum result size.
    pub limit: Option<usize>,
    /// Number of leading matches to skip.
    pub offset: usize,
}

impl Query {
    /// A full-table query.
    pub fn table(table: impl Into<String>) -> Query {
        Query {
            table: table.into(),
            filter: Filter::True,
            sort: Vec::new(),
            limit: None,
            offset: 0,
        }
    }

    /// Replace the filter.
    pub fn filter(mut self, filter: Filter) -> Query {
        self.filter = filter;
        self
    }

    /// Append a sort key.
    pub fn sort_by(mut self, path: impl Into<Path>, order: Order) -> Query {
        self.sort.push(SortKey {
            path: path.into(),
            order,
        });
        self
    }

    /// Set LIMIT.
    pub fn limit(mut self, n: usize) -> Query {
        self.limit = Some(n);
        self
    }

    /// Set OFFSET.
    pub fn offset(mut self, n: usize) -> Query {
        self.offset = n;
        self
    }

    /// True if result membership of one record can depend on other records
    /// (ORDER BY + LIMIT/OFFSET semantics).
    pub fn is_stateful(&self) -> bool {
        !self.sort.is_empty() || self.limit.is_some() || self.offset > 0
    }

    /// A `(path, value)` equality every matching document must satisfy, if
    /// one exists — extracted from the *normalized* filter so that e.g.
    /// `And([True, Eq(..)])` and singleton conjunctions are seen through.
    ///
    /// This is the key InvaliDB's predicate index files the query under:
    /// a document whose field at `path` is not `value` (nor an array
    /// containing it) can never match this query, so the matcher may skip
    /// it without evaluating the filter.
    pub fn index_binding(&self) -> Option<(Path, Value)> {
        let normalized = crate::normalize::normalize_filter(&self.filter);
        normalized
            .equality_binding()
            .map(|(p, v)| (p.clone(), v.clone()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_document::varray;

    #[test]
    fn builders_compose() {
        let q = Query::table("posts")
            .filter(Filter::and([
                Filter::contains("tags", "example"),
                Filter::gt("likes", 10),
            ]))
            .sort_by("likes", Order::Desc)
            .limit(20)
            .offset(5);
        assert_eq!(q.table, "posts");
        assert_eq!(q.filter.leaf_count(), 2);
        assert!(q.is_stateful());
    }

    #[test]
    fn stateless_query_detection() {
        let q = Query::table("posts").filter(Filter::eq("topic", "db"));
        assert!(!q.is_stateful());
        assert!(Query::table("posts").limit(1).is_stateful());
        assert!(Query::table("posts").offset(1).is_stateful());
        assert!(Query::table("posts").sort_by("x", Order::Asc).is_stateful());
    }

    #[test]
    fn touched_fields_deduped_and_sorted() {
        let f = Filter::or([
            Filter::eq("b.x", 1),
            Filter::eq("a", 2),
            Filter::not(Filter::eq("b.y", 3)),
        ]);
        assert_eq!(f.touched_fields(), vec!["a", "b"]);
    }

    #[test]
    fn equality_binding_found_through_and() {
        let f = Filter::and([Filter::gt("likes", 3), Filter::eq("topic", "db")]);
        let (p, v) = f.equality_binding().unwrap();
        assert_eq!(p.as_str(), "topic");
        assert_eq!(v, &Value::str("db"));
        assert!(Filter::or([Filter::eq("a", 1)])
            .equality_binding()
            .is_none());
    }

    #[test]
    fn leaf_count_counts_nested() {
        let f = Filter::and([
            Filter::or([Filter::eq("a", 1), Filter::eq("b", 2)]),
            Filter::not(Filter::is_in(
                "c",
                varray![1, 2, 3].as_array().unwrap().to_vec(),
            )),
        ]);
        assert_eq!(f.leaf_count(), 3);
    }
}

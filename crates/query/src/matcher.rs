//! Predicate evaluation against documents.
//!
//! This is InvaliDB's inner loop ("Is Match? / Was Match?", Figure 6): for
//! every incoming after-image, every registered query in the object
//! partition is re-evaluated. The implementation is allocation-free for
//! all operators except none — evaluation only borrows.

use quaestor_document::{Document, Path, Value};

use crate::filter::{Filter, Op, Query, SortKey};

/// Does `doc` satisfy `filter`?
pub fn matches(filter: &Filter, doc: &Document) -> bool {
    match filter {
        Filter::True => true,
        Filter::Cmp(path, op) => eval_cmp(doc, path, op),
        Filter::And(fs) => fs.iter().all(|f| matches(f, doc)),
        Filter::Or(fs) => fs.iter().any(|f| matches(f, doc)),
        Filter::Nor(fs) => !fs.iter().any(|f| matches(f, doc)),
        Filter::Not(f) => !matches(f, doc),
    }
}

/// Match a full [`Query`]'s filter (table routing is the caller's job).
pub fn query_matches(query: &Query, doc: &Document) -> bool {
    matches(&query.filter, doc)
}

/// Resolve a (possibly dotted) path against a document, with the same
/// traversal rules the operators use. Exposed so InvaliDB's predicate
/// index can derive candidate values from an after-image.
pub fn resolve_path<'a>(doc: &'a Document, path: &Path) -> Option<&'a Value> {
    resolve(doc, path)
}

fn resolve<'a>(doc: &'a Document, path: &Path) -> Option<&'a Value> {
    let mut segs = path.segments();
    let head = segs.next()?;
    let mut cur = doc.get(head)?;
    for seg in segs {
        match cur {
            Value::Object(map) => cur = map.get(seg)?,
            Value::Array(items) => {
                let idx: usize = seg.parse().ok()?;
                cur = items.get(idx)?;
            }
            _ => return None,
        }
    }
    Some(cur)
}

fn eval_cmp(doc: &Document, path: &Path, op: &Op) -> bool {
    let field = resolve(doc, path);
    match op {
        Op::Exists(want) => field.is_some() == *want,
        _ => match field {
            Some(v) => eval_op(v, op),
            // Missing fields satisfy only Ne / Nin (MongoDB semantics:
            // {$ne: x} matches documents lacking the field entirely).
            None => matches!(op, Op::Ne(_) | Op::Nin(_)),
        },
    }
}

/// MongoDB's implicit array semantics: a comparison on an array field
/// matches if the array itself satisfies it or **any element** does.
fn scalar_or_any_element(v: &Value, pred: impl Fn(&Value) -> bool) -> bool {
    if pred(v) {
        return true;
    }
    if let Value::Array(items) = v {
        return items.iter().any(pred);
    }
    false
}

fn eval_op(v: &Value, op: &Op) -> bool {
    match op {
        Op::Eq(rhs) => scalar_or_any_element(v, |x| x == rhs),
        Op::Ne(rhs) => !scalar_or_any_element(v, |x| x == rhs),
        Op::Gt(rhs) => scalar_or_any_element(v, |x| x > rhs),
        Op::Gte(rhs) => scalar_or_any_element(v, |x| x >= rhs),
        Op::Lt(rhs) => scalar_or_any_element(v, |x| x < rhs),
        Op::Lte(rhs) => scalar_or_any_element(v, |x| x <= rhs),
        Op::In(set) => scalar_or_any_element(v, |x| set.iter().any(|s| s == x)),
        Op::Nin(set) => !scalar_or_any_element(v, |x| set.iter().any(|s| s == x)),
        Op::Contains(rhs) => match v {
            Value::Array(items) => items.iter().any(|x| x == rhs),
            Value::Str(s) => rhs.as_str().is_some_and(|sub| s.contains(sub)),
            _ => false,
        },
        Op::All(set) => match v {
            Value::Array(items) => set.iter().all(|s| items.iter().any(|x| x == s)),
            _ => false,
        },
        Op::Exists(_) => unreachable!("handled in eval_cmp"),
        Op::Size(n) => v.as_array().is_some_and(|a| a.len() == *n),
        Op::StartsWith(prefix) => {
            scalar_or_any_element(v, |x| x.as_str().is_some_and(|s| s.starts_with(prefix)))
        }
    }
}

/// Compare two documents under a sort specification; ties broken by `_id`
/// so result order is total and deterministic (required for InvaliDB's
/// `changeIndex` events to be well defined).
pub fn compare_docs(a: &Document, b: &Document, sort: &[SortKey]) -> std::cmp::Ordering {
    use crate::filter::Order;
    use std::cmp::Ordering;
    const NULL: Value = Value::Null;
    for key in sort {
        let va = resolve(a, &key.path).unwrap_or(&NULL);
        let vb = resolve(b, &key.path).unwrap_or(&NULL);
        let ord = va.cmp(vb);
        let ord = match key.order {
            Order::Asc => ord,
            Order::Desc => ord.reverse(),
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    let ida = a.get("_id").unwrap_or(&NULL);
    let idb = b.get("_id").unwrap_or(&NULL);
    ida.cmp(idb)
}

/// Execute `query` over an iterator of documents: filter, sort, offset,
/// limit. This is the reference semantics the store and InvaliDB must both
/// agree with (property-tested in the store crate).
pub fn execute<'a>(query: &Query, docs: impl Iterator<Item = &'a Document>) -> Vec<&'a Document> {
    let mut hits: Vec<&Document> = docs.filter(|d| matches(&query.filter, d)).collect();
    if !query.sort.is_empty() {
        hits.sort_by(|a, b| compare_docs(a, b, &query.sort));
    } else {
        // Deterministic order even without ORDER BY: sort by _id.
        hits.sort_by(|a, b| compare_docs(a, b, &[]));
    }
    let start = query.offset.min(hits.len());
    let end = match query.limit {
        Some(l) => (start + l).min(hits.len()),
        None => hits.len(),
    };
    hits[start..end].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::filter::{Filter, Order, Query};
    use quaestor_document::{doc, varray};

    fn post(id: i64, tags: &[&str], likes: i64) -> Document {
        let mut d = doc! {
            "_id" => format!("post{id}"),
            "likes" => likes,
            "author" => "ada"
        };
        d.insert(
            "tags".into(),
            Value::Array(tags.iter().map(|t| Value::str(*t)).collect()),
        );
        d
    }

    #[test]
    fn contains_matches_paper_example() {
        // SELECT * FROM posts WHERE tags CONTAINS 'example'
        let f = Filter::contains("tags", "example");
        assert!(matches(&f, &post(1, &["example", "music"], 3)));
        assert!(!matches(&f, &post(2, &["music"], 3)));
        assert!(!matches(&f, &doc! { "_id" => "x" }));
    }

    #[test]
    fn eq_on_arrays_matches_any_element() {
        let f = Filter::eq("tags", "music");
        assert!(matches(&f, &post(1, &["example", "music"], 0)));
        assert!(!matches(&f, &post(1, &["example"], 0)));
    }

    #[test]
    fn ne_matches_missing_field() {
        let f = Filter::ne("missing", 1);
        assert!(matches(&f, &doc! { "a" => 1 }));
        let f2 = Filter::eq("missing", 1);
        assert!(!matches(&f2, &doc! { "a" => 1 }));
    }

    #[test]
    fn range_operators() {
        let d = post(1, &[], 10);
        assert!(matches(&Filter::gt("likes", 9), &d));
        assert!(!matches(&Filter::gt("likes", 10), &d));
        assert!(matches(&Filter::gte("likes", 10), &d));
        assert!(matches(&Filter::lt("likes", 11), &d));
        assert!(matches(&Filter::lte("likes", 10), &d));
        // Numeric cross-type: likes > 9.5 (float vs int field)
        assert!(matches(&Filter::gt("likes", 9.5), &d));
    }

    #[test]
    fn in_nin_all_size() {
        let d = post(1, &["a", "b"], 5);
        assert!(matches(
            &Filter::is_in("likes", vec![Value::Int(5), Value::Int(7)]),
            &d
        ));
        assert!(matches(
            &Filter::Cmp("likes".into(), Op::Nin(vec![Value::Int(9)])),
            &d
        ));
        assert!(matches(
            &Filter::Cmp(
                "tags".into(),
                Op::All(vec![Value::str("a"), Value::str("b")])
            ),
            &d
        ));
        assert!(!matches(
            &Filter::Cmp(
                "tags".into(),
                Op::All(vec![Value::str("a"), Value::str("z")])
            ),
            &d
        ));
        assert!(matches(&Filter::Cmp("tags".into(), Op::Size(2)), &d));
        assert!(!matches(&Filter::Cmp("tags".into(), Op::Size(3)), &d));
    }

    #[test]
    fn string_operators() {
        let d = doc! { "title" => "Hello World" };
        assert!(matches(&Filter::starts_with("title", "Hello"), &d));
        assert!(!matches(&Filter::starts_with("title", "World"), &d));
        assert!(matches(
            &Filter::Cmp("title".into(), Op::Contains(Value::str("lo Wo"))),
            &d
        ));
    }

    #[test]
    fn boolean_combinators() {
        let d = post(1, &["x"], 5);
        let f = Filter::and([Filter::eq("author", "ada"), Filter::gt("likes", 1)]);
        assert!(matches(&f, &d));
        let f = Filter::or([Filter::eq("author", "bob"), Filter::gt("likes", 1)]);
        assert!(matches(&f, &d));
        let f = Filter::Nor(vec![Filter::eq("author", "bob"), Filter::gt("likes", 100)]);
        assert!(matches(&f, &d));
        assert!(matches(&Filter::not(Filter::eq("author", "bob")), &d));
        assert!(!matches(&Filter::not(Filter::eq("author", "ada")), &d));
    }

    #[test]
    fn nested_paths() {
        let d = doc! {
            "author" => Value::Object(
                [("name".to_string(), Value::str("ada")),
                 ("stats".to_string(), Value::Object(
                    [("followers".to_string(), Value::Int(1000))].into_iter().collect()))]
                .into_iter().collect())
        };
        assert!(matches(&Filter::eq("author.name", "ada"), &d));
        assert!(matches(&Filter::gt("author.stats.followers", 500), &d));
        assert!(!matches(&Filter::eq("author.name.x", "ada"), &d));
    }

    #[test]
    fn execute_sort_offset_limit() {
        let docs = [
            post(3, &[], 30),
            post(1, &[], 10),
            post(4, &[], 40),
            post(2, &[], 20),
        ];
        let q = Query::table("posts")
            .sort_by("likes", Order::Desc)
            .offset(1)
            .limit(2);
        let result = execute(&q, docs.iter());
        let likes: Vec<i64> = result
            .iter()
            .map(|d| d["likes"].as_i64().unwrap())
            .collect();
        assert_eq!(likes, vec![30, 20]);
    }

    #[test]
    fn execute_is_deterministic_without_sort() {
        let docs = [post(2, &[], 1), post(1, &[], 1), post(3, &[], 1)];
        let q = Query::table("posts");
        let r1: Vec<String> = execute(&q, docs.iter())
            .iter()
            .map(|d| d["_id"].as_str().unwrap().to_string())
            .collect();
        assert_eq!(r1, vec!["post1", "post2", "post3"]);
    }

    #[test]
    fn sort_ties_broken_by_id() {
        let a = post(1, &[], 5);
        let b = post(2, &[], 5);
        assert_eq!(
            compare_docs(
                &a,
                &b,
                &[SortKey {
                    path: "likes".into(),
                    order: Order::Asc
                }]
            ),
            std::cmp::Ordering::Less
        );
    }

    #[test]
    fn missing_sort_field_sorts_as_null_first() {
        let mut a = post(1, &[], 5);
        a.remove("likes");
        let b = post(2, &[], 5);
        let sort = [SortKey {
            path: "likes".into(),
            order: Order::Asc,
        }];
        assert_eq!(compare_docs(&a, &b, &sort), std::cmp::Ordering::Less);
    }

    #[test]
    fn contains_rejects_non_array_non_string() {
        let d = doc! { "n" => 5 };
        assert!(!matches(
            &Filter::Cmp("n".into(), Op::Contains(Value::Int(5))),
            &d
        ));
        let _ = varray![1]; // keep macro import used
    }
}

//! MongoDB-style query language over documents.
//!
//! "We assume ... queries that express any boolean expression over
//! predicates on documents within a single table. As a concrete
//! representative, we employ the popular MongoDB query language" (§2).
//!
//! The three components here correspond to three needs of Quaestor:
//!
//! * [`filter`] — the predicate AST (`Filter`) with boolean combinators and
//!   comparison/array operators, plus ORDER BY / LIMIT / OFFSET in
//!   [`Query`].
//! * [`normalize`] — **canonical query strings**. Web caches address
//!   resources purely by URL, so the normalized query string is the cache
//!   key; it must be deterministic and identify structurally equal queries.
//! * [`matcher`] — predicate evaluation against single documents. This is
//!   the hot path of InvaliDB: every after-image is matched against every
//!   registered query in its partition.

pub mod filter;
pub mod matcher;
pub mod normalize;

pub use filter::{Filter, Op, Order, Query, SortKey};
pub use matcher::matches;
pub use normalize::{index_bindings, normalize_filter, IndexBinding, QueryKey};

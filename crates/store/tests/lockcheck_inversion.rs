//! Seeded lock-order inversion regression test.
//!
//! Runs only under `RUSTFLAGS="--cfg lockcheck"` (the `test-lockcheck`
//! CI job): proves the instrumented `parking_lot` detector catches the
//! index → shard inversion that the store's documented hierarchy
//! forbids, and that its panic names *both* acquisition sites so the
//! report is actionable. The static linter flags the same pattern — see
//! `crates/analyze/tests/fixtures/lock_inversion.rs` for the mirror
//! fixture.
#![cfg(lockcheck)]

use std::panic::{self, AssertUnwindSafe};

use quaestor_document::doc;
use quaestor_store::Database;

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else {
        String::new()
    }
}

#[test]
fn seeded_inversion_panics_with_both_sites_named() {
    let db = Database::new();
    let table = db.create_table("posts");
    let err = panic::catch_unwind(AssertUnwindSafe(|| {
        table.seeded_index_then_shard_inversion();
    }))
    .expect_err("the lockcheck detector must panic on index -> shard");
    let msg = panic_message(err);
    assert!(
        msg.contains("lock-order inversion"),
        "unexpected panic message: {msg}"
    );
    assert!(msg.contains("`store.shard`"), "missing lock name: {msg}");
    assert!(msg.contains("`store.index`"), "missing lock name: {msg}");
    // Both acquisition sites (the seeded fn's two statements) are named.
    assert_eq!(
        msg.matches("crates/store/src/table.rs").count(),
        2,
        "expected both acquisition sites in: {msg}"
    );
}

#[test]
fn documented_shard_then_index_order_is_clean() {
    // The real write path (shard write lock, then index maintenance)
    // must stay silent under the same detector.
    let db = Database::new();
    let table = db.create_table("posts");
    table.insert("a", doc! { "x" => 1 }).expect("insert");
    assert_eq!(table.len(), 1);
}

//! Differential tests for the query planner: for any documents, declared
//! indexes, filter shape and pagination, `Table::query` (the planner) and
//! `Table::scan_query` (the kept reference scan) must return the *same*
//! documents in the *same* order — and `Table::explain` must pick the
//! access path each filter shape is supposed to get.

use std::sync::Arc;

use proptest::prelude::*;
use quaestor_document::{doc, Document, Value};
use quaestor_query::{Filter, Op, Order, Query};
use quaestor_store::{AccessPath, Database, IndexKind, SortStrategy, Table};

fn ids_of(docs: &[Arc<Document>]) -> Vec<String> {
    docs.iter()
        .map(|d| d["_id"].as_str().unwrap().to_owned())
        .collect()
}

// ---------------------------------------------------------------- proptest

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        (-8i64..8).prop_map(Value::Int),
        (-4i64..4).prop_map(|i| Value::Float(i as f64 + 0.5)),
        "[a-c]{1,2}".prop_map(Value::Str),
        Just(Value::Null),
        // Array fields: the multikey cases (implicit $elemMatch, the
        // multi-element range trap, whole-array keys).
        proptest::collection::vec((-8i64..8).prop_map(Value::Int), 1..3).prop_map(Value::Array),
    ]
}

fn arb_doc() -> impl Strategy<Value = Document> {
    proptest::collection::btree_map("[a-d]", arb_value(), 0..4)
}

fn arb_filter() -> impl Strategy<Value = Filter> {
    let leaf = prop_oneof![
        Just(Filter::True),
        ("[a-d]", arb_value()).prop_map(|(p, v)| Filter::Cmp(p.as_str().into(), Op::Eq(v))),
        ("[a-d]", -8i64..8).prop_map(|(p, v)| Filter::gt(p.as_str(), v)),
        ("[a-d]", -8i64..8).prop_map(|(p, v)| Filter::gte(p.as_str(), v)),
        ("[a-d]", -8i64..8).prop_map(|(p, v)| Filter::lt(p.as_str(), v)),
        ("[a-d]", -8i64..8).prop_map(|(p, v)| Filter::lte(p.as_str(), v)),
        ("[a-d]", proptest::collection::vec(arb_value(), 0..3))
            .prop_map(|(p, vs)| Filter::is_in(p.as_str(), vs)),
        ("[a-d]", arb_value()).prop_map(|(p, v)| Filter::Cmp(p.as_str().into(), Op::Contains(v))),
        "[a-d]".prop_map(|p| Filter::exists(p.as_str())),
        ("[a-d]", arb_value()).prop_map(|(p, v)| Filter::ne(p.as_str(), v)),
    ];
    leaf.prop_recursive(2, 10, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..4).prop_map(Filter::And),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Filter::Or),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Filter::Nor),
            inner.prop_map(Filter::not),
        ]
    })
}

/// Which indexes to declare, as a bitmask over a fixed spec universe.
fn arb_indexes() -> impl Strategy<Value = Vec<(&'static str, IndexKind)>> {
    let universe = [
        ("a", IndexKind::Hash),
        ("b", IndexKind::Hash),
        ("a", IndexKind::Ordered),
        ("b", IndexKind::Ordered),
        ("c", IndexKind::Ordered),
        ("d", IndexKind::Hash),
        ("d", IndexKind::Ordered),
    ];
    (0u32..128).prop_map(move |mask| {
        universe
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, spec)| *spec)
            .collect()
    })
}

proptest! {
    /// The headline differential: planner ≡ reference scan, for every
    /// combination of docs, indexes, filters (equalities, ranges, `$or`,
    /// negations, array fields), sort order, limit and offset — results
    /// identical including order.
    #[test]
    fn planner_equals_reference_scan(
        docs in proptest::collection::vec(arb_doc(), 0..25),
        late_docs in proptest::collection::vec(arb_doc(), 0..8),
        indexes in arb_indexes(),
        filter in arb_filter(),
        sort_path in proptest::option::of("[a-d]"),
        desc in any::<bool>(),
        limit in proptest::option::of(0usize..8),
        offset in 0usize..4,
    ) {
        let db = Database::new();
        let table = db.create_table("t");
        for (i, d) in docs.iter().enumerate() {
            table.insert(&format!("r{i:03}"), d.clone()).unwrap();
        }
        // Declare half the indexes after the initial load (backfill path),
        // the rest before the late writes (maintenance path).
        for (path, kind) in &indexes {
            db.declare_index("t", *path, *kind);
        }
        for (i, d) in late_docs.iter().enumerate() {
            table.insert(&format!("s{i:03}"), d.clone()).unwrap();
        }
        let mut q = Query::table("t").filter(filter).offset(offset);
        if let Some(p) = &sort_path {
            q = q.sort_by(p.as_str(), if desc { Order::Desc } else { Order::Asc });
        }
        q.limit = limit;

        let planned = ids_of(&table.query(&q));
        let reference = ids_of(&table.scan_query(&q));
        prop_assert_eq!(
            &planned, &reference,
            "plan {:?} diverged from the reference scan", table.explain(&q)
        );
        // query_ids must agree with the document path, in order.
        prop_assert_eq!(table.query_ids(&q), planned);
    }

    /// Mutations keep every index kind fresh: after updates and deletes
    /// the planner still agrees with the reference scan.
    #[test]
    fn planner_agrees_after_updates_and_deletes(
        docs in proptest::collection::vec(arb_doc(), 1..15),
        rewrites in proptest::collection::vec((0usize..15, arb_doc()), 0..8),
        deletes in proptest::collection::vec(0usize..15, 0..5),
        filter in arb_filter(),
    ) {
        let db = Database::new();
        db.declare_index("t", "a", IndexKind::Hash);
        db.declare_index("t", "a", IndexKind::Ordered);
        db.declare_index("t", "b", IndexKind::Ordered);
        let table = db.create_table("t");
        for (i, d) in docs.iter().enumerate() {
            table.insert(&format!("r{i:03}"), d.clone()).unwrap();
        }
        for (slot, d) in &rewrites {
            let id = format!("r{:03}", slot % docs.len());
            let _ = table.replace(&id, d.clone(), None);
        }
        for slot in &deletes {
            let _ = table.delete(&format!("r{:03}", slot % docs.len()), None);
        }
        let q = Query::table("t").filter(filter);
        prop_assert_eq!(ids_of(&table.query(&q)), ids_of(&table.scan_query(&q)));
    }
}

// ------------------------------------------------------------ explain pins

fn loaded_table(db: &Arc<Database>) -> Arc<Table> {
    let table = db.create_table("posts");
    for i in 0..50i64 {
        table
            .insert(
                &format!("p{i:02}"),
                doc! {
                    "topic" => if i % 5 == 0 { "db" } else { "ml" },
                    "author" => format!("u{}", i % 10),
                    "likes" => i,
                    "noise" => (i * 37) % 50
                },
            )
            .unwrap();
    }
    table
}

#[test]
fn explain_picks_hash_probe_for_indexed_equality() {
    let db = Database::new();
    let table = loaded_table(&db);
    table.create_index("topic");
    let q = Query::table("posts").filter(Filter::eq("topic", "db"));
    let plan = table.explain(&q);
    assert_eq!(
        plan.access,
        AccessPath::HashProbe {
            paths: vec!["topic".into()],
            estimated: 10,
        }
    );
    assert_eq!(plan.sort, SortStrategy::FullSort);
}

#[test]
fn explain_intersects_multiple_equalities_smallest_first() {
    let db = Database::new();
    let table = loaded_table(&db);
    table.create_index("topic"); // 10 postings for "db"
    table.create_index("author"); // 5 postings for "u0"
    let q = Query::table("posts").filter(Filter::and([
        Filter::eq("topic", "db"),
        Filter::eq("author", "u0"),
    ]));
    match table.explain(&q).access {
        AccessPath::HashProbe { paths, estimated } => {
            assert_eq!(
                paths,
                vec!["author".into(), "topic".into()],
                "smallest first"
            );
            assert_eq!(estimated, 5);
        }
        other => panic!("expected hash probe, got {other:?}"),
    }
    let hits = table.query(&q);
    assert_eq!(ids_of(&hits), ids_of(&table.scan_query(&q)));
}

#[test]
fn explain_picks_range_scan_for_indexed_ranges() {
    let db = Database::new();
    let table = loaded_table(&db);
    table.create_ordered_index("likes");
    let q = Query::table("posts").filter(Filter::and([
        Filter::gte("likes", 10),
        Filter::lt("likes", 14),
    ]));
    match table.explain(&q).access {
        AccessPath::RangeScan { path, estimated } => {
            assert_eq!(path, "likes".into());
            assert_eq!(estimated, 4, "merged bounds walk exactly the interval");
        }
        other => panic!("expected range scan, got {other:?}"),
    }
    assert_eq!(table.query(&q).len(), 4);
}

#[test]
fn explain_serves_equality_from_ordered_index_without_hash() {
    let db = Database::new();
    let table = loaded_table(&db);
    table.create_ordered_index("likes");
    let q = Query::table("posts").filter(Filter::eq("likes", 7));
    assert!(matches!(
        table.explain(&q).access,
        AccessPath::RangeScan { estimated: 1, .. }
    ));
    assert_eq!(table.query(&q).len(), 1);
}

#[test]
fn explain_falls_back_to_full_scan() {
    let db = Database::new();
    let table = loaded_table(&db);
    // No indexes at all: everything scans.
    let range = Query::table("posts").filter(Filter::gt("likes", 10));
    assert!(matches!(
        table.explain(&range).access,
        AccessPath::FullScan { estimated: 50 }
    ));
    // Indexed paths don't help $or at the top level.
    table.create_index("topic");
    let or = Query::table("posts").filter(Filter::or([
        Filter::eq("topic", "db"),
        Filter::gt("likes", 45),
    ]));
    assert!(matches!(or.filter, Filter::Or(_)));
    assert!(matches!(
        table.explain(&or).access,
        AccessPath::FullScan { .. }
    ));
}

#[test]
fn explain_detects_unsatisfiable_merged_bounds() {
    let db = Database::new();
    let table = loaded_table(&db);
    table.create_ordered_index("likes");
    let q = Query::table("posts").filter(Filter::and([
        Filter::gt("likes", 40),
        Filter::lt("likes", 10),
    ]));
    assert_eq!(table.explain(&q).access, AccessPath::Empty);
    assert!(table.query(&q).is_empty());
    assert!(table.scan_query(&q).is_empty());
}

#[test]
fn explain_pushes_sort_into_ordered_index() {
    let db = Database::new();
    let table = loaded_table(&db);
    table.create_ordered_index("likes");
    let q = Query::table("posts").sort_by("likes", Order::Desc).limit(5);
    let plan = table.explain(&q);
    assert_eq!(
        plan.sort,
        SortStrategy::IndexOrder {
            path: "likes".into(),
            reverse: true,
        }
    );
    let likes: Vec<i64> = table
        .query(&q)
        .iter()
        .map(|d| d["likes"].as_i64().unwrap())
        .collect();
    assert_eq!(likes, vec![49, 48, 47, 46, 45]);
}

#[test]
fn explain_combines_range_access_with_index_order() {
    let db = Database::new();
    let table = loaded_table(&db);
    table.create_ordered_index("likes");
    let q = Query::table("posts")
        .filter(Filter::gte("likes", 20))
        .sort_by("likes", Order::Asc)
        .offset(2)
        .limit(3);
    let plan = table.explain(&q);
    assert!(matches!(plan.access, AccessPath::RangeScan { .. }));
    assert!(matches!(
        plan.sort,
        SortStrategy::IndexOrder { reverse: false, .. }
    ));
    let likes: Vec<i64> = table
        .query(&q)
        .iter()
        .map(|d| d["likes"].as_i64().unwrap())
        .collect();
    assert_eq!(likes, vec![22, 23, 24]);
}

#[test]
fn explain_uses_topk_when_sort_key_is_not_indexed() {
    let db = Database::new();
    let table = loaded_table(&db);
    let q = Query::table("posts")
        .sort_by("noise", Order::Asc)
        .offset(1)
        .limit(4);
    assert_eq!(table.explain(&q).sort, SortStrategy::TopK { k: 5 });
    assert_eq!(ids_of(&table.query(&q)), ids_of(&table.scan_query(&q)));
    // Sort-less limits are top-k under the deterministic _id order.
    let bare = Query::table("posts").limit(3);
    assert_eq!(table.explain(&bare).sort, SortStrategy::TopK { k: 3 });
    assert_eq!(
        ids_of(&table.query(&bare)),
        vec!["p00".to_string(), "p01".into(), "p02".into()]
    );
}

#[test]
fn multikey_ordered_index_disables_pushdown_but_stays_exact() {
    let db = Database::new();
    let table = db.create_table("posts");
    table.create_ordered_index("tags");
    table
        .insert("a", doc! { "tags" => vec![1i64, 100] })
        .unwrap();
    table.insert("b", doc! { "tags" => vec![7i64] }).unwrap();
    table.insert("c", doc! { "tags" => 55i64 }).unwrap();
    // The multi-element trap: `tags > 5 AND tags < 9` matches "a" via two
    // *different* elements (100 and 1) — merged bounds would miss it.
    let q =
        Query::table("posts").filter(Filter::and([Filter::gt("tags", 5), Filter::lt("tags", 9)]));
    let got = ids_of(&table.query(&q));
    assert_eq!(got, ids_of(&table.scan_query(&q)));
    assert!(got.contains(&"a".to_string()), "multi-element match kept");
    // And sort pushdown is off: whole-array order != element order.
    let sorted = Query::table("posts").sort_by("tags", Order::Asc).limit(2);
    assert_eq!(table.explain(&sorted).sort, SortStrategy::TopK { k: 2 });
    assert_eq!(
        ids_of(&table.query(&sorted)),
        ids_of(&table.scan_query(&sorted))
    );
}

#[test]
fn missing_sort_fields_emit_at_the_null_position() {
    let db = Database::new();
    let table = db.create_table("posts");
    table.create_ordered_index("rank");
    table.insert("has1", doc! { "rank" => 2i64 }).unwrap();
    table.insert("none", doc! { "other" => 1i64 }).unwrap();
    table
        .insert("null", doc! { "rank" => Value::Null })
        .unwrap();
    table.insert("has2", doc! { "rank" => 1i64 }).unwrap();
    // LIMIT keeps the index-order path (unlimited full-scan sorts are
    // priced as cheaper via scan + sort); 4 covers every record.
    let asc = Query::table("posts").sort_by("rank", Order::Asc).limit(4);
    assert!(matches!(
        table.explain(&asc).sort,
        SortStrategy::IndexOrder { reverse: false, .. }
    ));
    // Unlimited sorts over a full scan deliberately stay on the sort
    // path — same results either way.
    let unlimited = Query::table("posts").sort_by("rank", Order::Asc);
    assert_eq!(table.explain(&unlimited).sort, SortStrategy::FullSort);
    assert_eq!(
        ids_of(&table.query(&unlimited)),
        ids_of(&table.scan_query(&unlimited))
    );
    // "none" and "null" tie at the Null rank; `_id` breaks the tie.
    assert_eq!(
        ids_of(&table.query(&asc)),
        vec!["none", "null", "has2", "has1"]
    );
    assert_eq!(ids_of(&table.query(&asc)), ids_of(&table.scan_query(&asc)));
    let desc = Query::table("posts").sort_by("rank", Order::Desc).limit(3);
    assert_eq!(
        ids_of(&table.query(&desc)),
        ids_of(&table.scan_query(&desc))
    );
}

#[test]
fn hash_probe_matches_numeric_equality_beyond_2_pow_53() {
    // Int(2^60) == Float(2^60) under the f64-projected numeric order;
    // the probe must hit even though their canonical strings differ
    // (Value's Hash goes through the equality-consistent rendering).
    let db = Database::new();
    let table = db.create_table("posts");
    table.create_index("n");
    table.insert("big", doc! { "n" => 1i64 << 60 }).unwrap();
    let q = Query::table("posts").filter(Filter::eq("n", (1u64 << 60) as f64));
    assert!(matches!(
        table.explain(&q).access,
        AccessPath::HashProbe { .. }
    ));
    assert_eq!(table.query(&q).len(), 1);
    assert_eq!(ids_of(&table.query(&q)), ids_of(&table.scan_query(&q)));
}

#[test]
fn planner_counters_track_access_paths() {
    let db = Database::new();
    let table = loaded_table(&db);
    table.create_index("topic");
    table.create_ordered_index("likes");
    table
        .query(&Query::table("posts").filter(Filter::eq("topic", "db")))
        .len();
    table
        .query(&Query::table("posts").filter(Filter::gt("likes", 40)))
        .len();
    table.query(&Query::table("posts")).len();
    table
        .query(&Query::table("posts").sort_by("noise", Order::Asc).limit(2))
        .len();
    let (probes, ranges, fulls, topk) = db.query_stats().snapshot();
    assert_eq!(probes, 1);
    assert_eq!(ranges, 1);
    assert_eq!(fulls, 2, "bare scan + unindexed top-k scan");
    assert_eq!(topk, 1, "only the LIMIT query short-circuited its sort");
}

#[test]
fn declared_indexes_apply_to_later_tables() {
    let db = Database::new();
    db.declare_index("late", "n", IndexKind::Ordered);
    let table = db.create_table("late");
    for i in 0..20i64 {
        table
            .insert(&format!("r{i:02}"), doc! { "n" => i })
            .unwrap();
    }
    let q = Query::table("late").filter(Filter::lt("n", 3));
    assert!(matches!(
        table.explain(&q).access,
        AccessPath::RangeScan { estimated: 3, .. }
    ));
    // Redeclaration is idempotent.
    db.declare_index("late", "n", IndexKind::Ordered);
    assert_eq!(ids_of(&table.query(&q)), vec!["r00", "r01", "r02"]);
}

//! Secondary indexes: hash indexes for equality, ordered indexes for
//! ranges and sort pushdown.
//!
//! The evaluation's generated queries are selective ("100 distinct
//! queries per table were generated to initially return on average 10
//! documents", §6.1); serving them at cache speed only pays off if origin
//! evaluation is O(result), not O(table). Both index kinds are *multikey*
//! in the MongoDB sense: array fields index every element (plus the whole
//! array), mirroring the matcher's implicit `$elemMatch` semantics so
//! that index candidate sets never miss a match.
//!
//! Posting lists hold interned `Arc<str>` ids — the same interning the
//! write path uses for [`WriteEvent.id`](crate::changes::WriteEvent) and
//! the table's shard maps — so collecting candidates is refcount bumps,
//! not string allocations.

use std::collections::BTreeMap;
use std::ops::Bound;
use std::sync::Arc;

use quaestor_document::{Document, Path, Value};
use quaestor_query::matcher;

use quaestor_common::{FxHashMap, FxHashSet};

/// A set of interned document ids (one index posting list).
pub type IdSet = FxHashSet<Arc<str>>;

/// Which index structure to maintain over a path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IndexKind {
    /// Equality-only hash index.
    Hash,
    /// BTree index over the canonical value order (ranges + sort).
    Ordered,
}

/// The values a document contributes to an index over `path`: the value
/// itself, plus — for arrays — every element (multikey). Resolves the
/// path against the document directly (borrowing, not cloning), so index
/// maintenance allocates O(field value), not O(document).
fn keys_of<'a>(doc: &'a Document, path: &Path) -> Vec<&'a Value> {
    match matcher::resolve_path(doc, path) {
        Some(whole @ Value::Array(items)) => {
            let mut keys: Vec<&Value> = items.iter().collect();
            // The array itself is also a key so whole-array equality and
            // cross-type range comparisons hit.
            keys.push(whole);
            keys
        }
        Some(v) => vec![v],
        None => Vec::new(),
    }
}

/// A hash index from the value at one field path to the ids of documents
/// holding (or, for arrays, containing) that value.
#[derive(Debug)]
pub struct HashIndex {
    path: Path,
    map: FxHashMap<Value, IdSet>,
}

impl HashIndex {
    /// New index over `path`.
    pub fn new(path: impl Into<Path>) -> HashIndex {
        HashIndex {
            path: path.into(),
            map: FxHashMap::default(),
        }
    }

    /// Indexed path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Index a (new) document state.
    pub fn insert(&mut self, id: &Arc<str>, doc: &Document) {
        for key in keys_of(doc, &self.path) {
            self.map.entry(key.clone()).or_default().insert(id.clone());
        }
    }

    /// Remove a document state from the index.
    pub fn remove(&mut self, id: &str, doc: &Document) {
        for key in keys_of(doc, &self.path) {
            if let Some(set) = self.map.get_mut(key) {
                set.remove(id);
                if set.is_empty() {
                    self.map.remove(key);
                }
            }
        }
    }

    /// Replace old state with new state.
    pub fn update(&mut self, id: &Arc<str>, old: &Document, new: &Document) {
        self.remove(id, old);
        self.insert(id, new);
    }

    /// Ids of documents whose indexed field equals (or, for arrays,
    /// contains) `value`.
    pub fn lookup(&self, value: &Value) -> Option<&IdSet> {
        self.map.get(value)
    }

    /// Number of distinct indexed values.
    pub fn cardinality(&self) -> usize {
        self.map.len()
    }
}

/// An ordered secondary index: a BTree over the canonical value order
/// (`Value::cmp`, the exact order `matcher::compare_docs` sorts by),
/// mapping each value to the ids of documents holding it.
///
/// Serves two access paths the hash index cannot:
/// * **range scans** — `$gt/$gte/$lt/$lte` conjuncts become one
///   `BTreeMap::range` walk over the bounded interval;
/// * **sort pushdown** — when a query sorts by this path (and the index
///   has never seen an array value), walking the tree emits documents
///   already in sort order, so `ORDER BY … LIMIT k` stops after `k`
///   matches instead of sorting the full match set.
///
/// Documents lacking the field are tracked in a separate `absent` set:
/// they sort as `Null` (exactly `compare_docs`' treatment) but match no
/// range predicate (the matcher rejects missing fields for every range
/// operator), so scans include them only when the caller asks.
#[derive(Debug)]
pub struct OrderedIndex {
    path: Path,
    map: BTreeMap<Value, IdSet>,
    absent: IdSet,
    /// True once any array value was indexed. A multikey index files one
    /// document under several keys, which breaks the "one key per doc"
    /// invariant sort pushdown and cross-predicate bound intersection
    /// rely on; both are disabled for the index's lifetime then
    /// (conservative: removals never clear the flag).
    multikey: bool,
}

impl OrderedIndex {
    /// New ordered index over `path`.
    pub fn new(path: impl Into<Path>) -> OrderedIndex {
        OrderedIndex {
            path: path.into(),
            map: BTreeMap::new(),
            absent: IdSet::default(),
            multikey: false,
        }
    }

    /// Indexed path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// True if any array value was ever indexed (see type docs).
    pub fn is_multikey(&self) -> bool {
        self.multikey
    }

    /// Number of distinct indexed values.
    pub fn cardinality(&self) -> usize {
        self.map.len()
    }

    /// Index a (new) document state.
    pub fn insert(&mut self, id: &Arc<str>, doc: &Document) {
        let keys = keys_of(doc, &self.path);
        if keys.is_empty() {
            self.absent.insert(id.clone());
            return;
        }
        if keys.len() > 1 {
            self.multikey = true;
        }
        for key in keys {
            self.map.entry(key.clone()).or_default().insert(id.clone());
        }
    }

    /// Remove a document state from the index.
    pub fn remove(&mut self, id: &str, doc: &Document) {
        let keys = keys_of(doc, &self.path);
        if keys.is_empty() {
            self.absent.remove(id);
            return;
        }
        for key in keys {
            if let Some(set) = self.map.get_mut(key) {
                set.remove(id);
                if set.is_empty() {
                    self.map.remove(key);
                }
            }
        }
    }

    /// Replace old state with new state.
    pub fn update(&mut self, id: &Arc<str>, old: &Document, new: &Document) {
        self.remove(id, old);
        self.insert(id, new);
    }

    /// Estimate the number of ids in `bounds`, walking buckets until the
    /// estimate exceeds `cap` (cost-based planning wants "smaller than
    /// the current best plan?", not an exact count).
    pub fn estimate_range(&self, bounds: RangeBounds<'_>, cap: usize) -> usize {
        if bounds.is_empty() {
            return 0;
        }
        let mut n = 0;
        for set in self.map.range(bounds.as_range()).map(|(_, s)| s) {
            n += set.len();
            if n > cap {
                break;
            }
        }
        n
    }

    /// All ids with some indexed key in `bounds`, deduplicated (a
    /// multikey document can land in several buckets of one interval).
    pub fn range_ids(&self, bounds: RangeBounds<'_>) -> Vec<Arc<str>> {
        if bounds.is_empty() {
            return Vec::new();
        }
        let mut seen = IdSet::default();
        for (_, set) in self.map.range(bounds.as_range()) {
            for id in set {
                seen.insert(id.clone());
            }
        }
        seen.into_iter().collect()
    }

    /// The interval's id buckets in key order (ascending or descending),
    /// for in-order emission. `include_absent` merges the absent set into
    /// the `Null` position — first ascending, last descending — since
    /// missing fields sort exactly like `Null` under `compare_docs`.
    /// Callers must only rely on the order when `!is_multikey()`.
    ///
    /// `max_ids` stops collecting once that many ids were gathered (only
    /// whole buckets are kept — a bucket's internal order is decided
    /// later by the full sort spec, so splitting one would be wrong).
    /// Only pass it when every collected id is known to be emitted (e.g.
    /// `Filter::True` with a `LIMIT`): a `LIMIT 10` over millions of rows
    /// then touches ~10 tree entries instead of all of them.
    pub fn buckets_in_order(
        &self,
        bounds: RangeBounds<'_>,
        descending: bool,
        include_absent: bool,
        max_ids: Option<usize>,
    ) -> Vec<Vec<Arc<str>>> {
        let cap = max_ids.unwrap_or(usize::MAX);
        let mut out: Vec<Vec<Arc<str>>> = Vec::new();
        let mut count = 0usize;
        // Consumed once, at the Null slot.
        let mut absent_bucket = if include_absent && !self.absent.is_empty() {
            Some(self.absent.iter().cloned().collect::<Vec<_>>())
        } else {
            None
        };
        if cap == 0 {
            return out;
        }
        if bounds.is_empty() {
            if let Some(absent) = absent_bucket {
                out.push(absent);
            }
            return out;
        }
        let mut push = |mut bucket: Vec<Arc<str>>, out: &mut Vec<Vec<Arc<str>>>| {
            count += bucket.len();
            if bucket.is_empty() {
                return false;
            }
            bucket.shrink_to_fit();
            out.push(bucket);
            count >= cap
        };
        if descending {
            // Null (the minimum value) is the last bucket descending; the
            // absent set joins it — or trails everything — and is only
            // reached if the cap wasn't hit earlier.
            for (key, set) in self.map.range(bounds.as_range()).rev() {
                let mut bucket: Vec<Arc<str>> = set.iter().cloned().collect();
                if key.is_null() {
                    if let Some(absent) = absent_bucket.take() {
                        bucket.extend(absent);
                    }
                }
                if push(bucket, &mut out) {
                    return out;
                }
            }
            if let Some(absent) = absent_bucket {
                push(absent, &mut out);
            }
        } else {
            // Ascending: the absent set leads (merged into an explicit
            // Null bucket when one heads the interval).
            let mut range = self.map.range(bounds.as_range()).peekable();
            let leading_null = range.peek().is_some_and(|(k, _)| k.is_null());
            if !leading_null {
                if let Some(absent) = absent_bucket.take() {
                    if push(absent, &mut out) {
                        return out;
                    }
                }
            }
            for (key, set) in range {
                let mut bucket: Vec<Arc<str>> = set.iter().cloned().collect();
                if key.is_null() {
                    if let Some(absent) = absent_bucket.take() {
                        bucket.extend(absent);
                    }
                }
                if push(bucket, &mut out) {
                    return out;
                }
            }
        }
        out
    }
}

/// A resolved pair of interval endpoints over the canonical value order.
#[derive(Debug, Clone, Copy)]
pub struct RangeBounds<'a> {
    /// Lower endpoint.
    pub lower: Bound<&'a Value>,
    /// Upper endpoint.
    pub upper: Bound<&'a Value>,
}

impl<'a> RangeBounds<'a> {
    /// The unbounded interval.
    pub fn all() -> RangeBounds<'static> {
        RangeBounds {
            lower: Bound::Unbounded,
            upper: Bound::Unbounded,
        }
    }

    /// The degenerate point interval `[v, v]`.
    pub fn point(v: &'a Value) -> RangeBounds<'a> {
        RangeBounds {
            lower: Bound::Included(v),
            upper: Bound::Included(v),
        }
    }

    /// True if no value can lie within the bounds. Checked before every
    /// `BTreeMap::range` call, which panics on inverted bounds.
    pub fn is_empty(&self) -> bool {
        use std::cmp::Ordering::*;
        match (&self.lower, &self.upper) {
            (Bound::Unbounded, _) | (_, Bound::Unbounded) => false,
            (Bound::Included(a), Bound::Included(b)) => a.cmp(b) == Greater,
            (Bound::Included(a), Bound::Excluded(b))
            | (Bound::Excluded(a), Bound::Included(b))
            | (Bound::Excluded(a), Bound::Excluded(b)) => a.cmp(b) != Less,
        }
    }

    fn as_range(&self) -> (Bound<&'a Value>, Bound<&'a Value>) {
        (self.lower, self.upper)
    }
}

/// A table's secondary indexes, both kinds, behind one lock.
#[derive(Debug, Default)]
pub struct IndexSet {
    /// Equality (hash) indexes.
    pub hash: Vec<HashIndex>,
    /// Ordered (BTree) indexes.
    pub ordered: Vec<OrderedIndex>,
}

impl IndexSet {
    /// The hash index over `path`, if declared.
    pub fn hash_on(&self, path: &Path) -> Option<&HashIndex> {
        self.hash.iter().find(|i| i.path() == path)
    }

    /// The ordered index over `path`, if declared.
    pub fn ordered_on(&self, path: &Path) -> Option<&OrderedIndex> {
        self.ordered.iter().find(|i| i.path() == path)
    }

    /// Index a new document state into every index.
    pub fn insert(&mut self, id: &Arc<str>, doc: &Document) {
        for idx in &mut self.hash {
            idx.insert(id, doc);
        }
        for idx in &mut self.ordered {
            idx.insert(id, doc);
        }
    }

    /// Remove a document state from every index.
    pub fn remove(&mut self, id: &str, doc: &Document) {
        for idx in &mut self.hash {
            idx.remove(id, doc);
        }
        for idx in &mut self.ordered {
            idx.remove(id, doc);
        }
    }

    /// Replace old state with new state in every index.
    pub fn update(&mut self, id: &Arc<str>, old: &Document, new: &Document) {
        for idx in &mut self.hash {
            idx.update(id, old, new);
        }
        for idx in &mut self.ordered {
            idx.update(id, old, new);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_document::doc;

    fn id(s: &str) -> Arc<str> {
        Arc::from(s)
    }

    #[test]
    fn scalar_index_lookup() {
        let mut idx = HashIndex::new("topic");
        idx.insert(&id("p1"), &doc! { "topic" => "db" });
        idx.insert(&id("p2"), &doc! { "topic" => "db" });
        idx.insert(&id("p3"), &doc! { "topic" => "ml" });
        let hits = idx.lookup(&Value::str("db")).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains("p1") && hits.contains("p2"));
        assert!(idx.lookup(&Value::str("none")).is_none());
    }

    #[test]
    fn multikey_array_index() {
        let mut idx = HashIndex::new("tags");
        let d = doc! { "tags" => vec!["example", "music"] };
        idx.insert(&id("p1"), &d);
        assert!(idx.lookup(&Value::str("example")).unwrap().contains("p1"));
        assert!(idx.lookup(&Value::str("music")).unwrap().contains("p1"));
    }

    #[test]
    fn update_moves_entries() {
        let mut idx = HashIndex::new("topic");
        let old = doc! { "topic" => "db" };
        let new = doc! { "topic" => "ml" };
        idx.insert(&id("p1"), &old);
        idx.update(&id("p1"), &old, &new);
        assert!(idx.lookup(&Value::str("db")).is_none());
        assert!(idx.lookup(&Value::str("ml")).unwrap().contains("p1"));
    }

    #[test]
    fn remove_cleans_empty_buckets() {
        let mut idx = HashIndex::new("topic");
        let d = doc! { "topic" => "db" };
        idx.insert(&id("p1"), &d);
        idx.remove("p1", &d);
        assert_eq!(idx.cardinality(), 0);
    }

    #[test]
    fn nested_path_indexing() {
        let mut idx = HashIndex::new("author.name");
        idx.insert(
            &id("p1"),
            &doc! { "author" => Value::Object(
            [("name".to_string(), Value::str("ada"))].into_iter().collect()) },
        );
        assert!(idx.lookup(&Value::str("ada")).unwrap().contains("p1"));
    }

    #[test]
    fn missing_field_not_indexed() {
        let mut idx = HashIndex::new("topic");
        idx.insert(&id("p1"), &doc! { "other" => 1 });
        assert_eq!(idx.cardinality(), 0);
    }

    #[test]
    fn ordered_range_scan() {
        let mut idx = OrderedIndex::new("n");
        for i in 0..10i64 {
            idx.insert(&id(&format!("r{i}")), &doc! { "n" => i });
        }
        let bounds = RangeBounds {
            lower: Bound::Excluded(&Value::Int(3)),
            upper: Bound::Included(&Value::Int(6)),
        };
        let mut ids: Vec<String> = idx
            .range_ids(bounds)
            .iter()
            .map(|s| s.to_string())
            .collect();
        ids.sort();
        assert_eq!(ids, vec!["r4", "r5", "r6"]);
        assert_eq!(idx.estimate_range(bounds, 100), 3);
        assert!(idx.estimate_range(bounds, 1) <= 3);
        assert!(!idx.is_multikey());
    }

    #[test]
    fn ordered_int_float_share_a_key() {
        let mut idx = OrderedIndex::new("n");
        idx.insert(&id("a"), &doc! { "n" => 3 });
        idx.insert(&id("b"), &doc! { "n" => 3.0 });
        assert_eq!(idx.cardinality(), 1, "3 and 3.0 are the same point");
        let hits = idx.range_ids(RangeBounds::point(&Value::Float(3.0)));
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn ordered_multikey_flag_and_dedup() {
        let mut idx = OrderedIndex::new("tags");
        idx.insert(&id("p1"), &doc! { "tags" => vec![1, 2] });
        assert!(idx.is_multikey());
        // One interval covering both elements still yields the id once.
        let bounds = RangeBounds {
            lower: Bound::Included(&Value::Int(0)),
            upper: Bound::Included(&Value::Int(9)),
        };
        assert_eq!(idx.range_ids(bounds).len(), 1);
    }

    #[test]
    fn ordered_absent_tracked_separately() {
        let mut idx = OrderedIndex::new("n");
        idx.insert(&id("has"), &doc! { "n" => 1 });
        idx.insert(&id("not"), &doc! { "other" => 1 });
        // Range scans never see absent docs (range ops reject missing).
        assert_eq!(idx.range_ids(RangeBounds::all()).len(), 1);
        // Ordered emission places them at the Null position when asked.
        let asc = idx.buckets_in_order(RangeBounds::all(), false, true, None);
        assert_eq!(asc.len(), 2);
        assert_eq!(asc[0][0].as_ref(), "not");
        let desc = idx.buckets_in_order(RangeBounds::all(), true, true, None);
        assert_eq!(desc[1][0].as_ref(), "not");
        // Explicit Null merges with absent into one tie bucket.
        idx.insert(&id("null"), &doc! { "n" => Value::Null });
        let asc = idx.buckets_in_order(RangeBounds::all(), false, true, None);
        assert_eq!(asc.len(), 2);
        assert_eq!(asc[0].len(), 2, "null + absent share the first bucket");
    }

    #[test]
    fn inverted_bounds_are_empty_not_a_panic() {
        let mut idx = OrderedIndex::new("n");
        idx.insert(&id("a"), &doc! { "n" => 5 });
        let inverted = RangeBounds {
            lower: Bound::Included(&Value::Int(9)),
            upper: Bound::Included(&Value::Int(1)),
        };
        assert!(inverted.is_empty());
        assert!(idx.range_ids(inverted).is_empty());
        assert_eq!(idx.estimate_range(inverted, 10), 0);
        let point_excluded = RangeBounds {
            lower: Bound::Included(&Value::Int(5)),
            upper: Bound::Excluded(&Value::Int(5)),
        };
        assert!(point_excluded.is_empty());
        assert!(!RangeBounds::point(&Value::Int(5)).is_empty());
        assert!(!RangeBounds::all().is_empty());
    }

    #[test]
    fn capped_bucket_collection_keeps_whole_buckets() {
        let mut idx = OrderedIndex::new("n");
        for i in 0..100i64 {
            idx.insert(&id(&format!("r{i:03}")), &doc! { "n" => i / 10 });
        }
        // Buckets of 10; a cap of 15 needs two whole buckets.
        let capped = idx.buckets_in_order(RangeBounds::all(), false, true, Some(15));
        assert_eq!(capped.len(), 2);
        assert_eq!(capped.iter().map(Vec::len).sum::<usize>(), 20);
        // Descending collection starts from the top key.
        let desc = idx.buckets_in_order(RangeBounds::all(), true, true, Some(1));
        assert_eq!(desc.len(), 1);
        assert!(desc[0][0].starts_with("r09"));
        // Cap 0 collects nothing; no cap collects everything.
        assert!(idx
            .buckets_in_order(RangeBounds::all(), false, true, Some(0))
            .is_empty());
        assert_eq!(
            idx.buckets_in_order(RangeBounds::all(), false, true, None)
                .len(),
            10
        );
    }

    #[test]
    fn ordered_update_and_remove_maintain_buckets() {
        let mut idx = OrderedIndex::new("n");
        let old = doc! { "n" => 1 };
        let new = doc! { "n" => 2 };
        idx.insert(&id("a"), &old);
        idx.update(&id("a"), &old, &new);
        assert!(idx.range_ids(RangeBounds::point(&Value::Int(1))).is_empty());
        assert_eq!(idx.range_ids(RangeBounds::point(&Value::Int(2))).len(), 1);
        idx.remove("a", &new);
        assert_eq!(idx.cardinality(), 0);
        // Absent bookkeeping mirrors value bookkeeping.
        let bare = doc! { "other" => 1 };
        idx.insert(&id("b"), &bare);
        idx.remove("b", &bare);
        assert!(idx
            .buckets_in_order(RangeBounds::all(), false, true, None)
            .is_empty());
    }
}

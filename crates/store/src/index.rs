//! Hash indexes for equality predicates.
//!
//! The evaluation's generated queries are selective equality predicates
//! ("100 distinct queries per table were generated to initially return on
//! average 10 documents", §6.1). A per-field hash index keeps initial
//! query evaluation at registration time O(result) instead of O(table),
//! which matters for the Table-1 sweep up to millions of documents.

use quaestor_document::{Document, Path, Value};

use quaestor_common::{FxHashMap, FxHashSet};

/// A hash index from the value at one field path to the ids of documents
/// holding that value. Array fields index every element (multikey index,
/// as in MongoDB) so that `Contains` predicates can be served too.
#[derive(Debug)]
pub struct HashIndex {
    path: Path,
    map: FxHashMap<Value, FxHashSet<String>>,
}

impl HashIndex {
    /// New index over `path`.
    pub fn new(path: impl Into<Path>) -> HashIndex {
        HashIndex {
            path: path.into(),
            map: FxHashMap::default(),
        }
    }

    /// Indexed path.
    pub fn path(&self) -> &Path {
        &self.path
    }

    fn keys_of(&self, doc: &Document) -> Vec<Value> {
        let root = Value::Object(doc.clone());
        match root.get_path(&self.path) {
            Some(Value::Array(items)) => {
                let mut keys: Vec<Value> = items.to_vec();
                // The array itself is also a key so whole-array equality hits.
                keys.push(Value::Array(items.to_vec()));
                keys
            }
            Some(v) => vec![v.clone()],
            None => Vec::new(),
        }
    }

    /// Index a (new) document state.
    pub fn insert(&mut self, id: &str, doc: &Document) {
        for key in self.keys_of(doc) {
            self.map.entry(key).or_default().insert(id.to_owned());
        }
    }

    /// Remove a document state from the index.
    pub fn remove(&mut self, id: &str, doc: &Document) {
        for key in self.keys_of(doc) {
            if let Some(set) = self.map.get_mut(&key) {
                set.remove(id);
                if set.is_empty() {
                    self.map.remove(&key);
                }
            }
        }
    }

    /// Replace old state with new state.
    pub fn update(&mut self, id: &str, old: &Document, new: &Document) {
        self.remove(id, old);
        self.insert(id, new);
    }

    /// Ids of documents whose indexed field equals (or, for arrays,
    /// contains) `value`.
    pub fn lookup(&self, value: &Value) -> Option<&FxHashSet<String>> {
        self.map.get(value)
    }

    /// Number of distinct indexed values.
    pub fn cardinality(&self) -> usize {
        self.map.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quaestor_document::doc;

    #[test]
    fn scalar_index_lookup() {
        let mut idx = HashIndex::new("topic");
        idx.insert("p1", &doc! { "topic" => "db" });
        idx.insert("p2", &doc! { "topic" => "db" });
        idx.insert("p3", &doc! { "topic" => "ml" });
        let hits = idx.lookup(&Value::str("db")).unwrap();
        assert_eq!(hits.len(), 2);
        assert!(hits.contains("p1") && hits.contains("p2"));
        assert!(idx.lookup(&Value::str("none")).is_none());
    }

    #[test]
    fn multikey_array_index() {
        let mut idx = HashIndex::new("tags");
        let d = doc! { "tags" => vec!["example", "music"] };
        idx.insert("p1", &d);
        assert!(idx.lookup(&Value::str("example")).unwrap().contains("p1"));
        assert!(idx.lookup(&Value::str("music")).unwrap().contains("p1"));
    }

    #[test]
    fn update_moves_entries() {
        let mut idx = HashIndex::new("topic");
        let old = doc! { "topic" => "db" };
        let new = doc! { "topic" => "ml" };
        idx.insert("p1", &old);
        idx.update("p1", &old, &new);
        assert!(idx.lookup(&Value::str("db")).is_none());
        assert!(idx.lookup(&Value::str("ml")).unwrap().contains("p1"));
    }

    #[test]
    fn remove_cleans_empty_buckets() {
        let mut idx = HashIndex::new("topic");
        let d = doc! { "topic" => "db" };
        idx.insert("p1", &d);
        idx.remove("p1", &d);
        assert_eq!(idx.cardinality(), 0);
    }

    #[test]
    fn nested_path_indexing() {
        let mut idx = HashIndex::new("author.name");
        idx.insert(
            "p1",
            &doc! { "author" => Value::Object(
            [("name".to_string(), Value::str("ada"))].into_iter().collect()) },
        );
        assert!(idx.lookup(&Value::str("ada")).unwrap().contains("p1"));
    }

    #[test]
    fn missing_field_not_indexed() {
        let mut idx = HashIndex::new("topic");
        idx.insert("p1", &doc! { "other" => 1 });
        assert_eq!(idx.cardinality(), 0);
    }
}
